"""OpenCL code generation for optimized design points (Fig. 5).

Poly's output artifact on real systems is transformed OpenCL: memory-
coalescing index remaps and ``__local`` scratchpad staging on GPUs;
``unroll`` / ``PIPELINE`` / ``max_compute_units`` / array-partition
pragmas on FPGAs (the code snippets of Fig. 5).  This module emits that
source for any (kernel, ImplConfig) pair, so a design point can be
inspected — or handed to a real toolchain — as concrete code.

The generator is deliberately template-based: every pattern kind maps
to a loop skeleton, and the knob assignment decides which directives
and restructurings decorate it.
"""

from __future__ import annotations

from typing import List

from ..hardware.config import ImplConfig
from ..hardware.specs import DeviceType
from ..patterns.annotations import Pattern, PatternKind
from ..patterns.ppg import Kernel

__all__ = ["generate_kernel_source", "generate_host_snippet"]

_C_TYPES = {
    "fp16": "half",
    "fp32": "float",
    "fp64": "double",
    "int8": "char",
    "int16": "short",
    "int32": "int",
    "int64": "long",
    "uint8": "uchar",
}


def _ctype(dtype: str) -> str:
    return _C_TYPES.get(dtype, "float")


def _args_of(pattern: Pattern) -> List[str]:
    """Kernel arguments for one pattern's tensors."""
    args = [
        f"__global const {_ctype(t.dtype)}* restrict {t.name}"
        for t in pattern.inputs
    ]
    out = pattern.output
    args.append(f"__global {_ctype(out.dtype)}* restrict {out.name}")
    return args


def _gpu_body(pattern: Pattern, config: ImplConfig, indent: str = "    ") -> List[str]:
    """GPU loop body with Table-I transformations applied."""
    lines: List[str] = []
    src = pattern.inputs[0].name
    dst = pattern.output.name

    if config.memory_coalescing and pattern.kind in (
        PatternKind.GATHER,
        PatternKind.SCATTER,
    ):
        # Fig. 5(a) lines 2-3: remap indices to be physically contiguous.
        lines.append(f"{indent}// memory coalescing: contiguous index remap")
        lines.append(
            f"{indent}const int idx = (gid % WG_SIZE) + (gid / WG_SIZE) * WG_SIZE;"
        )
    else:
        lines.append(f"{indent}const int idx = gid;")

    if config.use_scratchpad:
        lines.append(f"{indent}// stage through on-chip scratchpad (__local)")
        lines.append(f"{indent}__local {_ctype(pattern.inputs[0].dtype)} tile[WG_SIZE];")
        lines.append(f"{indent}tile[lid] = {src}[idx];")
        lines.append(f"{indent}barrier(CLK_LOCAL_MEM_FENCE);")
        read = "tile[lid]"
    else:
        read = f"{src}[idx]"

    if config.unroll > 1:
        lines.append(f"{indent}#pragma unroll {config.unroll}")
    lines.append(
        f"{indent}for (int u = 0; u < UNROLL_TRIP; ++u) {{"
    )
    if pattern.kind == PatternKind.REDUCE:
        lines.append(f"{indent}    acc = {pattern.func}(acc, {read});")
    else:
        lines.append(f"{indent}    {dst}[idx] = {pattern.func}({read});")
    lines.append(f"{indent}}}")

    if pattern.kind == PatternKind.REDUCE:
        lines.append(f"{indent}// tree reduction across the work-group")
        lines.append(f"{indent}acc = work_group_reduce_add(acc);")
        lines.append(f"{indent}if (lid == 0) {dst}[get_group_id(0)] = acc;")
    return lines


def _fpga_body(pattern: Pattern, config: ImplConfig, indent: str = "    ") -> List[str]:
    """FPGA loop body with HLS directives (Fig. 5b style)."""
    lines: List[str] = []
    src = pattern.inputs[0].name
    dst = pattern.output.name

    if config.double_buffer:
        lines.append(f"{indent}// double-buffered burst load (overlaps compute)")
        lines.append(
            f"{indent}{_ctype(pattern.inputs[0].dtype)} buf[2][BURST]"
            " __attribute__((xcl_array_partition(complete, 1)));"
        )
    if config.bram_ports > 1:
        lines.append(
            f"{indent}// BRAM partitioned into {config.bram_ports} banks"
        )
        lines.append(
            f"{indent}__attribute__((xcl_array_partition(cyclic, "
            f"{config.bram_ports})))"
        )
    lines.append(f"{indent}{_ctype(pattern.output.dtype)} local_out[TILE];")

    loop_attrs = []
    if config.pipelined:
        loop_attrs.append("__attribute__((xcl_pipeline_loop(1)))")
    if config.unroll > 1:
        loop_attrs.append(f"__attribute__((opencl_unroll_hint({config.unroll})))")
    for attr in loop_attrs:
        lines.append(f"{indent}{attr}")
    lines.append(f"{indent}for (int i = 0; i < N; ++i) {{")
    if pattern.kind == PatternKind.REDUCE:
        lines.append(f"{indent}    acc = {pattern.func}(acc, {src}[i]);")
    else:
        lines.append(f"{indent}    local_out[i % TILE] = {pattern.func}({src}[i]);")
        lines.append(f"{indent}    {dst}[i] = local_out[i % TILE];")
    lines.append(f"{indent}}}")
    if pattern.kind == PatternKind.REDUCE:
        lines.append(f"{indent}{dst}[0] = acc;")
    return lines


def generate_kernel_source(
    kernel: Kernel,
    config: ImplConfig,
    device_type: DeviceType,
) -> str:
    """Emit OpenCL source for one kernel implementation.

    One ``__kernel`` function is emitted per parallel pattern (fused
    kernels share a single function with the patterns inlined in
    dependency order, keeping intermediates in on-chip arrays).
    """
    lines: List[str] = [
        f"// {kernel.name} — generated by Poly for "
        f"{device_type.value.upper()} [{config.describe()}]",
        f"#define WG_SIZE {config.work_group_size}",
        f"#define UNROLL_TRIP {max(config.unroll, 1)}",
        "#define N 1024  // elements per work-item tile (host-patched)",
        "#define TILE 256",
        "#define BURST 64",
        "",
    ]
    body_of = _gpu_body if device_type == DeviceType.GPU else _fpga_body

    if config.fused:
        # Single fused kernel: patterns inlined, intermediates on chip.
        args = ", ".join(
            dict.fromkeys(
                arg for p in kernel.patterns for arg in _args_of(p)
            )
        )
        attrs = ""
        if device_type == DeviceType.FPGA and config.compute_units > 1:
            attrs = (
                f"__attribute__((num_compute_units({config.compute_units})))\n"
            )
        lines.append(f"{attrs}__kernel void {kernel.name}_fused({args}) {{")
        lines.append("    const int gid = get_global_id(0);")
        lines.append("    const int lid = get_local_id(0);")
        lines.append(f"    {_ctype(kernel.patterns[0].output.dtype)} acc = 0;")
        for pattern in kernel.patterns:
            lines.append(f"    // -- fused pattern: {pattern.name}")
            lines.extend(body_of(pattern, config))
        lines.append("}")
    else:
        for pattern in kernel.patterns:
            args = ", ".join(_args_of(pattern))
            attrs = []
            if device_type == DeviceType.GPU:
                attrs.append(
                    f"__attribute__((reqd_work_group_size({config.work_group_size}, 1, 1)))"
                )
            elif config.compute_units > 1:
                attrs.append(
                    f"__attribute__((num_compute_units({config.compute_units})))"
                )
            fn = f"{kernel.name}_{pattern.kind.value}_{pattern.uid}"
            for attr in attrs:
                lines.append(attr)
            lines.append(f"__kernel void {fn}({args}) {{")
            lines.append("    const int gid = get_global_id(0);")
            lines.append("    const int lid = get_local_id(0);")
            lines.append(f"    {_ctype(pattern.output.dtype)} acc = 0;")
            lines.extend(body_of(pattern, config))
            lines.append("}")
            lines.append("")
    return "\n".join(lines)


def generate_host_snippet(
    kernel: Kernel, config: ImplConfig, device_type: DeviceType
) -> str:
    """Emit the host-side launch snippet (work sizes, DVFS hint)."""
    global_size = max(kernel.max_data_parallelism, config.work_group_size)
    # Round up to a whole number of work-groups.
    wg = config.work_group_size
    global_size = (global_size + wg - 1) // wg * wg
    lines = [
        f"// host launch for {kernel.name} on {device_type.value}",
        f"size_t global_size = {global_size};",
        f"size_t local_size = {wg};",
    ]
    if config.freq_scale < 1.0:
        lines.append(
            f"// DVFS: operate at {config.freq_scale:.0%} of peak frequency"
        )
    lines.append(
        "clEnqueueNDRangeKernel(queue, k, 1, NULL, &global_size, "
        "&local_size, 0, NULL, NULL);"
    )
    return "\n".join(lines)
