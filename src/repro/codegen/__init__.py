"""OpenCL code generation for optimized design points (Fig. 5)."""

from .opencl import generate_host_snippet, generate_kernel_source

__all__ = ["generate_kernel_source", "generate_host_snippet"]
