"""Image Recognition (IR) benchmark [53].

AlexNet-style CNN inference over datacenter-uploaded images.  Section
VI-B uses IR to illustrate the latency/load crossover: the FPGA's
customized pipeline serves single images at low latency (no batching
needed), but saturates early; the GPU batches images and sustains much
higher load at the cost of batching latency.

Kernels per Table II: Convolution (Gather, Map, Pipeline, Stencil,
Tiling, Scatter), Pooling (Map, Stencil, Tiling) and Fully Connected
(Map, Pipeline, Pack, Tiling).
"""

from __future__ import annotations

from ..hardware.specs import DeviceType
from ..patterns import (
    Gather,
    Kernel,
    Map,
    Pipeline,
    PPG,
    Scatter,
    Stencil,
    Tensor,
    Tiling,
)
from ..scheduler.kernel_graph import KernelGraph
from .asr import fully_connected_kernel
from .base import Application

__all__ = ["build", "convolution_kernel", "pooling_kernel"]

_NEIGH_3X3 = tuple((dy, dx) for dy in (-1, 0, 1) for dx in (-1, 0, 1))


def convolution_kernel(
    name: str = "Convolution",
    image: int = 224,
    channels: int = 128,
    filters: int = 384,
    dtype: str = "fp16",
) -> Kernel:
    """Stacked convolution layers as one OpenCL kernel.

    im2col Gather -> tiled Stencil (the 3x3 filter sweep) -> channel
    Map (filter dot products) -> Pipeline (bias/activation) -> Scatter
    (NCHW writeback).
    """
    img = Tensor(f"{name}_img", (channels, image, image), dtype)
    flt = Tensor(f"{name}_flt", (filters, channels, 3, 3), dtype, resident=True)

    ppg = PPG(name)
    tile = ppg.add_pattern(
        Tiling((img,), tile=(channels, 16, 16), grid=(1, image // 16, image // 16))
    )
    gather = ppg.add_pattern(Gather((img,), index_space=img.elements))
    sweep = ppg.add_pattern(
        Stencil((img,), func="mac", ops_per_element=2.0, neighborhood=_NEIGH_3X3)
    )
    dots = ppg.add_pattern(
        Map((img, flt), func="mac", ops_per_element=2.0 * filters / channels)
    )
    act = ppg.add_pattern(
        Pipeline((img,), stages=("bias", "relu"), ops_per_stage=1.0)
    )
    out = Tensor(f"{name}_out", (filters, image, image), dtype)
    scatter = ppg.add_pattern(Scatter((out,), index_space=out.elements))

    ppg.connect(tile, gather)
    ppg.connect(gather, sweep)
    ppg.connect(sweep, dots)
    ppg.connect(dots, act)
    ppg.connect(act, scatter)
    return Kernel(name, ppg)


def pooling_kernel(
    name: str = "Pooling",
    image: int = 112,
    channels: int = 384,
    dtype: str = "fp16",
) -> Kernel:
    """Max-pooling: tiled Stencil + Map (Table II)."""
    img = Tensor(f"{name}_img", (channels, image, image), dtype)

    ppg = PPG(name)
    tile = ppg.add_pattern(
        Tiling((img,), tile=(1, 28, 28), grid=(channels, image // 28, image // 28))
    )
    window = ppg.add_pattern(
        Stencil(
            (img,),
            func="max",
            ops_per_element=1.0,
            neighborhood=((0, 0), (0, 1), (1, 0), (1, 1)),
        )
    )
    downsample = ppg.add_pattern(Map((img,), func="max", ops_per_element=1.0))
    ppg.connect(tile, window)
    ppg.connect(window, downsample)
    return Kernel(name, ppg)


def build() -> Application:
    """Build the IR application: Convolution -> Pooling -> FC."""
    graph = KernelGraph("IR")
    graph.add_kernel(convolution_kernel())
    graph.add_kernel(pooling_kernel())
    graph.add_kernel(
        fully_connected_kernel("FC", in_dim=9216, out_dim=4096, layers=3, tiled=True)
    )
    graph.connect("Convolution", "Pooling")
    graph.connect("Pooling", "FC")

    # Calibration against the paper's measured hardware (Section VI-B:
    # the FPGA's customized pipeline serves single images at low latency
    # — "no need ... to batch a few images" — while the GPU needs
    # batches; the FC stack streams weights, which hurts the FPGA's
    # narrow DDR).  See Kernel.platform_bias.
    graph.kernel("Convolution").platform_bias = {
        DeviceType.GPU: 12.0, DeviceType.FPGA: 1.3,
    }
    graph.kernel("Pooling").platform_bias = {
        DeviceType.GPU: 15.0, DeviceType.FPGA: 1.0,
    }
    graph.kernel("FC").platform_bias = {
        DeviceType.GPU: 8.0, DeviceType.FPGA: 3.8,
    }

    return Application(
        name="IR",
        full_name="Image Recognition",
        graph=graph,
        design_targets={
            "Convolution": {DeviceType.GPU: 192, DeviceType.FPGA: 256},
            "Pooling": {DeviceType.GPU: 128, DeviceType.FPGA: 256},
            "FC": {DeviceType.GPU: 92, DeviceType.FPGA: 128},
        },
    )
