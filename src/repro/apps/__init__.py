"""The six QoS-sensitive benchmarks of Table II.

Each module builds one :class:`~repro.apps.base.Application`: a kernel
DAG of parallel-pattern compositions matching Table II's inventory.
"""

from typing import List

from . import asr, cs, fqt, ir, mf, wt
from .base import DEFAULT_QOS_MS, Application

__all__ = [
    "Application",
    "DEFAULT_QOS_MS",
    "build_all",
    "build",
    "APP_BUILDERS",
    "asr",
    "fqt",
    "ir",
    "cs",
    "mf",
    "wt",
]

#: Benchmark short name -> builder, in Table II order.
APP_BUILDERS = {
    "ASR": asr.build,
    "FQT": fqt.build,
    "IR": ir.build,
    "CS": cs.build,
    "MF": mf.build,
    "WT": wt.build,
}


def build(name: str) -> Application:
    """Build one benchmark by its Table II short name."""
    try:
        return APP_BUILDERS[name.upper()]()
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; expected one of {sorted(APP_BUILDERS)}"
        ) from None


def build_all() -> List[Application]:
    """Build all six benchmarks in Table II order."""
    return [builder() for builder in APP_BUILDERS.values()]
