"""Automatic Speech Recognition (ASR) benchmark [39].

The motivating application of Section II-B: a Google-style cloud ASR
service whose core is an LSTM acoustic model.  Fig. 6 shows its kernel
graph — four kernels with two execution paths merging at K4:

    K1 (LSTM acoustic)  ------------------\\
                                            K4 (FC output)
    K2 (FC embed) --> K3 (LSTM language) --/

Per Table II the kernels compose Map/Reduce/Pipeline/Tiling (LSTM) and
Map/Pipeline/Pack (fully connected).  The LSTM kernels carry a strong
sequential dependency across time steps — the property that makes them
relatively better suited to a customized FPGA pipeline than to a GPU
(Fig. 1e-f), while the wide fully-connected kernels batch well on GPUs.

Workload sizes are calibrated so the most energy-efficient designs land
near the paper's per-kernel latencies (GPU 102/57/52/78 ms, FPGA
109/50/45/75 ms for K1..K4).
"""

from __future__ import annotations

from ..hardware.specs import DeviceType
from ..patterns import (
    Kernel,
    Map,
    Pack,
    Pipeline,
    PPG,
    Reduce,
    Tensor,
    Tiling,
)
from ..scheduler.kernel_graph import KernelGraph
from .base import Application

__all__ = ["build", "lstm_kernel", "fully_connected_kernel"]


def lstm_kernel(
    name: str,
    hidden: int,
    input_dim: int,
    seq_len: int,
    dtype: str = "fp16",
    platform_bias=None,
) -> Kernel:
    """LSTM kernel: Map (gate GEMV) + Reduce (cell state) + Pipeline
    (recurrence) + Tiling (weight blocking) — Table II row 1."""
    x = Tensor(f"{name}_x", (seq_len, input_dim), dtype)
    # Quantized (ESE-style) weight matrix: persistent parameter state.
    w = Tensor(f"{name}_w", (4, hidden, hidden + input_dim), "int8", resident=True)

    ppg = PPG(name)
    tile = ppg.add_pattern(
        Tiling((w,), tile=(4, 64, 64), grid=(1, hidden // 64, (hidden + input_dim) // 64))
    )
    # Gate mat-vecs: 4 gates x hidden x (hidden+input) MACs per time step,
    # expressed per element of the input sequence.
    gates = ppg.add_pattern(
        Map(
            (x, w),
            func="mac",
            ops_per_element=2.0 * 4 * hidden * (hidden + input_dim) / input_dim,
        )
    )
    # Cell-state accumulation across the gate partial sums.
    cell = ppg.add_pattern(Reduce((x,), func="add", ops_per_element=2.0))
    # The recurrence: seq_len dependent iterations of sigmoid/tanh updates.
    recur = ppg.add_pattern(
        Pipeline(
            (x,),
            stages=("sigmoid", "tanh", "mul", "add"),
            ops_per_stage=3.0,
            iterations=seq_len,
        )
    )
    ppg.connect(tile, gates)
    ppg.connect(gates, cell)
    ppg.connect(cell, recur)
    return Kernel(name, ppg, platform_bias=platform_bias)


def fully_connected_kernel(
    name: str,
    in_dim: int,
    out_dim: int,
    layers: int = 1,
    dtype: str = "fp16",
    tiled: bool = False,
    platform_bias=None,
) -> Kernel:
    """Fully-connected stack: Map + Pipeline + Pack (+ Tiling for the
    large IR variant) — Table II.

    ``layers`` dependent GEMV layers form the DNN service's dense part;
    the weight stack is a resident parameter tensor re-streamed per
    layer on GPUs (the DjiNN batching motivation) and pinned compressed
    in BRAM on FPGAs.
    """
    x = Tensor(f"{name}_x", (in_dim,), dtype)
    # One layer's weight matrix; successive layers stream their own
    # slices (stationary=False), `layers` dependent steps in total.
    w = Tensor(f"{name}_w", (out_dim, in_dim), dtype, resident=True, stationary=False)

    ppg = PPG(name)
    mm = ppg.add_pattern(
        Map((x, w), func="mac", ops_per_element=2.0 * out_dim * layers)
    )
    act = ppg.add_pattern(
        Pipeline(
            (x,),
            stages=("bias", "relu"),
            ops_per_stage=1.0,
            iterations=layers,
        )
    )
    pack = ppg.add_pattern(Pack((x,), func="pack", ops_per_element=0.5))
    ppg.connect(mm, act)
    ppg.connect(act, pack)
    if tiled:
        tile = ppg.add_pattern(
            Tiling((w,), tile=(64, 64), grid=(out_dim // 64, in_dim // 64))
        )
        ppg.connect(tile, mm)
    return Kernel(name, ppg, platform_bias=platform_bias)


def build() -> Application:
    """Build the ASR application (Fig. 6 kernel graph)."""
    graph = KernelGraph("ASR")
    # platform_bias values are fitted against the paper's measured
    # per-kernel latencies (Fig. 1e-f); see Kernel.platform_bias.
    graph.add_kernel(
        lstm_kernel(
            "LSTM_acoustic", hidden=1536, input_dim=1024, seq_len=160,
            platform_bias={DeviceType.GPU: 1.10, DeviceType.FPGA: 0.75},
        )
    )
    graph.add_kernel(
        fully_connected_kernel(
            "FC_embed", in_dim=8192, out_dim=8192, layers=3,
            platform_bias={DeviceType.FPGA: 1.0},
        )
    )
    graph.add_kernel(
        lstm_kernel(
            "LSTM_language", hidden=1280, input_dim=1024, seq_len=120,
            platform_bias={DeviceType.GPU: 1.05, DeviceType.FPGA: 0.90},
        )
    )
    graph.add_kernel(
        fully_connected_kernel(
            "FC_output", in_dim=8192, out_dim=8192, layers=4,
            platform_bias={DeviceType.FPGA: 1.1},
        )
    )

    # Fig. 6: K1 => K4 and K2 => K3 => K4.
    graph.connect("LSTM_acoustic", "FC_output")
    graph.connect("FC_embed", "LSTM_language")
    graph.connect("LSTM_language", "FC_output")

    lstm_targets = {DeviceType.GPU: 116, DeviceType.FPGA: 256}
    fc_targets = {DeviceType.GPU: 148, DeviceType.FPGA: 192}
    return Application(
        name="ASR",
        full_name="Automatic Speech Recognition",
        graph=graph,
        design_targets={
            "LSTM_acoustic": lstm_targets,
            "LSTM_language": lstm_targets,
            "FC_embed": fc_targets,
            "FC_output": fc_targets,
        },
    )
