"""Online Matrix Factorization (MF) benchmark [17].

CuMF_SGD-style online matrix factorization for recommendation: a data
ingestion kernel reads and packs the sparse rating tuples, then an SGD
update kernel gathers the touched latent-factor rows, applies the
gradient step and scatters them back.  The access pattern is sparse and
irregular — dominated by Gather/Scatter over the factor matrices.

Table II lists "Read Data" (Gather, Pack, Tiling; a tiny 16/16 design
space) and the update kernel (Gather, Map, Pipeline, Scatter, Tiling —
printed as "RS Decoder" in the table, an obvious copy-paste slip for
the SGD update).
"""

from __future__ import annotations

from ..hardware.specs import DeviceType
from ..patterns import (
    Gather,
    Kernel,
    Map,
    Pack,
    Pipeline,
    PPG,
    Scatter,
    Tensor,
    Tiling,
)
from ..scheduler.kernel_graph import KernelGraph
from .base import Application

__all__ = ["build", "read_data_kernel", "sgd_update_kernel"]


def read_data_kernel(
    name: str = "Read_Data",
    batch_ratings: int = 1 << 20,
) -> Kernel:
    """Ingest a batch of (user, item, rating) tuples: Gather + Pack +
    Tiling (Table II)."""
    raw = Tensor(f"{name}_raw", (batch_ratings, 3), "int32")

    ppg = PPG(name)
    tile = ppg.add_pattern(
        Tiling((raw,), tile=(4096, 3), grid=(batch_ratings // 4096, 1))
    )
    gather = ppg.add_pattern(Gather((raw,), index_space=batch_ratings))
    pack = ppg.add_pattern(Pack((raw,), ops_per_element=0.5))
    ppg.connect(tile, gather)
    ppg.connect(gather, pack)
    return Kernel(name, ppg)


def sgd_update_kernel(
    name: str = "SGD_Update",
    batch_ratings: int = 1 << 20,
    factors: int = 96,
) -> Kernel:
    """One SGD sweep over the rating batch.

    Per rating: gather the user and item factor rows (2 x ``factors``
    floats, data-dependent addresses), compute the prediction error and
    the gradient step (~6 FLOPs per factor), scatter the rows back.
    """
    ratings = Tensor(f"{name}_r", (batch_ratings,), "fp32")
    rows = Tensor(f"{name}_rows", (batch_ratings, 2 * factors), "fp32")

    ppg = PPG(name)
    tile = ppg.add_pattern(
        Tiling((ratings,), tile=(8192,), grid=(batch_ratings // 8192,))
    )
    gather = ppg.add_pattern(Gather((rows,), index_space=rows.elements))
    grad = ppg.add_pattern(
        Map((rows,), func="mac", ops_per_element=6.0)
    )
    stream = ppg.add_pattern(
        Pipeline((ratings,), stages=("dot", "err", "axpy"), ops_per_stage=2.0)
    )
    scatter = ppg.add_pattern(Scatter((rows,), index_space=rows.elements))

    ppg.connect(tile, gather)
    ppg.connect(gather, grad)
    ppg.connect(grad, stream)
    ppg.connect(stream, scatter)
    return Kernel(name, ppg)


def build() -> Application:
    """Build the MF application: Read_Data -> SGD_Update."""
    graph = KernelGraph("MF")
    graph.add_kernel(read_data_kernel())
    graph.add_kernel(sgd_update_kernel())
    graph.connect("Read_Data", "SGD_Update")

    # Calibration: CuMF-style SGD thrives on GPU memory bandwidth; the
    # FPGA's narrow DDR starves its random gather/scatter stream.
    graph.kernel("Read_Data").platform_bias = {DeviceType.FPGA: 0.9}
    graph.kernel("SGD_Update").platform_bias = {
        DeviceType.GPU: 1.9, DeviceType.FPGA: 0.34,
    }

    return Application(
        name="MF",
        full_name="Online Matrix Factorization",
        graph=graph,
        design_targets={
            "Read_Data": {DeviceType.GPU: 16, DeviceType.FPGA: 16},
            "SGD_Update": {DeviceType.GPU: 108, DeviceType.FPGA: 128},
        },
    )
