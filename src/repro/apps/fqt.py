"""Finance Quantitative Trading (FQT) benchmark.

Monte-Carlo option pricing: a pseudo-random number generator feeds a
Black-Scholes path evaluator whose results are reduced to the price
estimate.  Section VI-B singles this application out: the PRNG kernel
"requires large batch size to enable high throughput" on GPUs but is
"naturally amenable to a customized pipeline on FPGAs with both
relatively high throughput and low latency" — so Heter-Poly sends PRNG
to FPGAs and keeps Black-Scholes/Reduce on GPUs.

We model that asymmetry physically: the PRNG recurrence (each draw
depends on the previous state of its stream) serializes GPU execution
across steps, while Black-Scholes is embarrassingly parallel fp32 math
that the GPU's SIMD lanes love.
"""

from __future__ import annotations

from ..hardware.specs import DeviceType
from ..patterns import Kernel, Map, Pack, Pipeline, PPG, Reduce, Tensor
from ..scheduler.kernel_graph import KernelGraph
from .base import Application

__all__ = ["build", "prng_kernel", "black_scholes_kernel", "reduce_kernel"]


def prng_kernel(
    name: str = "PRNG",
    streams: int = 8192,
    draws_per_stream: int = 4096,
) -> Kernel:
    """Mersenne-twister-style generator: Map over streams + a long
    sequential Pipeline inside each stream (Table II: Map, Pipeline)."""
    state = Tensor(f"{name}_state", (streams, 32), "int32")

    ppg = PPG(name)
    seed = ppg.add_pattern(Map((state,), func="prng", ops_per_element=4.0))
    twist = ppg.add_pattern(
        Pipeline(
            (state,),
            stages=("twist", "temper", "write"),
            ops_per_stage=6.0 * draws_per_stream / 32.0,
            iterations=draws_per_stream // 16,
        )
    )
    ppg.connect(seed, twist)
    return Kernel(name, ppg)


def black_scholes_kernel(
    name: str = "BlackScholes",
    paths: int = 1 << 25,
) -> Kernel:
    """Black-Scholes evaluation over Monte-Carlo paths: wide fp32 Map
    plus a short math Pipeline (exp/log/cdf)."""
    draws = Tensor(f"{name}_draws", (paths,), "fp32")

    ppg = PPG(name)
    price = ppg.add_pattern(Map((draws,), func="cdf", ops_per_element=48.0))
    post = ppg.add_pattern(
        Pipeline((draws,), stages=("exp", "discount"), ops_per_stage=4.0)
    )
    ppg.connect(price, post)
    return Kernel(name, ppg)


def reduce_kernel(name: str = "Reduce", paths: int = 1 << 25) -> Kernel:
    """Payoff aggregation: tree Reduce + Pack of the per-option results."""
    payoffs = Tensor(f"{name}_payoffs", (paths,), "fp32")

    ppg = PPG(name)
    acc = ppg.add_pattern(Reduce((payoffs,), func="add", ops_per_element=1.0))
    pack = ppg.add_pattern(
        Pack((Tensor(f"{name}_res", (1024,), "fp32"),), ops_per_element=0.5)
    )
    ppg.connect(acc, pack)
    return Kernel(name, ppg)


def build() -> Application:
    """Build the FQT application: PRNG -> BlackScholes -> Reduce."""
    graph = KernelGraph("FQT")
    graph.add_kernel(prng_kernel())
    graph.add_kernel(black_scholes_kernel())
    graph.add_kernel(reduce_kernel())
    graph.connect("PRNG", "BlackScholes")
    graph.connect("BlackScholes", "Reduce")

    # Calibration against the paper's measured hardware (Section VI-B:
    # PRNG is pipeline-friendly on FPGAs and batch-hungry on GPUs;
    # Black-Scholes/Reduce are GPU-amenable).  See Kernel.platform_bias.
    graph.kernel("PRNG").platform_bias = {
        DeviceType.GPU: 1.15, DeviceType.FPGA: 2.0,
    }
    graph.kernel("BlackScholes").platform_bias = {
        DeviceType.GPU: 2.0, DeviceType.FPGA: 0.5,
    }
    graph.kernel("Reduce").platform_bias = {
        DeviceType.GPU: 1.5, DeviceType.FPGA: 0.7,
    }

    return Application(
        name="FQT",
        full_name="Finance Quantitative Trading",
        graph=graph,
        design_targets={
            "PRNG": {DeviceType.GPU: 64, DeviceType.FPGA: 128},
            "BlackScholes": {DeviceType.GPU: 64, DeviceType.FPGA: 128},
            "Reduce": {DeviceType.GPU: 16, DeviceType.FPGA: 64},
        },
    )
