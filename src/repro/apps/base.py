"""Application base: a named kernel DAG plus Table-II metadata.

Each of the six QoS-sensitive benchmarks (Table II) is an
:class:`Application`: a kernel graph whose kernels are parallel-pattern
compositions, the per-kernel design-space size targets from Table II,
and the 200 ms tail-latency bound used throughout the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..hardware.specs import DeviceType
from ..optim.design_point import KernelDesignSpace
from ..optim.dse import explore_application
from ..patterns.ppg import Kernel
from ..scheduler.kernel_graph import KernelGraph

__all__ = ["Application", "DEFAULT_QOS_MS"]

#: The paper's target tail-latency constraint (Section VI-A).
DEFAULT_QOS_MS = 200.0


@dataclass
class Application:
    """One QoS-sensitive benchmark.

    ``design_targets`` maps kernel name to Table II's ``# Designs``
    column: ``{kernel: {DeviceType.GPU: n, DeviceType.FPGA: m}}``.
    """

    name: str
    full_name: str
    graph: KernelGraph
    design_targets: Dict[str, Dict[DeviceType, int]]
    qos_ms: float = DEFAULT_QOS_MS

    def __post_init__(self) -> None:
        self.graph.validate()
        missing = set(self.graph.kernel_names) - set(self.design_targets)
        if missing:
            raise ValueError(
                f"application {self.name!r} lacks design targets for {missing}"
            )
        if self.qos_ms <= 0:
            raise ValueError("qos bound must be positive")

    @property
    def kernels(self) -> List[Kernel]:
        return self.graph.kernels

    @property
    def kernel_names(self) -> List[str]:
        return self.graph.kernel_names

    def dse_targets(self) -> Dict[Tuple[str, DeviceType], int]:
        """Targets in the shape :func:`explore_application` expects."""
        out: Dict[Tuple[str, DeviceType], int] = {}
        for kernel, per_dev in self.design_targets.items():
            for dev_type, count in per_dev.items():
                out[(kernel, dev_type)] = count
        return out

    def explore(
        self,
        specs: Sequence,
        validate: bool = False,
        n_jobs: int = 1,
        strategy: str = "exhaustive",
        search=None,
        metrics=None,
        tracer=None,
    ) -> Dict[Tuple[str, str], KernelDesignSpace]:
        """Run the offline DSE for this application on the given platforms.

        ``validate=True`` lints every kernel and prunes lint-rejected
        design points before model evaluation; ``n_jobs`` parallelizes
        across (kernel, platform) pairs with a bit-identical product.
        ``strategy="guided"`` runs the budgeted successive-halving +
        genetic explorer under ``search``; ``metrics``/``tracer``
        forward to :func:`repro.optim.dse.explore_application`.
        """
        return explore_application(
            self.kernels, specs, self.dse_targets(), validate=validate,
            n_jobs=n_jobs, strategy=strategy, search=search,
            metrics=metrics, tracer=tracer,
        )

    def table2_row(self) -> List[Tuple[str, str, int, int]]:
        """(kernel, patterns, #GPU designs, #FPGA designs) per kernel —
        the shape of one Table II block."""
        rows = []
        for kernel in self.kernels:
            patterns = ", ".join(k.value.capitalize() for k in kernel.pattern_kinds)
            targets = self.design_targets[kernel.name]
            rows.append(
                (
                    kernel.name,
                    patterns,
                    targets.get(DeviceType.GPU, 0),
                    targets.get(DeviceType.FPGA, 0),
                )
            )
        return rows

    def __repr__(self) -> str:
        return (
            f"<Application {self.name} ({self.full_name}): "
            f"{len(self.graph)} kernels, QoS {self.qos_ms:.0f} ms>"
        )
