"""Cloud Storage (CS) benchmark [54].

OpenCL-based Reed-Solomon erasure coding, as used by distributed
storage backends: an RS encoder on the write path and an RS decoder on
the degraded-read path.  Both kernels are GF(2^8) byte arithmetic —
narrow integer datapaths with table-driven Galois-field multiplies that
pack densely into FPGA fabric but map poorly onto fp32-oriented GPU
lanes, plus strided Gather/Scatter over the stripe layout.

Table II: both kernels compose Gather, Map, Pipeline, Scatter, Tiling.
"""

from __future__ import annotations

from ..hardware.specs import DeviceType
from ..patterns import (
    Gather,
    Kernel,
    Map,
    Pipeline,
    PPG,
    Scatter,
    Tensor,
    Tiling,
)
from ..scheduler.kernel_graph import KernelGraph
from .base import Application

__all__ = ["build", "rs_kernel"]


def rs_kernel(
    name: str,
    stripe_mb: int = 16,
    data_shards: int = 10,
    parity_shards: int = 4,
    decode: bool = False,
) -> Kernel:
    """Reed-Solomon encode/decode over one stripe.

    Encoding multiplies each data byte by the generator-matrix column
    for every parity shard; decoding additionally inverts the surviving
    rows (more GF work, modelled as a higher per-byte op count).
    """
    stripe_bytes = stripe_mb * 1024 * 1024
    shard = Tensor(f"{name}_stripe", (data_shards, stripe_bytes // data_shards), "uint8")

    # GF(2^8) multiply-accumulate per output byte per parity shard; a
    # decode pays roughly 1.6x (syndrome + matrix inversion application).
    gf_ops = 2.0 * parity_shards * (1.6 if decode else 1.0)

    gf_tables = Tensor(f"{name}_gf_tables", (3, 256), "uint8", resident=True)

    ppg = PPG(name)
    tile = ppg.add_pattern(
        Tiling(
            (shard,),
            tile=(1, 64 * 1024),
            grid=(data_shards, stripe_bytes // data_shards // (64 * 1024)),
        )
    )
    gather = ppg.add_pattern(Gather((shard,), index_space=shard.elements))
    gf_mul = ppg.add_pattern(
        Map((shard, gf_tables), func="gf_mul", ops_per_element=gf_ops)
    )
    stream = ppg.add_pattern(
        Pipeline((shard,), stages=("lookup", "xor_acc"), ops_per_stage=1.0)
    )
    out = Tensor(
        f"{name}_parity", (parity_shards, stripe_bytes // data_shards), "uint8"
    )
    scatter = ppg.add_pattern(Scatter((out,), index_space=out.elements))

    ppg.connect(tile, gather)
    ppg.connect(gather, gf_mul)
    ppg.connect(gf_mul, stream)
    ppg.connect(stream, scatter)
    return Kernel(name, ppg)


def build() -> Application:
    """Build the CS application: RS Encoder -> RS Decoder (verify path)."""
    graph = KernelGraph("CS")
    graph.add_kernel(rs_kernel("RS_Encoder", decode=False))
    graph.add_kernel(rs_kernel("RS_Decoder", decode=True))
    graph.connect("RS_Encoder", "RS_Decoder")

    # Calibration against measured hardware: GF(2^8) byte arithmetic
    # (table lookups + XOR trees) maps poorly onto fp32 GPU lanes but
    # packs densely into FPGA LUTs (Section VI motivation for CS).
    for kernel_name in ("RS_Encoder", "RS_Decoder"):
        graph.kernel(kernel_name).platform_bias = {
            DeviceType.GPU: 30.0, DeviceType.FPGA: 6.3,
        }

    targets = {DeviceType.GPU: 108, DeviceType.FPGA: 128}
    return Application(
        name="CS",
        full_name="Cloud Storage (Reed-Solomon erasure coding)",
        graph=graph,
        design_targets={"RS_Encoder": targets, "RS_Decoder": targets},
    )
