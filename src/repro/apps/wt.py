"""WebP Transcoding (WT) benchmark [55].

Server-side transcoding of uploaded images to WebP: VP8-style
intra-prediction, symbol probability counting, and boolean arithmetic
coding.  Arithmetic coding is the archetypal sequential kernel — every
coded bit renormalizes the range for the next — which a GPU can only
batch across independent partitions while an FPGA runs it as a
tight feedback pipeline.

Table II: Intra-prediction (Gather, Map, Pipeline, Tiling),
Probability Counting (Map, Pipeline, Reduce, Pack), Arithmetic Coding
(Scatter, Map, Pipeline, Stencil).
"""

from __future__ import annotations

from ..hardware.specs import DeviceType
from ..patterns import (
    Gather,
    Kernel,
    Map,
    Pack,
    Pipeline,
    PPG,
    Reduce,
    Scatter,
    Stencil,
    Tensor,
    Tiling,
)
from ..scheduler.kernel_graph import KernelGraph
from .base import Application

__all__ = [
    "build",
    "intra_prediction_kernel",
    "probability_counting_kernel",
    "arithmetic_coding_kernel",
]


def intra_prediction_kernel(
    name: str = "Intra_Prediction",
    image: int = 1024,
) -> Kernel:
    """4x4-block intra prediction: each block predicts from already-
    reconstructed neighbours (Gather), evaluates the prediction modes
    (Map), and streams down the block rows in dependency order
    (Pipeline over block rows)."""
    img = Tensor(f"{name}_img", (image, image), "uint8")
    block_rows = image // 4

    ppg = PPG(name)
    tile = ppg.add_pattern(
        Tiling((img,), tile=(4, 4), grid=(block_rows, block_rows))
    )
    neighbours = ppg.add_pattern(Gather((img,), index_space=img.elements // 2))
    modes = ppg.add_pattern(Map((img,), func="sad", ops_per_element=10.0))
    rows = ppg.add_pattern(
        Pipeline(
            (img,),
            stages=("predict", "residual", "reconstruct"),
            ops_per_stage=2.0,
            iterations=block_rows,
        )
    )
    ppg.connect(tile, neighbours)
    ppg.connect(neighbours, modes)
    ppg.connect(modes, rows)
    return Kernel(name, ppg)


def probability_counting_kernel(
    name: str = "Probability_Counting",
    image: int = 1024,
) -> Kernel:
    """Symbol statistics for the entropy coder: Map (classify) +
    Reduce (histogram) + Pipeline + Pack (Table II)."""
    residuals = Tensor(f"{name}_res", (image, image), "int16")

    ppg = PPG(name)
    classify = ppg.add_pattern(Map((residuals,), func="clip", ops_per_element=3.0))
    histogram = ppg.add_pattern(
        Reduce((residuals,), func="add", ops_per_element=2.0)
    )
    norm = ppg.add_pattern(
        Pipeline((Tensor(f"{name}_h", (4096,), "int32"),),
                 stages=("normalize", "cdf"), ops_per_stage=4.0)
    )
    pack = ppg.add_pattern(Pack((Tensor(f"{name}_t", (4096,), "int32"),)))
    ppg.connect(classify, histogram)
    ppg.connect(histogram, norm)
    ppg.connect(norm, pack)
    return Kernel(name, ppg)


def arithmetic_coding_kernel(
    name: str = "Arithmetic_Coding",
    image: int = 1024,
    partitions: int = 8,
) -> Kernel:
    """Boolean arithmetic coder over ``partitions`` independent slices.

    Inside a partition, coding is strictly sequential (range update per
    symbol); across partitions it is parallel — hence a Pipeline with
    symbols/partitions iterations, a context-modelling Stencil, and a
    Scatter for the bitstream writeback."""
    symbols = image * image // 4
    stream = Tensor(f"{name}_sym", (symbols,), "uint8")

    ppg = PPG(name)
    ctx = ppg.add_pattern(
        Stencil((stream,), func="ctx", ops_per_element=2.0,
                neighborhood=((-1,), (0,)))
    )
    model = ppg.add_pattern(Map((stream,), func="encode", ops_per_element=6.0))
    coder = ppg.add_pattern(
        Pipeline(
            (stream,),
            stages=("bound", "update", "renorm"),
            ops_per_stage=3.0,
            iterations=max(symbols // (partitions * 256), 1),
        )
    )
    out = ppg.add_pattern(Scatter((stream,), index_space=symbols // 4))
    ppg.connect(ctx, model)
    ppg.connect(model, coder)
    ppg.connect(coder, out)
    return Kernel(name, ppg)


def build() -> Application:
    """Build the WT application: Intra -> ProbCount -> ArithCoding."""
    graph = KernelGraph("WT")
    graph.add_kernel(intra_prediction_kernel())
    graph.add_kernel(probability_counting_kernel())
    graph.add_kernel(arithmetic_coding_kernel())
    graph.connect("Intra_Prediction", "Probability_Counting")
    graph.connect("Probability_Counting", "Arithmetic_Coding")

    # Calibration: block-sequential prediction and bit-serial arithmetic
    # coding favour the FPGA's feedback pipelines; a GPU serializes on
    # the intra-block dependences (Section VII's LINQits/Catapult line).
    graph.kernel("Intra_Prediction").platform_bias = {
        DeviceType.FPGA: 88.0,
    }
    graph.kernel("Probability_Counting").platform_bias = {
        DeviceType.GPU: 10.0, DeviceType.FPGA: 26.0,
    }
    graph.kernel("Arithmetic_Coding").platform_bias = {
        DeviceType.GPU: 2.0, DeviceType.FPGA: 400.0,
    }

    return Application(
        name="WT",
        full_name="WebP Transcoding",
        graph=graph,
        design_targets={
            "Intra_Prediction": {DeviceType.GPU: 128, DeviceType.FPGA: 256},
            "Probability_Counting": {DeviceType.GPU: 64, DeviceType.FPGA: 128},
            "Arithmetic_Coding": {DeviceType.GPU: 92, DeviceType.FPGA: 128},
        },
    )
