"""Metrics registry: counters, gauges and log-bucket histograms.

A :class:`MetricsRegistry` is a deterministic, dependency-free take on
the Prometheus client model: metrics are identified by a name plus a
sorted label set, snapshots serialize with stable key order, and
:meth:`MetricsRegistry.render_prometheus` emits the text exposition
format so existing dashboards can scrape the artifacts.

Everything a registry holds is a pure function of the events fed into
it — no timestamps are sampled here — so the metrics artifact of a
seeded simulation is byte-identical across runs, the same contract the
tracer keeps (wall-clock *measurements* such as bench-phase timings
belong in the bench document, not in an obs artifact).
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_buckets",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: A metric's identity: (name, ((label, value), ...)) with labels sorted.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def log_buckets(
    lo: float, hi: float, factor: float = 2.0
) -> Tuple[float, ...]:
    """Geometric bucket upper bounds from ``lo`` up to at least ``hi``.

    Log-spaced buckets give constant *relative* resolution — the right
    shape for latencies spanning sub-millisecond FPGA kernels to
    multi-second overload tails.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if factor <= 1.0:
        raise ValueError("factor must be > 1")
    bounds: List[float] = []
    b = lo
    while b < hi:
        bounds.append(b)
        b *= factor
    bounds.append(b)
    return tuple(bounds)


#: Default request-latency buckets: 0.25 ms .. ~16 s, x2 per bucket.
DEFAULT_LATENCY_BUCKETS = log_buckets(0.25, 16_000.0)


class Counter:
    """Monotonically increasing count."""

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go anywhere (occupancy, health, levels)."""

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Cumulative log-bucket histogram (Prometheus ``le`` semantics).

    ``counts[i]`` is the number of observations ``<= bounds[i]``; the
    implicit final bucket is ``+Inf``.  ``sum``/``count`` allow mean
    reconstruction; quantiles come from :meth:`quantile` (upper-bound
    estimate: the bucket boundary containing the rank).
    """

    def __init__(self, bounds: Sequence[float]) -> None:
        if not bounds or any(b <= 0 for b in bounds):
            raise ValueError("histogram needs positive bucket bounds")
        ordered = tuple(sorted(bounds))
        if len(set(ordered)) != len(ordered):
            raise ValueError("duplicate bucket bounds")
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)  # +Inf bucket last
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not math.isfinite(value):
            raise ValueError("histogram observations must be finite")
        # First bucket whose bound admits the value; linear scan is fine
        # for the ~20 log buckets this module uses.
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the q-quantile (q in (0, 1])."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if self.count == 0:
            return float("nan")
        rank = math.ceil(q * self.count)
        seen = 0
        for i, c in enumerate(self.counts[:-1]):
            seen += c
            if seen >= rank:
                return self.bounds[i]
        return float("inf")

    @property
    def value(self) -> Dict[str, Any]:
        cumulative = []
        running = 0
        for c in self.counts[:-1]:
            running += c
            cumulative.append(running)
        return {
            "buckets_le": list(self.bounds),
            "cumulative": cumulative,
            "inf": self.count,
            "sum": self.sum,
            "count": self.count,
        }


def _label_key(labels: Mapping[str, str]) -> Tuple[Tuple[str, str], ...]:
    for k in labels:
        if not _LABEL_RE.match(k):
            raise ValueError(f"invalid label name {k!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Named, labeled metrics with deterministic serialization.

    ``counter``/``gauge``/``histogram`` create-or-return the child for
    one (name, labels) identity; re-requesting an existing name with a
    different metric type is an error (it would corrupt exposition).
    Thread-safe: the DSE's model cache increments counters from worker
    threads.
    """

    def __init__(self) -> None:
        self._metrics: Dict[MetricKey, Union[Counter, Gauge, Histogram]] = {}
        self._types: Dict[str, str] = {}
        self._lock = threading.Lock()

    # -- child accessors ------------------------------------------------------

    def _child(self, kind: str, name: str, labels: Mapping[str, str], factory):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        key = (name, _label_key(labels))
        with self._lock:
            seen = self._types.get(name)
            if seen is None:
                self._types[name] = kind
            elif seen != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {seen}"
                )
            child = self._metrics.get(key)
            if child is None:
                child = factory()
                self._metrics[key] = child
            return child

    def counter(self, name: str, **labels: str) -> Counter:
        return self._child("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._child("gauge", name, labels, Gauge)

    def histogram(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        use = tuple(bounds) if bounds is not None else DEFAULT_LATENCY_BUCKETS
        return self._child("histogram", name, labels, lambda: Histogram(use))

    def value(self, name: str, **labels: str) -> Any:
        """Current value of one metric; KeyError when absent."""
        key = (name, _label_key(labels))
        with self._lock:
            return self._metrics[key].value

    # -- serialization --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic nested dict: ``{name: {label_str: value}}``.

        The unlabeled child serializes under the empty-string label key,
        so every metric family has a uniform shape.
        """
        with self._lock:
            items = sorted(self._metrics.items())
            types = dict(self._types)
        out: Dict[str, Any] = {}
        for (name, labels), metric in items:
            family = out.setdefault(
                name, {"type": types[name], "series": {}}
            )
            label_str = ",".join(f'{k}="{v}"' for k, v in labels)
            family["series"][label_str] = metric.value
        return out

    def to_json(self) -> str:
        """Stable JSON rendering (sorted keys, trailing newline)."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (v0.0.4)."""
        with self._lock:
            items = sorted(self._metrics.items())
            types = dict(self._types)
        lines: List[str] = []
        seen_names: set = set()
        for (name, labels), metric in items:
            if name not in seen_names:
                seen_names.add(name)
                lines.append(f"# TYPE {name} {types[name]}")
            label_str = ",".join(
                f'{k}="{_escape_label_value(v)}"' for k, v in labels
            )
            if isinstance(metric, Histogram):
                running = 0
                for bound, c in zip(metric.bounds, metric.counts[:-1]):
                    running += c
                    le = _fmt_label_value(bound)
                    sep = "," if label_str else ""
                    lines.append(
                        f'{name}_bucket{{{label_str}{sep}le="{le}"}} {running}'
                    )
                sep = "," if label_str else ""
                lines.append(
                    f'{name}_bucket{{{label_str}{sep}le="+Inf"}} {metric.count}'
                )
                suffix = f"{{{label_str}}}" if label_str else ""
                lines.append(f"{name}_sum{suffix} {_fmt(metric.sum)}")
                lines.append(f"{name}_count{suffix} {metric.count}")
            else:
                suffix = f"{{{label_str}}}" if label_str else ""
                lines.append(f"{name}{suffix} {_fmt(metric.value)}")
        return "\n".join(lines) + "\n"

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"<MetricsRegistry: {len(self._metrics)} series>"


def _fmt(value: float) -> str:
    """Prometheus sample formatting: integers without the trailing .0."""
    if value == int(value) and math.isfinite(value):
        return str(int(value))
    return repr(value)


def _fmt_label_value(bound: float) -> str:
    return _fmt(bound)


def _escape_label_value(value: str) -> str:
    """Exposition-format label escaping: backslash, quote, newline.

    Order matters — backslashes first, or the escapes just added would
    themselves be re-escaped.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )
