"""Observability for the heterogeneous runtime (``repro.obs``).

The paper's Fig. 2 feedback loop assumes an operator can *see* what the
runtime decided — per-kernel placements, device occupancy, how much QoS
slack the energy pass spent — but end-of-run aggregates cannot explain
a scheduler or failover decision after the fact.  This package adds a
first-class tracing/metrics layer:

* :mod:`repro.obs.tracer`  — a sim-clock span tracer with a closed,
  typed event taxonomy over the full request lifecycle (admission,
  Step-1/Step-2 scheduling, dispatch/execute, faults, failover).  The
  default :data:`NULL_TRACER` is inert and every hook guards on
  ``tracer.enabled``, so untraced runs stay bit-identical to the
  pre-observability code.
* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  log-bucket histograms with deterministic JSON snapshots and
  Prometheus text exposition.
* :mod:`repro.obs.export`  — Chrome trace-event / Perfetto JSON (per-
  device timeline tracks) and a JSONL structured-event stream.
* :mod:`repro.obs.summary` — simulation-to-registry wiring and the
  placement/occupancy digest behind ``repro obs --summary``.
* :mod:`repro.obs.sampling` — deterministic head/tail trace sampling
  so fleet replays export bounded artifacts (the per-request Bernoulli
  never touches simulation RNG; QoS violators, faulted requests and
  the top-k latency spans are always retained).
* :mod:`repro.obs.timeseries` — fixed-window rollups (latency
  percentiles, QoS attainment, power, queue depth, plan-cache hit
  rate) fed from simulation/cluster outcomes.
* :mod:`repro.obs.slo` — declarative :class:`~repro.obs.slo.SLO`
  objects with multi-window burn-rate alerting over the rollups,
  surfaced by ``repro obs --report``.

Quickstart::

    from repro import apps, runtime
    from repro.obs import MetricsRegistry, SpanTracer, write_perfetto_json

    app = apps.build("ASR")
    system = runtime.setting("I", "Heter-Poly")
    spaces = app.explore(system.platforms)
    tracer, registry = SpanTracer(), MetricsRegistry()
    runtime.run_simulation(
        system, app, spaces, runtime.poisson_arrivals(20, 4_000),
        tracer=tracer, metrics=registry,
    )
    write_perfetto_json(tracer.events, "trace.perfetto.json")

Determinism contract: timestamps are simulation milliseconds (never
wall clock), event order is the emission order of a single-threaded
replay, and all serializers sort keys — so one seed produces
byte-identical artifacts on every run, machine and worker count.
"""

from .export import (
    chrome_trace,
    write_events_jsonl,
    write_metrics_json,
    write_metrics_prom,
    write_perfetto_json,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)
from .sampling import (
    SampledTrace,
    SamplingPolicy,
    head_keep,
    sample_events,
)
from .slo import (
    SLO,
    AlertEvent,
    default_slos,
    evaluate_slos,
    render_slo_json,
    slo_report,
)
from .summary import (
    emit_execution_spans,
    placement_digest,
    record_simulation_metrics,
)
from .timeseries import (
    SERIES,
    TimeSeriesStore,
    WindowStats,
    feed_cluster_result,
    feed_simulation_result,
)
from .tracer import (
    EVENT_SCHEMA,
    NULL_TRACER,
    NullTracer,
    SpanTracer,
    TraceEvent,
)

__all__ = [
    "EVENT_SCHEMA",
    "TraceEvent",
    "NullTracer",
    "SpanTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_buckets",
    "DEFAULT_LATENCY_BUCKETS",
    "chrome_trace",
    "write_perfetto_json",
    "write_events_jsonl",
    "write_metrics_json",
    "write_metrics_prom",
    "emit_execution_spans",
    "record_simulation_metrics",
    "placement_digest",
    "SamplingPolicy",
    "SampledTrace",
    "head_keep",
    "sample_events",
    "SERIES",
    "WindowStats",
    "TimeSeriesStore",
    "feed_simulation_result",
    "feed_cluster_result",
    "SLO",
    "AlertEvent",
    "default_slos",
    "evaluate_slos",
    "slo_report",
    "render_slo_json",
]
