"""Fixed-window time-series rollups over simulation outcomes.

End-of-run aggregates (one p99, one mean power) hide exactly the
dynamics an interactive serving system is judged on: the overload
minute inside an otherwise healthy hour, the QoS dip while the
autoscaler warms capacity.  This module turns recorded outcomes into
*windowed* rollups — the substrate the SLO layer (:mod:`repro.obs.slo`)
evaluates burn rates over and ``repro obs --report`` prints.

A :class:`TimeSeriesStore` holds named series of ``(t_ms, value)``
observations on the simulation clock and rolls each into fixed windows
of ``window_ms``.  Per window it reports count/mean/min/max and the
p50/p95/p99 percentiles (numpy ``percentile``, linear interpolation —
deterministic for a given observation set).  Serialization is sorted
and stable, so the rollup artifact of a seeded run is byte-identical
across repeats — the same contract the tracer and metrics registry
keep.

Two feeders map the runtime's outcome objects onto the canonical
series names (:data:`SERIES`):

* :func:`feed_simulation_result` — single-node
  :class:`~repro.runtime.simulation.SimulationResult`: per-completion
  latency and QoS attainment, per-bin node power, an in-flight
  queue-depth census at window boundaries, and the plan-cache hit rate
  when a cache is bound.
* :func:`feed_cluster_result` — fleet
  :class:`~repro.cluster.simulation.ClusterResult`: the same request
  series plus per-interval fleet power, serving fleet size and
  autoscaler utilization.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "SERIES",
    "WindowStats",
    "TimeSeriesStore",
    "feed_simulation_result",
    "feed_cluster_result",
]

#: Canonical series names the feeders emit.  A store accepts any name;
#: these are the ones the SLO layer and the CLI report know about.
SERIES: Tuple[str, ...] = (
    "latency_ms",
    "qos_attained",
    "power_w",
    "queue_depth",
    "plan_cache_hit_rate",
    "fleet_size",
    "utilization",
)


@dataclass(frozen=True)
class WindowStats:
    """Aggregates of one series over one fixed window."""

    series: str
    start_ms: float
    end_ms: float
    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "series": self.series,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "count": self.count,
            "mean": round(self.mean, 6),
            "p50": round(self.p50, 6),
            "p95": round(self.p95, 6),
            "p99": round(self.p99, 6),
            "min": round(self.minimum, 6),
            "max": round(self.maximum, 6),
        }


class TimeSeriesStore:
    """Named series of sim-clock observations with fixed-window rollups.

    Observations are bucketed by ``floor(t_ms / window_ms)`` at
    ``observe`` time; rollups compute lazily per series and are
    invalidated by further observations.  Negative timestamps are
    rejected (the simulation clock starts at zero).
    """

    def __init__(self, window_ms: float = 1000.0) -> None:
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        self.window_ms = float(window_ms)
        self._series: Dict[str, Dict[int, List[float]]] = {}
        self._rollups: Dict[str, List[WindowStats]] = {}

    def observe(self, series: str, t_ms: float, value: float) -> None:
        if t_ms < 0:
            raise ValueError("observations precede the simulation clock")
        if not math.isfinite(value):
            raise ValueError("observations must be finite")
        windows = self._series.setdefault(series, {})
        windows.setdefault(int(t_ms // self.window_ms), []).append(
            float(value)
        )
        self._rollups.pop(series, None)

    def series_names(self) -> List[str]:
        return sorted(self._series)

    def rollup(self, series: str) -> List[WindowStats]:
        """Per-window stats for one series, sorted by window start.

        Empty windows between observations are omitted — a gap in the
        rollup *is* the signal (no completions in that window).
        """
        cached = self._rollups.get(series)
        if cached is not None:
            return cached
        windows = self._series.get(series, {})
        out: List[WindowStats] = []
        for idx in sorted(windows):
            values = np.asarray(windows[idx], dtype=float)
            p50, p95, p99 = np.percentile(values, (50.0, 95.0, 99.0))
            out.append(
                WindowStats(
                    series=series,
                    start_ms=idx * self.window_ms,
                    end_ms=(idx + 1) * self.window_ms,
                    count=int(values.size),
                    mean=float(values.mean()),
                    p50=float(p50),
                    p95=float(p95),
                    p99=float(p99),
                    minimum=float(values.min()),
                    maximum=float(values.max()),
                )
            )
        self._rollups[series] = out
        return out

    def window_values(
        self, series: str, start_ms: float, end_ms: float
    ) -> List[float]:
        """Raw observations of ``series`` in ``[start_ms, end_ms)``.

        The span need not align to the rollup grid — the SLO layer
        slides its fast/slow burn windows over raw observations.
        """
        windows = self._series.get(series, {})
        first = int(start_ms // self.window_ms)
        last = int(end_ms // self.window_ms)
        out: List[float] = []
        for idx in range(first, last + 1):
            bucket = windows.get(idx)
            if not bucket:
                continue
            lo = idx * self.window_ms
            if lo >= start_ms and (idx + 1) * self.window_ms <= end_ms:
                out.extend(bucket)
            else:
                # Boundary window: observation order within a bucket is
                # insertion order, but values carry no timestamps — the
                # store keeps buckets whole, so split windows take the
                # whole bucket when its span overlaps the query.
                out.extend(bucket)
        return out

    @property
    def span_ms(self) -> float:
        """End of the last populated window across all series."""
        last = -1
        for windows in self._series.values():
            if windows:
                last = max(last, max(windows))
        return (last + 1) * self.window_ms if last >= 0 else 0.0

    # -- serialization --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic nested dict: series -> window list."""
        return {
            "window_ms": self.window_ms,
            "series": {
                name: [w.to_dict() for w in self.rollup(name)]
                for name in self.series_names()
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the rollups.

        One gauge family per statistic, labeled by series and window
        start — scrape-compatible with the registry exposition and
        deterministic (sorted series, ascending windows).
        """
        lines: List[str] = []
        stats = ("count", "mean", "p50", "p95", "p99")
        for stat in stats:
            lines.append(f"# TYPE timeseries_{stat} gauge")
            for name in self.series_names():
                for w in self.rollup(name):
                    value = getattr(w, stat)
                    v = int(value) if stat == "count" else round(value, 6)
                    lines.append(
                        f'timeseries_{stat}{{series="{name}",'
                        f'window_start_ms="{w.start_ms:g}"}} {v}'
                    )
        return "\n".join(lines) + "\n"

    def __len__(self) -> int:
        return sum(
            len(bucket)
            for windows in self._series.values()
            for bucket in windows.values()
        )

    def __repr__(self) -> str:
        return (
            f"<TimeSeriesStore: {len(self._series)} series, "
            f"{len(self)} observations, window {self.window_ms:g} ms>"
        )


def _feed_requests(
    store: TimeSeriesStore, requests, qos_ms: float
) -> None:
    for r in requests:
        if not r.served:
            continue
        store.observe("latency_ms", r.completion_ms, r.latency_ms)
        store.observe(
            "qos_attained",
            r.completion_ms,
            1.0 if r.latency_ms <= qos_ms else 0.0,
        )


def _feed_queue_depth(store: TimeSeriesStore, requests) -> None:
    """In-flight census at each window boundary.

    ``queue_depth`` at boundary ``t`` counts requests with
    ``arrival <= t < completion`` — the backlog + in-service population
    a load balancer would see, computed deterministically from the
    recorded stream (two searchsorted passes over the sorted edges).
    """
    arr = np.sort(
        np.asarray([r.arrival_ms for r in requests], dtype=float)
    )
    comp = np.sort(
        np.asarray(
            [r.completion_ms for r in requests if r.served], dtype=float
        )
    )
    if arr.size == 0:
        return
    w = store.window_ms
    last = float(comp[-1]) if comp.size else float(arr[-1])
    bounds = np.arange(0.0, last + w, w)
    depth = np.searchsorted(arr, bounds, side="right") - np.searchsorted(
        comp, bounds, side="right"
    )
    for t, d in zip(bounds, depth):
        store.observe("queue_depth", float(t), float(d))


def feed_simulation_result(
    store: TimeSeriesStore, result, qos_ms: Optional[float] = None
) -> TimeSeriesStore:
    """Populate ``store`` from a single-node ``SimulationResult``."""
    if qos_ms is None:
        qos_ms = float("inf")
    _feed_requests(store, result.requests, qos_ms)
    _feed_queue_depth(store, result.requests)
    for i, p in enumerate(result.power_bins_w):
        store.observe("power_w", i * result.bin_ms, float(p))
    node = result.node
    if node is not None and node.plan_cache is not None:
        cache = node.plan_cache
        total = cache.hits + cache.misses
        if total:
            store.observe(
                "plan_cache_hit_rate",
                result.duration_ms,
                cache.hits / total,
            )
    return store


def feed_cluster_result(
    store: TimeSeriesStore, result
) -> TimeSeriesStore:
    """Populate ``store`` from a fleet ``ClusterResult``."""
    _feed_requests(store, result.requests, result.qos_ms)
    _feed_queue_depth(store, result.requests)
    for i, p in enumerate(result.power_bins_w):
        store.observe("power_w", i * result.interval_ms, float(p))
    for interval in result.intervals:
        store.observe(
            "fleet_size", interval.t_ms, float(interval.n_serving)
        )
        if math.isfinite(interval.utilization):
            store.observe(
                "utilization",
                interval.t_ms,
                float(min(interval.utilization, 1e9)),
            )
    return store
