"""Simulation-level metrics wiring and the human-readable digest.

Bridges the runtime's end-of-run state (a
:class:`~repro.runtime.simulation.SimulationResult` plus the
:class:`~repro.runtime.node.LeafNode` that produced it) into the
metrics registry and the trace, without the runtime modules importing
anything heavier than the tracer interface.  Everything recorded here
is a pure function of the simulated run, so metrics artifacts inherit
the tracer's byte-identical determinism.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .metrics import MetricsRegistry
from .tracer import NullTracer

__all__ = [
    "emit_execution_spans",
    "record_simulation_metrics",
    "placement_digest",
]


def emit_execution_spans(tracer: NullTracer, node: Any) -> None:
    """Emit one ``kernel.exec`` span per realized device execution.

    Runs after the last request completes: GPU batch joins mutate the
    end time (and power) of already-reserved executions, so the final
    records — not the dispatch-time reservations — are the truthful
    per-device timeline.  Ordered by (device, start, kernel) for a
    deterministic trace tail.
    """
    if not tracer.enabled:
        return
    records = sorted(
        node.all_records(),
        key=lambda r: (r.device_id, r.start_ms, r.kernel_name, r.point_index),
    )
    for rec in records:
        tracer.emit(
            "kernel.exec",
            name=rec.kernel_name,
            t_ms=rec.start_ms,
            dur_ms=max(rec.end_ms - rec.start_ms, 0.0),
            kernel=rec.kernel_name,
            device=rec.device_id,
            point=rec.point_index,
            power_w=round(rec.power_w, 6),
            batch=rec.batch,
        )


def record_simulation_metrics(
    registry: MetricsRegistry, result: Any, node: Any
) -> None:
    """Fold one finished simulation into the registry.

    Families:

    * ``requests_total{outcome=...}`` — served / shed / failed.
    * ``request_latency_ms`` — log-bucket histogram of steady-state
      served latencies (p99 and the violation ratio over any bound are
      derivable from the cumulative buckets).
    * ``request_retries_total`` / ``request_failovers_total`` — chaos
      accounting (zero in fault-free runs).
    * ``device_busy_ms{device=}`` / ``device_occupancy{device=}`` /
      ``device_executions_total{device=}`` / ``device_health{device=}``
      — per-accelerator utilization and final health (0 healthy,
      1 degraded, 2 failed).
    * ``qos_violations_total`` / ``sim_p99_ms`` — headline QoS signals
      against the app's bound.
    """
    served = shed = failed = 0
    for r in result.requests:
        if r.dropped:
            shed += 1
        elif r.failed:
            failed += 1
        else:
            served += 1
    registry.counter("requests_total", outcome="served").inc(served)
    registry.counter("requests_total", outcome="shed").inc(shed)
    registry.counter("requests_total", outcome="failed").inc(failed)

    lat_hist = registry.histogram("request_latency_ms")
    bound_ms = node.app.qos_ms
    violations = 0
    for lat in result.latencies_ms():
        lat_hist.observe(lat)
        if lat > bound_ms:
            violations += 1
    registry.counter("qos_violations_total").inc(violations)
    registry.gauge("qos_bound_ms").set(bound_ms)
    if lat_hist.count:
        registry.gauge("sim_p99_ms").set(result.p99_ms)

    span = max(result.arrival_span_ms, 1e-9)
    for dev in node.devices:
        labels = {"device": dev.device_id}
        busy = dev.busy_ms_total()
        registry.gauge("device_busy_ms", **labels).set(round(busy, 6))
        registry.gauge("device_occupancy", **labels).set(
            round(min(busy / span, 1.0), 6)
        )
        registry.counter("device_executions_total", **labels).inc(
            len(dev.records)
        )
        registry.gauge("device_health", **labels).set(
            {"healthy": 0, "degraded": 1, "failed": 2}[dev.health.value]
        )

    report = getattr(result, "faults", None)
    retries = report.retries if report is not None else 0
    failovers = report.failovers if report is not None else 0
    registry.counter("request_retries_total").inc(retries)
    registry.counter("request_failovers_total").inc(failovers)
    if report is not None:
        registry.counter("fault_events_applied_total").inc(len(report.applied))
        registry.counter("fault_recoveries_total").inc(len(report.recoveries))


def placement_digest(result: Any, node: Any) -> str:
    """Human-readable placement/occupancy digest (``repro obs --summary``)."""
    lines: List[str] = [
        f"{result.app} on {result.system}: {len(result.requests)} requests, "
        f"p99 {result.p99_ms:.1f} ms (bound {node.app.qos_ms:.0f} ms), "
        f"violations {result.qos_violations(node.app.qos_ms) * 100:.2f} %"
    ]
    span = max(result.arrival_span_ms, 1e-9)
    for dev in node.devices:
        by_kernel: Dict[str, int] = {}
        for rec in dev.records:
            by_kernel[rec.kernel_name] = by_kernel.get(rec.kernel_name, 0) + 1
        busy = dev.busy_ms_total()
        placed = (
            ", ".join(f"{k}x{n}" for k, n in sorted(by_kernel.items()))
            or "(idle)"
        )
        lines.append(
            f"  {dev.device_id:8s} {dev.device_type.value.upper():4s} "
            f"{min(busy / span, 1.0) * 100:5.1f}% busy  "
            f"[{dev.health.value}]  {placed}"
        )
    return "\n".join(lines)
