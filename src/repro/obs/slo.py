"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SLO` names a target good-event fraction over one time
series (``qos_attained`` per completion, or a thresholded series such
as ``latency_ms <= threshold``).  Evaluation follows the SRE-workbook
multi-window multi-burn-rate recipe: the *burn rate* over a trailing
window is the observed error fraction divided by the error budget
(``1 - objective``); an alert fires only when both a short window
(fast — catches the spike, sets the firing edge) and a long window
(slow — confirms it is not a blip) exceed their thresholds at the same
evaluation boundary.  Consecutive firing boundaries coalesce into one
:class:`AlertEvent` carrying the span and peak burn rates.

Everything runs on the simulation clock over a recorded
:class:`~repro.obs.timeseries.TimeSeriesStore`, so alert streams are a
pure function of the seeded run — byte-identical across repeats, the
contract all obs artifacts keep.  Fired alerts can be emitted into the
trace (`slo.alert` in :data:`~repro.obs.tracer.EVENT_SCHEMA`, its own
Perfetto control track) and counted in a
:class:`~repro.obs.metrics.MetricsRegistry`
(``slo_alerts_total`` / ``slo_burn_rate``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .metrics import MetricsRegistry
from .timeseries import TimeSeriesStore

__all__ = [
    "SLO",
    "AlertEvent",
    "default_slos",
    "evaluate_slos",
    "slo_report",
    "render_slo_json",
]


@dataclass(frozen=True)
class SLO:
    """One service-level objective over a recorded series.

    ``objective`` is the target good fraction (0.99 = "99% of
    completions meet QoS").  With ``threshold`` unset the series is
    read as a 0/1 good indicator (``qos_attained``); with it set, an
    observation is good when ``value <= threshold`` (latency bound).
    ``fast_window_ms``/``slow_window_ms`` are the two trailing burn
    windows; ``fast_burn``/``slow_burn`` the rates both must exceed.
    The SRE-workbook page defaults (14.4/6) assume hour-scale windows —
    simulation-scale runs pass windows sized to the replay instead.
    """

    name: str
    series: str
    objective: float
    threshold: Optional[float] = None
    fast_window_ms: float = 300_000.0
    slow_window_ms: float = 3_600_000.0
    fast_burn: float = 14.4
    slow_burn: float = 6.0

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.fast_window_ms <= 0 or self.slow_window_ms <= 0:
            raise ValueError("burn windows must be positive")
        if self.fast_window_ms > self.slow_window_ms:
            raise ValueError("fast window must not exceed the slow window")
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ValueError("burn thresholds must be positive")

    @property
    def budget(self) -> float:
        """The error budget: allowed bad fraction."""
        return 1.0 - self.objective

    def is_bad(self, value: float) -> bool:
        if self.threshold is not None:
            return value > self.threshold
        return value < 0.5


@dataclass(frozen=True)
class AlertEvent:
    """One coalesced burn-rate alert.

    ``t_ms`` is the first evaluation boundary where both windows
    exceeded their thresholds; ``end_ms`` the last consecutive one.
    ``burn_fast``/``burn_slow`` are the peak rates over the span.
    """

    slo: str
    series: str
    t_ms: float
    end_ms: float
    burn_fast: float
    burn_slow: float
    objective: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slo": self.slo,
            "series": self.series,
            "t_ms": self.t_ms,
            "end_ms": self.end_ms,
            "burn_fast": round(self.burn_fast, 6),
            "burn_slow": round(self.burn_slow, 6),
            "objective": self.objective,
        }


def default_slos(qos_ms: float, window_ms: float) -> List[SLO]:
    """Report-ready SLOs scaled to a simulation replay.

    Burn windows are multiples of the rollup window (fast = 2 windows,
    slow = 8) rather than SRE wall-clock hours — a compressed diurnal
    replay spans minutes of sim time.  Thresholds keep the workbook's
    fast/slow asymmetry at page-alert sensitivity.
    """
    return [
        SLO(
            name="qos-attainment",
            series="qos_attained",
            objective=0.95,
            fast_window_ms=2 * window_ms,
            slow_window_ms=8 * window_ms,
            fast_burn=4.0,
            slow_burn=2.0,
        ),
        SLO(
            name="p99-latency",
            series="latency_ms",
            objective=0.99,
            threshold=qos_ms,
            fast_window_ms=2 * window_ms,
            slow_window_ms=8 * window_ms,
            fast_burn=8.0,
            slow_burn=4.0,
        ),
    ]


def _burn_rate(
    store: TimeSeriesStore, slo: SLO, start_ms: float, end_ms: float
) -> float:
    values = store.window_values(slo.series, max(start_ms, 0.0), end_ms)
    if not values:
        return 0.0
    bad = sum(1 for v in values if slo.is_bad(v))
    return (bad / len(values)) / slo.budget


def evaluate_slos(
    store: TimeSeriesStore,
    slos: Sequence[SLO],
    tracer=None,
    registry: Optional[MetricsRegistry] = None,
) -> List[AlertEvent]:
    """Slide both burn windows over the store and collect fired alerts.

    Evaluation runs at every rollup-window boundary from the first
    window's end to the store's span — the same grid the rollup table
    prints, so an alert always points at visible windows.  Alerts are
    returned sorted by (t_ms, slo name); when a ``tracer`` is given a
    ``slo.alert`` event is emitted per alert at its firing edge, and a
    ``registry`` gets ``slo_alerts_total`` counters plus final
    ``slo_burn_rate`` gauges per window.
    """
    span = store.span_ms
    w = store.window_ms
    alerts: List[AlertEvent] = []
    final_burn: Dict[str, Tuple[float, float]] = {}
    for slo in slos:
        open_alert: Optional[Dict[str, float]] = None
        fast = slow = 0.0
        t = w
        while t <= span + 1e-9:
            fast = _burn_rate(store, slo, t - slo.fast_window_ms, t)
            slow = _burn_rate(store, slo, t - slo.slow_window_ms, t)
            firing = fast >= slo.fast_burn and slow >= slo.slow_burn
            if firing:
                if open_alert is None:
                    open_alert = {
                        "t_ms": t,
                        "end_ms": t,
                        "burn_fast": fast,
                        "burn_slow": slow,
                    }
                else:
                    open_alert["end_ms"] = t
                    open_alert["burn_fast"] = max(
                        open_alert["burn_fast"], fast
                    )
                    open_alert["burn_slow"] = max(
                        open_alert["burn_slow"], slow
                    )
            elif open_alert is not None:
                alerts.append(_close(slo, open_alert))
                open_alert = None
            t += w
        if open_alert is not None:
            alerts.append(_close(slo, open_alert))
        final_burn[slo.name] = (fast, slow)
    alerts.sort(key=lambda a: (a.t_ms, a.slo))
    if tracer is not None and tracer.enabled:
        for alert in alerts:
            tracer.emit(
                "slo.alert",
                name=alert.slo,
                t_ms=alert.t_ms,
                slo=alert.slo,
                series=alert.series,
                burn_fast=round(alert.burn_fast, 6),
                burn_slow=round(alert.burn_slow, 6),
                objective=alert.objective,
            )
    if registry is not None:
        for slo in slos:
            fired = [a for a in alerts if a.slo == slo.name]
            if fired:
                registry.counter("slo_alerts_total", slo=slo.name).inc(
                    len(fired)
                )
            fast, slow = final_burn[slo.name]
            registry.gauge(
                "slo_burn_rate", slo=slo.name, window="fast"
            ).set(round(fast, 6))
            registry.gauge(
                "slo_burn_rate", slo=slo.name, window="slow"
            ).set(round(slow, 6))
    return alerts


def _close(slo: SLO, open_alert: Dict[str, float]) -> AlertEvent:
    return AlertEvent(
        slo=slo.name,
        series=slo.series,
        t_ms=open_alert["t_ms"],
        end_ms=open_alert["end_ms"],
        burn_fast=open_alert["burn_fast"],
        burn_slow=open_alert["burn_slow"],
        objective=slo.objective,
    )


def slo_report(
    store: TimeSeriesStore,
    slos: Sequence[SLO],
    alerts: Sequence[AlertEvent],
) -> Dict[str, Any]:
    """Deterministic report document: rollups + SLO verdicts + alerts."""
    return {
        "window_ms": store.window_ms,
        "series": {
            name: [w.to_dict() for w in store.rollup(name)]
            for name in store.series_names()
        },
        "slos": [
            {
                "name": slo.name,
                "series": slo.series,
                "objective": slo.objective,
                "threshold": slo.threshold,
                "fast_window_ms": slo.fast_window_ms,
                "slow_window_ms": slo.slow_window_ms,
                "alerts": sum(1 for a in alerts if a.slo == slo.name),
            }
            for slo in slos
        ],
        "alerts": [a.to_dict() for a in alerts],
    }


def render_slo_json(
    store: TimeSeriesStore,
    slos: Sequence[SLO],
    alerts: Sequence[AlertEvent],
) -> str:
    return (
        json.dumps(slo_report(store, slos, alerts), indent=2, sort_keys=True)
        + "\n"
    )
