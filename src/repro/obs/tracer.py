"""Deterministic sim-clock span tracing.

The tracer records *typed events* over the simulation clock — never the
wall clock — so the trace of a seeded run is bit-identical across
repeats, machines and worker counts.  Event timestamps are the same
millisecond floats the simulator itself computes (arrival times, device
reservations, fault instants), and the only ordering is the emission
sequence number, which is a pure function of the request stream.

Two implementations share one interface:

* :class:`NullTracer` — the default everywhere.  ``enabled`` is False
  and every hook site guards on it, so an untraced run executes the
  exact pre-observability code path (the bit-identical guarantee the
  fault-injection and parallel-DSE suites already enforce).
* :class:`SpanTracer` — an in-memory collector.  ``emit`` appends a
  :class:`TraceEvent`; exporters (:mod:`repro.obs.export`) turn the
  event list into Perfetto/Chrome trace JSON and a JSONL stream.

The event taxonomy is closed: :data:`EVENT_SCHEMA` maps every event
kind to the argument fields it must carry, and ``emit`` validates
against it, so downstream consumers (the golden schema test, the
Perfetto exporter's track router) can rely on the shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "EVENT_SCHEMA",
    "TraceEvent",
    "NullTracer",
    "SpanTracer",
    "NULL_TRACER",
]


#: The closed event taxonomy: kind -> required argument fields.
#:
#: * ``request.*`` — the request lifecycle: admission, load shedding,
#:   completion, abandonment (retry budget exhausted).
#: * ``sched.*``   — the two-step scheduler: Step-1 (Eq. 2-4) per-kernel
#:   placements and Step-2 (Eq. 5) accepted energy swaps.
#: * ``plan.*``    — the leaf node's operating-plan machinery: plan
#:   (re)computation and light/heavy mode switches.
#: * ``kernel.*``  — device-level execution: dispatch decisions (with
#:   the predicted window) and the realized executions (final, after
#:   batch growth), which carry ``dur_ms`` and form the Perfetto
#:   per-device tracks.
#: * ``fault.*``   — injected faults, retries, missed-heartbeat
#:   detections, failover replans and recoveries.
#: * ``monitor.*`` — periodic feedback-loop snapshots (queue depth,
#:   correction factor, windowed tail latency).
#: * ``cluster.*`` — fleet-layer decisions: per-request routing (the
#:   power-of-two-choices pick with its sampled candidates), node
#:   launches/terminations, and per-interval autoscaler evaluations.
#: * ``slo.*``     — SLO evaluation over the windowed rollups:
#:   multi-window burn-rate alerts at their firing edge.
#: * ``dse.*``     — guided design-space exploration: per-rung
#:   successive-halving pool sizes, per-generation genetic progress,
#:   and the per-(kernel, platform) search summary.  Emitted by the
#:   *parent* process from worker-returned stats, so the trace is
#:   identical across ``n_jobs``.
EVENT_SCHEMA: Dict[str, Tuple[str, ...]] = {
    "request.admit": ("req", "priority"),
    "request.shed": ("req",),
    "request.complete": ("req", "latency_ms", "retries"),
    "request.abandon": ("req", "kernel", "retries"),
    "sched.place": ("kernel", "device", "point", "start_ms", "end_ms"),
    "sched.swap": (
        "kernel",
        "device_before",
        "device_after",
        "point_before",
        "point_after",
        "energy_saved_mj",
        "makespan_ms",
    ),
    "plan.computed": ("mode", "makespan_ms", "kernels"),
    "plan.mode": ("mode", "makespan_ms"),
    "kernel.dispatch": ("req", "kernel", "device", "point", "start_ms", "end_ms"),
    "kernel.exec": ("kernel", "device", "point", "power_w", "batch"),
    "fault.inject": ("fault", "device"),
    "fault.retry": ("req", "kernel", "device", "fault", "attempt"),
    "fault.heartbeat_miss": ("device", "last_beat_ms"),
    "fault.failover": ("device", "failed_ms", "detected_ms"),
    "fault.recover": ("device",),
    "monitor.snapshot": (
        "queue_depth",
        "correction_factor",
        "tail_ms",
        "arrival_rate_rps",
    ),
    "cluster.route": ("req", "node", "candidates", "queue_ms", "locality"),
    "cluster.launch": ("node", "reason", "ready_ms"),
    "cluster.terminate": ("node", "reason"),
    "cluster.scale": ("n_nodes", "demand_rps", "utilization"),
    "slo.alert": ("slo", "series", "burn_fast", "burn_slow", "objective"),
    "dse.search.rung": ("kernel", "platform", "rung", "pool", "kept"),
    "dse.search.generation": (
        "kernel",
        "platform",
        "generation",
        "evaluations",
        "front_points",
        "hypervolume",
    ),
    "dse.search.done": (
        "kernel",
        "platform",
        "strategy",
        "explored",
        "pruned_invalid",
        "skipped",
        "evaluations",
        "generations",
    ),
}


@dataclass(frozen=True)
class TraceEvent:
    """One trace record on the simulation clock.

    ``dur_ms`` is set only for *span* events (realized device
    executions); instant events leave it ``None``.  ``args`` carries the
    kind-specific payload named by :data:`EVENT_SCHEMA`.
    """

    seq: int
    ts_ms: float
    kind: str
    name: str
    args: Mapping[str, Any] = field(default_factory=dict)
    dur_ms: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (one JSONL line)."""
        out: Dict[str, Any] = {
            "seq": self.seq,
            "ts_ms": self.ts_ms,
            "kind": self.kind,
            "name": self.name,
            "args": dict(self.args),
        }
        if self.dur_ms is not None:
            out["dur_ms"] = self.dur_ms
        return out


class NullTracer:
    """The default no-op tracer.

    Hook sites guard every emission on :attr:`enabled`, so an untraced
    run never allocates an event, never formats a string, and never
    touches a lock — the request path is byte-for-byte the
    pre-observability code.
    """

    enabled: bool = False
    #: Simulation clock the instrumented layers advance; a scheduler or
    #: monitor emitting without an explicit timestamp stamps this.
    now_ms: float = 0.0

    def emit(
        self,
        kind: str,
        name: str = "",
        t_ms: Optional[float] = None,
        dur_ms: Optional[float] = None,
        **args: Any,
    ) -> None:
        """Record nothing."""

    @property
    def events(self) -> List[TraceEvent]:
        return []

    def __len__(self) -> int:
        return 0


#: Shared inert instance; safe because it holds no state.
NULL_TRACER = NullTracer()


class SpanTracer(NullTracer):
    """In-memory collecting tracer.

    Events are appended in emission order with a monotonically
    increasing ``seq``; because the simulator is single-threaded over a
    deterministic arrival stream, the full event list is a pure function
    of (system, app, arrivals, seed, fault schedule).

    Collection is two-stage: ``emit`` validates and appends a *compact
    raw record*; the :class:`TraceEvent` objects materialize lazily the
    first time the event list is read (``events``, ``by_kind``,
    iteration by exporters).  Recording therefore costs one tuple per
    event on the simulation's hot path while reads see the exact same
    objects an eager tracer would build — ``seq`` is the record's
    position in the combined stream either way.  The event-heap engine
    leans on the same staging: its native traced fast path flushes
    whole buffers of raw records (tags 1-3 below) straight into the
    tracer, producing a stream byte-identical to the legacy per-request
    loop — golden-tested in ``tests/test_engine.py``.

    Raw-record tags (first tuple element):

    * ``0`` — generic: ``(0, kind, name, ts_ms, dur_ms, args)`` (what
      ``emit`` stages; args are fully formed).
    * ``1`` — request admit: ``(1, t_ms, req, priority)``.
    * ``2`` — kernel dispatch: ``(2, ready_ms, req, kernel, device,
      point, start_ms, end_ms)``.
    * ``3`` — request complete: ``(3, completion_ms, req, latency_ms)``.

    Tags 1-3 carry raw floats; rounding to the legacy emission's six
    decimals happens at materialization, off the timed path.
    """

    enabled = True

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        #: Staged raw records, strictly after ``_events`` in stream
        #: order; drained by :meth:`_materialize`.
        self._raw: List[tuple] = []
        self.now_ms = 0.0

    def emit(
        self,
        kind: str,
        name: str = "",
        t_ms: Optional[float] = None,
        dur_ms: Optional[float] = None,
        **args: Any,
    ) -> None:
        """Stage one event; ``t_ms`` defaults to the current sim clock.

        The kind must be in :data:`EVENT_SCHEMA` and carry at least the
        schema's required fields — a typo'd hook fails loudly in tests
        instead of producing an unparseable trace.
        """
        required = EVENT_SCHEMA.get(kind)
        if required is None:
            raise ValueError(f"unknown trace event kind {kind!r}")
        missing = [f for f in required if f not in args]
        if missing:
            raise ValueError(f"event {kind!r} missing fields {missing}")
        ts = self.now_ms if t_ms is None else t_ms
        self._raw.append((0, kind, name, ts, dur_ms, args))

    def _materialize(self) -> None:
        """Drain staged raw records into :class:`TraceEvent` objects."""
        raw = self._raw
        if not raw:
            return
        events = self._events
        append = events.append
        for rec in raw:
            tag = rec[0]
            if tag == 0:
                _, kind, name, ts, dur, args = rec
                append(TraceEvent(len(events), ts, kind, name, args, dur))
            elif tag == 2:
                _, ready, rq, kernel, device, point, start, end = rec
                append(
                    TraceEvent(
                        len(events),
                        ready,
                        "kernel.dispatch",
                        kernel,
                        {
                            "req": rq,
                            "kernel": kernel,
                            "device": device,
                            "point": point,
                            "start_ms": round(start, 6),
                            "end_ms": round(end, 6),
                        },
                    )
                )
            elif tag == 1:
                _, ts, rq, priority = rec
                append(
                    TraceEvent(
                        len(events),
                        ts,
                        "request.admit",
                        f"req-{rq}",
                        {"req": rq, "priority": round(priority, 6)},
                    )
                )
            else:
                _, comp, rq, lat = rec
                append(
                    TraceEvent(
                        len(events),
                        comp,
                        "request.complete",
                        f"req-{rq}",
                        {
                            "req": rq,
                            "latency_ms": round(lat, 6),
                            "retries": 0,
                        },
                    )
                )
        raw.clear()

    @property
    def events(self) -> List[TraceEvent]:
        self._materialize()
        return list(self._events)

    def by_kind(self, kind: str) -> List[TraceEvent]:
        self._materialize()
        return [e for e in self._events if e.kind == kind]

    def clear(self) -> None:
        self._events.clear()
        self._raw.clear()
        self.now_ms = 0.0

    def __len__(self) -> int:
        return len(self._events) + len(self._raw)

    def __repr__(self) -> str:
        self._materialize()
        kinds: Dict[str, int] = {}
        for e in self._events:
            kinds[e.kind] = kinds.get(e.kind, 0) + 1
        top = ", ".join(f"{k}:{n}" for k, n in sorted(kinds.items())[:4])
        return f"<SpanTracer: {len(self._events)} events ({top})>"
