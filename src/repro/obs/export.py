"""Trace and metrics exporters: Perfetto/Chrome trace JSON and JSONL.

The Chrome trace-event format (the JSON Perfetto's UI and
``chrome://tracing`` both load) models a trace as processes and
threads; we map the leaf node to one process and give every
accelerator instance its own thread, so the realized executions
(``kernel.exec`` span events) render as per-device timeline tracks.
Control-plane events — admissions, plan switches, scheduler decisions,
faults — land on dedicated named tracks as instant events, vertically
aligned with the device work they explain.

All writers serialize with sorted keys and a trailing newline, so a
seeded run exports byte-identical artifacts every time (the CI golden
test depends on this).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Union

from .metrics import MetricsRegistry
from .tracer import TraceEvent

__all__ = [
    "chrome_trace",
    "write_perfetto_json",
    "write_events_jsonl",
    "write_metrics_json",
    "write_metrics_prom",
]

#: Control-plane tracks: event-kind prefix -> (tid, track name).  Device
#: tracks are allocated dynamically above these.
_CONTROL_TRACKS = {
    "request": (1, "requests"),
    "plan": (2, "planner"),
    "sched": (3, "scheduler"),
    "fault": (4, "faults"),
    "monitor": (5, "monitor"),
    "cluster": (6, "cluster"),
    "slo": (7, "slo"),
}
_FIRST_DEVICE_TID = 10
_PID = 1


def _device_of(event: TraceEvent) -> str:
    return str(event.args.get("device", ""))


def chrome_trace(events: Sequence[TraceEvent]) -> Dict[str, Any]:
    """Build the Chrome trace-event document for one event list.

    ``kernel.exec`` events (which carry ``dur_ms``) become complete
    ("X") slices on their device's track; every other kind becomes an
    instant ("i") event on its control track — except ``kernel.dispatch``,
    which lands on the *device* track so dispatch decisions sit next to
    the executions they reserved.  Timestamps convert ms -> µs (the
    format's unit).
    """
    devices = sorted(
        {
            _device_of(e)
            for e in events
            if e.kind in ("kernel.exec", "kernel.dispatch") and _device_of(e)
        }
    )
    device_tid = {
        d: _FIRST_DEVICE_TID + i for i, d in enumerate(devices)
    }

    trace_events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro leaf node"},
        }
    ]
    for prefix, (tid, name) in sorted(_CONTROL_TRACKS.items()):
        trace_events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": name},
            }
        )
    for device, tid in device_tid.items():
        trace_events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": f"device {device}"},
            }
        )

    for event in events:
        args = dict(event.args)
        args["seq"] = event.seq
        if event.kind == "kernel.exec" and event.dur_ms is not None:
            trace_events.append(
                {
                    "ph": "X",
                    "pid": _PID,
                    "tid": device_tid[_device_of(event)],
                    "ts": event.ts_ms * 1000.0,
                    "dur": event.dur_ms * 1000.0,
                    "name": event.name or str(event.args.get("kernel", "")),
                    "cat": event.kind,
                    "args": args,
                }
            )
            continue
        if event.kind == "kernel.dispatch":
            tid = device_tid[_device_of(event)]
        else:
            prefix = event.kind.split(".", 1)[0]
            tid = _CONTROL_TRACKS.get(prefix, (0, ""))[0]
        trace_events.append(
            {
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "pid": _PID,
                "tid": tid,
                "ts": event.ts_ms * 1000.0,
                "name": event.name or event.kind,
                "cat": event.kind,
                "args": args,
            }
        )

    return {"displayTimeUnit": "ms", "traceEvents": trace_events}


def write_perfetto_json(
    events: Sequence[TraceEvent], path: Union[str, Path]
) -> Path:
    """Write the Chrome/Perfetto trace JSON (open at ui.perfetto.dev)."""
    out = Path(path)
    out.write_text(
        json.dumps(chrome_trace(events), indent=2, sort_keys=True) + "\n"
    )
    return out


def write_events_jsonl(
    events: Iterable[TraceEvent], path: Union[str, Path]
) -> Path:
    """Write the structured event stream: one sorted-key JSON per line."""
    out = Path(path)
    lines = [
        json.dumps(e.to_dict(), sort_keys=True) for e in events
    ]
    out.write_text("\n".join(lines) + ("\n" if lines else ""))
    return out


def write_metrics_json(
    registry: MetricsRegistry, path: Union[str, Path]
) -> Path:
    """Write the deterministic metrics snapshot."""
    out = Path(path)
    out.write_text(registry.to_json())
    return out


def write_metrics_prom(
    registry: MetricsRegistry, path: Union[str, Path]
) -> Path:
    """Write the Prometheus text exposition of the registry."""
    out = Path(path)
    out.write_text(registry.render_prometheus())
    return out
