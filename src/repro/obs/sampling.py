"""Deterministic trace sampling: bounded artifacts from fleet replays.

A traced fleet replay emits one full span tree per request — admits,
routes, dispatches, completions plus the realized ``kernel.exec``
timeline — which at diurnal-trace scale runs to millions of events and
unusably large Perfetto artifacts.  Sampling keeps the artifacts
bounded while preserving exactly the spans an operator needs:

* **Head-based** — each request is kept with probability
  ``head_rate``, decided by a seeded per-request Bernoulli draw keyed
  on ``(policy seed, request id)``.  The draw never touches the
  simulation's RNG streams (it runs *after* the simulation over the
  recorded event list), so sampled and unsampled runs produce
  float-identical simulation results; and because the key is the
  request id, the decision for request *k* is stable across runs,
  engines and fleet sizes.
* **Tail-based** — complete spans are always retained for the requests
  that matter in a post-mortem: QoS violators (``latency > tail_qos_ms``),
  requests that hit a fault (a ``fault.retry`` or ``request.abandon``
  marker), and the ``tail_top_k`` highest-latency completions.

Control-plane events (``plan.*``, ``sched.*``, ``monitor.*``,
``fault.inject``/``heartbeat_miss``/``failover``/``recover``,
``cluster.launch``/``terminate``/``scale``, ``slo.alert``) are always
kept — they are O(replans + intervals), not O(requests), and carry the
decisions the per-request spans hang off.  Per-request events
(anything carrying a ``req`` argument, including ``cluster.route``)
follow their request's keep/drop decision.  Realized ``kernel.exec``
spans carry no request id; one is kept when a retained request's
``kernel.dispatch`` window on the same device covers it (a shared GPU
batch is retained when *any* participant is sampled).

Events keep their original ``seq`` numbers, so a sampled stream is a
strict subsequence of the full stream and still sorts/merges cleanly.
Drop accounting lands in a :class:`~repro.obs.metrics.MetricsRegistry`:
``sampled_requests_total`` (labeled by decision) and
``dropped_spans_total``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .metrics import MetricsRegistry
from .tracer import TraceEvent

__all__ = [
    "SamplingPolicy",
    "SampledTrace",
    "head_keep",
    "sample_events",
]


@dataclass(frozen=True)
class SamplingPolicy:
    """Declarative head + tail sampling configuration.

    ``head_rate`` is the Bernoulli keep probability (1.0 keeps every
    request and makes sampling the identity); ``seed`` keys the
    per-request draws and is deliberately separate from the simulation
    seed — resampling a recorded run never perturbs it.  The three tail
    criteria are independent and OR-combined; any of them retains the
    complete span regardless of the head draw.
    """

    head_rate: float = 1.0
    seed: int = 0
    tail_qos_ms: Optional[float] = None
    tail_top_k: int = 0
    tail_faults: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.head_rate <= 1.0:
            raise ValueError("head_rate must be in [0, 1]")
        if self.tail_top_k < 0:
            raise ValueError("tail_top_k must be >= 0")
        if self.tail_qos_ms is not None and self.tail_qos_ms <= 0:
            raise ValueError("tail_qos_ms must be positive")


@dataclass(frozen=True)
class SampledTrace:
    """Result of one sampling pass.

    ``events`` is the retained subsequence (original ``seq`` values);
    ``kept_requests`` maps request id -> decision label (``"head"``,
    ``"tail_qos"``, ``"tail_fault"``, ``"tail_topk"``);
    ``dropped_spans`` counts the events removed.
    """

    events: Tuple[TraceEvent, ...]
    kept_requests: Dict[int, str]
    dropped_requests: int
    dropped_spans: int


def head_keep(seed: int, req: int, rate: float) -> bool:
    """The seeded per-request Bernoulli draw.

    Keyed on ``(seed, req)`` through a :class:`numpy.random.SeedSequence`
    (splitmix-style mixing): deterministic across platforms and
    processes, uncorrelated across neighbouring request ids, and
    entirely outside the simulation's RNG streams.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    word = np.random.SeedSequence((seed, req)).generate_state(1)[0]
    return float(word) / 2.0**32 < rate


def _tail_decisions(
    events: List[TraceEvent], policy: SamplingPolicy
) -> Dict[int, str]:
    """Requests the tail criteria force-retain, with their reasons.

    Priority when several criteria match: qos > fault > topk — the
    label records the *strongest* reason, the keep set is the union.
    """
    latency: Dict[int, float] = {}
    faulted: Set[int] = set()
    for ev in events:
        if ev.kind == "request.complete":
            latency[ev.args["req"]] = ev.args["latency_ms"]
        elif ev.kind == "fault.retry" or ev.kind == "request.abandon":
            faulted.add(ev.args["req"])
    decisions: Dict[int, str] = {}
    if policy.tail_top_k > 0 and latency:
        # Deterministic top-k: latency desc, request id asc as the tie
        # break, so equal latencies never make the cut order ambiguous.
        ranked = sorted(latency.items(), key=lambda kv: (-kv[1], kv[0]))
        for req, _ in ranked[: policy.tail_top_k]:
            decisions[req] = "tail_topk"
    if policy.tail_faults:
        for req in faulted:
            decisions[req] = "tail_fault"
    if policy.tail_qos_ms is not None:
        for req, lat in latency.items():
            if lat > policy.tail_qos_ms:
                decisions[req] = "tail_qos"
    return decisions


def sample_events(
    events: List[TraceEvent],
    policy: SamplingPolicy,
    registry: Optional[MetricsRegistry] = None,
) -> SampledTrace:
    """Apply ``policy`` to a recorded event stream.

    Pure post-hoc pass: the input list is not modified and no
    simulation state is touched.  See the module docstring for the
    keep semantics.
    """
    tail = _tail_decisions(events, policy)
    decisions: Dict[int, str] = {}
    # (device, start/end window) of every kept dispatch, for exec match.
    kept_windows: Dict[object, List[Tuple[float, float]]] = {}

    def keep_request(req: int) -> bool:
        dec = decisions.get(req)
        if dec is None:
            if req in tail:
                dec = tail[req]
            elif head_keep(policy.seed, req, policy.head_rate):
                dec = "head"
            else:
                dec = "drop"
            decisions[req] = dec
        return dec != "drop"

    kept: List[TraceEvent] = []
    deferred_exec: List[TraceEvent] = []
    for ev in events:
        req = ev.args.get("req")
        if req is not None:
            if keep_request(req):
                kept.append(ev)
                if ev.kind == "kernel.dispatch":
                    kept_windows.setdefault(ev.args["device"], []).append(
                        (ev.args["start_ms"], ev.args["end_ms"])
                    )
        elif ev.kind == "kernel.exec":
            deferred_exec.append(ev)
        else:
            kept.append(ev)

    # Realized executions: keep those covered by a retained dispatch
    # window on the same device (batch growth can stretch the realized
    # end past the predicted one, so match on start containment).
    for ev in deferred_exec:
        windows = kept_windows.get(ev.args["device"])
        if windows is None:
            continue
        start = ev.ts_ms
        for w0, w1 in windows:
            if w0 - 1e-9 <= start <= w1 + 1e-9:
                kept.append(ev)
                break
    kept.sort(key=lambda e: e.seq)

    kept_requests = {r: d for r, d in decisions.items() if d != "drop"}
    dropped_requests = len(decisions) - len(kept_requests)
    dropped_spans = len(events) - len(kept)
    if registry is not None:
        by_label: Dict[str, int] = {}
        for dec in kept_requests.values():
            by_label[dec] = by_label.get(dec, 0) + 1
        for label, n in sorted(by_label.items()):
            registry.counter(
                "sampled_requests_total", decision=label
            ).inc(n)
        if dropped_requests:
            registry.counter(
                "sampled_requests_total", decision="drop"
            ).inc(dropped_requests)
        registry.counter("dropped_spans_total").inc(dropped_spans)
    return SampledTrace(
        events=tuple(kept),
        kept_requests=kept_requests,
        dropped_requests=dropped_requests,
        dropped_spans=dropped_spans,
    )
