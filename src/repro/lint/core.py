"""Diagnostics engine: rule registry, reports, and the ``run_lint`` driver.

Poly's correctness rests on invariants that the optimizing layers assume
rather than enforce: PPG edges must carry shape/dtype-compatible
tensors, knob assignments must respect Table I's applicability matrix,
FPGA design points must fit the part's resource budget, and kernel DAGs
handed to the two-step scheduler must be acyclic and QoS-feasible.
This module provides the machinery that turns those invariants into
*diagnostics* — actionable messages with a rule id, severity and
location — instead of wrong numbers or deep stack traces.

Rules are plain functions registered with :func:`register_rule`; each
declares the object types it inspects.  :func:`run_lint` expands a
lintable object (an :class:`~repro.apps.base.Application`, a
:class:`~repro.scheduler.kernel_graph.KernelGraph`, a
:class:`~repro.patterns.ppg.Kernel`, a PPG, or a single design point)
into its constituent targets and runs every applicable rule.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from ..hardware.specs import spec_by_name
from ..optim.design_point import DesignPoint
from ..patterns.ppg import Kernel
from ..scheduler.kernel_graph import KernelGraph

__all__ = [
    "Severity",
    "Diagnostic",
    "LintReport",
    "LintError",
    "LintContext",
    "LintRule",
    "DesignCheck",
    "register_rule",
    "all_rules",
    "rules_for",
    "run_lint",
]


class Severity(enum.Enum):
    """Diagnostic severity; only ERROR makes a lint run fail."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: rule id, severity, location, message and a fix hint."""

    rule: str
    severity: Severity
    location: str
    message: str
    hint: str = ""

    def to_dict(self) -> Dict[str, str]:
        """JSON-serializable form (used by ``repro lint --json``)."""
        out = {
            "rule": self.rule,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
        }
        if self.hint:
            out["hint"] = self.hint
        return out

    def render(self) -> str:
        line = f"{self.severity.value.upper():7s} {self.rule:8s} {self.location}: {self.message}"
        if self.hint:
            line += f"  [hint: {self.hint}]"
        return line


class LintError(RuntimeError):
    """Raised by ``validate=True`` gates when a lint run reports errors."""

    def __init__(self, report: "LintReport", subject: str = "") -> None:
        self.report = report
        what = f" in {subject}" if subject else ""
        lines = "\n".join(d.render() for d in report.errors)
        super().__init__(
            f"{len(report.errors)} lint error(s){what}:\n{lines}"
        )


@dataclass
class LintContext:
    """Optional context a rule may need beyond the target object itself.

    Every field is optional; rules that need missing context simply skip
    (a structural lint of a bare PPG cannot check FPGA budgets).
    """

    #: Hardware spec (GPUSpec/FPGASpec) the target is being checked against.
    spec: Optional[Any] = None
    #: Device pool specs (for coverage checks across a node's platforms).
    specs: Tuple = ()
    #: Enclosing kernel, for config/design-point applicability checks.
    kernel: Optional[Kernel] = None
    #: QoS tail-latency bound in milliseconds.
    qos_ms: Optional[float] = None
    #: ``{(kernel_name, platform_name): KernelDesignSpace}`` from DSE.
    design_spaces: Optional[Mapping] = None
    #: Scheduler device slots (for implementation-coverage checks).
    devices: Tuple = ()
    #: Application short name, used as a location prefix.
    app_name: str = ""
    #: Per-(kernel, device) cap on enumerated configs before pruning
    #: (OPT004); ``None`` uses the rule's default budget.
    config_budget: Optional[int] = None
    #: Guided-search configuration (:class:`~repro.optim.search.SearchConfig`)
    #: when the DSE runs with ``strategy="guided"``; switches OPT004 to
    #: budgeting model evaluations instead of enumerated configs.
    search: Optional[Any] = None

    def prefix(self, location: str) -> str:
        return f"{self.app_name}/{location}" if self.app_name else location


@dataclass(frozen=True)
class DesignCheck:
    """A (kernel, config, spec) triple — the optimization-layer target.

    DSE validation builds these directly for every enumerated config;
    ``run_lint`` on a :class:`DesignPoint` resolves one from the point's
    platform name and the context kernel.
    """

    kernel: Kernel
    config: Any  # ImplConfig
    spec: Any    # GPUSpec | FPGASpec

    @property
    def location(self) -> str:
        return f"{self.kernel.name}@{getattr(self.spec, 'name', '?')}"


@dataclass(frozen=True)
class LintRule:
    """A registered rule: id, default severity, targets and the checker."""

    rule_id: str
    severity: Severity
    targets: Tuple[Type, ...]
    fn: Callable[..., Iterable[Diagnostic]]
    description: str = ""

    def applies_to(self, obj: object) -> bool:
        return isinstance(obj, self.targets)


_REGISTRY: Dict[str, LintRule] = {}


def register_rule(
    rule_id: str,
    severity: Severity,
    targets: Sequence[Type],
    description: str = "",
) -> Callable:
    """Decorator registering ``fn(obj, ctx) -> Iterable[Diagnostic]``."""

    def decorator(fn: Callable[..., Iterable[Diagnostic]]) -> Callable:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        doc_lines = (fn.__doc__ or "").strip().splitlines()
        _REGISTRY[rule_id] = LintRule(
            rule_id=rule_id,
            severity=severity,
            targets=tuple(targets),
            fn=fn,
            description=description or (doc_lines[0] if doc_lines else ""),
        )
        return fn

    return decorator


def all_rules() -> List[LintRule]:
    """Every registered rule, sorted by id."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def rules_for(obj: object) -> List[LintRule]:
    """Rules applicable to one target object."""
    return [r for r in all_rules() if r.applies_to(obj)]


class LintReport:
    """Collected diagnostics of one lint run."""

    def __init__(self, diagnostics: Optional[Iterable[Diagnostic]] = None) -> None:
        self.diagnostics: List[Diagnostic] = list(diagnostics or [])

    # -- accumulation --------------------------------------------------------

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, other: "LintReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    # -- queries -------------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity diagnostics were reported."""
        return not self.errors

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule_id]

    def raise_if_errors(self, subject: str = "") -> None:
        if not self.ok:
            raise LintError(self, subject)

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        if not self.diagnostics:
            return "clean: no diagnostics"
        lines = [d.render() for d in self.diagnostics]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.diagnostics) - len(self.errors) - len(self.warnings)} info"
        )
        return "\n".join(lines)

    def to_json(self, **dumps_kwargs) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "diagnostics": [d.to_dict() for d in self.diagnostics],
            },
            **dumps_kwargs,
        )

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __repr__(self) -> str:
        return (
            f"<LintReport: {len(self.errors)} errors, "
            f"{len(self.warnings)} warnings, {len(self)} total>"
        )


# ---------------------------------------------------------------------------
# Target expansion
# ---------------------------------------------------------------------------


def _is_application(obj: object) -> bool:
    # Duck-typed to avoid a circular import with repro.apps.base (which
    # imports the DSE, which imports this package for validation).
    return (
        hasattr(obj, "graph")
        and isinstance(getattr(obj, "graph", None), KernelGraph)
        and hasattr(obj, "qos_ms")
    )


def _expand(obj: object, ctx: LintContext) -> Iterator[Tuple[object, LintContext]]:
    """Yield (target, context) pairs for one lintable object.

    Containers recurse: an Application yields its kernel graph, every
    kernel and every PPG; a Kernel yields itself plus its PPG.
    """
    if _is_application(obj):
        sub = replace(
            ctx,
            qos_ms=ctx.qos_ms or getattr(obj, "qos_ms", None),
            app_name=ctx.app_name or getattr(obj, "name", ""),
        )
        yield from _expand(getattr(obj, "graph"), sub)
        return
    if isinstance(obj, KernelGraph):
        yield obj, ctx
        for kernel in obj.kernels:
            yield from _expand(kernel, ctx)
        return
    if isinstance(obj, Kernel):
        sub = replace(ctx, kernel=obj)
        yield obj, sub
        yield obj.ppg, sub
        return
    if isinstance(obj, DesignPoint):
        kernel = ctx.kernel
        if kernel is not None:
            spec = ctx.spec
            if spec is None:
                try:
                    spec = spec_by_name(obj.platform)
                except KeyError:
                    spec = None
            if spec is not None:
                yield DesignCheck(kernel, obj.config, spec), ctx
        return
    yield obj, ctx


def run_lint(
    obj: object,
    context: Optional[LintContext] = None,
    *,
    expand: bool = True,
    rule_ids: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run every applicable rule over ``obj`` (and its constituents).

    ``expand=False`` restricts the run to rules targeting ``obj``'s own
    type — the scheduler admission check uses this to lint only the
    kernel-graph layer on the hot path.  ``rule_ids`` further restricts
    to a named subset.
    """
    ctx = context or LintContext()
    report = LintReport()
    targets = _expand(obj, ctx) if expand else iter([(obj, ctx)])
    wanted = set(rule_ids) if rule_ids is not None else None
    for target, target_ctx in targets:
        for rule in rules_for(target):
            if wanted is not None and rule.rule_id not in wanted:
                continue
            try:
                report.diagnostics.extend(rule.fn(target, target_ctx))
            except Exception as exc:  # a broken rule must not mask others
                report.add(
                    Diagnostic(
                        rule="LINT000",
                        severity=Severity.ERROR,
                        location=target_ctx.prefix(type(target).__name__),
                        message=f"rule {rule.rule_id} crashed: {exc!r}",
                        hint="this is a bug in the lint rule itself",
                    )
                )
    return report
