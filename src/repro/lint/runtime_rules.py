"""Runtime-layer lint rules: kernel-graph legality and QoS feasibility.

These rules inspect :class:`~repro.scheduler.kernel_graph.KernelGraph`
objects, optionally against the DSE product (``ctx.design_spaces``),
the QoS bound (``ctx.qos_ms``) and the device pool (``ctx.devices``).
The scheduler admission check runs them before Step 1 so infeasible
requests are rejected with a diagnostic instead of being scheduled.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

import networkx as nx

from ..scheduler.kernel_graph import KernelGraph
from .core import Diagnostic, LintContext, Severity, register_rule

__all__: List[str] = []


@register_rule(
    "RT001",
    Severity.ERROR,
    (KernelGraph,),
    "application kernel graph is empty or cyclic",
)
def check_graph_acyclic(graph: KernelGraph, ctx: LintContext) -> Iterator[Diagnostic]:
    """The two-step scheduler list-schedules in topological order; a
    cycle (or an empty graph) has no valid schedule at all."""
    loc = ctx.prefix(graph.name)
    if len(graph) == 0:
        yield Diagnostic(
            rule="RT001",
            severity=Severity.ERROR,
            location=loc,
            message="kernel graph has no kernels",
            hint="add at least one kernel before scheduling",
        )
        return
    if not nx.is_directed_acyclic_graph(graph.graph):
        cycle = nx.find_cycle(graph.graph)
        path = " -> ".join(u for u, _ in cycle) + f" -> {cycle[0][0]}"
        yield Diagnostic(
            rule="RT001",
            severity=Severity.ERROR,
            location=loc,
            message=f"dependency cycle: {path}",
            hint="kernel graphs must be DAGs (Section V)",
        )


def _best_case_latency_ms(
    graph: KernelGraph, ctx: LintContext
) -> Optional[Dict[str, float]]:
    """Per-kernel zero-load lower bound: the fastest implementation on
    any platform, ignoring transfers and queueing.  ``None`` when any
    kernel has no design space (RT003's concern, not RT002's)."""
    assert ctx.design_spaces is not None
    best: Dict[str, float] = {}
    for name in graph.kernel_names:
        lats = [
            space.min_latency().latency_ms
            for (kname, _), space in ctx.design_spaces.items()
            if kname == name
        ]
        if not lats:
            return None
        best[name] = min(lats)
    return best


@register_rule(
    "RT002",
    Severity.ERROR,
    (KernelGraph,),
    "critical-path latency lower bound already exceeds the QoS bound",
)
def check_qos_feasibility(graph: KernelGraph, ctx: LintContext) -> Iterator[Diagnostic]:
    """If the sum of best-case kernel latencies along the critical path
    beats the 200 ms bound with zero queueing and free transfers, no
    schedule can ever meet QoS — reject at admission."""
    if ctx.design_spaces is None or ctx.qos_ms is None:
        return
    if len(graph) == 0 or not nx.is_directed_acyclic_graph(graph.graph):
        return  # RT001 already fired
    best = _best_case_latency_ms(graph, ctx)
    if best is None:
        return  # RT003 already fired
    finish: Dict[str, float] = {}
    for name in nx.topological_sort(graph.graph):
        ready = max((finish[p] for p in graph.predecessors(name)), default=0.0)
        finish[name] = ready + best[name]
    lower_bound = max(finish.values())
    if lower_bound > ctx.qos_ms:
        critical = max(finish, key=lambda n: finish[n])
        yield Diagnostic(
            rule="RT002",
            severity=Severity.ERROR,
            location=ctx.prefix(graph.name),
            message=(
                f"critical-path lower bound {lower_bound:.1f} ms exceeds the "
                f"QoS bound {ctx.qos_ms:.1f} ms even with zero queueing "
                f"(path ends at {critical!r})"
            ),
            hint="raise the QoS bound, shrink the kernels, or add faster platforms",
        )


@register_rule(
    "RT003",
    Severity.ERROR,
    (KernelGraph,),
    "kernel has no implementation covering the device pool",
)
def check_implementation_coverage(
    graph: KernelGraph, ctx: LintContext
) -> Iterator[Diagnostic]:
    """Step 1 raises a bare RuntimeError mid-schedule when a kernel has
    no design space on any pooled device; admission should catch the
    coverage gap up front."""
    if ctx.design_spaces is None:
        return
    covered: Dict[str, Set[str]] = {name: set() for name in graph.kernel_names}
    for (kname, platform) in ctx.design_spaces:
        if kname in covered:
            covered[kname].add(platform)
    pool_platforms = {d.platform for d in ctx.devices}
    pool_families = {d.device_type for d in ctx.devices}
    for name, platforms in covered.items():
        loc = ctx.prefix(f"{graph.name}/{name}")
        if not platforms:
            yield Diagnostic(
                rule="RT003",
                severity=Severity.ERROR,
                location=loc,
                message=f"kernel {name!r} has no design space on any platform",
                hint="run DSE for this kernel before scheduling",
            )
            continue
        if pool_platforms and not (platforms & pool_platforms):
            yield Diagnostic(
                rule="RT003",
                severity=Severity.ERROR,
                location=loc,
                message=(
                    f"kernel {name!r} has implementations only for "
                    f"{sorted(platforms)}, none of which is in the device "
                    f"pool {sorted(pool_platforms)}"
                ),
                hint="explore the kernel on the pooled platforms",
            )
            continue
        if len(pool_families) > 1:
            families = {
                space.device_type
                for (kname, platform), space in ctx.design_spaces.items()
                if kname == name and platform in pool_platforms
            }
            if len(families) == 1:
                only = next(iter(families)).value
                yield Diagnostic(
                    rule="RT003",
                    severity=Severity.INFO,
                    location=loc,
                    message=(
                        f"kernel {name!r} is only implemented on the {only} "
                        "family; the heterogeneous scheduler cannot migrate it"
                    ),
                    hint="add design points for the other family to widen the trade-off",
                )
