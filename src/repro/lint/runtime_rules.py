"""Runtime-layer lint rules: kernel-graph legality, QoS feasibility,
and chaos-experiment sanity.

These rules inspect :class:`~repro.scheduler.kernel_graph.KernelGraph`
objects, optionally against the DSE product (``ctx.design_spaces``),
the QoS bound (``ctx.qos_ms``) and the device pool (``ctx.devices``).
The scheduler admission check runs them before Step 1 so infeasible
requests are rejected with a diagnostic instead of being scheduled.

RT004/RT005 extend the same gate to fault-injection inputs
(:class:`~repro.faults.events.FaultSchedule`,
:class:`~repro.faults.policy.RetryPolicy`): a chaos experiment whose
schedule leaves a kernel with zero eligible devices, or whose retry
policy can never give up, wastes a full simulation before the problem
surfaces."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

import networkx as nx

from ..cluster.scaling import AutoscalerConfig
from ..cluster.simulation import ClusterSimulation
from ..faults.events import FaultSchedule
from ..faults.injector import FaultInjector
from ..faults.policy import RetryPolicy
from ..scheduler.kernel_graph import KernelGraph
from ..scheduler.scheduler import PolyScheduler
from .core import Diagnostic, LintContext, Severity, register_rule

__all__: List[str] = []


@register_rule(
    "RT001",
    Severity.ERROR,
    (KernelGraph,),
    "application kernel graph is empty or cyclic",
)
def check_graph_acyclic(graph: KernelGraph, ctx: LintContext) -> Iterator[Diagnostic]:
    """The two-step scheduler list-schedules in topological order; a
    cycle (or an empty graph) has no valid schedule at all."""
    loc = ctx.prefix(graph.name)
    if len(graph) == 0:
        yield Diagnostic(
            rule="RT001",
            severity=Severity.ERROR,
            location=loc,
            message="kernel graph has no kernels",
            hint="add at least one kernel before scheduling",
        )
        return
    if not nx.is_directed_acyclic_graph(graph.graph):
        cycle = nx.find_cycle(graph.graph)
        path = " -> ".join(u for u, _ in cycle) + f" -> {cycle[0][0]}"
        yield Diagnostic(
            rule="RT001",
            severity=Severity.ERROR,
            location=loc,
            message=f"dependency cycle: {path}",
            hint="kernel graphs must be DAGs (Section V)",
        )


def _best_case_latency_ms(
    graph: KernelGraph, ctx: LintContext
) -> Optional[Dict[str, float]]:
    """Per-kernel zero-load lower bound: the fastest implementation on
    any platform, ignoring transfers and queueing.  ``None`` when any
    kernel has no design space (RT003's concern, not RT002's)."""
    assert ctx.design_spaces is not None
    best: Dict[str, float] = {}
    for name in graph.kernel_names:
        lats = [
            space.min_latency().latency_ms
            for (kname, _), space in ctx.design_spaces.items()
            if kname == name
        ]
        if not lats:
            return None
        best[name] = min(lats)
    return best


@register_rule(
    "RT002",
    Severity.ERROR,
    (KernelGraph,),
    "critical-path latency lower bound already exceeds the QoS bound",
)
def check_qos_feasibility(graph: KernelGraph, ctx: LintContext) -> Iterator[Diagnostic]:
    """If the sum of best-case kernel latencies along the critical path
    beats the 200 ms bound with zero queueing and free transfers, no
    schedule can ever meet QoS — reject at admission."""
    if ctx.design_spaces is None or ctx.qos_ms is None:
        return
    if len(graph) == 0 or not nx.is_directed_acyclic_graph(graph.graph):
        return  # RT001 already fired
    best = _best_case_latency_ms(graph, ctx)
    if best is None:
        return  # RT003 already fired
    finish: Dict[str, float] = {}
    for name in nx.topological_sort(graph.graph):
        ready = max((finish[p] for p in graph.predecessors(name)), default=0.0)
        finish[name] = ready + best[name]
    lower_bound = max(finish.values())
    if lower_bound > ctx.qos_ms:
        critical = max(finish, key=lambda n: finish[n])
        yield Diagnostic(
            rule="RT002",
            severity=Severity.ERROR,
            location=ctx.prefix(graph.name),
            message=(
                f"critical-path lower bound {lower_bound:.1f} ms exceeds the "
                f"QoS bound {ctx.qos_ms:.1f} ms even with zero queueing "
                f"(path ends at {critical!r})"
            ),
            hint="raise the QoS bound, shrink the kernels, or add faster platforms",
        )


@register_rule(
    "RT003",
    Severity.ERROR,
    (KernelGraph,),
    "kernel has no implementation covering the device pool",
)
def check_implementation_coverage(
    graph: KernelGraph, ctx: LintContext
) -> Iterator[Diagnostic]:
    """Step 1 raises a bare RuntimeError mid-schedule when a kernel has
    no design space on any pooled device; admission should catch the
    coverage gap up front."""
    if ctx.design_spaces is None:
        return
    covered: Dict[str, Set[str]] = {name: set() for name in graph.kernel_names}
    for (kname, platform) in ctx.design_spaces:
        if kname in covered:
            covered[kname].add(platform)
    pool_platforms = {d.platform for d in ctx.devices}
    pool_families = {d.device_type for d in ctx.devices}
    for name, platforms in covered.items():
        loc = ctx.prefix(f"{graph.name}/{name}")
        if not platforms:
            yield Diagnostic(
                rule="RT003",
                severity=Severity.ERROR,
                location=loc,
                message=f"kernel {name!r} has no design space on any platform",
                hint="run DSE for this kernel before scheduling",
            )
            continue
        if pool_platforms and not (platforms & pool_platforms):
            yield Diagnostic(
                rule="RT003",
                severity=Severity.ERROR,
                location=loc,
                message=(
                    f"kernel {name!r} has implementations only for "
                    f"{sorted(platforms)}, none of which is in the device "
                    f"pool {sorted(pool_platforms)}"
                ),
                hint="explore the kernel on the pooled platforms",
            )
            continue
        if len(pool_families) > 1:
            families = {
                space.device_type
                for (kname, platform), space in ctx.design_spaces.items()
                if kname == name and platform in pool_platforms
            }
            if len(families) == 1:
                only = next(iter(families)).value
                yield Diagnostic(
                    rule="RT003",
                    severity=Severity.INFO,
                    location=loc,
                    message=(
                        f"kernel {name!r} is only implemented on the {only} "
                        "family; the heterogeneous scheduler cannot migrate it"
                    ),
                    hint="add design points for the other family to widen the trade-off",
                )


def _device_platform(device: object) -> str:
    """Platform name for either pool representation: scheduler
    ``DeviceSlot`` (``.platform``) or runtime ``AcceleratorInstance``
    (``.spec.name``)."""
    platform = getattr(device, "platform", None)
    if platform is not None:
        return platform
    return device.spec.name


@register_rule(
    "RT004",
    Severity.ERROR,
    (FaultSchedule,),
    "fault schedule permanently kills every device a kernel can run on",
)
def check_schedule_leaves_survivors(
    schedule: FaultSchedule, ctx: LintContext
) -> Iterator[Diagnostic]:
    """Failover replans over survivors; if a schedule permanently fails
    every pooled device of the only family some kernel is implemented
    on, that kernel has nowhere left to run and every request will
    exhaust its retries.  Such a schedule measures nothing but the
    abandonment path — almost always an experiment-setup mistake."""
    if not ctx.devices or ctx.design_spaces is None:
        return
    dead = {
        d.device_id
        for d in ctx.devices
        if schedule.permanently_failed(d.device_id)
    }
    if not dead:
        return
    # Families with at least one survivor in the pool.
    surviving_families = {
        d.device_type for d in ctx.devices if d.device_id not in dead
    }
    pool_platforms = {_device_platform(d) for d in ctx.devices}
    # kernel -> families it can run on within this pool
    families: Dict[str, Set[object]] = {}
    for (kname, platform), space in ctx.design_spaces.items():
        if platform in pool_platforms:
            families.setdefault(kname, set()).add(space.device_type)
    for kname, fams in sorted(families.items()):
        if not (fams & surviving_families):
            needed = sorted(f.value for f in fams)
            yield Diagnostic(
                rule="RT004",
                severity=Severity.ERROR,
                location=ctx.prefix(kname),
                message=(
                    f"schedule permanently fails every pooled device of "
                    f"{needed} — the only famil"
                    f"{'y' if len(needed) == 1 else 'ies'} implementing "
                    f"kernel {kname!r}; failover has no survivor to "
                    "replan onto"
                ),
                hint=(
                    "add a RECOVERY event, spare a device of the family, "
                    "or widen the kernel's implementations"
                ),
            )


@register_rule(
    "RT005",
    Severity.ERROR,
    (RetryPolicy,),
    "retry policy with zero timeout or unbounded backoff",
)
def check_retry_policy_bounded(
    policy: RetryPolicy, ctx: LintContext
) -> Iterator[Diagnostic]:
    """Retries are how requests survive faults, but only a *bounded*
    policy converges: a zero timeout re-dispatches into a still-dead
    device with no detection delay modelled, and an uncapped (or
    non-positive-cap) backoff grows without limit — both corrupt the
    latency distribution the chaos run is meant to measure."""
    loc = ctx.prefix("retry_policy")
    if policy.timeout_ms <= 0:
        yield Diagnostic(
            rule="RT005",
            severity=Severity.ERROR,
            location=loc,
            message=(
                f"timeout_ms={policy.timeout_ms:g} models instantaneous "
                "failure detection; the requester would never wait out a "
                "latency timeout"
            ),
            hint="use a positive timeout (the default is 20 ms)",
        )
    if not policy.bounded:
        yield Diagnostic(
            rule="RT005",
            severity=Severity.ERROR,
            location=loc,
            message=(
                f"backoff cap {policy.backoff_cap_ms:g} ms does not bound "
                "the exponential backoff; retry delays grow without limit"
            ),
            hint="set 0 < backoff_cap_ms < inf (the default is 80 ms)",
        )
    if policy.max_retries == 0:
        yield Diagnostic(
            rule="RT005",
            severity=Severity.WARNING,
            location=loc,
            message=(
                "max_retries=0 abandons a request on its first lost "
                "execution; no failover can happen"
            ),
            hint="allow at least one retry to exercise failover",
        )


@register_rule(
    "RT006",
    Severity.WARNING,
    (PolyScheduler,),
    "plan cache enabled without an invalidation hook bound",
)
def check_plan_cache_invalidation(
    scheduler: PolyScheduler, ctx: LintContext
) -> Iterator[Diagnostic]:
    """A :class:`~repro.scheduler.SchedulePlanCache` keys plans on the
    graph structure and the *live* device set, deliberately excluding
    anything only :meth:`invalidate` can refresh (device health flips,
    swapped design spaces).  A cache nobody invalidates serves stale
    plans across exactly the fault/recovery transitions the runtime
    replans for — ``LeafNode`` wires the hook automatically
    (``invalidate_plans()``); a standalone cache-enabled scheduler must
    call ``plan_cache.bind_invalidation(owner)`` from whoever owns the
    replan loop."""
    cache = scheduler.plan_cache
    if cache is not None and not cache.has_invalidation_hook:
        yield Diagnostic(
            rule="RT006",
            severity=Severity.WARNING,
            location=ctx.prefix("scheduler"),
            message=(
                "scheduler carries a plan cache with no invalidation hook "
                "bound; fault/recovery transitions would keep serving "
                "plans computed against the old device view"
            ),
            hint=(
                "bind the cache to the replan owner "
                "(plan_cache.bind_invalidation(node)) or build the node "
                "with plan_cache=... which wires invalidate_plans()"
            ),
        )


@register_rule(
    "RT007",
    Severity.ERROR,
    (AutoscalerConfig,),
    "autoscaler config cannot converge (bounds, interval, or hysteresis)",
)
def check_autoscaler_config(
    config: AutoscalerConfig, ctx: LintContext
) -> Iterator[Diagnostic]:
    """An elastic fleet only converges under three structural
    conditions: a satisfiable size range, a positive evaluation period,
    and a hysteresis band that actually separates the scale-up and
    scale-down triggers with the target operating point between them.
    Violating any of these either deadlocks the fleet driver or
    guarantees launch/terminate oscillation — diagnose at admission,
    before a replay is paid for (the RT004/RT005 pattern)."""
    loc = ctx.prefix("autoscaler")
    if config.min_nodes > config.max_nodes:
        yield Diagnostic(
            rule="RT007",
            severity=Severity.ERROR,
            location=loc,
            message=(
                f"min_nodes={config.min_nodes} exceeds "
                f"max_nodes={config.max_nodes}; no fleet size satisfies "
                "the bounds"
            ),
            hint="set min_nodes <= max_nodes",
        )
    if config.min_nodes < 1:
        yield Diagnostic(
            rule="RT007",
            severity=Severity.ERROR,
            location=loc,
            message=(
                f"min_nodes={config.min_nodes} allows an empty fleet; "
                "arrivals would have no serving node to route to"
            ),
            hint="keep at least one node provisioned (min_nodes >= 1)",
        )
    if config.eval_interval_ms <= 0:
        yield Diagnostic(
            rule="RT007",
            severity=Severity.ERROR,
            location=loc,
            message=(
                f"eval_interval_ms={config.eval_interval_ms:g} never "
                "advances the evaluation clock; the scaling loop would "
                "re-evaluate the same instant forever"
            ),
            hint="use a positive evaluation interval (the default is 1000 ms)",
        )
    if not config.hysteresis_ok:
        if config.scale_down_utilization >= config.scale_up_utilization:
            detail = (
                f"scale_down_utilization={config.scale_down_utilization:g} "
                f">= scale_up_utilization={config.scale_up_utilization:g}: "
                "every interval is simultaneously above the launch edge or "
                "below the terminate edge"
            )
        else:
            detail = (
                f"target_utilization={config.target_utilization:g} lies "
                "outside the band "
                f"[{config.scale_down_utilization:g}, "
                f"{config.scale_up_utilization:g}]: each correction "
                "overshoots into the opposite trigger"
            )
        yield Diagnostic(
            rule="RT007",
            severity=Severity.ERROR,
            location=loc,
            message=f"hysteresis band guarantees oscillation — {detail}",
            hint=(
                "keep scale_down < target <= scale_up "
                "(defaults 0.30 < 0.60 <= 0.85)"
            ),
        )
    elif config.warmup_ms > 0 and config.warmup_ms >= 10.0 * config.eval_interval_ms:
        yield Diagnostic(
            rule="RT007",
            severity=Severity.WARNING,
            location=loc,
            message=(
                f"warmup_ms={config.warmup_ms:g} spans "
                f"{config.warmup_ms / config.eval_interval_ms:.0f} "
                "evaluation intervals; demand spikes shorter than the "
                "warm-up never see the capacity they triggered"
            ),
            hint="lengthen eval_interval_ms or shorten warmup_ms",
        )


@register_rule(
    "OBS001",
    Severity.WARNING,
    (FaultInjector,),
    "fault injection enabled without a tracer or heartbeat sink",
)
def check_injector_observable(
    injector: FaultInjector, ctx: LintContext
) -> Iterator[Diagnostic]:
    """A chaos run that records nothing but end-of-run aggregates cannot
    explain *which* fault caused a QoS excursion or how long detection
    took; attach a :class:`~repro.obs.SpanTracer` (directly, or via the
    node / ``run_simulation(tracer=...)``) so injections, missed
    heartbeats and failover replans land in the event stream."""
    if injector.schedule.events and not injector.tracer.enabled:
        yield Diagnostic(
            rule="OBS001",
            severity=Severity.WARNING,
            location=ctx.prefix("fault_injector"),
            message=(
                f"injector carries {len(injector.schedule.events)} fault "
                "event(s) but its tracer is disabled; the chaos run will "
                "leave no event trail"
            ),
            hint=(
                "pass tracer=SpanTracer() to the injector or to "
                "run_simulation (repro obs --crash ... does this)"
            ),
        )


#: Fleet size at which an unsampled traced replay stops being a
#: debugging convenience and starts being an artifact-size hazard.
OBS002_FLEET_NODES = 3


@register_rule(
    "OBS002",
    Severity.WARNING,
    (ClusterSimulation,),
    "fleet-scale traced replay without a sampling policy",
)
def check_cluster_sampled(
    sim: ClusterSimulation, ctx: LintContext
) -> Iterator[Diagnostic]:
    """A traced fleet replay emits a full span tree per request; above a
    few nodes the unsampled stream runs to millions of events and the
    Perfetto artifact stops loading.  Bind a
    :class:`~repro.obs.sampling.SamplingPolicy` (head rate plus the
    tail criteria) so exports stay bounded while QoS violators and
    faulted requests keep complete spans."""
    if not sim.tracer.enabled or sim.sampler is not None:
        return
    if sim.config.max_nodes < OBS002_FLEET_NODES:
        return
    detail = (
        "with trace_nodes=True every per-request span lands in the stream"
        if sim.trace_nodes
        else "cluster.route alone adds one event per request"
    )
    yield Diagnostic(
        rule="OBS002",
        severity=Severity.WARNING,
        location=ctx.prefix("cluster_simulation"),
        message=(
            f"traced fleet replay scales to {sim.config.max_nodes} nodes "
            f"with no sampling policy; {detail}"
        ),
        hint=(
            "pass sampler=SamplingPolicy(head_rate=..., tail_qos_ms=...) "
            "to ClusterSimulation (repro cluster --trace does this)"
        ),
    )
