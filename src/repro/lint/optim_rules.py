"""Optimization-layer lint rules: knob applicability and FPGA budgets.

These rules inspect :class:`~repro.lint.core.DesignCheck` triples —
one (kernel, config, spec) candidate implementation.  The DSE
``validate=True`` gate runs them over every enumerated config *before*
the analytical models are evaluated, pruning illegal points instead of
modelling them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List

from ..hardware.config import ImplConfig
from ..hardware.fpga_model import FPGAModel
from ..hardware.specs import DeviceType
from ..optim.knobs import applicable_knobs
from ..patterns.ppg import Kernel
from .core import DesignCheck, Diagnostic, LintContext, Severity, register_rule

__all__: List[str] = []

#: Default OPT004 cap on a kernel's enumerated (pre-pruning) configs
#: per device.  The bundled Table-II kernels top out at 1536; anything
#: past this is a knob-product explosion the DSE will pay for linearly.
DEFAULT_CONFIG_BUDGET = 2048

#: Knobs that are platform features rather than Table-I code
#: transformations — always legal regardless of pattern mix.
_ALWAYS_APPLICABLE = frozenset({"freq_scale", "fused"})

_CONFIG_DEFAULTS: Dict[str, object] = {
    f.name: f.default for f in dataclasses.fields(ImplConfig)
}


@register_rule(
    "OPT001",
    Severity.ERROR,
    (DesignCheck,),
    "knob set to a non-default value but inapplicable to the pattern/device",
)
def check_knob_applicability(check: DesignCheck, ctx: LintContext) -> Iterator[Diagnostic]:
    """Table I defines which optimization applies to which pattern on
    which device family; a knob outside that set is dead configuration
    at best and an invalid code transformation at worst."""
    allowed = applicable_knobs(
        check.kernel.pattern_kinds, check.spec.device_type
    ) | _ALWAYS_APPLICABLE
    for name, default in _CONFIG_DEFAULTS.items():
        value = getattr(check.config, name)
        if value == default or name in allowed:
            continue
        kinds = ", ".join(k.value for k in check.kernel.pattern_kinds)
        yield Diagnostic(
            rule="OPT001",
            severity=Severity.ERROR,
            location=ctx.prefix(check.location),
            message=(
                f"knob {name}={value!r} is not applicable to patterns "
                f"[{kinds}] on {check.spec.device_type.value} (Table I)"
            ),
            hint=f"leave {name} at its default ({default!r}) or change the pattern mix",
        )


@register_rule(
    "OPT002",
    Severity.ERROR,
    (DesignCheck,),
    "FPGA implementation over-subscribes the part's resource budget",
)
def check_fpga_resources(check: DesignCheck, ctx: LintContext) -> Iterator[Diagnostic]:
    """A design that does not place on the part wastes DSE time at best;
    catching it before model evaluation keeps the space honest."""
    if check.spec.device_type != DeviceType.FPGA:
        return
    res = FPGAModel(check.spec).resources(check.kernel, check.config)
    over = []
    if res.dsp > check.spec.dsp_slices:
        over.append(f"DSP {res.dsp}/{check.spec.dsp_slices}")
    if res.bram_bytes > check.spec.bram_bytes:
        over.append(f"BRAM {res.bram_bytes}/{check.spec.bram_bytes} bytes")
    if res.logic_cells_k > check.spec.logic_cells_k:
        over.append(f"logic {res.logic_cells_k:.0f}k/{check.spec.logic_cells_k:.0f}k cells")
    if over:
        yield Diagnostic(
            rule="OPT002",
            severity=Severity.ERROR,
            location=ctx.prefix(check.location),
            message=(
                f"design {check.config.describe()} over-subscribes "
                f"{check.spec.name}: " + ", ".join(over)
            ),
            hint="reduce unroll/compute_units or target a larger part",
        )


@register_rule(
    "OPT003",
    Severity.WARNING,
    (DesignCheck,),
    "degenerate work-group size",
)
def check_work_group_size(check: DesignCheck, ctx: LintContext) -> Iterator[Diagnostic]:
    """Non-power-of-two work-groups fragment wavefronts/SIMD lanes, and
    groups larger than the kernel's data parallelism leave lanes idle."""
    wg = check.config.work_group_size
    loc = ctx.prefix(check.location)
    if wg & (wg - 1) != 0:
        yield Diagnostic(
            rule="OPT003",
            severity=Severity.WARNING,
            location=loc,
            message=f"work_group_size={wg} is not a power of two",
            hint="use a power-of-two work-group size (64, 128, 256, ...)",
        )
    max_par = check.kernel.max_data_parallelism
    if wg > max_par:
        yield Diagnostic(
            rule="OPT003",
            severity=Severity.WARNING,
            location=loc,
            message=(
                f"work_group_size={wg} exceeds the kernel's data "
                f"parallelism ({max_par}): most work-items are idle"
            ),
            hint=f"cap work_group_size at {max_par}",
        )


@register_rule(
    "OPT004",
    Severity.WARNING,
    (Kernel,),
    "design-space cost exceeds the configured budget",
)
def check_config_budget(kernel: Kernel, ctx: LintContext) -> Iterator[Diagnostic]:
    """Knob products explode combinatorially (each candidate list
    multiplies the space); a kernel whose enumerated space blows past
    the budget makes every DSE run pay model-evaluation time linearly in
    the excess.  Counting via the local plan's candidate lists costs
    nothing — the space itself is never materialized.

    With a guided search in context (``ctx.search``), the quantity the
    DSE actually pays for is *model evaluations*, capped at
    ``search.max_evals`` — so the rule budgets
    ``min(enumerated, max_evals)`` instead of the raw enumeration.
    """
    from ..optim.global_opt import GlobalOptimizer
    from ..optim.local_opt import LocalOptimizer

    specs = (ctx.spec,) if ctx.spec is not None else tuple(ctx.specs)
    budget = ctx.config_budget if ctx.config_budget is not None else DEFAULT_CONFIG_BUDGET
    for spec in specs:
        if spec is None:
            continue
        local = LocalOptimizer(spec.device_type).plan(kernel)
        fused_variants = 2 if GlobalOptimizer(spec).plan(kernel).worthwhile else 1
        count = local.space_size * fused_variants
        if ctx.search is not None:
            cost = min(count, ctx.search.max_evals)
            if cost > budget:
                yield Diagnostic(
                    rule="OPT004",
                    severity=Severity.WARNING,
                    location=ctx.prefix(f"{kernel.name}@{spec.name}"),
                    message=(
                        f"guided search spends up to {cost} model "
                        f"evaluations on {spec.device_type.value} "
                        f"(budget {budget}): lower search.max_evals"
                    ),
                    hint=(
                        "reduce SearchConfig.max_evals or raise "
                        "LintContext.config_budget if the spend is intended"
                    ),
                )
            continue
        if count > budget:
            yield Diagnostic(
                rule="OPT004",
                severity=Severity.WARNING,
                location=ctx.prefix(f"{kernel.name}@{spec.name}"),
                message=(
                    f"kernel enumerates {count} configs on "
                    f"{spec.device_type.value} (budget {budget}): "
                    "knob-product explosion before pruning"
                ),
                hint=(
                    "narrow per-knob candidate lists or split the kernel; "
                    "switch the DSE to strategy='guided' or raise "
                    "LintContext.config_budget if the size is intended"
                ),
            )


@register_rule(
    "OPT005",
    Severity.WARNING,
    (),  # bound to SearchConfig below, after the lazy import
    "guided search missing a seed or a quality gate",
)
def check_search_config(search, ctx: LintContext) -> Iterator[Diagnostic]:
    """A guided search without an explicit seed is not reproducible
    (every run explores a different subspace), and one without a
    hypervolume quality gate can silently regress the Pareto front —
    the two properties the golden A/B tests pin down."""
    if search.seed is None:
        yield Diagnostic(
            rule="OPT005",
            severity=Severity.WARNING,
            location=ctx.prefix("SearchConfig"),
            message="guided search has no seed: runs are not reproducible",
            hint="set SearchConfig.seed (any int; 0 is the conventional default)",
        )
    if search.min_hypervolume_ratio is None:
        yield Diagnostic(
            rule="OPT005",
            severity=Severity.WARNING,
            location=ctx.prefix("SearchConfig"),
            message=(
                "guided search has no hypervolume quality gate: front "
                "regressions go undetected"
            ),
            hint="set SearchConfig.min_hypervolume_ratio (0.99 is the bench gate)",
        )


def _bind_opt005_target() -> None:
    # SearchConfig lives in repro.optim.search, which imports repro.lint
    # lazily; binding the target after registration keeps the import
    # graph acyclic without duck-typing the rule dispatch.
    from ..optim.search import SearchConfig
    from .core import _REGISTRY

    rule = _REGISTRY["OPT005"]
    _REGISTRY["OPT005"] = dataclasses.replace(rule, targets=(SearchConfig,))


_bind_opt005_target()
