"""``repro.lint`` — static diagnostics for PPGs, design points, schedules.

A rule-registry lint engine over Poly's three layers:

* **pattern layer** — PPG edge shape/dtype compatibility, scatter-write
  hazards, fusion legality, orphans and cycles (``PPG00x`` rules);
* **optimization layer** — Table-I knob applicability, FPGA resource
  budgets, degenerate work-group sizes, design-space/evaluation
  budgets and guided-search hygiene (``OPT00x`` rules);
* **runtime layer** — kernel-graph legality, QoS-feasibility lower
  bounds, device-pool implementation coverage (``RT00x`` rules).

Entry points: :func:`run_lint` for any lintable object, the
``repro lint`` CLI subcommand, the ``validate=True`` gates in
:mod:`repro.frontend.builder` and :mod:`repro.optim.dse`, and the
scheduler admission check in :class:`repro.scheduler.PolyScheduler`.
"""

from .core import (
    DesignCheck,
    Diagnostic,
    LintContext,
    LintError,
    LintReport,
    LintRule,
    Severity,
    all_rules,
    register_rule,
    rules_for,
    run_lint,
)

# Importing the rule modules populates the registry.
from . import optim_rules, pattern_rules, runtime_rules  # noqa: F401  (registration side effect)

__all__ = [
    "DesignCheck",
    "Diagnostic",
    "LintContext",
    "LintError",
    "LintReport",
    "LintRule",
    "Severity",
    "all_rules",
    "register_rule",
    "rules_for",
    "run_lint",
    "lint_application",
]


def lint_application(app, specs=(), design_spaces=None, devices=(), qos_ms=None):
    """Lint one :class:`~repro.apps.base.Application` end to end.

    ``specs``/``design_spaces``/``devices`` are optional context: with
    only the app, the structural pattern/graph rules run; adding the DSE
    product and a device pool enables the runtime-feasibility rules.
    """
    ctx = LintContext(
        specs=tuple(specs),
        design_spaces=design_spaces,
        devices=tuple(devices),
        qos_ms=qos_ms,
    )
    return run_lint(app, ctx)
