"""Pattern-layer lint rules: PPG structure and dataflow legality.

These rules inspect :class:`~repro.patterns.ppg.PPG` graphs (usually
reached through their enclosing :class:`~repro.patterns.ppg.Kernel`):
tensor compatibility along edges, scatter-write hazards, fusion
legality against on-chip capacity, and graph shape (orphans, cycles).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import networkx as nx

from ..hardware.specs import FPGA_SPECS, GPU_SPECS
from ..optim.global_opt import GlobalOptimizer
from ..patterns.annotations import Pattern, PatternKind, Scatter, Tensor
from ..patterns.ppg import PPG
from .core import Diagnostic, LintContext, Severity, register_rule

__all__: List[str] = []


def _edge_loc(ctx: LintContext, ppg: PPG, src: Pattern, dst: Pattern) -> str:
    return ctx.prefix(f"{ppg.name}/{src.name}->{dst.name}")


def _consumed_input(dst: Pattern, produced: Tensor) -> Optional[Tensor]:
    """The dst input tensor matching the producer's output, by name."""
    for t in dst.inputs:
        if t.name == produced.name:
            return t
    return None


@register_rule(
    "PPG001",
    Severity.ERROR,
    (PPG,),
    "PPG edge connects tensors with mismatched shapes",
)
def check_edge_shape(ppg: PPG, ctx: LintContext) -> Iterator[Diagnostic]:
    """A consumer reading the producer's output under a different shape
    indexes out of bounds (or silently truncates) on the device."""
    for edge in ppg.edges:
        produced = edge.src.output
        consumed = _consumed_input(edge.dst, produced)
        if consumed is not None and consumed.shape != produced.shape:
            yield Diagnostic(
                rule="PPG001",
                severity=Severity.ERROR,
                location=_edge_loc(ctx, ppg, edge.src, edge.dst),
                message=(
                    f"shape mismatch on tensor {produced.name!r}: producer "
                    f"writes {produced.shape}, consumer reads {consumed.shape}"
                ),
                hint="make the consumer's input tensor match the producer's output shape",
            )


@register_rule(
    "PPG002",
    Severity.ERROR,
    (PPG,),
    "PPG edge connects tensors with mismatched dtypes",
)
def check_edge_dtype(ppg: PPG, ctx: LintContext) -> Iterator[Diagnostic]:
    """Silent dtype reinterpretation across an edge corrupts data."""
    for edge in ppg.edges:
        produced = edge.src.output
        consumed = _consumed_input(edge.dst, produced)
        if consumed is not None and consumed.dtype != produced.dtype:
            yield Diagnostic(
                rule="PPG002",
                severity=Severity.ERROR,
                location=_edge_loc(ctx, ppg, edge.src, edge.dst),
                message=(
                    f"dtype mismatch on tensor {produced.name!r}: producer "
                    f"writes {produced.dtype}, consumer reads {consumed.dtype}"
                ),
                hint="insert an explicit cast pattern or align the dtypes",
            )


@register_rule(
    "PPG003",
    Severity.INFO,
    (PPG,),
    "PPG edge whose consumer never reads the produced tensor",
)
def check_dangling_dependency(ppg: PPG, ctx: LintContext) -> Iterator[Diagnostic]:
    """An edge the consumer does not actually consume is either a stale
    dependency (over-serializing the schedule) or a missed connection."""
    for edge in ppg.edges:
        produced = edge.src.output
        if _consumed_input(edge.dst, produced) is not None:
            continue
        if any(t.elements == produced.elements for t in edge.dst.inputs):
            continue  # consumed under a renamed tensor of the same extent
        src_names = {t.name for t in edge.src.inputs} | {produced.name}
        if any(t.name in src_names for t in edge.dst.inputs):
            continue  # both operate on a shared stream (in-place idiom)
        yield Diagnostic(
            rule="PPG003",
            severity=Severity.INFO,
            location=_edge_loc(ctx, ppg, edge.src, edge.dst),
            message=(
                f"consumer {edge.dst.name} reads none of producer "
                f"{edge.src.name}'s output ({produced.name!r}, "
                f"{produced.elements} elements)"
            ),
            hint="drop the edge or feed the producer's output into the consumer",
        )


@register_rule(
    "PPG004",
    Severity.WARNING,
    (PPG,),
    "Scatter may write the same output index from multiple elements",
)
def check_scatter_conflict(ppg: PPG, ctx: LintContext) -> Iterator[Diagnostic]:
    """A Scatter whose output index space is smaller than its input
    domain cannot be a bijection: concurrent lanes race on the shared
    output indices unless the combiner is atomic."""
    for pattern in ppg.graph.nodes:
        if not isinstance(pattern, Scatter) or pattern.index_space is None:
            continue
        n_in = pattern.inputs[0].elements
        if pattern.index_space < n_in:
            yield Diagnostic(
                rule="PPG004",
                severity=Severity.WARNING,
                location=ctx.prefix(f"{ppg.name}/{pattern.name}"),
                message=(
                    f"scatter writes {n_in} elements into an index space of "
                    f"{pattern.index_space}: overlapping writes race without "
                    "an atomic combiner"
                ),
                hint="use atomics, privatize the output, or widen index_space",
            )


@register_rule(
    "PPG005",
    Severity.ERROR,
    (PPG,),
    "concurrent Scatters write the same output tensor",
)
def check_scatter_race(ppg: PPG, ctx: LintContext) -> Iterator[Diagnostic]:
    """Two Scatter patterns with no ordering between them (neither
    reaches the other in the PPG) writing the same output tensor is a
    write-write race: the result depends on device execution order."""
    scatters = [p for p in ppg.graph.nodes if p.kind == PatternKind.SCATTER]
    for i, a in enumerate(scatters):
        for b in scatters[i + 1:]:
            if a.output.name != b.output.name:
                continue
            if nx.has_path(ppg.graph, a, b) or nx.has_path(ppg.graph, b, a):
                continue  # ordered by a dependency chain
            yield Diagnostic(
                rule="PPG005",
                severity=Severity.ERROR,
                location=ctx.prefix(f"{ppg.name}/{a.name}&{b.name}"),
                message=(
                    f"unordered scatters {a.name} and {b.name} both write "
                    f"tensor {a.output.name!r} — write-write race"
                ),
                hint="order the scatters with an edge or write disjoint tensors",
            )


@register_rule(
    "PPG006",
    Severity.INFO,
    (PPG,),
    "intermediate tensor too large for any on-chip memory (fusion illegal)",
)
def check_fusion_legality(ppg: PPG, ctx: LintContext) -> Iterator[Diagnostic]:
    """Pre-check of Section IV-B's capacity constraint: an edge whose
    intermediate exceeds every candidate platform's on-chip budget can
    never be fused and will always round-trip through global memory."""
    specs = list(ctx.specs) or ([ctx.spec] if ctx.spec is not None else [])
    if not specs:  # fall back to the largest built-in parts
        specs = list(GPU_SPECS.values()) + list(FPGA_SPECS.values())
    capacity = max(GlobalOptimizer(s).onchip_capacity_bytes for s in specs)
    for edge in ppg.edges:
        if edge.bytes_moved > capacity:
            yield Diagnostic(
                rule="PPG006",
                severity=Severity.INFO,
                location=_edge_loc(ctx, ppg, edge.src, edge.dst),
                message=(
                    f"intermediate of {edge.bytes_moved} bytes exceeds the "
                    f"largest on-chip capacity ({capacity} bytes): fusion of "
                    "this pair is illegal on every platform"
                ),
                hint="tile the producer/consumer pair so the intermediate fits on chip",
            )


@register_rule(
    "PPG007",
    Severity.WARNING,
    (PPG,),
    "orphan pattern disconnected from the rest of the PPG",
)
def check_orphans(ppg: PPG, ctx: LintContext) -> Iterator[Diagnostic]:
    """In a multi-pattern PPG an isolated node usually means a missing
    edge — its results are computed but never consumed."""
    if ppg.graph.number_of_nodes() < 2:
        return
    for pattern in ppg.graph.nodes:
        if ppg.graph.degree(pattern) == 0:
            yield Diagnostic(
                rule="PPG007",
                severity=Severity.WARNING,
                location=ctx.prefix(f"{ppg.name}/{pattern.name}"),
                message=f"pattern {pattern.name} has no incoming or outgoing edges",
                hint="connect it to the dataflow or move it to its own kernel",
            )


@register_rule(
    "PPG008",
    Severity.ERROR,
    (PPG,),
    "PPG is empty or contains a dependency cycle",
)
def check_ppg_acyclic(ppg: PPG, ctx: LintContext) -> Iterator[Diagnostic]:
    """`PPG.connect` refuses cycle-creating edges, but graphs mutated
    directly (or deserialized) can still carry one; everything downstream
    assumes topological order exists."""
    loc = ctx.prefix(ppg.name)
    if ppg.graph.number_of_nodes() == 0:
        yield Diagnostic(
            rule="PPG008",
            severity=Severity.ERROR,
            location=loc,
            message="PPG has no patterns",
            hint="add at least one pattern before lowering the kernel",
        )
        return
    if not nx.is_directed_acyclic_graph(ppg.graph):
        cycle = nx.find_cycle(ppg.graph)
        path = " -> ".join(u.name for u, _ in cycle) + f" -> {cycle[0][0].name}"
        yield Diagnostic(
            rule="PPG008",
            severity=Severity.ERROR,
            location=loc,
            message=f"dependency cycle: {path}",
            hint="break the cycle; PPGs must be acyclic dataflow graphs",
        )
