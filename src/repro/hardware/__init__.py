"""Hardware layer: platform specs and analytical performance/power models.

Implements the modelling substrate the paper relies on (Section IV-C):
GPU specs from Table IV with a Hong&Kim-style analytical model, FPGA
specs from Table V with a FlexCL-style latency/resource/power model, a
PCIe transfer model for inter-kernel data movement, and DVFS/idle-state
management for the runtime power control of Section VI-C.
"""

from .config import ImplConfig
from .dvfs import DVFSPolicy, OperatingPoint, PowerState
from .fpga_model import FPGAModel, FPGAPerformanceEstimate, ResourceUsage
from .gpu_model import GPUModel, GPUPerformanceEstimate
from .model_cache import (
    CachedEstimate,
    ModelEvalCache,
    cache_stats,
    clear_model_cache,
    evaluate_cached,
    evaluate_many_cached,
    kernel_signature,
    model_cache,
)
from .pcie import PCIeLink
from .specs import (
    AMD_W9100,
    FPGA_SPECS,
    GPU_SPECS,
    INTEL_ARRIA10,
    NVIDIA_K20,
    XILINX_7V3,
    XILINX_ZCU102,
    DeviceType,
    FPGASpec,
    GPUSpec,
    spec_by_name,
)

__all__ = [
    "DeviceType",
    "GPUSpec",
    "FPGASpec",
    "AMD_W9100",
    "NVIDIA_K20",
    "XILINX_ZCU102",
    "XILINX_7V3",
    "INTEL_ARRIA10",
    "GPU_SPECS",
    "FPGA_SPECS",
    "spec_by_name",
    "ImplConfig",
    "GPUModel",
    "GPUPerformanceEstimate",
    "FPGAModel",
    "FPGAPerformanceEstimate",
    "ResourceUsage",
    "PCIeLink",
    "DVFSPolicy",
    "OperatingPoint",
    "PowerState",
    "CachedEstimate",
    "ModelEvalCache",
    "model_cache",
    "evaluate_cached",
    "evaluate_many_cached",
    "cache_stats",
    "clear_model_cache",
    "kernel_signature",
]


def model_for(spec):
    """Instantiate the right analytical model for a platform spec."""
    if spec.device_type == DeviceType.GPU:
        return GPUModel(spec)
    return FPGAModel(spec)
