"""DVFS and idle-power state management.

Section VI-C attributes part of Heter-Poly's power savings to runtime
frequency control: boosting GPU/FPGA clocks under high load and, at low
load, dropping the GPU frequency and reconfiguring the FPGA with a
low-power kernel.  This module models the discrete operating points and
the idle states each device family supports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from .specs import DeviceType

__all__ = ["PowerState", "DVFSPolicy", "OperatingPoint"]


class PowerState(enum.Enum):
    """Device power states."""

    ACTIVE = "active"         # executing a kernel
    IDLE = "idle"             # powered, clocked, no work
    LOW_POWER = "low_power"   # GPU low clocks / FPGA low-power bitstream


@dataclass(frozen=True)
class OperatingPoint:
    """One DVFS level: relative frequency and the idle power it implies."""

    freq_scale: float
    idle_power_w: float


class DVFSPolicy:
    """Discrete DVFS ladder for a device, derived from its spec.

    GPUs expose several clock states with a meaningful idle-power spread
    (memory and core clocks drop together); FPGAs mainly trade the
    *loaded bitstream* — a low-power kernel gates most of the fabric.
    """

    #: Relative frequency levels, highest first.
    GPU_LEVELS: Tuple[float, ...] = (1.0, 0.8, 0.62, 0.45)
    FPGA_LEVELS: Tuple[float, ...] = (1.0, 0.75, 0.5)

    def __init__(self, spec) -> None:
        self.spec = spec
        self.device_type = spec.device_type

    @property
    def levels(self) -> Tuple[float, ...]:
        if self.device_type == DeviceType.GPU:
            return self.GPU_LEVELS
        return self.FPGA_LEVELS

    def operating_point(self, freq_scale: float) -> OperatingPoint:
        """Snap to the nearest supported level and give its idle power."""
        level = min(self.levels, key=lambda lv: abs(lv - freq_scale))
        return OperatingPoint(level, self.idle_power_w(level))

    def idle_power_w(self, freq_scale: float = 1.0) -> float:
        """Idle power at a given DVFS level.

        GPU idle power tracks clocks super-linearly (voltage scales with
        frequency); FPGA static power barely moves with the clock, so
        its idle savings come from the low-power bitstream instead.
        """
        base = self.spec.idle_power_w
        if self.device_type == DeviceType.GPU:
            return base * (0.4 + 0.6 * freq_scale ** 2)
        return base * (0.85 + 0.15 * freq_scale)

    def low_power_state_w(self) -> float:
        """Deep-idle power: GPU at the lowest clocks, FPGA with a
        low-power bitstream that gates most of the fabric."""
        if self.device_type == DeviceType.GPU:
            return self.idle_power_w(self.levels[-1])
        return self.spec.idle_power_w * 0.45

    def pick_level(self, load: float) -> float:
        """Map an observed load fraction in [0,1] to a frequency level.

        High load boosts clocks immediately (QoS first); low load walks
        down the ladder — the behaviour Fig. 12 relies on.
        """
        load = min(max(load, 0.0), 1.0)
        # A level sustains roughly `level` of peak throughput; keep ~20%
        # headroom for bursts (queue-length reaction, Sec. VI-C) and pick
        # the lowest level that still clears the load.
        sustaining = [lv for lv in self.levels if lv * 0.8 >= load]
        return min(sustaining) if sustaining else self.levels[0]
