"""PCIe data-transfer model.

The runtime scheduler's priority function (Eq. 2) charges ``T(e_ij)``
for moving the intermediate tensor between kernels when producer and
consumer land on different accelerators; the transfer time depends on
the data volume and the available PCIe bandwidth (Section V).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PCIeLink"]


@dataclass(frozen=True)
class PCIeLink:
    """A host<->device PCIe link (default: Gen3 x8, as on the 7V3 board).

    ``efficiency`` captures protocol/DMA overhead on sustained copies.
    """

    gen: int = 3
    lanes: int = 8
    latency_us: float = 5.0
    efficiency: float = 0.80

    #: Per-lane raw bandwidth by generation, GB/s (after encoding).
    _GEN_GBPS_PER_LANE = {1: 0.25, 2: 0.5, 3: 0.985, 4: 1.969}

    def __post_init__(self) -> None:
        if self.gen not in self._GEN_GBPS_PER_LANE:
            raise ValueError(f"unsupported PCIe gen {self.gen}")
        if self.lanes not in (1, 2, 4, 8, 16):
            raise ValueError(f"invalid lane count {self.lanes}")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")

    @property
    def bandwidth_gbps(self) -> float:
        """Sustained bandwidth in GB/s."""
        return self._GEN_GBPS_PER_LANE[self.gen] * self.lanes * self.efficiency

    def transfer_ms(self, nbytes: float) -> float:
        """Time to move ``nbytes`` across the link, in milliseconds.

        This is the ``T(e_ij)`` term of Eq. 2.  Device-to-device copies
        bounce through host memory, so callers double it when both
        endpoints are accelerators on the same root complex.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.latency_us / 1e3 + nbytes / (self.bandwidth_gbps * 1e6)

    def device_to_device_ms(self, nbytes: float) -> float:
        """Accelerator-to-accelerator transfer (through host DRAM)."""
        return 2.0 * self.transfer_ms(nbytes) - self.latency_us / 1e3
