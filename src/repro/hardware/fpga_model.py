"""Analytical FPGA performance, resource and power model (Section IV-C).

The paper navigates the FPGA design space with FlexCL-style analytical
models [26, 48, 50]: a pipeline latency model (initiation interval x
iterations + pipeline depth, at the post-P&R frequency) and a resource
model (DSP/BRAM/logic usage as a function of unrolling, compute units
and BRAM ports).  Power is taken to be roughly proportional to resource
utilization [51], which the paper argues is accurate enough to guide
the exploration.

As with the GPU model, this serves both as the DSE navigator and as the
simulator's ground truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from ..patterns.ppg import Kernel
from .config import ImplConfig
from .specs import FPGASpec

__all__ = ["ResourceUsage", "FPGAPerformanceEstimate", "FPGAModel"]


@dataclass(frozen=True)
class ResourceUsage:
    """Fabric resources consumed by one implementation."""

    dsp: int
    bram_bytes: int
    logic_cells_k: float

    def fits(self, spec: FPGASpec) -> bool:
        """Whether this implementation places on the given part."""
        return (
            self.dsp <= spec.dsp_slices
            and self.bram_bytes <= spec.bram_bytes
            and self.logic_cells_k <= spec.logic_cells_k
        )

    def utilization(self, spec: FPGASpec) -> float:
        """Dominant-resource utilization fraction in [0, 1+]."""
        return max(
            self.dsp / spec.dsp_slices,
            self.bram_bytes / spec.bram_bytes,
            self.logic_cells_k / spec.logic_cells_k,
        )


@dataclass(frozen=True)
class FPGAPerformanceEstimate:
    """Latency/power/resource estimate of one (kernel, config) pair."""

    latency_ms: float
    active_power_w: float
    resources: ResourceUsage
    achieved_freq_mhz: float
    initiation_interval: float

    @property
    def energy_mj(self) -> float:
        return self.latency_ms * self.active_power_w


class FPGAModel:
    """FlexCL-style analytical model for one FPGA platform."""

    #: DSP slices per multiply-accumulate lane, by operand type.  Narrow
    #: fixed-point / half-precision datapaths pack more lanes per DSP —
    #: the classic FPGA advantage (e.g. ESE's fixed-point LSTM [40]) that
    #: 28nm-era GPUs cannot exploit.
    DSP_PER_LANE = {
        "fp64": 8.0,
        "fp32": 2.0,
        "fp16": 1.0,
        "int64": 4.0,
        "int32": 2.0,
        "int16": 1.0,
        "int8": 0.5,
        "uint8": 0.5,
    }
    #: Logic (kLUT-cells) per lane for datapath + control.
    LOGIC_K_PER_LANE = 0.15
    #: Fixed logic for the OpenCL shell / memory controllers.
    SHELL_LOGIC_K = 60.0
    #: Initiation interval of a non-pipelined loop nest.
    UNPIPELINED_II = 4.0
    #: Pipeline fill depth (cycles) per pattern stage.
    DEPTH_PER_STAGE = 24.0
    #: Compression factor achievable for resident parameter tensors via
    #: structured compression / quantization in the HLS flow (C-LSTM
    #: [22], ESE [40]); lets weight sets several times the raw BRAM
    #: capacity stay on chip.
    RESIDENT_COMPRESSION = 8.0
    #: Fraction of BRAM usable for pinned parameters.
    RESIDENT_BRAM_FRAC = 0.8

    def __init__(self, spec: FPGASpec) -> None:
        self.spec = spec

    # -- resource model ------------------------------------------------------

    def resources(self, kernel: Kernel, config: ImplConfig) -> ResourceUsage:
        """Estimate post-P&R resource usage of an implementation."""
        lanes = config.parallel_lanes
        op_kind = kernel.workload_summary().op_kind
        dsp = int(math.ceil(lanes * self.DSP_PER_LANE.get(op_kind, 2.0)))
        # Buffers: double-buffering doubles them; BRAM partitioning into P
        # ports replicates control but not capacity (adds ~10% per port).
        buffer_bytes = self._buffer_bytes(kernel, config)
        logic = (
            self.SHELL_LOGIC_K
            + lanes * self.LOGIC_K_PER_LANE
            + 2.0 * config.bram_ports
            + (15.0 if config.pipelined else 5.0)
        )
        return ResourceUsage(dsp=dsp, bram_bytes=buffer_bytes, logic_cells_k=logic)

    def _buffer_bytes(self, kernel: Kernel, config: ImplConfig) -> int:
        """On-chip buffer footprint."""
        # Working set: per-lane tiles of the kernel's intermediate data.
        ws = kernel.intermediate_bytes if config.fused else kernel.io_bytes // 16
        ws = max(ws, 4096)
        if config.double_buffer:
            ws *= 2
        # Port replication adds control/duplication overhead; the HLS tool
        # tiles the working set down to fit the part, so cap at capacity.
        ws *= 1.0 + 0.10 * (config.bram_ports - 1)
        return int(min(ws, self.spec.bram_bytes * 0.95))

    # -- timing model --------------------------------------------------------

    def achieved_frequency_mhz(self, util: float, config: ImplConfig) -> float:
        """Post-P&R clock: derates as the fabric fills (routing pressure)."""
        base = self.spec.peak_freq_mhz * self.spec.achievable_freq_frac
        if util > 0.7:
            base *= 1.0 - 0.35 * (util - 0.7) / 0.3
        return base * config.freq_scale

    def estimate(
        self, kernel: Kernel, config: ImplConfig, batch: int = 1
    ) -> FPGAPerformanceEstimate:
        """Estimate latency/power/resources for ``batch`` invocations.

        Unlike GPUs, FPGAs stream requests through a customized pipeline:
        batching does not change occupancy, it only multiplies the steady
        state iterations (Section VI-B's IR discussion).
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        res = self.resources(kernel, config)
        util = min(res.utilization(self.spec), 1.0)
        freq_mhz = self.achieved_frequency_mhz(util, config)

        lanes = config.parallel_lanes
        # Throughput: `lanes` MACs per cycle when pipelined at II=1;
        # otherwise the loop nest restarts every UNPIPELINED_II cycles.
        ii = 1.0 if config.pipelined else self.UNPIPELINED_II
        # BRAM bandwidth must feed the lanes: each port sustains ~1 word
        # per cycle; starved lanes raise the effective II.
        # Each partitioned bank is dual-ported and delivers a wide word
        # (vector of 16 operands) per cycle.
        feeds = config.bram_ports * 2.0 * 16.0
        starvation = max(lanes / feeds, 1.0)
        eff_ii = ii * starvation

        ops = kernel.total_ops * batch
        cycles = ops / max(lanes, 1) * eff_ii
        n_stages = max(len(kernel.patterns), 1)
        wl = kernel.workload_summary()
        # Dependent phases only cost a pipeline drain each — the custom
        # datapath keeps state on chip between phases.
        fill = self.DEPTH_PER_STAGE * n_stages * max(wl.sequential_steps ** 0.5, 1.0)
        compute_ms = (cycles + fill) / (freq_mhz * 1e3)

        # Off-chip phase: DDR traffic; double-buffering overlaps it with
        # compute (coarse-grained pipeline, Section IV-B).  Resident
        # parameters that fit on chip (after structured compression) are
        # loaded once and excluded from the steady-state stream; if they
        # do not fit they must be re-streamed every dependent step.
        stationary = float(kernel.resident_stationary_bytes)
        streamed = float(kernel.resident_streamed_bytes)
        activations = float(kernel.io_bytes) - stationary - streamed
        if not config.fused:
            activations += kernel.intermediate_bytes
        # Stationary weights: pinned in BRAM after structured compression
        # when they fit (one amortized fill); otherwise re-streamed every
        # step like on a GPU.  Per-step weights are streamed dense — the
        # streaming path has no decompressor.
        compressed = stationary / self.RESIDENT_COMPRESSION
        if compressed <= self.spec.bram_bytes * self.RESIDENT_BRAM_FRAC:
            resident_stream = compressed  # one-time fill, amortized
        else:
            resident_stream = stationary * wl.sequential_steps
        resident_stream += streamed * batch
        bytes_moved = activations * batch + resident_stream
        bw_eff = 0.75 if config.double_buffer else 0.45
        memory_ms = bytes_moved / (self.spec.mem_bandwidth_gbps * 1e6 * bw_eff)
        if config.double_buffer:
            exec_ms = max(compute_ms, memory_ms) + 0.1 * min(compute_ms, memory_ms)
        else:
            exec_ms = compute_ms + memory_ms

        power = self._active_power(util, config)
        exec_ms *= kernel.latency_bias(self.spec.device_type)
        return FPGAPerformanceEstimate(
            latency_ms=exec_ms,
            active_power_w=power,
            resources=res,
            achieved_freq_mhz=freq_mhz,
            initiation_interval=eff_ii,
        )

    def _active_power(self, util: float, config: ImplConfig) -> float:
        """Power ~ proportional to resource utilization [51], plus static."""
        dynamic_range = self.spec.peak_power_w - self.spec.idle_power_w
        activity = util * (0.8 if config.pipelined else 0.6)
        return self.spec.idle_power_w + dynamic_range * activity * config.freq_scale ** 2

    def feasible(self, kernel: Kernel, config: ImplConfig) -> bool:
        """Whether the implementation places-and-routes on this part."""
        return self.resources(kernel, config).fits(self.spec)

    # -- vectorized batch evaluation -----------------------------------------

    def _resource_arrays(
        self, kernel: Kernel, configs: Sequence[ImplConfig]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`resources` + :meth:`ResourceUsage.fits`.

        Returns ``(feasible, util, lanes)`` where ``util`` is the
        dominant-resource utilization capped at 1.0 (what the timing
        and power models consume).  The arithmetic replicates the scalar
        expressions operand-for-operand; resource counts stay well under
        2**53, so the float64 ceil/trunc values equal the scalar ints
        exactly.
        """
        n = len(configs)
        lanes = np.fromiter(
            (c.parallel_lanes for c in configs), dtype=np.int64, count=n
        )
        ports = np.fromiter(
            (c.bram_ports for c in configs), dtype=np.int64, count=n
        )
        pipelined = np.fromiter(
            (c.pipelined for c in configs), dtype=bool, count=n
        )
        double_buffer = np.fromiter(
            (c.double_buffer for c in configs), dtype=bool, count=n
        )
        fused = np.fromiter((c.fused for c in configs), dtype=bool, count=n)

        per_lane = self.DSP_PER_LANE.get(kernel.workload_summary().op_kind, 2.0)
        dsp = np.ceil(lanes * per_lane)

        # _buffer_bytes: the pre-port working set takes one of four
        # integer values (fused x double_buffer); compute them with the
        # scalar int arithmetic and select.
        ws_fused = max(kernel.intermediate_bytes, 4096)
        ws_plain = max(kernel.io_bytes // 16, 4096)
        ws = np.where(fused, ws_fused, ws_plain)
        ws = np.where(double_buffer, ws * 2, ws)
        ws = ws * (1.0 + 0.10 * (ports - 1))
        buffer_bytes = np.trunc(np.minimum(ws, self.spec.bram_bytes * 0.95))

        logic = (
            self.SHELL_LOGIC_K
            + lanes * self.LOGIC_K_PER_LANE
            + 2.0 * ports
            + np.where(pipelined, 15.0, 5.0)
        )

        feasible = (
            (dsp <= self.spec.dsp_slices)
            & (buffer_bytes <= self.spec.bram_bytes)
            & (logic <= self.spec.logic_cells_k)
        )
        util = np.maximum(
            np.maximum(dsp / self.spec.dsp_slices, buffer_bytes / self.spec.bram_bytes),
            logic / self.spec.logic_cells_k,
        )
        util = np.minimum(util, 1.0)
        return feasible, util, lanes

    def feasible_batch(
        self, kernel: Kernel, configs: Sequence[ImplConfig]
    ) -> np.ndarray:
        """Vectorized placement check; one bool per config."""
        if len(configs) == 0:
            return np.zeros(0, dtype=bool)
        return self._resource_arrays(kernel, configs)[0]

    def estimate_batch(
        self, kernel: Kernel, configs: Sequence[ImplConfig], batch: int = 1
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Feasibility + latency/power for many configs in one pass.

        Float-identical to the scalar :meth:`feasible`/:meth:`estimate`
        pair (the guided-DSE golden contract): branch-dependent factors
        are selected per row, ``freq_scale ** 2`` and the step/fill
        terms come from the same Python scalar expressions, and the
        combining numpy float64 arithmetic mirrors the scalar grouping
        exactly.  Returns ``(feasible, latency_ms, active_power_w)``;
        infeasible rows carry NaN estimates, matching the cached-entry
        convention of :mod:`repro.hardware.model_cache`.
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        n = len(configs)
        if n == 0:
            return np.zeros(0, dtype=bool), np.zeros(0), np.zeros(0)
        feasible, util, lanes = self._resource_arrays(kernel, configs)
        ports = np.fromiter(
            (c.bram_ports for c in configs), dtype=np.int64, count=n
        )
        pipelined = np.fromiter(
            (c.pipelined for c in configs), dtype=bool, count=n
        )
        double_buffer = np.fromiter(
            (c.double_buffer for c in configs), dtype=bool, count=n
        )
        fused = np.fromiter((c.fused for c in configs), dtype=bool, count=n)
        pow_t: Dict[float, float] = {}
        freq = np.empty(n)
        freq_sq = np.empty(n)
        for i, c in enumerate(configs):
            f = c.freq_scale
            fp = pow_t.get(f)
            if fp is None:
                fp = pow_t[f] = f ** 2
            freq[i] = f
            freq_sq[i] = fp

        base = self.spec.peak_freq_mhz * self.spec.achievable_freq_frac
        base_arr = np.where(
            util > 0.7, base * (1.0 - 0.35 * (util - 0.7) / 0.3), base
        )
        freq_mhz = base_arr * freq

        ii = np.where(pipelined, 1.0, self.UNPIPELINED_II)
        feeds = ports * 2.0 * 16.0
        starvation = np.maximum(lanes / feeds, 1.0)
        eff_ii = ii * starvation

        ops = kernel.total_ops * batch
        cycles = ops / np.maximum(lanes, 1) * eff_ii
        n_stages = max(len(kernel.patterns), 1)
        wl = kernel.workload_summary()
        fill = self.DEPTH_PER_STAGE * n_stages * max(wl.sequential_steps ** 0.5, 1.0)
        compute_ms = (cycles + fill) / (freq_mhz * 1e3)

        stationary = float(kernel.resident_stationary_bytes)
        streamed = float(kernel.resident_streamed_bytes)
        act_base = float(kernel.io_bytes) - stationary - streamed
        activations = np.where(
            fused, act_base, act_base + kernel.intermediate_bytes
        )
        compressed = stationary / self.RESIDENT_COMPRESSION
        if compressed <= self.spec.bram_bytes * self.RESIDENT_BRAM_FRAC:
            resident_stream = compressed
        else:
            resident_stream = stationary * wl.sequential_steps
        resident_stream += streamed * batch
        bytes_moved = activations * batch + resident_stream
        bw_eff = np.where(double_buffer, 0.75, 0.45)
        memory_ms = bytes_moved / (self.spec.mem_bandwidth_gbps * 1e6 * bw_eff)
        overlapped = np.maximum(compute_ms, memory_ms) + 0.1 * np.minimum(
            compute_ms, memory_ms
        )
        exec_ms = np.where(double_buffer, overlapped, compute_ms + memory_ms)
        exec_ms = exec_ms * kernel.latency_bias(self.spec.device_type)

        dynamic_range = self.spec.peak_power_w - self.spec.idle_power_w
        activity = util * np.where(pipelined, 0.8, 0.6)
        power = self.spec.idle_power_w + dynamic_range * activity * freq_sq

        exec_ms = np.where(feasible, exec_ms, np.nan)
        power = np.where(feasible, power, np.nan)
        return feasible, exec_ms, power

    def idle_power_w(self) -> float:
        """Power with an idle (minimal) bitstream loaded."""
        return self.spec.idle_power_w

    def reconfiguration_ms(self) -> float:
        """Cost of swapping the loaded kernel implementation."""
        return self.spec.reconfig_ms

    def __repr__(self) -> str:
        return f"<FPGAModel {self.spec.name!r}>"
