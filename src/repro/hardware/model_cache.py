"""Memoized analytical-model evaluation for the DSE hot path.

The paper's pitch is that the analytical models make design-space
exploration cheap (Section IV-C); this module makes *repeated*
exploration nearly free.  Every (kernel, platform, config) evaluation —
feasibility plus the latency/power estimate — is memoized behind a key
of the kernel's *model-relevant signature*, the platform name and the
(hashable) :class:`~repro.hardware.config.ImplConfig`.

Keying on a structural signature rather than object identity means a
kernel rebuilt from the same annotations hits the cache, while any
change to workload, tensors or calibration bias misses it (natural
invalidation).  The cache is per-process; forked DSE workers inherit a
copy-on-write snapshot of whatever the parent had already evaluated,
and ship their new entries back for the parent to :meth:`merge
<ModelEvalCache.merge>` — so repeated parallel explorations stay warm.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..patterns.ppg import Kernel
from .config import ImplConfig
from .specs import DeviceType
from .fpga_model import FPGAModel
from .gpu_model import GPUModel

__all__ = [
    "CachedEstimate",
    "ModelEvalCache",
    "kernel_signature",
    "evaluate_cached",
    "evaluate_many_cached",
    "cache_stats",
    "clear_model_cache",
    "model_cache",
]


@dataclass(frozen=True)
class CachedEstimate:
    """The model outputs the DSE consumes, in cacheable form.

    ``feasible`` is always True for GPUs; for FPGAs it is the placement
    check, and infeasible entries carry NaN estimates (they are never
    turned into design points).
    """

    feasible: bool
    latency_ms: float
    active_power_w: float


def kernel_signature(kernel: Kernel) -> str:
    """Stable digest of everything the analytical models read.

    Covers the per-pattern workload descriptors, the kernel-level
    aggregates (ops, I/O, intermediate and resident traffic,
    parallelism) and the calibration bias table — the full input
    surface of :class:`GPUModel`/:class:`FPGAModel`.  Two kernels with
    equal signatures are indistinguishable to the models.
    """
    parts = [kernel.name]
    for pattern in kernel.patterns:
        wl = pattern.workload
        parts.append(
            f"{pattern.kind.value}|{pattern.data_parallelism}|"
            f"{wl.elements}|{wl.ops_per_element!r}|{wl.bytes_in}|"
            f"{wl.bytes_out}|{wl.op_kind}|{wl.access_regularity!r}|"
            f"{wl.sequential_steps}"
        )
    parts.append(
        f"agg|{kernel.total_ops!r}|{kernel.io_bytes}|"
        f"{kernel.intermediate_bytes}|{kernel.resident_stationary_bytes}|"
        f"{kernel.resident_streamed_bytes}|{kernel.max_data_parallelism}|"
        f"{len(kernel.patterns)}"
    )
    bias = sorted(
        (getattr(k, "value", str(k)), float(v))
        for k, v in kernel.platform_bias.items()
    )
    parts.append(f"bias|{bias!r}")
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


class ModelEvalCache:
    """Thread-safe memo table for analytical model evaluations."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, str, ImplConfig, int], CachedEstimate] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.merges = 0
        #: Counters in a bound obs registry, updated alongside the ints
        #: (``None`` until :meth:`bind_metrics`).
        self._metrics = None

    # -- keying --------------------------------------------------------------

    @staticmethod
    def _signature_of(kernel: Kernel) -> str:
        """Per-kernel signature, memoized on the kernel object itself.

        Recomputing the digest per lookup would eat the win; the digest
        is stashed on the kernel together with a key of its bias table —
        the one model-relevant attribute mutated in place in practice —
        so a rebound bias invalidates the stashed digest.
        """
        bias_key = tuple(
            sorted((str(k), float(v)) for k, v in kernel.platform_bias.items())
        )
        cached = getattr(kernel, "_model_signature", None)
        if cached is not None and cached[1] == bias_key:
            return cached[0]
        sig = kernel_signature(kernel)
        kernel._model_signature = (sig, bias_key)  # type: ignore[attr-defined]
        return sig

    # -- the memoized evaluation --------------------------------------------

    def evaluate(
        self, kernel: Kernel, spec, config: ImplConfig, batch: int = 1
    ) -> CachedEstimate:
        """Feasibility + latency/power of one candidate, memoized."""
        key = (self._signature_of(kernel), spec.name, config, batch)
        with self._lock:
            hit = self._entries.get(key)
            if hit is not None:
                self.hits += 1
                if self._metrics is not None:
                    self._metrics[0].inc()
                return hit
            self.misses += 1
            if self._metrics is not None:
                self._metrics[1].inc()
        if spec.device_type == DeviceType.FPGA:
            model = FPGAModel(spec)
            if not model.feasible(kernel, config):
                entry = CachedEstimate(False, float("nan"), float("nan"))
            else:
                est = model.estimate(kernel, config, batch)
                entry = CachedEstimate(True, est.latency_ms, est.active_power_w)
        else:
            gpu_est = GPUModel(spec).estimate(kernel, config, batch)
            entry = CachedEstimate(True, gpu_est.latency_ms, gpu_est.active_power_w)
        with self._lock:
            self._entries[key] = entry
        return entry

    # -- bulk access (vectorized DSE path) ------------------------------------

    def get_many(
        self, kernel: Kernel, spec, configs: Sequence[ImplConfig], batch: int = 1
    ) -> Tuple[List[Optional[CachedEstimate]], List[int]]:
        """Bulk lookup: cached entries plus the indices still to compute.

        Counter semantics mirror a scalar :meth:`evaluate` loop exactly:
        each config is looked up in order, and a *duplicate* of a miss
        earlier in the same batch counts as a hit (the scalar loop would
        find the entry its first occurrence stored).  Duplicate
        positions are returned as ``None`` alongside the first
        occurrence's index in ``miss_index``; :meth:`evaluate_many`
        back-fills them once the misses are computed.
        """
        sig = self._signature_of(kernel)
        name = spec.name
        results: List[Optional[CachedEstimate]] = [None] * len(configs)
        miss_index: List[int] = []
        hits = misses = 0
        with self._lock:
            pending = set()
            for i, config in enumerate(configs):
                key = (sig, name, config, batch)
                entry = self._entries.get(key)
                if entry is not None:
                    results[i] = entry
                    hits += 1
                elif key in pending:
                    hits += 1
                else:
                    pending.add(key)
                    miss_index.append(i)
                    misses += 1
            self.hits += hits
            self.misses += misses
            if self._metrics is not None:
                self._metrics[0].inc(hits)
                self._metrics[1].inc(misses)
        return results, miss_index

    def put_many(
        self,
        kernel: Kernel,
        spec,
        configs: Sequence[ImplConfig],
        entries: Sequence[CachedEstimate],
        batch: int = 1,
    ) -> None:
        """Bulk store of computed entries (no counter changes, like the
        store half of :meth:`evaluate`)."""
        if len(configs) != len(entries):
            raise ValueError("configs and entries must have equal length")
        sig = self._signature_of(kernel)
        name = spec.name
        with self._lock:
            for config, entry in zip(configs, entries):
                self._entries[(sig, name, config, batch)] = entry

    def evaluate_many(
        self, kernel: Kernel, spec, configs: Sequence[ImplConfig], batch: int = 1
    ) -> List[CachedEstimate]:
        """Bulk memoized evaluation: one vectorized model call per batch.

        Splits ``configs`` into cached and uncached via :meth:`get_many`,
        evaluates all misses in a single
        :meth:`~repro.hardware.gpu_model.GPUModel.estimate_batch` /
        :meth:`~repro.hardware.fpga_model.FPGAModel.estimate_batch`
        call (float-identical to the scalar path), and stores the new
        entries.  Counters and returned estimates are exactly those a
        scalar :meth:`evaluate` loop would produce.
        """
        results, miss_index = self.get_many(kernel, spec, configs, batch)
        if miss_index:
            miss_configs = [configs[i] for i in miss_index]
            if spec.device_type == DeviceType.FPGA:
                feasible, lat, power = FPGAModel(spec).estimate_batch(
                    kernel, miss_configs, batch
                )
                entries = [
                    CachedEstimate(bool(f), float(l), float(p))
                    for f, l, p in zip(feasible, lat, power)
                ]
            else:
                lat, power = GPUModel(spec).estimate_batch(
                    kernel, miss_configs, batch
                )
                entries = [
                    CachedEstimate(True, float(l), float(p))
                    for l, p in zip(lat, power)
                ]
            self.put_many(kernel, spec, miss_configs, entries, batch)
            for i, entry in zip(miss_index, entries):
                results[i] = entry
        if any(r is None for r in results):
            # In-batch duplicates of a miss: resolve from the now-filled
            # table.
            sig = self._signature_of(kernel)
            with self._lock:
                for i, r in enumerate(results):
                    if r is None:
                        results[i] = self._entries[(sig, spec.name, configs[i], batch)]
        return results  # type: ignore[return-value]

    # -- parallel write-back -------------------------------------------------

    def known_keys(self) -> set:
        """Snapshot of the current entry keys (for delta computation)."""
        with self._lock:
            return set(self._entries)

    def delta(
        self, known: set
    ) -> Dict[Tuple[str, str, ImplConfig, int], CachedEstimate]:
        """Entries added since ``known`` was snapshotted.

        A forked DSE worker inherits the parent's entries copy-on-write
        but its additions die with the process; the worker ships this
        delta back so the parent can :meth:`merge` it.
        """
        with self._lock:
            return {k: v for k, v in self._entries.items() if k not in known}

    def merge(
        self,
        entries: Dict[Tuple[str, str, ImplConfig, int], CachedEstimate],
        hits: int = 0,
        misses: int = 0,
    ) -> None:
        """Fold a worker's cache delta and counters into this cache."""
        with self._lock:
            self._entries.update(entries)
            self.hits += hits
            self.misses += misses
            self.merges += 1
            if self._metrics is not None:
                hit_c, miss_c, merge_c = self._metrics
                hit_c.inc(hits)
                miss_c.inc(misses)
                merge_c.inc()

    # -- bookkeeping ---------------------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Mirror the hit/miss/merge counters into an obs registry.

        The registry's counters advance *alongside* the plain ints from
        the moment of binding (they do not backfill earlier activity —
        call before exploration to capture a full run).  Binding a new
        registry replaces the previous one; ``bind_metrics(None)``
        detaches.
        """
        if registry is None:
            with self._lock:
                self._metrics = None
            return
        counters = (
            registry.counter("model_cache_hits_total"),
            registry.counter("model_cache_misses_total"),
            registry.counter("model_cache_merges_total"),
        )
        with self._lock:
            self._metrics = counters

    def stats(self) -> Dict[str, float]:
        total = self.hits + self.misses
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "merges": float(self.merges),
            "size": float(len(self._entries)),
            "hit_rate": self.hits / total if total else 0.0,
        }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.merges = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"<ModelEvalCache: {int(s['size'])} entries, "
            f"{int(s['hits'])} hits / {int(s['misses'])} misses>"
        )


#: Process-wide cache instance the DSE routes through.
model_cache = ModelEvalCache()


def evaluate_cached(
    kernel: Kernel, spec, config: ImplConfig, batch: int = 1
) -> CachedEstimate:
    """Evaluate one (kernel, spec, config) candidate via the shared cache."""
    return model_cache.evaluate(kernel, spec, config, batch)


def evaluate_many_cached(
    kernel: Kernel, spec, configs: Sequence[ImplConfig], batch: int = 1
) -> List[CachedEstimate]:
    """Bulk-evaluate candidates via the shared cache (vectorized misses)."""
    return model_cache.evaluate_many(kernel, spec, configs, batch)


def cache_stats() -> Dict[str, float]:
    """Hit/miss/size counters of the shared cache."""
    return model_cache.stats()


def clear_model_cache() -> None:
    """Drop all memoized evaluations and reset the counters."""
    model_cache.clear()
