"""Hardware platform specifications (Tables IV and V of the paper).

Columns reproduced directly from the paper are documented as such; the
few modelling parameters the paper does not tabulate (memory bandwidth,
idle power, launch overheads) are filled with the public datasheet
values for the same parts, since the analytical models need them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

__all__ = [
    "DeviceType",
    "GPUSpec",
    "FPGASpec",
    "AMD_W9100",
    "NVIDIA_K20",
    "XILINX_ZCU102",
    "XILINX_7V3",
    "INTEL_ARRIA10",
    "GPU_SPECS",
    "FPGA_SPECS",
    "spec_by_name",
]


class DeviceType(enum.Enum):
    """Accelerator families Poly schedules across."""

    GPU = "gpu"
    FPGA = "fpga"


@dataclass(frozen=True)
class GPUSpec:
    """One GPU platform (Table IV) plus datasheet modelling parameters."""

    name: str
    cores: int                  # Table IV "Cores"
    peak_freq_mhz: float        # Table IV "Peak Frequency"
    memory_gb: float            # Table IV "Memory"
    peak_power_w: float         # Table IV "Peak Power"
    process: str                # Table IV "Manufacturing Process"
    price_usd: float            # Table IV "Price"
    # -- datasheet-derived modelling parameters --
    mem_bandwidth_gbps: float   # off-chip bandwidth, GB/s
    idle_power_w: float         # idle board power
    launch_overhead_ms: float   # kernel launch + driver overhead
    scratchpad_kb_per_cu: float = 64.0  # local memory per compute unit

    device_type: DeviceType = DeviceType.GPU

    @property
    def peak_gflops(self) -> float:
        """Peak single-precision GFLOP/s (2 FLOPs/cycle FMA per core)."""
        return self.cores * 2 * self.peak_freq_mhz / 1e3


@dataclass(frozen=True)
class FPGASpec:
    """One FPGA platform (Table V) plus datasheet modelling parameters."""

    name: str
    peak_freq_mhz: float        # Table V "Peak Frequency"
    peak_power_w: float         # Table V "Peak Power"
    logic_cells_k: float        # Table V "Logic Cells" (thousands)
    bram_mb: float              # Table V "BRAMs"
    dsp_slices: int             # Table V "DSP Slices"
    process: str                # Table V "Manufacturing Process"
    price_usd: float            # Table V "Price"
    # -- datasheet-derived modelling parameters --
    mem_bandwidth_gbps: float   # DDR bandwidth on the board
    idle_power_w: float         # static + board power with idle fabric
    reconfig_ms: float          # partial-reconfiguration latency
    achievable_freq_frac: float = 0.75  # post-P&R frequency derating

    device_type: DeviceType = DeviceType.FPGA

    @property
    def peak_gflops(self) -> float:
        """Peak GFLOP/s assuming one MAC (2 FLOPs) per DSP per cycle at the
        post-P&R achievable frequency."""
        return (
            self.dsp_slices
            * 2
            * self.peak_freq_mhz
            * self.achievable_freq_frac
            / 1e3
        )

    @property
    def bram_bytes(self) -> int:
        return int(self.bram_mb * 1024 * 1024)


# --------------------------------------------------------------------------
# Table IV: GPU Platform Specifications
# --------------------------------------------------------------------------

AMD_W9100 = GPUSpec(
    name="AMD FirePro W9100",
    cores=2816,
    peak_freq_mhz=930.0,
    memory_gb=32.0,
    peak_power_w=270.0,
    process="TSMC 28nm",
    price_usd=4999.0,
    mem_bandwidth_gbps=320.0,
    idle_power_w=62.0,
    launch_overhead_ms=0.08,
)

NVIDIA_K20 = GPUSpec(
    name="NVIDIA Tesla K20",
    cores=2496,
    peak_freq_mhz=706.0,
    memory_gb=5.0,
    peak_power_w=225.0,
    process="TSMC 28nm",
    price_usd=2999.0,
    mem_bandwidth_gbps=208.0,
    idle_power_w=47.0,
    launch_overhead_ms=0.06,
)

# --------------------------------------------------------------------------
# Table V: FPGA Platform Specifications
# --------------------------------------------------------------------------

XILINX_ZCU102 = FPGASpec(
    name="Xilinx Zynq UltraScale+ ZCU102",
    peak_freq_mhz=333.0,
    peak_power_w=30.0,
    logic_cells_k=600.0,
    bram_mb=4.0,
    dsp_slices=2520,
    process="TSMC 16nm",
    price_usd=2495.0,
    mem_bandwidth_gbps=19.2,
    idle_power_w=8.0,
    reconfig_ms=20.0,
)

XILINX_7V3 = FPGASpec(
    name="Xilinx Virtex7-690t ADM-PCIE-7V3",
    peak_freq_mhz=470.0,
    peak_power_w=45.0,
    logic_cells_k=693.0,
    bram_mb=6.5,
    dsp_slices=3600,
    process="TSMC 28nm",
    price_usd=3200.0,
    mem_bandwidth_gbps=21.3,
    idle_power_w=10.0,
    reconfig_ms=25.0,
)

INTEL_ARRIA10 = FPGASpec(
    name="Intel Arria 10 GX115",
    peak_freq_mhz=800.0,
    peak_power_w=65.0,
    logic_cells_k=1150.0,  # GX1150 ALMs; the paper's "43K" is a typo
    bram_mb=8.2,
    dsp_slices=1518,
    process="TSMC 20nm",
    price_usd=4495.0,
    mem_bandwidth_gbps=34.1,
    idle_power_w=14.0,
    reconfig_ms=35.0,
    achievable_freq_frac=0.55,  # 800 MHz is the DSP Fmax, fabric runs lower
)

GPU_SPECS: Dict[str, GPUSpec] = {
    AMD_W9100.name: AMD_W9100,
    NVIDIA_K20.name: NVIDIA_K20,
}

FPGA_SPECS: Dict[str, FPGASpec] = {
    XILINX_ZCU102.name: XILINX_ZCU102,
    XILINX_7V3.name: XILINX_7V3,
    INTEL_ARRIA10.name: INTEL_ARRIA10,
}


def spec_by_name(name: str):
    """Look up any platform spec by its full name."""
    if name in GPU_SPECS:
        return GPU_SPECS[name]
    if name in FPGA_SPECS:
        return FPGA_SPECS[name]
    raise KeyError(f"unknown platform {name!r}")
