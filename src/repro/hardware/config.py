"""Implementation configuration: the knob assignment of one design point.

An :class:`ImplConfig` records the values chosen for the optimization
knobs of Table I (work-group size, loop unrolling, compute units, BRAM
ports, pipelining, memory coalescing, scratchpad use, double buffering)
plus the global-optimization decisions (pattern fusion, DVFS level).
The hardware models map a (kernel, config) pair to latency, power and —
for FPGAs — resource usage.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ImplConfig"]


@dataclass(frozen=True)
class ImplConfig:
    """One point in a kernel's implementation space.

    GPU-relevant knobs: ``work_group_size``, ``unroll``,
    ``use_scratchpad``, ``memory_coalescing``, ``pipelined`` (software
    pipeline / persistent kernel), ``freq_scale``.

    FPGA-relevant knobs: ``unroll``, ``compute_units``, ``bram_ports``,
    ``pipelined`` (hardware pipeline), ``double_buffer``, ``freq_scale``.

    Shared/global knobs: ``fused`` (pattern fusion applied to the whole
    kernel), ``batch`` hints are *not* part of the config — batching is a
    runtime decision.
    """

    work_group_size: int = 64
    unroll: int = 1
    compute_units: int = 1
    bram_ports: int = 1
    use_scratchpad: bool = False
    memory_coalescing: bool = False
    pipelined: bool = False
    double_buffer: bool = False
    fused: bool = False
    freq_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.work_group_size <= 0 or self.work_group_size > 1024:
            raise ValueError("work_group_size must be in (0, 1024]")
        if self.unroll <= 0:
            raise ValueError("unroll must be positive")
        if self.compute_units <= 0:
            raise ValueError("compute_units must be positive")
        if self.bram_ports <= 0:
            raise ValueError("bram_ports must be positive")
        if not 0.1 <= self.freq_scale <= 1.0:
            raise ValueError("freq_scale must be in [0.1, 1.0]")

    @property
    def parallel_lanes(self) -> int:
        """Spatial parallelism on FPGAs: unrolled lanes times CUs."""
        return self.unroll * self.compute_units

    def scaled(self, freq_scale: float) -> "ImplConfig":
        """Same implementation at a different DVFS operating point."""
        return replace(self, freq_scale=freq_scale)

    def describe(self) -> str:
        """Compact human-readable knob summary."""
        flags = "".join(
            ch
            for ch, on in (
                ("S", self.use_scratchpad),
                ("C", self.memory_coalescing),
                ("P", self.pipelined),
                ("D", self.double_buffer),
                ("F", self.fused),
            )
            if on
        )
        return (
            f"wg{self.work_group_size}/u{self.unroll}/cu{self.compute_units}"
            f"/p{self.bram_ports}/f{self.freq_scale:.2f}"
            + (f"/{flags}" if flags else "")
        )
