"""Analytical GPU performance and power model (Section IV-C).

The paper drives its design-space exploration with the integrated GPU
power/performance model of Hong & Kim [49] and Harmonia [18].  We
implement the same style of model: execution time is the overlap of a
compute phase and a memory phase, where the achievable fractions of
peak are functions of occupancy (work-group size), unrolling, access
regularity and the memory optimizations of Table I; power splits into
idle and activity-proportional dynamic components, scaled by DVFS.

The model is used twice in this reproduction: (1) as the navigator of
the offline DSE, exactly as in the paper, and (2) as the *ground truth*
of the discrete-event simulator — with multiplicative noise injected by
the caller to exercise Poly's feedback loop (the paper reports <6%
prediction error, Section VI-C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from ..patterns.ppg import Kernel
from .config import ImplConfig
from .specs import GPUSpec

__all__ = ["GPUPerformanceEstimate", "GPUModel"]


@dataclass(frozen=True)
class GPUPerformanceEstimate:
    """Latency/power estimate of one (kernel, config, batch) triple."""

    latency_ms: float
    active_power_w: float
    compute_time_ms: float
    memory_time_ms: float
    occupancy: float

    @property
    def energy_mj(self) -> float:
        """Energy per invocation in millijoules."""
        return self.latency_ms * self.active_power_w

    @property
    def bound(self) -> str:
        return "compute" if self.compute_time_ms >= self.memory_time_ms else "memory"


class GPUModel:
    """Hong&Kim-style analytical model for one GPU platform."""

    #: Fraction of compute and memory phases that overlap (MWP/CWP overlap).
    OVERLAP = 0.75
    #: Peak-efficiency baseline for a plain (un-optimized) kernel.
    BASE_COMPUTE_EFF = 0.22
    #: Host/device synchronization cost between dependent phases, ms.
    STEP_SYNC_MS = 0.15
    #: Effective DRAM bandwidth fraction for fully coalesced access.
    COALESCED_BW_EFF = 0.80
    #: Effective bandwidth fraction for scattered access.
    SCATTERED_BW_EFF = 0.18

    def __init__(self, spec: GPUSpec) -> None:
        self.spec = spec

    # -- occupancy / efficiency sub-models ----------------------------------

    def occupancy(self, config: ImplConfig, data_parallelism: int) -> float:
        """SM occupancy as a function of work-group size and problem size.

        Occupancy peaks around 128–256 work-items per group (enough warps
        to hide latency, no register spill) and collapses when the
        problem does not fill the machine.
        """
        wg = config.work_group_size
        if wg >= 128:
            wg_factor = 1.0 - 0.15 * (math.log2(wg / 256.0) ** 2) / 4.0
        else:
            wg_factor = 0.55 + 0.45 * (wg / 128.0)
        wg_factor = min(max(wg_factor, 0.2), 1.0)
        fill = min(data_parallelism / (self.spec.cores * 4.0), 1.0)
        return wg_factor * (0.25 + 0.75 * fill)

    def compute_efficiency(self, kernel: Kernel, config: ImplConfig) -> float:
        """Fraction of peak FLOP/s the kernel's compute phase achieves."""
        wl = kernel.workload_summary()
        occ = self.occupancy(config, kernel.max_data_parallelism)
        eff = self.BASE_COMPUTE_EFF * (0.6 + 0.4 * occ) / 0.6
        # Unrolling exposes ILP inside each thread (diminishing returns).
        eff *= 1.0 + 0.35 * math.log2(min(config.unroll, 16)) / 4.0
        # Persistent-kernel software pipelining hides launch bubbles.
        if config.pipelined:
            eff *= 1.12
        # Irregular kernels stall their ALUs on divergent access.
        eff *= 0.5 + 0.5 * wl.access_regularity
        # Kernels with many dependent phases run as chains of small
        # launches/grid syncs; pipeline bubbles cap the achievable rate
        # well below a monolithic GEMM's (cuDNN-era recurrent nets reach
        # ~10% of peak FLOP/s).
        cap = 0.30 if wl.sequential_steps > 8 else 0.85
        return min(eff, cap)

    def bandwidth_efficiency(self, kernel: Kernel, config: ImplConfig) -> float:
        """Fraction of peak DRAM bandwidth achieved."""
        wl = kernel.workload_summary()
        base = (
            self.SCATTERED_BW_EFF
            + (self.COALESCED_BW_EFF - self.SCATTERED_BW_EFF) * wl.access_regularity
        )
        if config.memory_coalescing:
            # Index remapping (Fig. 5a) recovers most of the coalesced peak.
            base = max(base, 0.65 * self.COALESCED_BW_EFF + 0.35 * base)
        return min(base, self.COALESCED_BW_EFF)

    def _effective_bytes(
        self, kernel: Kernel, config: ImplConfig, batch: int, steps: int
    ) -> float:
        """Off-chip traffic for a batch, after memory optimizations.

        Activation traffic scales with the batch; *resident* parameter
        tensors (weights) are shared by the whole batch but — being far
        larger than any cache — must be re-streamed from DRAM on every
        dependent step.  This is why batching rescues GPU throughput on
        recurrent kernels: the weight stream is amortized over the
        batch (DjiNN [60] and the motivation of Section II-B).
        """
        resident = float(kernel.resident_bytes)
        activations = float(kernel.io_bytes) - resident
        if not config.fused:
            activations += kernel.intermediate_bytes
        if config.use_scratchpad:
            # __local staging captures intra-pattern reuse (stencil taps,
            # repeated gathers); model as a 35% traffic cut.
            activations *= 0.65
        # Stationary weights are re-read from DRAM each step (nothing
        # on-chip holds them); per-step weights are read once per step by
        # construction.  Either way: resident traffic = bytes x steps.
        return activations * batch + resident * steps

    # -- the model proper ----------------------------------------------------

    def estimate(
        self, kernel: Kernel, config: ImplConfig, batch: int = 1
    ) -> GPUPerformanceEstimate:
        """Estimate latency and power for ``batch`` fused invocations.

        Batching amortizes the launch overhead and raises occupancy —
        the GPU behaviour the motivation section describes (GPUs need
        batches; FPGAs do not).
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        freq = config.freq_scale
        gflops = self.spec.peak_gflops * freq
        wl = kernel.workload_summary()
        steps = wl.sequential_steps
        # Dependent phases (e.g. LSTM time steps) serialize: only one
        # phase's worth of parallelism is live at a time, and every phase
        # boundary pays a sync cost.  This is why GPUs lose to a custom
        # FPGA pipeline on recurrent kernels (Section II-B, Fig. 1e-f).
        per_step_par = max(kernel.max_data_parallelism // steps, 1) * batch
        occ = self.occupancy(config, per_step_par)
        eff = self.compute_efficiency(kernel, config)
        occ1 = self.occupancy(config, max(kernel.max_data_parallelism // steps, 1))
        eff = min(eff * occ / max(occ1, 1e-9) * (occ ** 0.5), 0.9)

        compute_ms = kernel.total_ops * batch / (gflops * 1e6 * max(eff, 1e-3))
        bw = self.spec.mem_bandwidth_gbps * 1e6 * self.bandwidth_efficiency(
            kernel, config
        )  # bytes per ms
        memory_ms = self._effective_bytes(kernel, config, batch, steps) / bw

        longer, shorter = max(compute_ms, memory_ms), min(compute_ms, memory_ms)
        exec_ms = longer + (1.0 - self.OVERLAP) * shorter
        sync_ms = self.STEP_SYNC_MS * (steps - 1)
        latency_ms = self.spec.launch_overhead_ms + exec_ms + sync_ms
        # Calibration bias semantics depend on the kernel's structure.
        # Recurrent kernels (many dependent steps): the model's residual
        # against measured hardware sits in the *batch-independent*
        # floor (launch chains, per-step syncs, shared weight streams),
        # so only the floor is scaled and batching amortization is
        # preserved.  Throughput-style kernels: the residual is
        # per-element code quality, so the whole latency scales.
        bias = kernel.latency_bias(self.spec.device_type)
        if bias != 1.0:
            if steps > 8:
                floor = latency_ms if batch == 1 else self._raw_latency_ms(
                    kernel, config, 1
                )
                latency_ms += (bias - 1.0) * floor
            else:
                latency_ms *= bias

        power = self._active_power(occ, eff, compute_ms, memory_ms, freq)
        return GPUPerformanceEstimate(
            latency_ms=latency_ms,
            active_power_w=power,
            compute_time_ms=compute_ms,
            memory_time_ms=memory_ms,
            occupancy=occ,
        )

    def _raw_latency_ms(self, kernel: Kernel, config: ImplConfig, batch: int) -> float:
        """Latency before the calibration bias (used as the bias floor)."""
        saved = kernel.platform_bias
        kernel.platform_bias = {}
        try:
            return self.estimate(kernel, config, batch).latency_ms
        finally:
            kernel.platform_bias = saved

    # -- vectorized batch evaluation -----------------------------------------

    def estimate_batch(
        self, kernel: Kernel, configs: Sequence[ImplConfig], batch: int = 1
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Latency/power for many configs in one vectorized pass.

        Float-identical to calling :meth:`estimate` per config (the
        guided-DSE golden contract): every sub-model that involves a
        transcendental or a branch (occupancy, compute/bandwidth
        efficiency, effective bytes, ``freq_scale ** 2.2``) is computed
        by the *scalar* methods once per unique knob tuple and broadcast
        by table lookup, and the combining arithmetic below replicates
        the scalar expression grouping exactly — numpy float64
        ``+ - * / min max`` on the same operands in the same order
        produce the same IEEE results.

        Returns ``(latency_ms, active_power_w)`` float64 arrays aligned
        with ``configs``.
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        return self._estimate_arrays(kernel, configs, batch, apply_bias=True)

    def _estimate_arrays(
        self,
        kernel: Kernel,
        configs: Sequence[ImplConfig],
        batch: int,
        apply_bias: bool,
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = len(configs)
        if n == 0:
            return np.zeros(0), np.zeros(0)
        wl = kernel.workload_summary()
        steps = wl.sequential_steps
        dp1 = max(kernel.max_data_parallelism // steps, 1)

        # Per-unique-knob tables filled by the scalar sub-models.  The
        # knob-candidate lists are tiny (|wg| x |unroll| x 2 bools), so
        # the scalar calls are a rounding error next to the batch size.
        occ_t: Dict[int, Tuple[float, float, float]] = {}
        eff_t: Dict[Tuple[int, int, bool], float] = {}
        bw_t: Dict[bool, float] = {}
        bytes_t: Dict[Tuple[bool, bool], float] = {}
        pow_t: Dict[float, float] = {}

        occ = np.empty(n)
        occ1 = np.empty(n)
        occ_sqrt = np.empty(n)
        ceff = np.empty(n)
        bw_eff = np.empty(n)
        eff_bytes = np.empty(n)
        freq = np.empty(n)
        freq_pow = np.empty(n)
        for i, config in enumerate(configs):
            wg = config.work_group_size
            row = occ_t.get(wg)
            if row is None:
                o = self.occupancy(config, dp1 * batch)
                row = (o, max(self.occupancy(config, dp1), 1e-9), o ** 0.5)
                occ_t[wg] = row
            occ[i], occ1[i], occ_sqrt[i] = row
            eff_key = (wg, config.unroll, config.pipelined)
            e = eff_t.get(eff_key)
            if e is None:
                e = eff_t[eff_key] = self.compute_efficiency(kernel, config)
            ceff[i] = e
            b = bw_t.get(config.memory_coalescing)
            if b is None:
                b = bw_t[config.memory_coalescing] = self.bandwidth_efficiency(
                    kernel, config
                )
            bw_eff[i] = b
            mem_key = (config.fused, config.use_scratchpad)
            m = bytes_t.get(mem_key)
            if m is None:
                m = bytes_t[mem_key] = self._effective_bytes(
                    kernel, config, batch, steps
                )
            eff_bytes[i] = m
            f = config.freq_scale
            fp = pow_t.get(f)
            if fp is None:
                fp = pow_t[f] = f ** 2.2
            freq[i] = f
            freq_pow[i] = fp

        gflops = self.spec.peak_gflops * freq
        eff = np.minimum(ceff * occ / occ1 * occ_sqrt, 0.9)
        compute_ms = kernel.total_ops * batch / (gflops * 1e6 * np.maximum(eff, 1e-3))
        bw = self.spec.mem_bandwidth_gbps * 1e6 * bw_eff
        memory_ms = eff_bytes / bw

        longer = np.maximum(compute_ms, memory_ms)
        shorter = np.minimum(compute_ms, memory_ms)
        exec_ms = longer + (1.0 - self.OVERLAP) * shorter
        sync_ms = self.STEP_SYNC_MS * (steps - 1)
        latency_ms = self.spec.launch_overhead_ms + exec_ms + sync_ms
        if apply_bias:
            bias = kernel.latency_bias(self.spec.device_type)
            if bias != 1.0:
                if steps > 8:
                    if batch == 1:
                        floor = latency_ms
                    else:
                        floor, _ = self._estimate_arrays(
                            kernel, configs, 1, apply_bias=False
                        )
                    latency_ms = latency_ms + (bias - 1.0) * floor
                else:
                    latency_ms = latency_ms * bias

        total = compute_ms + memory_ms
        compute_frac = np.full(n, 0.5)
        np.divide(compute_ms, total, out=compute_frac, where=total > 0)
        activity = occ * (0.5 + 0.5 * eff / 0.85)
        activity = activity * (0.65 + 0.35 * compute_frac)
        dynamic_range = self.spec.peak_power_w - self.spec.idle_power_w
        power = self.spec.idle_power_w + dynamic_range * activity * freq_pow
        return latency_ms, power

    def _active_power(
        self,
        occupancy: float,
        efficiency: float,
        compute_ms: float,
        memory_ms: float,
        freq_scale: float,
    ) -> float:
        """Average board power while the kernel runs.

        Dynamic power scales with activity (occupancy x efficiency) and
        roughly with f*V^2 ~ f^2.2 under DVFS; memory-bound phases burn
        less core power but keep the memory system hot.
        """
        total = compute_ms + memory_ms
        compute_frac = compute_ms / total if total > 0 else 0.5
        activity = occupancy * (0.5 + 0.5 * efficiency / 0.85)
        activity *= 0.65 + 0.35 * compute_frac
        dynamic_range = self.spec.peak_power_w - self.spec.idle_power_w
        return self.spec.idle_power_w + dynamic_range * activity * freq_scale ** 2.2

    def idle_power_w(self) -> float:
        """Board power with no kernel resident."""
        return self.spec.idle_power_w

    def __repr__(self) -> str:
        return f"<GPUModel {self.spec.name!r}>"
