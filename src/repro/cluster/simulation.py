"""Fleet-scale simulation: heterogeneous leaf nodes behind a dispatcher
and an elastic autoscaler.

The paper evaluates Poly on a single leaf node; its framing —
interactive datacenter services under a power cap with TCO as the end
metric — is fleet-scale.  :class:`ClusterSimulation` closes that gap by
simulating a datacenter of :class:`~repro.runtime.node.LeafNode`s:

* nodes are instantiated from a rotation of **templates** (mixed
  architectures in one fleet, à la heterogeneous-cloud deployment
  optimization), each with its own child RNG stream spawned from the
  root seed — node count and launch order never perturb another node's
  noise stream, and single-node seeded runs stay bit-identical to the
  pre-cluster simulator because ``run_simulation`` is untouched;
* a :class:`~repro.cluster.dispatcher.ClusterDispatcher` routes each
  arrival by power-of-two-choices over queue depth, plan-cache
  locality and device health;
* an :class:`~repro.cluster.scaling.Autoscaler` turns per-interval
  demand into typed launch/terminate decisions with deterministic
  warm-up delays;
* the result aggregates fleet latency percentiles, QoS (ASR-target)
  violations, a per-interval fleet power timeline, and TCO /
  cost-efficiency through :meth:`repro.runtime.tco.TCOModel.for_fleet`.

Everything is a pure function of ``(templates, app, arrivals, config,
seed, fault schedules)``: two same-seed runs produce identical latency
percentiles, scaling timelines, and obs event streams.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..apps.base import Application
from ..obs.tracer import NULL_TRACER
from ..optim.design_point import KernelDesignSpace
from ..runtime.cluster import SystemConfig
from ..runtime.engine import (
    ARRIVAL_CHUNK,
    EventHeap,
    EventHeapEngine,
    EventKind,
)
from ..runtime.loadgen import ArrivalSpec
from ..runtime.metrics import percentile_latency
from ..runtime.node import LeafNode, RequestRecord
from ..runtime.simulation import _power_timeline
from ..runtime.tco import TCOModel
from ..runtime.trace import UtilizationTrace
from .dispatcher import ClusterDispatcher
from .scaling import (
    Autoscaler,
    AutoscalerConfig,
    LaunchRequest,
    SchedulingRequest,
    TerminationRequest,
)

__all__ = [
    "NodeState",
    "ClusterNode",
    "ScalingEvent",
    "IntervalStats",
    "ClusterResult",
    "ClusterSimulation",
]


class NodeState(enum.Enum):
    """Lifecycle of one fleet node."""

    WARMING = "warming"      # launched, not yet serving (boot + load)
    SERVING = "serving"      # routable
    TERMINATED = "terminated"


@dataclass
class ClusterNode:
    """One leaf node in the fleet, with its cluster-level lifecycle."""

    node_id: str
    template: SystemConfig
    leaf: LeafNode
    launched_ms: float
    ready_ms: float
    state: NodeState = NodeState.WARMING
    terminated_ms: Optional[float] = None
    #: Graph signatures this node has already scheduled (the
    #: dispatcher's plan-cache-locality signal).
    planned_signatures: set = field(default_factory=set)
    #: Consecutive autoscaler evaluations with an empty queue.
    idle_evals: int = 0
    served: int = 0

    def queue_ms(self, now_ms: float) -> float:
        """Bottleneck backlog a new arrival would queue behind."""
        return max((d.backlog_ms(now_ms) for d in self.leaf.devices), default=0.0)

    @property
    def schedulable_fraction(self) -> float:
        """Fraction of the node's accelerators a request can still use
        (1.0 on a healthy node; driven by ``repro.faults`` states)."""
        devices = self.leaf.devices
        if not devices:
            return 0.0
        return sum(1 for d in devices if d.is_schedulable) / len(devices)

    def active_span_ms(self, horizon_ms: float) -> Tuple[float, float]:
        """The [launch, termination) window the node existed in."""
        end = self.terminated_ms if self.terminated_ms is not None else horizon_ms
        return self.launched_ms, min(end, horizon_ms)


@dataclass(frozen=True)
class ScalingEvent:
    """One fleet-size change in the scaling timeline."""

    t_ms: float
    action: str          # "launch" | "terminate"
    node_id: str
    reason: str          # "initial" | "scale_up" | TerminationReason name
    fleet_size: int      # live nodes after the event


@dataclass
class IntervalStats:
    """One autoscaler evaluation interval's fleet aggregates."""

    t_ms: float
    arrivals: int
    demand_rps: float
    utilization: float
    n_serving: int
    n_warming: int
    launched: int
    terminated: int
    #: Latency aggregates of the requests that *arrived* in this
    #: interval; NaN when none did (filled in post-run).
    p50_ms: float = float("nan")
    p99_ms: float = float("nan")
    violations: float = float("nan")


@dataclass
class ClusterResult:
    """Outcome of one fleet replay."""

    app: str
    qos_ms: float
    duration_ms: float
    interval_ms: float
    requests: List[RequestRecord]
    #: Node that served each request (parallel to ``requests``).
    node_ids: List[str]
    intervals: List[IntervalStats]
    timeline: List[ScalingEvent]
    power_bins_w: np.ndarray
    #: Template codename -> time-weighted mean node count.
    fleet_node_months: Dict[str, float]
    scale_up_lags_ms: List[float]
    scale_down_lags_ms: List[float]
    nodes: List[ClusterNode] = field(default_factory=list, repr=False)

    # -- latency --------------------------------------------------------------

    def latencies_ms(self) -> List[float]:
        return [r.latency_ms for r in self.requests if r.served]

    @property
    def p50_ms(self) -> float:
        return percentile_latency(self.latencies_ms(), 50.0)

    @property
    def p99_ms(self) -> float:
        return percentile_latency(self.latencies_ms(), 99.0)

    @property
    def mean_latency_ms(self) -> float:
        lats = self.latencies_ms()
        return sum(lats) / len(lats) if lats else float("nan")

    @property
    def violation_ratio(self) -> float:
        lats = self.latencies_ms()
        if not lats:
            return float("nan")
        return sum(1 for lat in lats if lat > self.qos_ms) / len(lats)

    def qos_ok_frac(self, bound_ms: Optional[float] = None) -> float:
        """Fraction of intervals (with traffic) whose p99 met the ASR
        target — the autoscaler-tracking acceptance metric."""
        bound = self.qos_ms if bound_ms is None else bound_ms
        active = [iv for iv in self.intervals if iv.arrivals > 0]
        if not active:
            return float("nan")
        ok = sum(1 for iv in active if iv.p99_ms <= bound)
        return ok / len(active)

    # -- throughput and fleet shape -------------------------------------------

    @property
    def served_rps(self) -> float:
        n = sum(1 for r in self.requests if r.served)
        return n * 1000.0 / self.duration_ms if self.duration_ms > 0 else 0.0

    @property
    def mean_fleet_size(self) -> float:
        return sum(self.fleet_node_months.values())

    @property
    def launches(self) -> int:
        return sum(1 for e in self.timeline if e.action == "launch")

    @property
    def terminations(self) -> int:
        return sum(1 for e in self.timeline if e.action == "terminate")

    def fleet_size_at(self, t_ms: float) -> int:
        """Live nodes at a timeline instant (for plotting/tests)."""
        size = 0
        for event in self.timeline:
            if event.t_ms > t_ms:
                break
            size = event.fleet_size
        return size

    @property
    def scale_up_lag_ms(self) -> float:
        lags = self.scale_up_lags_ms
        return sum(lags) / len(lags) if lags else float("nan")

    @property
    def scale_down_lag_ms(self) -> float:
        lags = self.scale_down_lags_ms
        return sum(lags) / len(lags) if lags else float("nan")

    # -- power and cost -------------------------------------------------------

    @property
    def fleet_avg_power_w(self) -> float:
        return float(np.mean(self.power_bins_w)) if len(self.power_bins_w) else 0.0

    def monthly_tco_usd(self, model: Optional[TCOModel] = None) -> float:
        """Fleet TCO: per-template fixed costs amortized at the
        time-weighted node count, energy at the measured fleet power."""
        model = model or TCOModel()
        by_codename = {n.template.codename: n.template for n in self.nodes}
        fixed = 0.0
        for codename, node_months in sorted(self.fleet_node_months.items()):
            fleet = model.for_fleet(by_codename[codename], node_months)
            fixed += fleet.monthly_fixed_usd()
        return fixed + model.monthly_energy_usd(self.fleet_avg_power_w)

    def cost_efficiency(self, model: Optional[TCOModel] = None) -> float:
        """Fig.-14-style metric at fleet scale: served RPS per monthly
        TCO dollar."""
        return self.served_rps / self.monthly_tco_usd(model)

    def __repr__(self) -> str:
        return (
            f"<ClusterResult {self.app}: {len(self.requests)} reqs on "
            f"{self.mean_fleet_size:.1f} mean nodes, p99 {self.p99_ms:.1f} ms, "
            f"{self.launches} launches / {self.terminations} terminations>"
        )


class ClusterSimulation:
    """Drive a heterogeneous fleet through one arrival stream.

    ``templates`` is the node-architecture rotation (a single
    :class:`SystemConfig` or a sequence — launches cycle through it);
    ``design_spaces`` must cover every template's platforms (explore the
    union of platforms once).  ``fault_schedules`` optionally attaches a
    :class:`~repro.faults.events.FaultSchedule` to named nodes
    (``"node0"`` is the first launched), turning the replay into a
    fleet chaos experiment the dispatcher's health scoring reacts to.
    """

    def __init__(
        self,
        templates: Union[SystemConfig, Sequence[SystemConfig]],
        app: Application,
        design_spaces: Mapping[Tuple[str, str], KernelDesignSpace],
        config: Optional[AutoscalerConfig] = None,
        seed: int = 0,
        tracer=None,
        metrics=None,
        fault_schedules: Optional[Mapping[str, object]] = None,
        locality_penalty_ms: float = 5.0,
        health_penalty_ms: float = 50.0,
        replan_interval_ms: float = 250.0,
        engine: str = "event",
        trace_nodes: bool = False,
        sampler=None,
    ) -> None:
        if isinstance(templates, SystemConfig):
            templates = [templates]
        if not templates:
            raise ValueError("need at least one node template")
        if engine not in ("event", "legacy"):
            raise ValueError(f"unknown engine {engine!r}")
        self.engine = engine
        self.templates = list(templates)
        self.app = app
        self.design_spaces = design_spaces
        self.config = config or AutoscalerConfig()
        if self.config.eval_interval_ms <= 0:
            raise ValueError(
                "eval_interval_ms must be positive (lint rule RT007)"
            )
        if self.config.min_nodes > self.config.max_nodes:
            raise ValueError(
                "min_nodes exceeds max_nodes (lint rule RT007)"
            )
        if self.config.min_nodes < 1:
            raise ValueError("a fleet needs min_nodes >= 1")
        self.seed = seed
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.metrics = metrics
        #: Propagate the fleet tracer into every launched leaf, so a
        #: traced replay records the full per-node span trees alongside
        #: the cluster.* decisions (off by default: node spans dominate
        #: trace volume at fleet scale — pair with ``sampler``).
        self.trace_nodes = trace_nodes
        #: Declarative :class:`repro.obs.sampling.SamplingPolicy`
        #: applied post-run by exporters; recorded here so fleet-scale
        #: tracing without a bound policy is lintable (OBS002).
        self.sampler = sampler
        self.autoscaler = Autoscaler(self.config)
        self.dispatcher = ClusterDispatcher(
            self._child_rng(0, 0),
            tracer=self.tracer,
            locality_penalty_ms=locality_penalty_ms,
            health_penalty_ms=health_penalty_ms,
        )
        self.replan_interval_ms = replan_interval_ms
        self._fault_schedules = dict(fault_schedules or {})
        self._signature = app.graph.structural_signature()
        self._nodes: List[ClusterNode] = []
        self._launch_count = 0
        self._timeline: List[ScalingEvent] = []
        self._capacity_cache: Dict[str, float] = {}

    # -- RNG streams ----------------------------------------------------------

    def _child_rng(self, stream: int, index: int) -> np.random.Generator:
        """A child generator spawned from the root seed.

        Streams are keyed, not drawn in launch order: node ``i`` always
        gets the same stream no matter when the autoscaler launched it,
        and the dispatcher/arrival streams never alias a node stream.
        """
        return np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=(stream, index))
        )

    def arrival_rng(self) -> np.random.Generator:
        """The arrival-stream child generator (stream 1)."""
        return self._child_rng(1, 0)

    # -- fleet bookkeeping ----------------------------------------------------

    def _template_capacity(self, template: SystemConfig) -> float:
        """Sustained per-node throughput of one template: a healthy
        probe node's plan capacity (a pure model quantity — identical
        across machines, so scaling decisions are machine-independent)."""
        cached = self._capacity_cache.get(template.codename)
        if cached is None:
            probe = LeafNode(template, self.app, self.design_spaces, seed=0)
            probe.maybe_replan(0.0)
            cached = probe.capacity_estimate_rps()
            self._capacity_cache[template.codename] = cached
        return cached

    def _live(self) -> List[ClusterNode]:
        return [n for n in self._nodes if n.state is not NodeState.TERMINATED]

    def _promote(self, now_ms: float) -> None:
        for node in self._nodes:
            if node.state is NodeState.WARMING and node.ready_ms <= now_ms:
                node.state = NodeState.SERVING

    def _launch(self, request: LaunchRequest, reason: str = "scale_up") -> ClusterNode:
        index = self._launch_count
        self._launch_count += 1
        template = self.templates[index % len(self.templates)]
        node_id = f"node{index}"
        leaf = LeafNode(
            template,
            self.app,
            self.design_spaces,
            replan_interval_ms=self.replan_interval_ms,
            seed=np.random.SeedSequence(
                entropy=self.seed, spawn_key=(2, index)
            ),
            tracer=self.tracer if self.trace_nodes else None,
        )
        node = ClusterNode(
            node_id,
            template,
            leaf,
            launched_ms=request.at_ms,
            ready_ms=request.ready_ms,
            state=(
                NodeState.SERVING
                if request.ready_ms <= request.at_ms
                else NodeState.WARMING
            ),
        )
        schedule = self._fault_schedules.get(node_id)
        if schedule is not None:
            from ..faults.injector import FaultInjector

            FaultInjector(schedule).bind(leaf)
        self._nodes.append(node)
        self._timeline.append(
            ScalingEvent(
                request.at_ms, "launch", node_id, reason, len(self._live())
            )
        )
        if self.tracer.enabled:
            self.tracer.emit(
                "cluster.launch",
                name=node_id,
                t_ms=request.at_ms,
                node=node_id,
                reason=reason,
                ready_ms=round(request.ready_ms, 6),
            )
        if self.metrics is not None:
            self.metrics.counter("cluster_launches_total").inc()
        return node

    def _terminate(self, request: TerminationRequest, now_ms: float) -> None:
        node = next(
            n for n in self._nodes if n.node_id == request.node_id
        )
        node.state = NodeState.TERMINATED
        node.terminated_ms = now_ms
        self._timeline.append(
            ScalingEvent(
                now_ms,
                "terminate",
                node.node_id,
                request.reason.name,
                len(self._live()),
            )
        )
        if self.tracer.enabled:
            self.tracer.emit(
                "cluster.terminate",
                name=node.node_id,
                t_ms=now_ms,
                node=node.node_id,
                reason=request.reason.name,
            )
        if self.metrics is not None:
            self.metrics.counter("cluster_terminations_total").inc()

    # -- the drive loop -------------------------------------------------------

    def replay(
        self,
        trace: UtilizationTrace,
        peak_rps: float,
        compress: float = 1.0,
    ) -> ClusterResult:
        """Replay a utilization trace (the diurnal Google-trace study at
        fleet scale).  ``compress`` shrinks each trace interval by that
        factor of simulated time; arrivals come from the dedicated
        arrival child stream, so the replay is seed-deterministic.

        Routed through :class:`~repro.runtime.loadgen.ArrivalSpec` —
        the same declarative stream path ``run_simulation`` uses, so
        trace modulation can never drift between the single-node and
        fleet drivers."""
        if compress <= 0:
            raise ValueError("compress must be positive")
        interval_ms = trace.interval_s * 1000.0 / compress
        spec = ArrivalSpec.trace(trace.utilization, interval_ms, peak_rps)
        horizon_ms = len(trace.utilization) * interval_ms
        return self.run(spec, horizon_ms=horizon_ms)

    def run(
        self,
        arrivals_ms: Union[Sequence[float], ArrivalSpec],
        horizon_ms: Optional[float] = None,
    ) -> ClusterResult:
        """Route one sorted arrival stream through the fleet.

        ``arrivals_ms`` may be an :class:`ArrivalSpec`, realized here
        through the dedicated arrival child stream — the code path
        shared with ``run_simulation``.  The drive loop runs on the
        global event heap (``engine="event"``, the default): autoscaler
        evaluations are SCALE events, arrivals are chunked ARRIVAL
        events split at evaluation boundaries, and each node serves its
        requests through a persistent :class:`EventHeapEngine` session.
        ``engine="legacy"`` keeps the original per-arrival loop; seeded
        runs are float-identical across the two (golden-tested).
        """
        if isinstance(arrivals_ms, ArrivalSpec):
            arrivals_ms = arrivals_ms.generate(self.arrival_rng())
        if not len(arrivals_ms):
            raise ValueError("empty arrival stream")
        if self._nodes:
            raise RuntimeError("a ClusterSimulation instance drives one run")
        cfg = self.config
        eval_ms = cfg.eval_interval_ms
        ordered = sorted(float(t) for t in arrivals_ms)
        horizon = float(
            max(horizon_ms or 0.0, ordered[-1] + eval_ms, eval_ms)
        )

        for _ in range(cfg.min_nodes):
            self._launch(LaunchRequest(0.0, 0.0), reason="initial")
        self._promote(0.0)

        records: List[RequestRecord] = []
        node_ids: List[str] = []
        intervals: List[IntervalStats] = []
        up_lags: List[float] = []
        down_lags: List[float] = []
        pressure_since: Optional[float] = None
        relief_since: Optional[float] = None
        lag_recorded = False

        next_eval = eval_ms
        window_arrivals = 0

        def evaluate(now_ms: float, n_arrivals: int) -> None:
            nonlocal pressure_since, relief_since, lag_recorded
            self._promote(now_ms)
            serving = [n for n in self._nodes if n.state is NodeState.SERVING]
            warming = [n for n in self._nodes if n.state is NodeState.WARMING]
            demand = n_arrivals * 1000.0 / eval_ms
            capacity = sum(
                self._template_capacity(n.template) for n in serving + warming
            )
            for node in serving:
                if node.queue_ms(now_ms) <= 0.0:
                    node.idle_evals += 1
                else:
                    node.idle_evals = 0
            idle = sorted(
                (
                    n
                    for n in serving
                    if n.idle_evals >= cfg.idle_intervals
                ),
                key=lambda n: (-n.launched_ms, n.node_id),
            )
            request = SchedulingRequest(
                now_ms=now_ms,
                demand_rps=demand,
                capacity_rps=capacity,
                n_serving=len(serving),
                n_warming=len(warming),
                node_capacity_rps=self._template_capacity(
                    self.templates[self._launch_count % len(self.templates)]
                ),
                idle_nodes=tuple(n.node_id for n in idle),
            )
            util = request.utilization
            if util > cfg.scale_up_utilization:
                if pressure_since is None:
                    pressure_since = now_ms
                    lag_recorded = False
                relief_since = None
            elif util < cfg.scale_down_utilization:
                if relief_since is None:
                    relief_since = now_ms
                    lag_recorded = False
                pressure_since = None
            else:
                pressure_since = relief_since = None
            reply = self.autoscaler.evaluate(request)
            for launch in reply.to_launch:
                self._launch(launch)
            for termination in reply.to_terminate:
                self._terminate(termination, now_ms)
            if reply.to_launch and pressure_since is not None and not lag_recorded:
                up_lags.append(reply.to_launch[0].ready_ms - pressure_since)
                lag_recorded = True
            if reply.to_terminate and relief_since is not None and not lag_recorded:
                down_lags.append(now_ms - relief_since)
                lag_recorded = True
            if self.tracer.enabled:
                self.tracer.emit(
                    "cluster.scale",
                    name="autoscaler",
                    t_ms=now_ms,
                    n_nodes=len(self._live()),
                    demand_rps=round(demand, 6),
                    utilization=round(min(util, 1e9), 6),
                )
            intervals.append(
                IntervalStats(
                    t_ms=now_ms,
                    arrivals=n_arrivals,
                    demand_rps=demand,
                    utilization=util,
                    n_serving=len(
                        [n for n in self._nodes if n.state is NodeState.SERVING]
                    ),
                    n_warming=len(
                        [n for n in self._nodes if n.state is NodeState.WARMING]
                    ),
                    launched=len(reply.to_launch),
                    terminated=len(reply.to_terminate),
                )
            )

        req_seq = 0
        if self.engine == "legacy":
            for t in ordered:
                while next_eval <= t:
                    evaluate(next_eval, window_arrivals)
                    window_arrivals = 0
                    next_eval += eval_ms
                self._promote(t)
                serving = [
                    n for n in self._nodes if n.state is NodeState.SERVING
                ]
                req_seq += 1
                node = self.dispatcher.route(
                    t, self._signature, serving, req=req_seq
                )
                record = node.leaf.submit(t)
                node.planned_signatures.add(self._signature)
                node.served += 1
                records.append(record)
                node_ids.append(node.node_id)
                window_arrivals += 1
            while next_eval <= horizon:
                evaluate(next_eval, window_arrivals)
                window_arrivals = 0
                next_eval += eval_ms
        else:
            # Event-heap drive: SCALE events carry the evaluation grid
            # (accumulated exactly like the legacy loop, so interval
            # timestamps match float-for-float); arrivals go in as
            # chunked ARRIVAL events split at evaluation boundaries.
            # Same-time ties pop SCALE before ARRIVAL — the taxonomy
            # order mirrors the legacy ``while next_eval <= t`` drain.
            heap = EventHeap()
            bounds: List[float] = []
            while next_eval <= horizon:
                bounds.append(next_eval)
                next_eval += eval_ms
            for bound in bounds:
                heap.push(bound, EventKind.SCALE, None)
            arr = np.asarray(ordered, dtype=float)
            i = 0
            for bound in bounds:
                j = int(np.searchsorted(arr, bound, side="left"))
                while i < j:
                    k = min(i + ARRIVAL_CHUNK, j)
                    heap.push(ordered[i], EventKind.ARRIVAL, ordered[i:k])
                    i = k
            #: One engine session per node, living across its whole
            #: service life (fault-injected nodes auto-delegate to
            #: ``submit``, keeping chaos replays bit-identical).
            sessions: Dict[str, EventHeapEngine] = {}
            while heap:
                ev = heap.pop()
                if ev.kind is EventKind.SCALE:
                    evaluate(ev.t_ms, window_arrivals)
                    window_arrivals = 0
                    continue
                for t in ev.payload:
                    self._promote(t)
                    serving = [
                        n for n in self._nodes if n.state is NodeState.SERVING
                    ]
                    req_seq += 1
                    node = self.dispatcher.route(
                        t, self._signature, serving, req=req_seq
                    )
                    session = sessions.get(node.node_id)
                    if session is None:
                        session = EventHeapEngine(node.leaf)
                        sessions[node.node_id] = session
                    record = session.process(t)
                    node.planned_signatures.add(self._signature)
                    node.served += 1
                    records.append(record)
                    node_ids.append(node.node_id)
                    window_arrivals += 1
            for session in sessions.values():
                session.finalize()

        result = self._assemble(
            records, node_ids, intervals, up_lags, down_lags, horizon, eval_ms
        )
        if self.metrics is not None:
            self._record_metrics(result)
        return result

    # -- result assembly ------------------------------------------------------

    def _assemble(
        self,
        records: List[RequestRecord],
        node_ids: List[str],
        intervals: List[IntervalStats],
        up_lags: List[float],
        down_lags: List[float],
        horizon_ms: float,
        eval_ms: float,
    ) -> ClusterResult:
        # Per-interval latency aggregates, bucketed by arrival time.
        buckets: Dict[int, List[float]] = {}
        for record in records:
            if record.served:
                buckets.setdefault(
                    int(record.arrival_ms // eval_ms), []
                ).append(record.latency_ms)
        for i, interval in enumerate(intervals):
            lats = buckets.get(i)
            if lats:
                interval.p50_ms = percentile_latency(lats, 50.0)
                interval.p99_ms = percentile_latency(lats, 99.0)
                interval.violations = sum(
                    1 for lat in lats if lat > self.app.qos_ms
                ) / len(lats)

        n_bins = max(int(math.ceil(horizon_ms / eval_ms)), 1)
        total_power = np.zeros(n_bins)
        node_months: Dict[str, float] = {}
        edges = np.arange(n_bins) * eval_ms
        for node in self._nodes:
            start, end = node.active_span_ms(horizon_ms)
            if end <= start:
                continue
            bins = _power_timeline(node.leaf, horizon_ms, eval_ms)
            active_frac = np.clip(
                (np.minimum(end, edges + eval_ms) - np.maximum(start, edges))
                / eval_ms,
                0.0,
                1.0,
            )
            total_power += bins[:n_bins] * active_frac
            codename = node.template.codename
            node_months[codename] = node_months.get(codename, 0.0) + float(
                (end - start) / horizon_ms
            )

        return ClusterResult(
            app=self.app.name,
            qos_ms=self.app.qos_ms,
            duration_ms=horizon_ms,
            interval_ms=eval_ms,
            requests=records,
            node_ids=node_ids,
            intervals=intervals,
            timeline=list(self._timeline),
            power_bins_w=total_power,
            fleet_node_months=node_months,
            scale_up_lags_ms=up_lags,
            scale_down_lags_ms=down_lags,
            nodes=list(self._nodes),
        )

    def _record_metrics(self, result: ClusterResult) -> None:
        registry = self.metrics
        served = sum(1 for r in result.requests if r.served)
        registry.counter("cluster_requests_total", outcome="served").inc(served)
        registry.counter("cluster_requests_total", outcome="other").inc(
            len(result.requests) - served
        )
        registry.gauge("cluster_fleet_size").set(
            len([n for n in result.nodes if n.state is not NodeState.TERMINATED])
        )
        registry.gauge("cluster_mean_fleet_size").set(
            round(result.mean_fleet_size, 6)
        )
        registry.gauge("cluster_fleet_avg_power_w").set(
            round(result.fleet_avg_power_w, 6)
        )
        hist = registry.histogram("cluster_request_latency_ms")
        for lat in result.latencies_ms():
            hist.observe(lat)
