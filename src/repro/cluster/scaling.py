"""Elastic autoscaling: typed scaling-decision API and the policy.

The fleet layer turns per-interval resource demand into *typed*
scaling decisions, modeled on the Ray autoscaler v2 resource scheduler:
a :class:`SchedulingRequest` describes the interval (demand, live
capacity, idle instances), the :class:`Autoscaler` answers with a
:class:`SchedulingReply` carrying :class:`LaunchRequest`s (each with a
deterministic warm-up delay) and :class:`TerminationRequest`s (each
with a :class:`TerminationReason`), bounded by the configured fleet
size and a utilization-score hysteresis band.

The policy is deliberately simple and fully deterministic — a pure
function of the request — so seeded cluster replays are reproducible
and the decision stream can be golden-tested:

* **utilization score** — offered demand over live serving capacity
  (launching nodes count: their capacity is already paid for);
* **scale up** — when the score exceeds the band's upper edge, launch
  enough nodes to bring the score back to ``target_utilization``;
* **scale down** — when the score falls below the band's lower edge,
  terminate nodes that have been idle for ``idle_intervals``
  consecutive evaluations, never below ``min_nodes``;
* **inside the band** — do nothing (the hysteresis that prevents
  launch/terminate oscillation; lint rule RT007 rejects bands that
  cannot provide it).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Tuple

__all__ = [
    "AutoscalerConfig",
    "TerminationReason",
    "LaunchRequest",
    "TerminationRequest",
    "SchedulingRequest",
    "SchedulingReply",
    "Autoscaler",
]


class TerminationReason(enum.IntEnum):
    """Why an instance is being terminated (Ray-v2-style typed enum)."""

    #: Idle for ``idle_intervals`` evaluations under a low fleet score.
    IDLE_TERMINATE = 1
    #: The fleet exceeds ``max_nodes`` (e.g. after a config change).
    MAX_NODES = 2


@dataclass(frozen=True)
class AutoscalerConfig:
    """Knobs of the elastic scaling policy.

    Deliberately constructible in invalid shapes (``min_nodes >
    max_nodes``, inverted hysteresis bands): lint rule RT007 diagnoses
    those with an actionable message, mirroring how RT004/RT005 gate
    fault schedules and retry policies instead of burying the mistake
    in a constructor traceback.
    """

    #: Fleet size bounds (inclusive).
    min_nodes: int = 1
    max_nodes: int = 8
    #: Demand is re-evaluated once per interval of simulated time.
    eval_interval_ms: float = 1_000.0
    #: Hysteresis band on the utilization score: launch above the upper
    #: edge, consider termination below the lower edge, hold inside.
    scale_up_utilization: float = 0.85
    scale_down_utilization: float = 0.30
    #: Post-scaling operating point the launch count aims for; must lie
    #: inside the band or every correction re-triggers the opposite one.
    target_utilization: float = 0.60
    #: A launched node starts serving this long after the decision (VM
    #: boot + bitstream/model load); deterministic, not sampled.
    warmup_ms: float = 2_000.0
    #: Consecutive idle evaluations before a node may be terminated.
    idle_intervals: int = 2
    #: Per-evaluation launch cap (rate-limits thundering-herd scale-up).
    max_launch_per_eval: int = 2

    def __post_init__(self) -> None:
        if self.min_nodes < 0 or self.max_nodes < 0:
            raise ValueError("node counts must be non-negative")
        if self.warmup_ms < 0:
            raise ValueError("warmup_ms must be non-negative")
        if self.idle_intervals < 1:
            raise ValueError("idle_intervals must be >= 1")
        if self.max_launch_per_eval < 1:
            raise ValueError("max_launch_per_eval must be >= 1")

    @property
    def hysteresis_ok(self) -> bool:
        """True when the band can actually damp oscillation (RT007's
        core check): a real gap between the edges, with the target
        operating point inside it."""
        return (
            self.scale_down_utilization < self.scale_up_utilization
            and self.scale_down_utilization
            <= self.target_utilization
            <= self.scale_up_utilization
        )


@dataclass(frozen=True)
class LaunchRequest:
    """One node launch: decided at ``at_ms``, serving at ``ready_ms``."""

    at_ms: float
    ready_ms: float
    reason: str = "scale_up"


@dataclass(frozen=True)
class TerminationRequest:
    """One node termination, with its typed reason."""

    node_id: str
    reason: TerminationReason


@dataclass(frozen=True)
class SchedulingRequest:
    """One evaluation interval's view of the fleet, as the policy sees
    it.  All fields are plain numbers/ids so the request (and therefore
    the decision) is trivially serializable and comparable."""

    now_ms: float
    #: Offered load over the elapsed interval, requests per second.
    demand_rps: float
    #: Sustained capacity of live (serving + warming) nodes, rps.
    capacity_rps: float
    #: Live node counts.
    n_serving: int
    n_warming: int
    #: Capacity one additional node would add (the next template in the
    #: heterogeneous rotation), rps.
    node_capacity_rps: float
    #: Nodes idle for >= ``idle_intervals`` evaluations, in termination
    #: preference order (most recently launched first).
    idle_nodes: Tuple[str, ...] = ()

    @property
    def n_live(self) -> int:
        return self.n_serving + self.n_warming

    @property
    def utilization(self) -> float:
        """The fleet utilization score driving the hysteresis band."""
        if self.capacity_rps <= 0.0:
            return math.inf if self.demand_rps > 0.0 else 0.0
        return self.demand_rps / self.capacity_rps


@dataclass(frozen=True)
class SchedulingReply:
    """The policy's typed answer for one evaluation interval."""

    to_launch: Tuple[LaunchRequest, ...] = ()
    to_terminate: Tuple[TerminationRequest, ...] = ()
    #: The utilization score the decision was made on (observability).
    utilization: float = 0.0

    @property
    def idle(self) -> bool:
        return not self.to_launch and not self.to_terminate


class Autoscaler:
    """The deterministic scaling policy over :class:`AutoscalerConfig`.

    ``evaluate`` is a pure function of the :class:`SchedulingRequest`:
    it holds no mutable state (idle tracking lives with the fleet
    driver, which owns the node objects), so decisions can be replayed
    and unit-tested in isolation.
    """

    def __init__(self, config: AutoscalerConfig) -> None:
        self.config = config

    def evaluate(self, request: SchedulingRequest) -> SchedulingReply:
        cfg = self.config
        util = request.utilization
        launches: List[LaunchRequest] = []
        terminations: List[TerminationRequest] = []

        # Hard cap first: a fleet above max_nodes sheds idle nodes with
        # the typed MAX_NODES reason regardless of the score.
        over = request.n_live - cfg.max_nodes
        if over > 0:
            for node_id in request.idle_nodes[:over]:
                terminations.append(
                    TerminationRequest(node_id, TerminationReason.MAX_NODES)
                )
            return SchedulingReply((), tuple(terminations), util)

        if util > cfg.scale_up_utilization and request.n_live < cfg.max_nodes:
            want = self._desired_nodes(request)
            n = min(
                max(want - request.n_live, 1),
                cfg.max_nodes - request.n_live,
                cfg.max_launch_per_eval,
            )
            ready = request.now_ms + cfg.warmup_ms
            launches = [
                LaunchRequest(request.now_ms, ready) for _ in range(n)
            ]
        elif util < cfg.scale_down_utilization and request.n_live > cfg.min_nodes:
            want = max(self._desired_nodes(request), cfg.min_nodes)
            excess = request.n_live - want
            for node_id in request.idle_nodes[:excess]:
                terminations.append(
                    TerminationRequest(node_id, TerminationReason.IDLE_TERMINATE)
                )
        return SchedulingReply(tuple(launches), tuple(terminations), util)

    def _desired_nodes(self, request: SchedulingRequest) -> int:
        """Fleet size that would put the score at ``target_utilization``,
        assuming average per-node capacity."""
        cfg = self.config
        if request.n_live > 0 and request.capacity_rps > 0.0:
            per_node = request.capacity_rps / request.n_live
        else:
            per_node = request.node_capacity_rps
        if per_node <= 0.0 or cfg.target_utilization <= 0.0:
            return request.n_live
        return int(math.ceil(request.demand_rps / (cfg.target_utilization * per_node)))
