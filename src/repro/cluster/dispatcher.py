"""Fleet front-end: power-of-two-choices request routing.

The dispatcher is the cluster's admission point: every arriving request
is routed to one serving node.  Full least-loaded scanning is O(fleet)
per request and — the classic balls-into-bins result — barely better
than sampling two nodes and taking the less loaded one, so the router
samples *two* distinct candidates from the serving set and scores each
by

* **queue depth** — the node's bottleneck backlog in ms (what a new
  arrival would wait behind);
* **plan-cache locality** — a node that has already scheduled this
  application's graph signature serves it from its warm operating
  plans; a cold node pays the scheduling passes first, modeled as a
  fixed penalty;
* **node health** — a node with quarantined/degraded accelerators
  (``repro.faults`` :class:`~repro.faults.policy.DeviceHealth`) is
  penalized proportionally to its unhealthy device fraction, and a
  node with *no* schedulable device is never chosen while any
  alternative exists.

Sampling uses a dedicated child RNG stream spawned from the cluster's
root seed, so routing decisions are deterministic under a seed and
independent of the per-node execution-noise streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..obs.tracer import NULL_TRACER

__all__ = ["RouteDecision", "ClusterDispatcher"]


@dataclass(frozen=True)
class RouteDecision:
    """One routing outcome (what the ``cluster.route`` event records)."""

    node_id: str
    candidates: Tuple[str, ...]
    queue_ms: float
    locality: bool
    score: float


class ClusterDispatcher:
    """Power-of-two-choices router over the serving node set."""

    def __init__(
        self,
        rng: np.random.Generator,
        tracer=None,
        locality_penalty_ms: float = 5.0,
        health_penalty_ms: float = 50.0,
    ) -> None:
        if locality_penalty_ms < 0 or health_penalty_ms < 0:
            raise ValueError("routing penalties must be non-negative")
        self._rng = rng
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.locality_penalty_ms = locality_penalty_ms
        self.health_penalty_ms = health_penalty_ms

    # -- scoring --------------------------------------------------------------

    def score(self, node, now_ms: float, signature: str) -> float:
        """Routing score of one candidate (lower is better)."""
        healthy = node.schedulable_fraction
        if healthy <= 0.0:
            return float("inf")
        score = node.queue_ms(now_ms)
        if signature not in node.planned_signatures:
            score += self.locality_penalty_ms
        score += (1.0 - healthy) * self.health_penalty_ms
        return score

    def _sample_two(self, n: int) -> Tuple[int, Optional[int]]:
        """Two distinct indices in [0, n); the classic d=2 sample.

        Drawn as (first, shifted second) so exactly two RNG values are
        consumed per routed request regardless of the fleet size —
        keeping the dispatch stream's alignment independent of scaling
        decisions is what makes routing seeds stable under replay.
        """
        i = int(self._rng.integers(n))
        j = int(self._rng.integers(n - 1)) if n > 1 else None
        if j is not None and j >= i:
            j += 1
        return i, j

    def route(
        self,
        now_ms: float,
        signature: str,
        nodes: Sequence,
        req: int = 0,
    ):
        """Pick the serving node for one request.

        ``nodes`` is the routable (serving) subset in a deterministic
        order; returns the chosen node.  Ties break on node id so equal
        scores cannot depend on sampling order.
        """
        if not nodes:
            raise RuntimeError("no serving nodes to route to")
        i, j = self._sample_two(len(nodes))
        first = nodes[i]
        chosen, chosen_score = first, self.score(first, now_ms, signature)
        candidates = [first.node_id]
        if j is not None:
            second = nodes[j]
            candidates.append(second.node_id)
            second_score = self.score(second, now_ms, signature)
            if (second_score, second.node_id) < (chosen_score, chosen.node_id):
                chosen, chosen_score = second, second_score
        if self.tracer.enabled:
            self.tracer.emit(
                "cluster.route",
                name=chosen.node_id,
                t_ms=now_ms,
                req=req,
                node=chosen.node_id,
                candidates=tuple(sorted(candidates)),
                queue_ms=round(chosen.queue_ms(now_ms), 6),
                locality=signature in chosen.planned_signatures,
            )
        return chosen
