"""Fleet-scale simulation above the single-node runtime.

A datacenter of heterogeneous :class:`~repro.runtime.node.LeafNode`s
behind a power-of-two-choices :class:`ClusterDispatcher` and an elastic
:class:`Autoscaler`, driven end-to-end by :class:`ClusterSimulation`
(ROADMAP item 1).  Deterministic under a seed: per-node child RNG
streams are spawned from one root seed, so fleet runs replay exactly
and single-node seeded runs stay bit-identical to the pre-cluster
simulator.
"""

from .dispatcher import ClusterDispatcher, RouteDecision
from .scaling import (
    Autoscaler,
    AutoscalerConfig,
    LaunchRequest,
    SchedulingReply,
    SchedulingRequest,
    TerminationReason,
    TerminationRequest,
)
from .simulation import (
    ClusterNode,
    ClusterResult,
    ClusterSimulation,
    IntervalStats,
    NodeState,
    ScalingEvent,
)

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "ClusterDispatcher",
    "ClusterNode",
    "ClusterResult",
    "ClusterSimulation",
    "IntervalStats",
    "LaunchRequest",
    "NodeState",
    "RouteDecision",
    "ScalingEvent",
    "SchedulingReply",
    "SchedulingRequest",
    "TerminationReason",
    "TerminationRequest",
]
