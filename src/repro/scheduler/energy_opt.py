"""Step 2 — energy-efficiency optimization (Section V).

Starting from the Step-1 (minimum-latency) schedule, compute the
latency slack ``LB - L`` and spend it greedily: rank kernels by the
energy priority

.. math::

    W_E(k_i) = \\max_r \\; E(k_{i_0}^{r_0}) - E(k_i^r)
             = \\max_r \\; P(k_{i_0}^{r_0}) T(k_{i_0}^{r_0})
                        - P(k_i^r) T(k_i^r)

(the maximum per-invocation energy reduction any alternative
implementation offers; the paper's Eq. 5 prints the product of the
power and latency *differences*, which is dimensionally an energy but
goes negative exactly when a swap trades latency for power — we use
the energy-reduction form, which matches the prose "indicates the
maximum energy reduction we could achieve") and repeatedly apply the
best swap that keeps the end-to-end latency within the bound.  Swaps
may move a kernel to a different device (Fig. 6's K4 GPU->FPGA move).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..optim.design_point import DesignPoint, KernelDesignSpace
from .kernel_graph import KernelGraph
from .latency_opt import LatencyOptimizer
from .types import Assignment, DeviceSlot, Schedule

__all__ = ["EnergyOptimizer", "EnergyStep"]


class EnergyStep:
    """Record of one accepted swap (for Fig.-6-style reporting)."""

    def __init__(
        self,
        kernel_name: str,
        before: DesignPoint,
        after: DesignPoint,
        device_before: str,
        device_after: str,
        energy_saved_mj: float,
        makespan_ms: float,
    ) -> None:
        self.kernel_name = kernel_name
        self.before = before
        self.after = after
        self.device_before = device_before
        self.device_after = device_after
        self.energy_saved_mj = energy_saved_mj
        self.makespan_ms = makespan_ms

    def __repr__(self) -> str:
        move = (
            f"{self.device_before}->{self.device_after}"
            if self.device_before != self.device_after
            else self.device_after
        )
        return (
            f"<EnergyStep {self.kernel_name} r{self.before.index}->r"
            f"{self.after.index} [{move}] saves {self.energy_saved_mj:.1f} mJ, "
            f"makespan {self.makespan_ms:.1f} ms>"
        )


class EnergyOptimizer:
    """Greedy slack-driven implementation swapper (Step 2)."""

    #: Stop once the best remaining swap saves less than this much energy
    #: per invocation (guards against endless epsilon-churn).
    MIN_GAIN_MJ = 1e-6
    #: Hard cap on iterations; the space is finite so this never binds in
    #: practice, but it makes termination obvious.
    MAX_ITERS = 256
    #: Per-kernel latency guard: a swap may not slow a kernel beyond this
    #: multiple of its fastest implementation.  The bound-level check
    #: alone admits pathologically slow points whose queueing cost the
    #: single-request makespan cannot see.
    MAX_SLOWDOWN = 1.5

    def __init__(
        self,
        design_spaces: Mapping[Tuple[str, str], KernelDesignSpace],
        latency_optimizer: LatencyOptimizer,
    ) -> None:
        self.design_spaces = design_spaces
        self.latency_optimizer = latency_optimizer

    def optimize(
        self,
        graph: KernelGraph,
        devices: Sequence[DeviceSlot],
        schedule: Schedule,
        latency_bound_ms: float,
    ) -> Tuple[Schedule, List[EnergyStep]]:
        """Spend the latency slack on energy; returns the new schedule
        and the accepted swaps in order."""
        if latency_bound_ms <= 0:
            raise ValueError("latency bound must be positive")

        steps: List[EnergyStep] = []
        current = schedule
        platform_of = {d.device_id: d.platform for d in devices}

        for _ in range(self.MAX_ITERS):
            swap = self._best_swap(
                graph, devices, current, latency_bound_ms, platform_of
            )
            if swap is None:
                break
            current, step = swap
            steps.append(step)
        return current, steps

    # -- internals -----------------------------------------------------------

    def _best_swap(
        self,
        graph: KernelGraph,
        devices: Sequence[DeviceSlot],
        schedule: Schedule,
        latency_bound_ms: float,
        platform_of: Mapping[str, str],
    ) -> Optional[Tuple[Schedule, EnergyStep]]:
        """Find the highest-W_E kernel whose best swap fits the bound.

        Kernels are visited in descending W_E (Eq. 5); the first kernel
        owning a feasible, energy-saving swap wins the iteration.
        """
        ranked = sorted(
            schedule.assignments.values(),
            key=lambda a: self._w_e(a, devices, platform_of),
            reverse=True,
        )
        for assignment in ranked:
            if self._w_e(assignment, devices, platform_of) <= self.MIN_GAIN_MJ:
                break  # nothing below can do better (sorted)
            found = self._apply_best_candidate(
                graph, devices, schedule, assignment, latency_bound_ms
            )
            if found is not None:
                return found
        return None

    def _w_e(
        self,
        assignment: Assignment,
        devices: Sequence[DeviceSlot],
        platform_of: Mapping[str, str],
    ) -> float:
        """Energy priority: best per-invocation energy reduction (Eq. 5)."""
        current_energy = assignment.energy_mj
        best = 0.0
        for dev in devices:
            space = self.design_spaces.get(
                (assignment.kernel_name, dev.platform)
            )
            if space is None:
                continue
            for point in space.pareto():
                best = max(best, current_energy - point.energy_mj)
        return best

    def _apply_best_candidate(
        self,
        graph: KernelGraph,
        devices: Sequence[DeviceSlot],
        schedule: Schedule,
        assignment: Assignment,
        latency_bound_ms: float,
    ) -> Optional[Tuple[Schedule, EnergyStep]]:
        """Try this kernel's candidates in descending energy savings;
        accept the first that keeps the retimed makespan within bound."""
        candidates: List[Tuple[float, DesignPoint, str]] = []
        for dev in devices:
            space = self.design_spaces.get((assignment.kernel_name, dev.platform))
            if space is None:
                continue
            guard = space.min_latency().latency_ms * self.MAX_SLOWDOWN
            for point in space.pareto():
                if point.latency_ms > guard:
                    continue
                saving = assignment.energy_mj - point.energy_mj
                if saving > self.MIN_GAIN_MJ:
                    candidates.append((saving, point, dev.device_id))
        candidates.sort(key=lambda t: t[0], reverse=True)

        for saving, point, device_id in candidates:
            choices: Dict[str, Tuple[DesignPoint, str]] = {
                a.kernel_name: (a.point, a.device_id) for a in schedule
            }
            choices[assignment.kernel_name] = (point, device_id)
            retimed = self.latency_optimizer.retime(graph, devices, choices)
            if retimed.makespan_ms <= latency_bound_ms:
                step = EnergyStep(
                    kernel_name=assignment.kernel_name,
                    before=assignment.point,
                    after=point,
                    device_before=assignment.device_id,
                    device_after=device_id,
                    energy_saved_mj=saving,
                    makespan_ms=retimed.makespan_ms,
                )
                return retimed, step
        return None
