"""Step 1 — latency optimization (Section V).

List scheduling driven by the latency priority list :math:`W_L`: pick
kernels in descending priority, compute the earliest starting time of
each (kernel, device) pair

.. math::

    EST(k_i, d_n) = \\max_{k_j \\in Pred(k_i)} T_{end}(k_j)
                    + T_{queue}(d_n)

(Eq. 4; we additionally charge the PCIe transfer when a predecessor
ran on a *different* device), then place the kernel where it finishes
earliest using the fastest implementation available on that device.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..hardware.pcie import PCIeLink
from ..optim.design_point import DesignPoint, KernelDesignSpace
from .kernel_graph import KernelGraph
from .priority import priority_order as _priority_order
from .types import Assignment, DeviceSlot, Schedule

__all__ = ["LatencyOptimizer"]


class LatencyOptimizer:
    """HEFT-style minimum-latency list scheduler (Step 1)."""

    def __init__(
        self,
        design_spaces: Mapping[Tuple[str, str], KernelDesignSpace],
        pcie: Optional[PCIeLink] = None,
    ) -> None:
        self.design_spaces = design_spaces
        self.pcie = pcie or PCIeLink()
        #: Memoized W_L rank orders keyed on (graph structural signature,
        #: platform set).  Design spaces and PCIe are fixed per instance,
        #: so the ranks are pure in those two inputs; the signature is
        #: version-guarded, so a mutated graph re-ranks automatically.
        self._rank_memo: Dict[Tuple[str, Tuple[str, ...]], List[str]] = {}

    # -- public API ----------------------------------------------------------

    def priority_order(
        self, graph: KernelGraph, platforms: Sequence[str]
    ) -> List[str]:
        """Eq. 2-3 descending-W_L kernel order, memoized.

        Step 1, :meth:`retime` (called once per Step-2 swap candidate)
        and the static baseline all rank the same graph identically —
        one ranks table serves them all.  Callers must not mutate the
        returned list.
        """
        key = (graph.structural_signature(), tuple(platforms))
        order = self._rank_memo.get(key)
        if order is None:
            order = _priority_order(
                graph, self.design_spaces, platforms, self.pcie
            )
            self._rank_memo[key] = order
        return order

    def schedule(
        self, graph: KernelGraph, devices: Sequence[DeviceSlot]
    ) -> Schedule:
        """Produce the minimum-latency schedule for one application run."""
        graph.validate()
        if not devices:
            raise ValueError("no devices to schedule on")
        platforms = sorted({d.platform for d in devices})
        order = self.priority_order(graph, platforms)

        available = {d.device_id: d.available_at_ms for d in devices}
        placed: Dict[str, Assignment] = {}

        for name in order:
            best: Optional[Assignment] = None
            for dev in devices:
                space = self.design_spaces.get((name, dev.platform))
                if space is None:
                    continue
                point = space.min_latency()
                est = self._earliest_start(
                    name, dev, graph, placed, available[dev.device_id]
                )
                finish = est + point.latency_ms
                if best is None or finish < best.end_ms:
                    best = Assignment(
                        kernel_name=name,
                        point=point,
                        device_id=dev.device_id,
                        start_ms=est,
                        end_ms=finish,
                    )
            if best is None:
                raise RuntimeError(
                    f"kernel {name!r} has no implementation on any device"
                )
            placed[name] = best
            available[best.device_id] = best.end_ms

        return Schedule(graph.name, list(placed.values()))

    def retime(
        self,
        graph: KernelGraph,
        devices: Sequence[DeviceSlot],
        choices: Mapping[str, Tuple[DesignPoint, str]],
    ) -> Schedule:
        """Recompute the timetable for *fixed* (impl, device) choices.

        Used by the energy-optimization step: after swapping a kernel's
        implementation, only the timing needs recomputation — placement
        is given.  Kernels keep the Step-1 priority order on each device.
        """
        platforms = sorted({d.platform for d in devices})
        order = self.priority_order(graph, platforms)
        available = {d.device_id: d.available_at_ms for d in devices}
        by_id = {d.device_id: d for d in devices}
        placed: Dict[str, Assignment] = {}

        for name in order:
            point, device_id = choices[name]
            dev = by_id[device_id]
            est = self._earliest_start(name, dev, graph, placed, available[device_id])
            placed[name] = Assignment(
                kernel_name=name,
                point=point,
                device_id=device_id,
                start_ms=est,
                end_ms=est + point.latency_ms,
            )
            available[device_id] = placed[name].end_ms

        return Schedule(graph.name, list(placed.values()))

    # -- internals -----------------------------------------------------------

    def _earliest_start(
        self,
        kernel_name: str,
        device: DeviceSlot,
        graph: KernelGraph,
        placed: Mapping[str, Assignment],
        device_free_at: float,
    ) -> float:
        """Eq. 4 with cross-device transfer charging."""
        ready = 0.0
        for pred in graph.predecessors(kernel_name):
            pa = placed[pred]
            arrival = pa.end_ms
            if pa.device_id != device.device_id:
                nbytes = graph.edge_bytes(pred, kernel_name)
                arrival += self.pcie.device_to_device_ms(nbytes)
            ready = max(ready, arrival)
        return max(ready, device_free_at)
