"""Latency priority list W_L (Section V, Eqs. 2-3).

The scheduler ranks kernels by the length of the longest (latency +
transfer) path from each kernel to the sink, computed bottom-up over
the kernel graph — the HEFT/MKMD-style upward rank:

.. math::

    W_L(k_i) = T_{min}(k_i) +
        \\max_{k_j \\in Succ(k_i)} \\big( T(e_{ij}) + W_L(k_j) \\big)

where :math:`T_{min}(k_i) = \\min_{r,n} T(k_i^r, d_n)` is the minimum
latency of any implementation on any device, and :math:`T(e_{ij})` is
the PCIe transfer time of the edge data.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import networkx as nx

from ..hardware.pcie import PCIeLink
from ..optim.design_point import KernelDesignSpace
from .kernel_graph import KernelGraph

__all__ = ["min_latency_ms", "latency_priorities", "priority_order"]


def min_latency_ms(
    kernel_name: str,
    design_spaces: Mapping[Tuple[str, str], KernelDesignSpace],
    platforms: Sequence[str],
) -> float:
    """:math:`T_{min}(k_i)` — best latency across devices and impls (Eq. 3)."""
    best = float("inf")
    for platform in platforms:
        space = design_spaces.get((kernel_name, platform))
        if space is not None:
            best = min(best, space.min_latency().latency_ms)
    if best == float("inf"):
        raise KeyError(
            f"kernel {kernel_name!r} has no design space on any of {platforms}"
        )
    return best


def latency_priorities(
    graph: KernelGraph,
    design_spaces: Mapping[Tuple[str, str], KernelDesignSpace],
    platforms: Sequence[str],
    pcie: PCIeLink,
) -> Dict[str, float]:
    """Compute :math:`W_L` for every kernel (Eq. 2), bottom-up."""
    w_l: Dict[str, float] = {}
    for name in reversed(list(nx.topological_sort(graph.graph))):
        t_min = min_latency_ms(name, design_spaces, platforms)
        succ_term = 0.0
        for succ in graph.successors(name):
            transfer = pcie.transfer_ms(graph.edge_bytes(name, succ))
            succ_term = max(succ_term, transfer + w_l[succ])
        w_l[name] = t_min + succ_term
    return w_l


def priority_order(
    graph: KernelGraph,
    design_spaces: Mapping[Tuple[str, str], KernelDesignSpace],
    platforms: Sequence[str],
    pcie: PCIeLink,
) -> List[str]:
    """Kernels in descending W_L order (the order Step 1 schedules in).

    Because :math:`W_L(pred) > W_L(succ)` by construction, this order is
    also a valid topological order — every kernel's predecessors appear
    before it.
    """
    w_l = latency_priorities(graph, design_spaces, platforms, pcie)
    return sorted(w_l, key=lambda n: w_l[n], reverse=True)
