"""Scheduler facades: Poly's two-step scheduler and the static baselines.

:class:`PolyScheduler` chains Step 1 (latency optimization) and Step 2
(energy-efficiency optimization) over the per-kernel design spaces; the
slack available to Step 2 shrinks automatically as device queues build,
which is how Poly "immediately shifts to higher performance mode" under
bursts (Section VI-C).

:class:`StaticScheduler` models the prior-work baseline [4]: all
kernels hard-mapped to one accelerator family with a single fixed
implementation (maximum energy efficiency if it meets the latency
bound, minimum latency otherwise), unchanged across load levels.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..hardware.pcie import PCIeLink
from ..obs.tracer import NULL_TRACER
from ..optim.design_point import DesignPoint, KernelDesignSpace
from .energy_opt import EnergyOptimizer, EnergyStep
from .kernel_graph import KernelGraph
from .latency_opt import LatencyOptimizer
from .plan_cache import SchedulePlanCache
from .types import Assignment, DeviceSlot, Schedule

__all__ = ["PolyScheduler", "StaticScheduler", "AdmissionError"]


class AdmissionError(RuntimeError):
    """A request was rejected at admission with lint diagnostics.

    Raised by :meth:`PolyScheduler.schedule` (with ``validate=True``)
    instead of scheduling a kernel graph that is structurally illegal,
    lacks implementation coverage for the device pool, or whose
    critical-path lower bound already exceeds the QoS bound.
    """

    def __init__(self, report) -> None:
        self.report = report
        lines = "\n".join(d.render() for d in report.errors)
        super().__init__(f"request rejected at admission:\n{lines}")


class PolyScheduler:
    """Poly's runtime kernel scheduler (Section V)."""

    def __init__(
        self,
        design_spaces: Mapping[Tuple[str, str], KernelDesignSpace],
        latency_bound_ms: float,
        pcie: Optional[PCIeLink] = None,
        tracer=None,
        plan_cache: Optional[SchedulePlanCache] = None,
    ) -> None:
        if latency_bound_ms <= 0:
            raise ValueError("latency bound must be positive")
        self.design_spaces = design_spaces
        self.latency_bound_ms = latency_bound_ms
        #: Observability hook; inert by default so untraced scheduling
        #: stays on the exact pre-instrumentation code path.
        self.tracer = NULL_TRACER if tracer is None else tracer
        #: Optional memo table for full two-step plans; ``None`` keeps
        #: the exact uncached code path.  Whoever owns the fault/replan
        #: loop must wire invalidation (see
        #: :class:`~repro.scheduler.plan_cache.SchedulePlanCache`).
        self.plan_cache = plan_cache
        self.latency_optimizer = LatencyOptimizer(design_spaces, pcie)
        self.energy_optimizer = EnergyOptimizer(
            design_spaces, self.latency_optimizer
        )

    def admission_check(
        self, graph: KernelGraph, devices: Sequence[DeviceSlot]
    ):
        """Lint the request against this scheduler's design spaces.

        Runs the runtime-layer rules only (graph legality, QoS
        lower-bound feasibility, implementation coverage of the device
        pool); returns the :class:`~repro.lint.LintReport`.
        """
        from ..lint import LintContext, run_lint

        ctx = LintContext(
            design_spaces=self.design_spaces,
            qos_ms=self.latency_bound_ms,
            devices=tuple(devices),
        )
        return run_lint(graph, ctx, expand=False)

    def schedule(
        self,
        graph: KernelGraph,
        devices: Sequence[DeviceSlot],
        optimize_energy: bool = True,
        validate: bool = False,
    ) -> Tuple[Schedule, List[EnergyStep]]:
        """Run both steps; returns the final schedule and accepted swaps.

        ``devices`` carry their queueing horizons (``available_at_ms``),
        so the latency slack Step 2 can spend is what remains after
        queueing — under load the scheduler naturally degrades to pure
        latency optimization.

        ``validate=True`` runs the admission check first and raises
        :class:`AdmissionError` (carrying the diagnostics) instead of
        scheduling an infeasible request.
        """
        if validate:
            report = self.admission_check(graph, devices)
            if not report.ok:
                raise AdmissionError(report)
        cache = self.plan_cache
        if cache is not None:
            cached = cache.lookup(
                graph, devices, self.latency_bound_ms, optimize_energy
            )
            if cached is not None:
                schedule, steps = cached
                self._trace_schedule(schedule, steps)
                return schedule, steps
        step1 = self.latency_optimizer.schedule(graph, devices)
        if not optimize_energy:
            if cache is not None:
                cache.store(
                    graph, devices, self.latency_bound_ms, False, step1, ()
                )
            self._trace_schedule(step1, [])
            return step1, []
        final, steps = self.energy_optimizer.optimize(
            graph, devices, step1, self.latency_bound_ms
        )
        if cache is not None:
            cache.store(
                graph, devices, self.latency_bound_ms, True, final, steps
            )
        self._trace_schedule(final, steps)
        return final, steps

    def _trace_schedule(
        self, schedule: Schedule, steps: List[EnergyStep]
    ) -> None:
        """Emit one ``sched.place`` per final assignment (the Eq. 2-4
        latency-pass decision after energy swaps) and one ``sched.swap``
        per accepted Eq. 5 swap."""
        tracer = self.tracer
        if not tracer.enabled:
            return
        for a in sorted(schedule, key=lambda a: (a.start_ms, a.kernel_name)):
            tracer.emit(
                "sched.place",
                name=a.kernel_name,
                kernel=a.kernel_name,
                device=a.device_id,
                point=a.point.index,
                start_ms=round(a.start_ms, 6),
                end_ms=round(a.end_ms, 6),
            )
        for step in steps:
            tracer.emit(
                "sched.swap",
                name=step.kernel_name,
                kernel=step.kernel_name,
                device_before=step.device_before,
                device_after=step.device_after,
                point_before=step.before.index,
                point_after=step.after.index,
                energy_saved_mj=round(step.energy_saved_mj, 6),
                makespan_ms=round(step.makespan_ms, 6),
            )

    def min_latency_schedule(
        self, graph: KernelGraph, devices: Sequence[DeviceSlot]
    ) -> Schedule:
        """Step 1 only (used for capacity probing).

        Shares cache entries with ``schedule(optimize_energy=False)`` —
        both are the pure Step-1 result for the same key.
        """
        cache = self.plan_cache
        if cache is not None:
            cached = cache.lookup(
                graph, devices, self.latency_bound_ms, False
            )
            if cached is not None:
                return cached[0]
        step1 = self.latency_optimizer.schedule(graph, devices)
        if cache is not None:
            cache.store(
                graph, devices, self.latency_bound_ms, False, step1, ()
            )
        return step1


class StaticScheduler:
    """Hard-mapped single-implementation baseline (Homo-GPU / Homo-FPGA).

    The implementation for every kernel is chosen *once*: the most
    energy-efficient design if the zero-load application latency meets
    the bound, else the minimum-latency design — and never changes with
    load (Section VI-A's baseline description).
    """

    def __init__(
        self,
        design_spaces: Mapping[Tuple[str, str], KernelDesignSpace],
        latency_bound_ms: float,
        pcie: Optional[PCIeLink] = None,
    ) -> None:
        self.design_spaces = design_spaces
        self.latency_bound_ms = latency_bound_ms
        self.pcie = pcie or PCIeLink()
        self._latency_optimizer = LatencyOptimizer(design_spaces, pcie)
        #: Per-graph frozen policy: graph name -> use_max_eff.  Keyed by
        #: name so each application's offline decision survives other
        #: graphs being scheduled through the same instance.
        self._fixed_choice: Dict[str, bool] = {}

    def _fixed_point(
        self, kernel_name: str, platform: str, use_max_eff: bool
    ) -> DesignPoint:
        space = self.design_spaces.get((kernel_name, platform))
        if space is None:
            raise KeyError(f"no design space for {kernel_name!r} on {platform!r}")
        return space.max_efficiency() if use_max_eff else space.min_latency()

    def _choose_policy(
        self, graph: KernelGraph, devices: Sequence[DeviceSlot]
    ) -> bool:
        """True -> max-efficiency implementations fit the latency bound."""
        fresh = [
            DeviceSlot(d.device_id, d.platform, d.device_type, 0.0)
            for d in devices
        ]
        trial = self._schedule_fixed(graph, fresh, use_max_eff=True)
        # Keep queueing headroom: the hard mapping is frozen offline, so
        # the max-efficiency choice must fit well inside the bound.
        return trial.makespan_ms <= 0.6 * self.latency_bound_ms

    def schedule(
        self, graph: KernelGraph, devices: Sequence[DeviceSlot]
    ) -> Schedule:
        """Schedule with the frozen per-kernel implementation choice."""
        key = graph.name
        policy = self._fixed_choice.get(key)
        if policy is None:
            # Freeze the policy on first use (offline decision).
            policy = self._choose_policy(graph, devices)
            self._fixed_choice[key] = policy
        return self._schedule_fixed(graph, devices, policy)

    def _schedule_fixed(
        self,
        graph: KernelGraph,
        devices: Sequence[DeviceSlot],
        use_max_eff: bool,
    ) -> Schedule:
        platforms = sorted({d.platform for d in devices})
        order = self._latency_optimizer.priority_order(graph, platforms)
        available = {d.device_id: d.available_at_ms for d in devices}
        placed: Dict[str, Assignment] = {}
        for name in order:
            best: Optional[Assignment] = None
            for dev in devices:
                try:
                    point = self._fixed_point(name, dev.platform, use_max_eff)
                except KeyError:
                    continue
                est = self._latency_optimizer._earliest_start(
                    name, dev, graph, placed, available[dev.device_id]
                )
                finish = est + point.latency_ms
                if best is None or finish < best.end_ms:
                    best = Assignment(name, point, dev.device_id, est, finish)
            if best is None:
                raise RuntimeError(f"kernel {name!r} unschedulable")
            placed[name] = best
            available[best.device_id] = best.end_ms
        return Schedule(graph.name, list(placed.values()))
