"""Application kernel graph G=(K,E) (Section V).

Before making runtime decisions Poly builds a directed acyclic kernel
graph from the application's OpenCL code: nodes are kernels, edges are
inter-kernel data dependencies annotated with the bytes that must cross
PCIe when producer and consumer land on different accelerators.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..patterns.ppg import Kernel

__all__ = ["KernelGraph"]


class KernelGraph:
    """DAG of kernels with data-volume-annotated edges."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.graph = nx.DiGraph()
        self._kernels: Dict[str, Kernel] = {}
        #: Bumped on every structural mutation; guards memoized products
        #: (the structural signature, cached priority ranks) so a graph
        #: edited after scheduling cannot serve stale cache entries.
        self._version = 0
        self._signature: Optional[Tuple[int, str]] = None

    # -- construction ------------------------------------------------------

    def add_kernel(self, kernel: Kernel) -> Kernel:
        """Add a kernel node; names must be unique within the graph."""
        if kernel.name in self._kernels:
            raise ValueError(f"duplicate kernel name {kernel.name!r}")
        self._kernels[kernel.name] = kernel
        self.graph.add_node(kernel.name)
        self._version += 1
        return kernel

    def connect(self, src: str, dst: str, nbytes: Optional[int] = None) -> None:
        """Add dependency ``src -> dst`` moving ``nbytes`` of data.

        Defaults to the producer kernel's output size.
        """
        if src not in self._kernels or dst not in self._kernels:
            raise KeyError(f"unknown kernel in edge {src!r} -> {dst!r}")
        # The edge closes a cycle iff src is already reachable from dst;
        # probing dst's descendants avoids a full DAG re-check per insert.
        if nx.has_path(self.graph, dst, src):
            raise ValueError(f"edge {src!r} -> {dst!r} creates a cycle")
        if nbytes is None:
            producer = self._kernels[src]
            nbytes = sum(p.output.nbytes for p in producer.ppg.sinks())
        if nbytes < 0:
            raise ValueError("edge bytes must be non-negative")
        self.graph.add_edge(src, dst, nbytes=nbytes)
        self._version += 1

    # -- queries -----------------------------------------------------------

    @property
    def version(self) -> int:
        """Structural revision counter (add_kernel/connect bump it)."""
        return self._version

    def structural_signature(self) -> str:
        """Stable digest of the graph *structure*: name, kernel names,
        and byte-annotated edges.

        This is the cache-key component the schedule-plan cache and the
        priority-rank memo use: two graphs with equal signatures present
        the identical scheduling problem (given equal design spaces).
        The digest is memoized against :attr:`version`, so repeated
        lookups cost a tuple compare, not a hash of the whole graph.
        """
        cached = self._signature
        if cached is not None and cached[0] == self._version:
            return cached[1]
        parts = [self.name]
        parts.extend(sorted(self._kernels))
        parts.extend(
            f"{u}->{v}|{d['nbytes']}"
            for u, v, d in sorted(self.graph.edges(data=True))
        )
        sig = hashlib.sha256("\n".join(parts).encode()).hexdigest()
        self._signature = (self._version, sig)
        return sig

    def kernel(self, name: str) -> Kernel:
        return self._kernels[name]

    @property
    def kernels(self) -> List[Kernel]:
        """Kernels in topological order."""
        return [self._kernels[n] for n in nx.topological_sort(self.graph)]

    @property
    def kernel_names(self) -> List[str]:
        return [k.name for k in self.kernels]

    def successors(self, name: str) -> List[str]:
        return list(self.graph.successors(name))

    def predecessors(self, name: str) -> List[str]:
        return list(self.graph.predecessors(name))

    def edge_bytes(self, src: str, dst: str) -> int:
        return self.graph.edges[src, dst]["nbytes"]

    def sources(self) -> List[str]:
        return [n for n in self.graph.nodes if self.graph.in_degree(n) == 0]

    def sinks(self) -> List[str]:
        return [n for n in self.graph.nodes if self.graph.out_degree(n) == 0]

    def paths(self) -> List[List[str]]:
        """All source->sink kernel execution paths (Fig. 6's two ASR paths)."""
        out: List[List[str]] = []
        for s in self.sources():
            for t in self.sinks():
                out.extend(nx.all_simple_paths(self.graph, s, t))
        # Single-kernel graphs: path of one.
        if not out and len(self._kernels) == 1:
            out = [[next(iter(self._kernels))]]
        return out

    def validate(self) -> None:
        if not self._kernels:
            raise ValueError(f"kernel graph {self.name!r} is empty")
        if not nx.is_directed_acyclic_graph(self.graph):
            raise ValueError(f"kernel graph {self.name!r} has a cycle")

    def __len__(self) -> int:
        return len(self._kernels)

    def __contains__(self, name: str) -> bool:
        return name in self._kernels

    def __repr__(self) -> str:
        return (
            f"<KernelGraph {self.name!r}: {len(self)} kernels, "
            f"{self.graph.number_of_edges()} edges>"
        )
