"""Runtime kernel scheduler (Section V): priority lists, the two
optimization steps, the monitor/feedback loop and the static baselines."""

from .energy_opt import EnergyOptimizer, EnergyStep
from .kernel_graph import KernelGraph
from .latency_opt import LatencyOptimizer
from .monitor import SystemMonitor
from .plan_cache import (
    CachedPlan,
    SchedulePlanCache,
    clear_plan_cache,
    plan_cache,
)
from .priority import latency_priorities, min_latency_ms, priority_order
from .scheduler import AdmissionError, PolyScheduler, StaticScheduler
from .types import Assignment, DeviceSlot, Schedule

__all__ = [
    "CachedPlan",
    "SchedulePlanCache",
    "plan_cache",
    "clear_plan_cache",
    "AdmissionError",
    "KernelGraph",
    "DeviceSlot",
    "Assignment",
    "Schedule",
    "LatencyOptimizer",
    "EnergyOptimizer",
    "EnergyStep",
    "PolyScheduler",
    "StaticScheduler",
    "SystemMonitor",
    "latency_priorities",
    "min_latency_ms",
    "priority_order",
]
