"""Memoized runtime schedule plans (the online half of the DSE split).

The Pareto frontiers the scheduler consumes are frozen offline, so a
runtime plan is a pure function of (kernel graph, device state, QoS
slack).  :class:`SchedulePlanCache` memoizes the full two-step result
of :meth:`PolyScheduler.schedule` / :meth:`min_latency_schedule` behind
a key of:

* the kernel graph's **structural signature** (name, kernels, byte
  annotated edges — :meth:`KernelGraph.structural_signature`),
* a **device digest** preserving pool order (list scheduling breaks
  finish-time ties by iteration order) with availability horizons
  quantized into ``avail_quant_ms`` buckets,
* the **slack bucket** (the latency bound quantized by
  ``slack_quant_ms``; the slack Step 2 can spend is bound minus
  queueing, and queueing lives in the device digest),
* whether Step 2 (energy optimization) ran.

Quantization groups near-identical device states under one key, but a
hit is only served when the *exact* availability vector and bound also
match the stored entry — bit-identical replay is the contract, so a
same-bucket/different-exact probe recomputes and refreshes the entry
instead of serving a neighbour's plan.

The cache key deliberately excludes the design-space contents: spaces
are immutable after DSE, and anything that swaps them (fault-driven
capability changes, re-exploration) must call :meth:`invalidate` — the
runtime wires this into ``LeafNode.invalidate_plans()`` on the
fault/recovery path.  :meth:`bind_metrics` mirrors hit/miss/evict
counters into a :class:`~repro.obs.MetricsRegistry`, like
:class:`~repro.hardware.model_cache.ModelEvalCache`.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .energy_opt import EnergyStep
from .kernel_graph import KernelGraph
from .types import DeviceSlot, Schedule

__all__ = [
    "CachedPlan",
    "SchedulePlanCache",
    "plan_cache",
    "clear_plan_cache",
]

#: Quantization granularity of device availability horizons (ms).
DEFAULT_AVAIL_QUANT_MS = 0.25
#: Quantization granularity of the latency bound / slack (ms).
DEFAULT_SLACK_QUANT_MS = 0.25
#: LRU capacity; one entry per (graph, device-state bucket) pair.
DEFAULT_MAX_ENTRIES = 512


@dataclass(frozen=True)
class CachedPlan:
    """One memoized two-step scheduling result.

    ``exact_avail``/``exact_bound_ms`` pin the entry to the precise
    inputs it was computed from; a key hit with different exact values
    (same quantization bucket) is treated as a miss and overwritten.
    """

    schedule: Schedule
    steps: Tuple[EnergyStep, ...]
    exact_avail: Tuple[float, ...]
    exact_bound_ms: float


class SchedulePlanCache:
    """LRU memo table for runtime schedule plans."""

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        avail_quant_ms: float = DEFAULT_AVAIL_QUANT_MS,
        slack_quant_ms: float = DEFAULT_SLACK_QUANT_MS,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if avail_quant_ms <= 0 or slack_quant_ms <= 0:
            raise ValueError("quantization granularity must be positive")
        self.max_entries = max_entries
        self.avail_quant_ms = avail_quant_ms
        self.slack_quant_ms = slack_quant_ms
        self._entries: "OrderedDict[tuple, CachedPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: Counters in a bound obs registry, updated alongside the ints
        #: (``None`` until :meth:`bind_metrics`).
        self._metrics = None
        #: Owners (nodes/schedulers) that wired :meth:`invalidate` into
        #: their replan path; RT006 warns when a cache-enabled owner is
        #: missing from this set.
        self._invalidation_owners: "weakref.WeakSet" = weakref.WeakSet()

    # -- keying --------------------------------------------------------------

    def _key(
        self,
        graph: KernelGraph,
        devices: Sequence[DeviceSlot],
        bound_ms: float,
        optimize_energy: bool,
    ) -> tuple:
        dev_digest = tuple(
            (
                d.device_id,
                d.platform,
                d.device_type.value,
                int(round(d.available_at_ms / self.avail_quant_ms)),
            )
            for d in devices
        )
        slack_bucket = int(round(bound_ms / self.slack_quant_ms))
        return (
            graph.structural_signature(),
            dev_digest,
            slack_bucket,
            optimize_energy,
        )

    # -- lookup / store ------------------------------------------------------

    def lookup(
        self,
        graph: KernelGraph,
        devices: Sequence[DeviceSlot],
        bound_ms: float,
        optimize_energy: bool,
    ) -> Optional[Tuple[Schedule, List[EnergyStep]]]:
        """Return the memoized (schedule, steps) or ``None`` on a miss.

        The steps list is a fresh copy; the :class:`Schedule` is shared
        (it is effectively immutable — frozen assignments).
        """
        key = self._key(graph, devices, bound_ms, optimize_energy)
        exact = tuple(d.available_at_ms for d in devices)
        with self._lock:
            entry = self._entries.get(key)
            if (
                entry is not None
                and entry.exact_avail == exact
                and entry.exact_bound_ms == bound_ms
            ):
                self._entries.move_to_end(key)
                self.hits += 1
                if self._metrics is not None:
                    self._metrics[0].inc()
                return entry.schedule, list(entry.steps)
            self.misses += 1
            if self._metrics is not None:
                self._metrics[1].inc()
            return None

    def store(
        self,
        graph: KernelGraph,
        devices: Sequence[DeviceSlot],
        bound_ms: float,
        optimize_energy: bool,
        schedule: Schedule,
        steps: Sequence[EnergyStep],
    ) -> None:
        """Memoize one computed plan, evicting LRU entries past capacity."""
        key = self._key(graph, devices, bound_ms, optimize_energy)
        entry = CachedPlan(
            schedule=schedule,
            steps=tuple(steps),
            exact_avail=tuple(d.available_at_ms for d in devices),
            exact_bound_ms=bound_ms,
        )
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                if self._metrics is not None:
                    self._metrics[2].inc()

    # -- invalidation --------------------------------------------------------

    def invalidate(self, graph_signature: Optional[str] = None) -> int:
        """Drop entries for one graph signature, or everything.

        Called from ``LeafNode.invalidate_plans()`` whenever device
        health changes (fault confirmed, recovery observed): the cached
        plans were computed against the old live-device view.  Returns
        the number of entries dropped.
        """
        with self._lock:
            if graph_signature is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                stale = [
                    k for k in self._entries if k[0] == graph_signature
                ]
                dropped = len(stale)
                for k in stale:
                    del self._entries[k]
            if dropped:
                self.invalidations += 1
        return dropped

    def bind_invalidation(self, owner: object) -> None:
        """Record that ``owner`` wired :meth:`invalidate` into its
        replan/fault path (weakly referenced — no lifetime coupling)."""
        self._invalidation_owners.add(owner)

    def bound_to(self, owner: object) -> bool:
        """True when ``owner`` registered an invalidation hook."""
        return owner in self._invalidation_owners

    @property
    def has_invalidation_hook(self) -> bool:
        """True when *any* owner registered an invalidation hook."""
        return len(self._invalidation_owners) > 0

    # -- bookkeeping ---------------------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Mirror hit/miss/evict counters into an obs registry.

        Counters advance alongside the plain ints from the moment of
        binding (no backfill); ``bind_metrics(None)`` detaches.
        """
        if registry is None:
            with self._lock:
                self._metrics = None
            return
        counters = (
            registry.counter("plan_cache_hits_total"),
            registry.counter("plan_cache_misses_total"),
            registry.counter("plan_cache_evictions_total"),
        )
        with self._lock:
            self._metrics = counters

    def stats(self) -> Dict[str, float]:
        total = self.hits + self.misses
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "invalidations": float(self.invalidations),
            "size": float(len(self._entries)),
            "hit_rate": self.hits / total if total else 0.0,
        }

    def clear(self) -> None:
        """Drop all entries and reset the counters (hooks stay bound)."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"<SchedulePlanCache: {int(s['size'])} entries, "
            f"{int(s['hits'])} hits / {int(s['misses'])} misses, "
            f"{int(s['evictions'])} evicted>"
        )


#: Process-wide cache instance (opt-in: pass it to PolyScheduler/LeafNode
#: or ``run_simulation(plan_cache=...)``).
plan_cache = SchedulePlanCache()


def clear_plan_cache() -> None:
    """Drop all memoized plans and reset the counters."""
    plan_cache.clear()
