"""Shared scheduler data types: devices, assignments, schedules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..hardware.specs import DeviceType
from ..optim.design_point import DesignPoint

__all__ = ["DeviceSlot", "Assignment", "Schedule"]


@dataclass
class DeviceSlot:
    """One schedulable accelerator instance in the leaf node.

    ``available_at_ms`` is the device's queueing horizon —
    :math:`T_{queue}(d_n)` in Eq. 4: the earliest time the device can
    accept new work (it may already hold queued kernels from other
    requests).
    """

    device_id: str
    platform: str
    device_type: DeviceType
    available_at_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.available_at_ms < 0:
            raise ValueError("available_at_ms must be non-negative")


@dataclass(frozen=True)
class Assignment:
    """One scheduled kernel: implementation, device and time window.

    The paper's :math:`(K_i^r, Device)` notation from Fig. 6.
    """

    kernel_name: str
    point: DesignPoint
    device_id: str
    start_ms: float
    end_ms: float

    def __post_init__(self) -> None:
        if self.end_ms < self.start_ms:
            raise ValueError("assignment ends before it starts")

    @property
    def latency_ms(self) -> float:
        return self.point.latency_ms

    @property
    def energy_mj(self) -> float:
        return self.point.energy_mj

    def label(self) -> str:
        return (
            f"(K_{self.kernel_name}^{self.point.index}, "
            f"{self.point.device_type.value.upper()}:{self.device_id})"
        )


class Schedule:
    """A complete placement of an application's kernels.

    Records per-kernel assignments plus the derived aggregates the
    energy-optimization step and the simulator need.
    """

    def __init__(self, app_name: str, assignments: Sequence[Assignment]) -> None:
        if not assignments:
            raise ValueError("a schedule needs at least one assignment")
        self.app_name = app_name
        self.assignments: Dict[str, Assignment] = {}
        for a in assignments:
            if a.kernel_name in self.assignments:
                raise ValueError(f"kernel {a.kernel_name!r} assigned twice")
            self.assignments[a.kernel_name] = a

    def __getitem__(self, kernel_name: str) -> Assignment:
        return self.assignments[kernel_name]

    def __iter__(self):
        return iter(self.assignments.values())

    def __len__(self) -> int:
        return len(self.assignments)

    @property
    def makespan_ms(self) -> float:
        """End-to-end latency L of the kernel graph under this schedule."""
        return max(a.end_ms for a in self.assignments.values())

    @property
    def total_energy_mj(self) -> float:
        """Sum of per-kernel active energies."""
        return sum(a.energy_mj for a in self.assignments.values())

    @property
    def avg_active_power_w(self) -> float:
        """Energy-weighted average power over the busy intervals."""
        busy = sum(a.latency_ms for a in self.assignments.values())
        return self.total_energy_mj / busy if busy > 0 else 0.0

    def device_busy_ms(self) -> Dict[str, float]:
        """Per-device busy time under this schedule."""
        busy: Dict[str, float] = {}
        for a in self.assignments.values():
            busy[a.device_id] = busy.get(a.device_id, 0.0) + a.latency_ms
        return busy

    def devices_used(self) -> List[str]:
        return sorted({a.device_id for a in self.assignments.values()})

    def replaced(self, new: Assignment) -> "Schedule":
        """Copy of this schedule with one assignment swapped out."""
        assignments = dict(self.assignments)
        assignments[new.kernel_name] = new
        return Schedule(self.app_name, list(assignments.values()))

    def gantt(self) -> str:
        """Fig.-6-style textual schedule, one line per assignment."""
        lines = [f"schedule of {self.app_name} (makespan {self.makespan_ms:.1f} ms)"]
        for a in sorted(self.assignments.values(), key=lambda a: a.start_ms):
            lines.append(
                f"  {a.start_ms:8.1f} -> {a.end_ms:8.1f} ms  {a.label()}"
                f"  {a.point.power_w:5.1f} W"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<Schedule {self.app_name!r}: {len(self)} kernels, "
            f"makespan {self.makespan_ms:.1f} ms, "
            f"{self.total_energy_mj:.0f} mJ>"
        )
