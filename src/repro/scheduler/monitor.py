"""System monitor and model self-correction (Fig. 2's feedback loop).

The monitor tracks the fluctuating load (request throughput), observed
end-to-end latencies and power draw.  Its two products are:

* a smoothed **load estimate** the optimizer uses to pick operating
  modes (queue length reacts immediately — Section VI-C);
* a per-application **correction factor**: the EWMA ratio of observed
  to predicted latency.  The paper reports <6% model error and states
  that Poly "tolerates the wrong prediction by making self-correction
  through the feedback loop"; multiplying predictions by this factor is
  that correction;
* per-device **heartbeats**: live accelerators beat into the monitor on
  every submission, and :meth:`SystemMonitor.missed_heartbeats` surfaces
  the devices whose beat has lapsed — the failure-detection signal the
  fault-injection subsystem's failover planner polls.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import math

__all__ = ["SystemMonitor"]


class SystemMonitor:
    """Sliding-window monitor of load, latency and prediction error."""

    def __init__(
        self,
        window: int = 256,
        ewma_alpha: float = 0.2,
        correction_bounds: Tuple[float, float] = (0.5, 2.0),
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.window = window
        self.ewma_alpha = ewma_alpha
        self.correction_bounds = correction_bounds

        self._latencies: Deque[float] = deque(maxlen=window)
        self._arrival_times: Deque[float] = deque(maxlen=window)
        self._queue_depth = 0
        self._correction = 1.0
        self._power_samples: Deque[float] = deque(maxlen=window)
        self._heartbeats: Dict[str, float] = {}

    # -- event feed (called by the simulator/runtime) ------------------------

    def record_arrival(self, now_ms: float) -> None:
        """A request entered the system."""
        self._arrival_times.append(now_ms)
        self._queue_depth += 1

    def record_completion(
        self,
        latency_ms: float,
        predicted_ms: Optional[float] = None,
    ) -> None:
        """A request finished; optionally feed the prediction it was
        scheduled with to update the correction factor."""
        if latency_ms < 0:
            raise ValueError("latency must be non-negative")
        self._latencies.append(latency_ms)
        self._queue_depth = max(self._queue_depth - 1, 0)
        if predicted_ms is not None and predicted_ms > 0:
            ratio = latency_ms / predicted_ms
            lo, hi = self.correction_bounds
            ratio = min(max(ratio, lo), hi)
            self._correction += self.ewma_alpha * (ratio - self._correction)

    def record_drop(self) -> None:
        """A request was shed at admission: it leaves the queue without
        contributing a latency sample (load shedding must not poison
        the tail-latency window or the correction factor)."""
        self._queue_depth = max(self._queue_depth - 1, 0)

    def record_power(self, watts: float) -> None:
        self._power_samples.append(watts)

    def record_heartbeat(self, device_id: str, now_ms: float) -> None:
        """A device reported itself alive (monotone per device)."""
        last = self._heartbeats.get(device_id)
        if last is None or now_ms > last:
            self._heartbeats[device_id] = now_ms

    def last_heartbeat_ms(self, device_id: str) -> Optional[float]:
        return self._heartbeats.get(device_id)

    def missed_heartbeats(self, now_ms: float, timeout_ms: float) -> List[str]:
        """Devices whose last beat lapsed past ``timeout_ms`` — the
        missed-heartbeat failure-detection signal (sorted for
        determinism)."""
        if timeout_ms <= 0:
            raise ValueError("heartbeat timeout must be positive")
        return sorted(
            device_id
            for device_id, last in self._heartbeats.items()
            if now_ms - last >= timeout_ms
        )

    # -- the optimizer's view -------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests currently in flight — the immediate load signal."""
        return self._queue_depth

    @property
    def correction_factor(self) -> float:
        """Multiplier applied to model predictions (self-correction)."""
        return self._correction

    def corrected(self, predicted_ms: float) -> float:
        """Apply the feedback correction to a model prediction."""
        return predicted_ms * self._correction

    def arrival_rate_rps(self, now_ms: float, horizon_ms: float = 1000.0) -> float:
        """Observed arrival rate over the trailing horizon."""
        if horizon_ms <= 0:
            raise ValueError("horizon must be positive")
        cutoff = now_ms - horizon_ms
        recent = sum(1 for t in self._arrival_times if t >= cutoff)
        return recent * 1000.0 / horizon_ms

    def tail_latency_ms(self, percentile: float = 99.0) -> Optional[float]:
        """Windowed tail latency; ``None`` until data arrives."""
        if not self._latencies:
            return None
        if not 0.0 < percentile <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        ordered = sorted(self._latencies)
        rank = max(math.ceil(percentile / 100.0 * len(ordered)) - 1, 0)
        return ordered[rank]

    def mean_latency_ms(self) -> Optional[float]:
        if not self._latencies:
            return None
        return sum(self._latencies) / len(self._latencies)

    def mean_power_w(self) -> Optional[float]:
        if not self._power_samples:
            return None
        return sum(self._power_samples) / len(self._power_samples)

    def load_estimate(self, capacity_rps: float, now_ms: float) -> float:
        """Fractional load in [0, ~1.5]: arrival rate over known capacity,
        nudged up when the queue is building (immediate reaction)."""
        if capacity_rps <= 0:
            raise ValueError("capacity must be positive")
        rate = self.arrival_rate_rps(now_ms)
        load = rate / capacity_rps
        if self._queue_depth > 4:
            load = max(load, min(0.5 + self._queue_depth / 32.0, 1.5))
        return load

    def snapshot(self, now_ms: float) -> Dict[str, float]:
        """One observability sample of the feedback-loop state.

        The fields mirror what the optimizer reads (queue depth,
        correction factor, windowed tail, arrival rate) so a trace's
        ``monitor.snapshot`` events reconstruct the loop's inputs at
        every replan tick.  All values derive from the sim clock and
        recorded events — nothing wall-clock — keeping traces
        deterministic.
        """
        tail = self.tail_latency_ms()
        return {
            "queue_depth": self._queue_depth,
            "correction_factor": round(self._correction, 6),
            "tail_ms": round(tail, 6) if tail is not None else 0.0,
            "arrival_rate_rps": round(self.arrival_rate_rps(now_ms), 6),
        }

    def reset(self) -> None:
        """Clear all windows (used between experiment sweeps)."""
        self._latencies.clear()
        self._arrival_times.clear()
        self._power_samples.clear()
        self._heartbeats.clear()
        self._queue_depth = 0
        self._correction = 1.0
