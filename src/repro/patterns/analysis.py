"""Automatic pattern analysis (Section IV-A).

Given a kernel's PPG, this module characterizes:

* per-pattern data- and compute-parallelism (from buffer capacity, data
  type and access patterns / independent operators);
* inter-pattern communication intensity under the two transfer
  strategies (off-chip global memory vs. on-chip scratchpad/BRAM);
* fusion feasibility under an on-chip capacity constraint.

The result feeds both local and global optimization (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .annotations import Pattern, PatternKind
from .ppg import Kernel

__all__ = [
    "PatternProfile",
    "CommunicationProfile",
    "KernelAnalysis",
    "analyze_kernel",
]

#: Effective on-chip bandwidth advantage over off-chip DRAM used when
#: estimating transfer strategies (scratchpad/BRAM vs. global memory).
ONCHIP_SPEEDUP = 10.0


@dataclass(frozen=True)
class PatternProfile:
    """Parallelism characterization of one pattern instance."""

    pattern: Pattern
    data_parallelism: int
    compute_parallelism: int
    arithmetic_intensity: float
    #: True when the pattern's parallelism cannot be fixed locally and must
    #: be resolved during global optimization (e.g. a Gather whose consumer
    #: parallelism is unknown — Section IV-B's "pending optimization").
    deferred: bool

    @property
    def bound(self) -> str:
        """Roofline classification: 'compute' or 'memory'."""
        return "compute" if self.arithmetic_intensity >= 4.0 else "memory"


@dataclass(frozen=True)
class CommunicationProfile:
    """Communication intensity of one producer/consumer pattern pair."""

    src: Pattern
    dst: Pattern
    bytes_moved: int
    #: Relative cost of routing through off-chip global memory.
    offchip_cost: float
    #: Relative cost if fused and kept in on-chip memory.
    onchip_cost: float

    @property
    def fusion_benefit(self) -> float:
        """Cost saved by fusing this pair (>= 0)."""
        return max(self.offchip_cost - self.onchip_cost, 0.0)


_DEFERRED_KINDS = frozenset({PatternKind.GATHER, PatternKind.SCATTER})


@dataclass
class KernelAnalysis:
    """Full automatic analysis of a kernel: parallelism + communication."""

    kernel: Kernel
    profiles: Dict[Pattern, PatternProfile] = field(default_factory=dict)
    communications: List[CommunicationProfile] = field(default_factory=list)

    @property
    def total_parallelism(self) -> int:
        """Upper bound of concurrently runnable operator instances."""
        return max(p.compute_parallelism for p in self.profiles.values())

    @property
    def deferred_patterns(self) -> List[Pattern]:
        """Patterns whose optimization is deferred to the global pass."""
        return [p.pattern for p in self.profiles.values() if p.deferred]

    def fusion_candidates(
        self, onchip_capacity_bytes: int
    ) -> List[CommunicationProfile]:
        """Pairs worth fusing, ranked by benefit, feasible under capacity.

        The capacity constraint mirrors Section IV-B: the number of
        adjacent patterns that can be fused is bounded by the on-chip
        memory capacity holding the intermediate tensors.
        """
        feasible = [
            c
            for c in self.communications
            if c.bytes_moved <= onchip_capacity_bytes and c.fusion_benefit > 0
        ]
        return sorted(feasible, key=lambda c: c.fusion_benefit, reverse=True)

    def resolve_deferred(self) -> Dict[Pattern, int]:
        """Resolve deferred (Gather/Scatter) parallelism from neighbours.

        A Gather adopts the data-parallelism of its consumers; a Scatter
        that of its producers — this fixes the scratchpad sizing the
        local pass had to postpone (the LSTM example in Section IV-B).
        """
        resolved: Dict[Pattern, int] = {}
        ppg = self.kernel.ppg
        for pattern in self.deferred_patterns:
            if pattern.kind == PatternKind.GATHER:
                neighbours = ppg.successors(pattern)
            else:
                neighbours = ppg.predecessors(pattern)
            if neighbours:
                par = max(self.profiles[n].compute_parallelism for n in neighbours)
            else:
                par = pattern.data_parallelism
            resolved[pattern] = max(par, 1)
        return resolved


def analyze_kernel(kernel: Kernel) -> KernelAnalysis:
    """Run Poly's automatic pattern analysis on a kernel.

    Walks the PPG, profiles every pattern from its CDFG and workload
    descriptor, then estimates communication intensity for every
    producer/consumer pair under both transfer strategies.
    """
    analysis = KernelAnalysis(kernel)

    for pattern in kernel.patterns:
        cdfg = kernel.cdfg(pattern)
        wl = pattern.workload
        analysis.profiles[pattern] = PatternProfile(
            pattern=pattern,
            data_parallelism=pattern.data_parallelism,
            compute_parallelism=int(
                min(pattern.compute_parallelism, max(cdfg.ilp, 1.0) * wl.elements)
            ),
            arithmetic_intensity=wl.arithmetic_intensity,
            deferred=pattern.kind in _DEFERRED_KINDS,
        )

    for edge in kernel.ppg.edges:
        offchip = float(edge.bytes_moved)
        onchip = edge.bytes_moved / ONCHIP_SPEEDUP
        analysis.communications.append(
            CommunicationProfile(
                src=edge.src,
                dst=edge.dst,
                bytes_moved=edge.bytes_moved,
                offchip_cost=offchip,
                onchip_cost=onchip,
            )
        )

    return analysis
