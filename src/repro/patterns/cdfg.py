"""Control-data-flow graphs for parallel patterns (Section IV-A).

Each parallel pattern is lowered to a CDFG where nodes are operators
(arithmetic ops, customized library calls) or on-chip data buffers, and
edges carry data dependencies — Fig. 4(b) of the paper.  The CDFG is the
granularity at which *local* optimizations (loop unrolling, memory
partitioning, pipelining) transform the kernel.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import networkx as nx

from .annotations import Pattern, PatternKind

__all__ = ["OpKind", "Operator", "CDFG", "lower_pattern"]


class OpKind(enum.Enum):
    """Operator categories appearing in pattern CDFGs."""

    ARITH = "arith"          # add / mul / mac
    SPECIAL = "special"      # sigmoid / tanh / exp / custom IP core
    BUFFER = "buffer"        # on-chip data buffer (gray circle in Fig. 4b)
    LOAD = "load"            # off-chip global-memory read
    STORE = "store"          # off-chip global-memory write
    CONTROL = "control"      # loop / branch bookkeeping


#: Relative operator latencies in abstract cycles; SPECIAL functions such
#: as sigmoid are an order of magnitude more expensive than a MAC.
OP_COST = {
    OpKind.ARITH: 1.0,
    OpKind.SPECIAL: 8.0,
    OpKind.BUFFER: 0.0,
    OpKind.LOAD: 4.0,
    OpKind.STORE: 4.0,
    OpKind.CONTROL: 0.5,
}

_SPECIAL_FUNCS = frozenset(
    {
        "sigmoid", "tanh", "exp", "log", "sqrt", "div", "softmax",
        "encode", "decode", "prng", "cdf", "gf_mul", "clip",
    }
)


_op_ids = itertools.count()


@dataclass(frozen=True)
class Operator:
    """A single CDFG node: one operator or buffer."""

    name: str
    kind: OpKind
    #: Number of dynamic instances of this operator per pattern invocation.
    trip_count: int = 1
    uid: int = field(default_factory=lambda: next(_op_ids))

    @property
    def cost(self) -> float:
        """Abstract cycle cost of one dynamic instance."""
        return OP_COST[self.kind]

    @property
    def total_cost(self) -> float:
        """Cost across all dynamic instances (serial execution)."""
        return self.cost * self.trip_count


class CDFG:
    """Control-data-flow graph of one parallel pattern.

    A thin wrapper around :class:`networkx.DiGraph` with the queries the
    optimizer needs: critical path, operator counts, buffer footprint.
    """

    def __init__(self, pattern: Optional[Pattern] = None) -> None:
        self.graph = nx.DiGraph()
        self.pattern = pattern

    # -- construction ------------------------------------------------------

    def add_operator(self, op: Operator) -> Operator:
        """Insert an operator node."""
        self.graph.add_node(op)
        return op

    def add_dependency(self, src: Operator, dst: Operator) -> None:
        """Insert a data-dependency edge ``src -> dst``."""
        if src not in self.graph or dst not in self.graph:
            raise KeyError("both operators must be added before linking them")
        self.graph.add_edge(src, dst)
        if not nx.is_directed_acyclic_graph(self.graph):
            self.graph.remove_edge(src, dst)
            raise ValueError(
                f"adding dependency {src.name} -> {dst.name} creates a cycle"
            )

    # -- queries -----------------------------------------------------------

    @property
    def operators(self) -> List[Operator]:
        return list(self.graph.nodes)

    def operators_of(self, kind: OpKind) -> List[Operator]:
        """All operators of the given kind."""
        return [op for op in self.graph.nodes if op.kind == kind]

    @property
    def arithmetic_ops(self) -> float:
        """Total dynamic arithmetic work (ARITH + SPECIAL), in op counts."""
        return sum(
            op.trip_count
            for op in self.graph.nodes
            if op.kind in (OpKind.ARITH, OpKind.SPECIAL)
        )

    @property
    def buffer_count(self) -> int:
        return len(self.operators_of(OpKind.BUFFER))

    def critical_path_cost(self) -> float:
        """Longest weighted path through the CDFG, in abstract cycles.

        This is the depth of a fully spatial (FPGA-style) implementation
        of one pattern iteration.
        """
        if self.graph.number_of_nodes() == 0:
            return 0.0
        dist: Dict[Operator, float] = {}
        for op in nx.topological_sort(self.graph):
            preds = list(self.graph.predecessors(op))
            best = max((dist[p] for p in preds), default=0.0)
            dist[op] = best + op.cost
        return max(dist.values())

    def total_work(self) -> float:
        """Total dynamic cost, in abstract cycles (fully serial bound)."""
        return sum(op.total_cost for op in self.graph.nodes)

    @property
    def ilp(self) -> float:
        """Instruction-level parallelism: total work / critical path."""
        cp = self.critical_path_cost()
        return self.total_work() / cp if cp > 0 else 1.0

    def validate(self) -> None:
        """Raise if the CDFG violates its structural invariants."""
        if not nx.is_directed_acyclic_graph(self.graph):
            raise ValueError("CDFG must be acyclic")
        for op in self.graph.nodes:
            if op.trip_count <= 0:
                raise ValueError(f"operator {op.name} has non-positive trip count")

    def __len__(self) -> int:
        return self.graph.number_of_nodes()

    def __repr__(self) -> str:
        src = self.pattern.name if self.pattern else "<detached>"
        return f"<CDFG of {src}: {len(self)} ops, cp={self.critical_path_cost():.1f}>"


def _func_op_kind(func: str) -> OpKind:
    """Classify a function name into operator kinds."""
    return OpKind.SPECIAL if func.lower() in _SPECIAL_FUNCS else OpKind.ARITH


def lower_pattern(pattern: Pattern) -> CDFG:
    """Lower one parallel pattern to its operator-level CDFG.

    The lowering mirrors Fig. 4(b): a load front-end, the operator body
    derived from the pattern's function and ops_per_element, and a store
    back-end, with on-chip buffers between phases.
    """
    cdfg = CDFG(pattern)
    wl = pattern.workload

    load = cdfg.add_operator(
        Operator("load_inputs", OpKind.LOAD, trip_count=max(wl.bytes_in // 64, 1))
    )
    in_buf = cdfg.add_operator(Operator("input_buffer", OpKind.BUFFER))
    cdfg.add_dependency(load, in_buf)

    # Operator body: represent ops_per_element as a small chain whose
    # total work matches the workload descriptor.
    body_kind = _func_op_kind(pattern.func.split("+")[0])
    chain_len = _body_chain_length(pattern)
    per_node_trip = max(int(wl.total_ops / max(chain_len, 1)), 1)
    prev = in_buf
    for i in range(chain_len):
        kind = body_kind if i == 0 else OpKind.ARITH
        op = cdfg.add_operator(
            Operator(f"{pattern.kind.value}_op{i}", kind, trip_count=per_node_trip)
        )
        cdfg.add_dependency(prev, op)
        prev = op

    out_buf = cdfg.add_operator(Operator("output_buffer", OpKind.BUFFER))
    cdfg.add_dependency(prev, out_buf)
    store = cdfg.add_operator(
        Operator("store_outputs", OpKind.STORE, trip_count=max(wl.bytes_out // 64, 1))
    )
    cdfg.add_dependency(out_buf, store)

    # Patterns with control flow (reduce/scan trees, stencil sweeps) get a
    # control node feeding the body.
    if pattern.kind in (PatternKind.REDUCE, PatternKind.SCAN, PatternKind.STENCIL):
        ctrl = cdfg.add_operator(
            Operator("loop_control", OpKind.CONTROL, trip_count=max(wl.elements, 1))
        )
        first_body = next(
            op for op in cdfg.operators if op.name.endswith("_op0")
        )
        cdfg.add_dependency(ctrl, first_body)

    cdfg.validate()
    return cdfg


def _body_chain_length(pattern: Pattern) -> int:
    """Depth of the operator chain representing the pattern body."""
    if pattern.kind == PatternKind.PIPELINE:
        return max(getattr(pattern, "depth", 1), 1)
    if pattern.kind == PatternKind.STENCIL:
        return max(min(getattr(pattern, "taps", 1), 8), 1)
    ops = pattern.ops_per_element
    # Clamp: a chain between 1 and 6 nodes keeps CDFGs readable while the
    # trip counts preserve total work.
    return max(1, min(int(round(ops ** 0.5)), 6))
