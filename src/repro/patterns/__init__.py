"""Parallel pattern layer: annotations, CDFG, PPG and automatic analysis.

This package implements Poly's compile-time kernel representation
(Section IV-A of the paper): the nine parallel patterns, the parallel
pattern graph per kernel, the per-pattern control-data-flow graphs and
the automatic parallelism/communication analysis.
"""

from .annotations import (
    Gather,
    Map,
    Pack,
    Pattern,
    PatternKind,
    Pipeline,
    Reduce,
    Scan,
    Scatter,
    Stencil,
    Tensor,
    Tiling,
    Workload,
    make_pattern,
)
from .analysis import (
    CommunicationProfile,
    KernelAnalysis,
    PatternProfile,
    analyze_kernel,
)
from .cdfg import CDFG, Operator, OpKind, lower_pattern
from .ppg import PPG, Kernel, PPGEdge

__all__ = [
    "PatternKind",
    "Tensor",
    "Workload",
    "Pattern",
    "Map",
    "Reduce",
    "Scan",
    "Stencil",
    "Pipeline",
    "Gather",
    "Scatter",
    "Tiling",
    "Pack",
    "make_pattern",
    "CDFG",
    "Operator",
    "OpKind",
    "lower_pattern",
    "PPG",
    "PPGEdge",
    "Kernel",
    "KernelAnalysis",
    "PatternProfile",
    "CommunicationProfile",
    "analyze_kernel",
]
