"""Parallel pattern annotations (Poly, Section IV-A, Table I).

Poly abstracts OpenCL kernels as compositions of nine parallel patterns:
``Map``, ``Reduce``, ``Scan``, ``Stencil``, ``Pipeline``, ``Gather``,
``Scatter``, ``Tiling`` and ``Pack``.  Each pattern carries a *workload
descriptor* — the computational footprint the hardware models consume —
and exposes the data/compute parallelism estimates used by the automatic
pattern analysis (Section IV-A of the paper).

Programmers compose kernels either programmatically::

    from repro.patterns import Map, Reduce, Tensor

    x = Tensor("x", (1024, 256))
    m = Map(x, func="sigmoid", ops_per_element=4)
    r = Reduce(m.output, func="add")

or through the annotated pseudo-OpenCL frontend in :mod:`repro.frontend`.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

__all__ = [
    "PatternKind",
    "Tensor",
    "Workload",
    "Pattern",
    "Map",
    "Reduce",
    "Scan",
    "Stencil",
    "Pipeline",
    "Gather",
    "Scatter",
    "Tiling",
    "Pack",
    "PATTERN_CLASSES",
]


class PatternKind(enum.Enum):
    """The nine parallel patterns defined by Poly (Fig. 3 of the paper)."""

    MAP = "map"
    REDUCE = "reduce"
    SCAN = "scan"
    STENCIL = "stencil"
    PIPELINE = "pipeline"
    GATHER = "gather"
    SCATTER = "scatter"
    TILING = "tiling"
    PACK = "pack"

    @classmethod
    def from_name(cls, name: str) -> "PatternKind":
        """Resolve a (case-insensitive) pattern name to its kind.

        Raises :class:`ValueError` for unknown names so that frontend
        errors surface at annotation time rather than during DSE.
        """
        try:
            return cls(name.strip().lower())
        except ValueError:
            valid = ", ".join(k.value for k in cls)
            raise ValueError(
                f"unknown parallel pattern {name!r}; expected one of: {valid}"
            ) from None


_DTYPE_BYTES = {
    "fp16": 2,
    "fp32": 4,
    "fp64": 8,
    "int8": 1,
    "int16": 2,
    "int32": 4,
    "int64": 8,
    "uint8": 1,
}


@dataclass(frozen=True)
class Tensor:
    """A named, shaped data collection flowing between patterns.

    In OpenCL terms a :class:`Tensor` is a buffer in global memory (or,
    after fusion, in on-chip scratchpad/BRAM).  Only the metadata needed
    for performance modelling is kept: shape and element type.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str = "fp32"
    #: Parameter/state tensors (weights, lookup tables) that persist
    #: across invocations.  They are read every sequential step of a
    #: recurrent kernel: a GPU must re-stream them from DRAM per step
    #: (no cache fits them), while an FPGA can pin a compressed copy in
    #: BRAM — the ESE/C-LSTM asymmetry the hardware models exploit.
    resident: bool = False
    #: For resident tensors: True when the *same* values are reused by
    #: every sequential step (LSTM weights), so an FPGA loads them once;
    #: False when each step uses a different slice (per-layer FC
    #: weights), which must be streamed per step on every platform.
    stationary: bool = True

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError(f"tensor {self.name!r} must have a non-empty shape")
        if any(d <= 0 for d in self.shape):
            raise ValueError(f"tensor {self.name!r} has non-positive dim: {self.shape}")
        if self.dtype not in _DTYPE_BYTES:
            raise ValueError(f"tensor {self.name!r} has unknown dtype {self.dtype!r}")

    @property
    def elements(self) -> int:
        """Total number of scalar elements."""
        return math.prod(self.shape)

    @property
    def dtype_bytes(self) -> int:
        """Bytes per element."""
        return _DTYPE_BYTES[self.dtype]

    @property
    def nbytes(self) -> int:
        """Total size in bytes."""
        return self.elements * self.dtype_bytes

    def with_shape(self, shape: Tuple[int, ...], suffix: str = "_out") -> "Tensor":
        """Derive an output tensor with a new shape (never resident)."""
        return Tensor(self.name + suffix, shape, self.dtype)


@dataclass(frozen=True)
class Workload:
    """Computational footprint of one pattern instance.

    This is what the analytical hardware models consume: arithmetic
    operations, off-chip traffic, and available parallelism.  It is
    produced by the pattern classes from their tensor arguments and the
    ``ops_per_element`` hint, mirroring Poly's automatic pattern
    analysis (Section IV-A).
    """

    elements: int
    ops_per_element: float
    bytes_in: int
    bytes_out: int
    op_kind: str = "fp32"
    #: Fraction of memory accesses that are sequential/coalescable before
    #: optimization; Gather/Scatter have low values, Map/Reduce high.
    access_regularity: float = 1.0
    #: Number of *dependent* sequential phases (e.g. LSTM time steps).
    #: Work inside a phase is parallel; phases serialize.  GPUs pay per-
    #: phase sync/launch costs and see only a phase's worth of
    #: parallelism; FPGA pipelines stream phases through the fabric.
    sequential_steps: int = 1

    def __post_init__(self) -> None:
        if self.elements <= 0:
            raise ValueError("workload must cover at least one element")
        if self.ops_per_element < 0:
            raise ValueError("ops_per_element must be non-negative")
        if not 0.0 <= self.access_regularity <= 1.0:
            raise ValueError("access_regularity must lie in [0, 1]")
        if self.sequential_steps < 1:
            raise ValueError("sequential_steps must be >= 1")

    @property
    def total_ops(self) -> float:
        """Total arithmetic operations."""
        return self.elements * self.ops_per_element

    @property
    def total_bytes(self) -> int:
        """Total off-chip bytes moved (before fusion)."""
        return self.bytes_in + self.bytes_out

    @property
    def arithmetic_intensity(self) -> float:
        """Operations per off-chip byte (roofline x-axis)."""
        return self.total_ops / max(self.total_bytes, 1)


_pattern_ids = itertools.count()


@dataclass(eq=False)
class Pattern:
    """Base class for all parallel pattern instances.

    Subclasses set :attr:`kind` and compute the output tensor plus the
    parallelism estimates.  Every instance gets a unique ``uid`` so that
    two structurally identical patterns remain distinct PPG nodes.
    """

    inputs: Tuple[Tensor, ...]
    func: str = "identity"
    ops_per_element: float = 1.0
    kind: PatternKind = field(init=False)
    uid: int = field(init=False)

    def __post_init__(self) -> None:
        if not self.inputs:
            raise ValueError(f"{type(self).__name__} needs at least one input tensor")
        self.uid = next(_pattern_ids)

    # -- interface the analysis layer relies on ---------------------------

    @property
    def name(self) -> str:
        return f"{self.kind.value}#{self.uid}({self.func})"

    @property
    def output(self) -> Tensor:
        """Output tensor (default: same shape as first input)."""
        return self.inputs[0].with_shape(self.inputs[0].shape)

    @property
    def workload(self) -> Workload:
        """Workload descriptor for the hardware models."""
        bytes_in = sum(t.nbytes for t in self.inputs)
        return Workload(
            elements=self.output.elements,
            ops_per_element=self.ops_per_element,
            bytes_in=bytes_in,
            bytes_out=self.output.nbytes,
            op_kind=self.inputs[0].dtype,
            access_regularity=self._access_regularity(),
        )

    @property
    def data_parallelism(self) -> int:
        """Independent data lanes (Section IV-A: from buffer capacity,
        data type and access pattern)."""
        return self.output.elements

    @property
    def compute_parallelism(self) -> int:
        """Independent operator instances available per step."""
        return self.data_parallelism

    def _access_regularity(self) -> float:
        return 1.0

    def __hash__(self) -> int:  # identity hash: patterns are graph nodes
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class Map(Pattern):
    """``Map(inputs, func)`` — replicate ``func`` over independent elements.

    Natural fit for GPU SIMD lanes and FPGA parallel compute units
    (Table I row 1).
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        self.kind = PatternKind.MAP


class Reduce(Pattern):
    """``Reduce(inputs, func)`` — combine all elements with an associative
    combiner into a single element (Table I row 2)."""

    def __post_init__(self) -> None:
        super().__post_init__()
        self.kind = PatternKind.REDUCE

    @property
    def output(self) -> Tensor:
        return self.inputs[0].with_shape((1,), suffix="_red")

    @property
    def workload(self) -> Workload:
        n = self.inputs[0].elements
        return Workload(
            elements=n,
            ops_per_element=self.ops_per_element,
            bytes_in=sum(t.nbytes for t in self.inputs),
            bytes_out=self.output.nbytes,
            op_kind=self.inputs[0].dtype,
        )

    @property
    def compute_parallelism(self) -> int:
        # Tree reduction: at most n/2 combiners run in parallel.
        return max(self.inputs[0].elements // 2, 1)


class Scan(Pattern):
    """``Scan(inputs, func)`` — like Reduce but returns every intermediate
    accumulation (prefix sum).  Output shape matches the input."""

    def __post_init__(self) -> None:
        super().__post_init__()
        self.kind = PatternKind.SCAN

    @property
    def compute_parallelism(self) -> int:
        # Work-efficient scan exposes ~n/2 parallelism per sweep but needs
        # log(n) sweeps; report the per-sweep figure.
        return max(self.inputs[0].elements // 2, 1)


@dataclass(eq=False)
class Stencil(Pattern):
    """``Stencil(inputs, func, list)`` — Map generalized to neighbourhood
    access; ``neighborhood`` is the index-offset list from Table I."""

    neighborhood: Tuple[Tuple[int, ...], ...] = ((0,),)

    def __post_init__(self) -> None:
        super().__post_init__()
        self.kind = PatternKind.STENCIL
        if not self.neighborhood:
            raise ValueError("stencil needs a non-empty neighborhood list")

    @property
    def taps(self) -> int:
        """Number of neighbouring elements each output reads."""
        return len(self.neighborhood)

    @property
    def workload(self) -> Workload:
        base = super().workload
        # Each output element reads `taps` inputs; reuse captured later by
        # scratchpad/double-buffer optimizations, so count raw traffic here.
        return Workload(
            elements=base.elements,
            ops_per_element=self.ops_per_element * self.taps,
            bytes_in=base.bytes_in * self.taps,
            bytes_out=base.bytes_out,
            op_kind=base.op_kind,
            access_regularity=0.8,
        )

    def _access_regularity(self) -> float:
        return 0.8


@dataclass(eq=False)
class Pipeline(Pattern):
    """``Pipeline(inputs, func0, func1, ...)`` — producer/consumer stages
    all active at once; stages may hold state (Table I row 5)."""

    stages: Tuple[str, ...] = ("stage0",)
    ops_per_stage: float = 1.0
    #: Dependent sequential iterations the pipeline streams through
    #: (e.g. LSTM time steps): state produced by one iteration feeds the
    #: next, so iterations cannot run concurrently on a GPU.
    iterations: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        self.kind = PatternKind.PIPELINE
        if not self.stages:
            raise ValueError("pipeline needs at least one stage")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.func = "+".join(self.stages)

    @property
    def depth(self) -> int:
        """Number of pipeline stages."""
        return len(self.stages)

    @property
    def workload(self) -> Workload:
        return Workload(
            elements=self.inputs[0].elements,
            ops_per_element=self.ops_per_stage * self.depth,
            bytes_in=sum(t.nbytes for t in self.inputs),
            bytes_out=self.output.nbytes,
            op_kind=self.inputs[0].dtype,
            sequential_steps=self.iterations,
        )

    @property
    def compute_parallelism(self) -> int:
        # Per sequential iteration, stage-level plus per-stage element
        # concurrency is available.
        return max(self.inputs[0].elements // self.iterations, 1) * self.depth


@dataclass(eq=False)
class Gather(Pattern):
    """``Gather(inputs, list)`` — indexed reads: Map + random serial read.

    ``index_space`` is the number of gathered elements.  Random access
    defeats coalescing until the memory-coalescing / burst optimization
    is applied (Table I row 6)."""

    index_space: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        self.kind = PatternKind.GATHER

    @property
    def gathered(self) -> int:
        return self.index_space or self.inputs[0].elements

    @property
    def output(self) -> Tensor:
        return Tensor(
            self.inputs[0].name + "_gath", (self.gathered,), self.inputs[0].dtype
        )

    def _access_regularity(self) -> float:
        return 0.25


@dataclass(eq=False)
class Scatter(Pattern):
    """``Scatter(inputs, list)`` — the inverse of Gather: indexed writes."""

    index_space: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        self.kind = PatternKind.SCATTER

    @property
    def scattered(self) -> int:
        return self.index_space or self.inputs[0].elements

    @property
    def output(self) -> Tensor:
        return Tensor(
            self.inputs[0].name + "_scat", (self.scattered,), self.inputs[0].dtype
        )

    def _access_regularity(self) -> float:
        return 0.25


@dataclass(eq=False)
class Tiling(Pattern):
    """``Tiling(inputs, [x,y,z], [X,Y,Z])`` — decompose a collection into
    sub-collections; combined with Stencil/Map etc. (Table I row 8)."""

    tile: Tuple[int, ...] = (1,)
    grid: Tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        super().__post_init__()
        self.kind = PatternKind.TILING
        if len(self.tile) != len(self.grid):
            raise ValueError("tile and grid must have the same rank")
        if any(t <= 0 for t in self.tile) or any(g <= 0 for g in self.grid):
            raise ValueError("tile and grid dims must be positive")

    @property
    def tiles(self) -> int:
        return math.prod(self.grid)

    @property
    def tile_elements(self) -> int:
        return math.prod(self.tile)

    @property
    def workload(self) -> Workload:
        base = super().workload
        # Tiling itself moves data; ops are address arithmetic only.
        return Workload(
            elements=base.elements,
            ops_per_element=max(self.ops_per_element, 0.5),
            bytes_in=base.bytes_in,
            bytes_out=base.bytes_out,
            op_kind=base.op_kind,
        )

    @property
    def compute_parallelism(self) -> int:
        return self.tiles


class Pack(Pattern):
    """``Pack`` — compact/serialize elements (used by FC, Reduce stages in
    Table II).  Low arithmetic, streaming access."""

    def __post_init__(self) -> None:
        super().__post_init__()
        self.kind = PatternKind.PACK

    @property
    def workload(self) -> Workload:
        base = super().workload
        return Workload(
            elements=base.elements,
            ops_per_element=max(self.ops_per_element, 0.25),
            bytes_in=base.bytes_in,
            bytes_out=base.bytes_out,
            op_kind=base.op_kind,
        )


PATTERN_CLASSES = {
    PatternKind.MAP: Map,
    PatternKind.REDUCE: Reduce,
    PatternKind.SCAN: Scan,
    PatternKind.STENCIL: Stencil,
    PatternKind.PIPELINE: Pipeline,
    PatternKind.GATHER: Gather,
    PatternKind.SCATTER: Scatter,
    PatternKind.TILING: Tiling,
    PatternKind.PACK: Pack,
}


def make_pattern(kind: PatternKind, inputs: Sequence[Tensor], **kwargs) -> Pattern:
    """Factory used by the frontend: build a pattern instance by kind."""
    cls = PATTERN_CLASSES[kind]
    return cls(tuple(inputs), **kwargs)
