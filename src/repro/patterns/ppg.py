"""Parallel Pattern Graph (PPG) — Section IV-A, Fig. 4(a).

A kernel may involve multiple parallel patterns; Poly represents the
kernel as a PPG whose nodes are pattern instances and whose edges are
data dependencies between patterns.  The PPG is the unit the *global*
optimization pass (fusion, transfer-strategy selection) operates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from .annotations import Pattern, PatternKind, Workload
from .cdfg import CDFG, lower_pattern

__all__ = ["PPGEdge", "PPG", "Kernel"]


@dataclass(frozen=True)
class PPGEdge:
    """Data dependency between two patterns.

    ``bytes_moved`` is the size of the intermediate tensor; the global
    optimizer decides whether it travels through off-chip global memory
    or stays on chip after fusion (Section IV-B).
    """

    src: Pattern
    dst: Pattern
    bytes_moved: int

    def __post_init__(self) -> None:
        if self.bytes_moved < 0:
            raise ValueError("bytes_moved must be non-negative")


class PPG:
    """Parallel Pattern Graph of a single OpenCL kernel."""

    def __init__(self, name: str = "kernel") -> None:
        self.name = name
        self.graph = nx.DiGraph()

    # -- construction ------------------------------------------------------

    def add_pattern(self, pattern: Pattern) -> Pattern:
        """Insert a pattern node (idempotent)."""
        self.graph.add_node(pattern)
        return pattern

    def connect(
        self, src: Pattern, dst: Pattern, bytes_moved: Optional[int] = None
    ) -> PPGEdge:
        """Add a data-dependency edge; defaults to the producer's output size.

        Acyclicity is preserved incrementally: the edge ``src -> dst``
        closes a cycle iff ``src`` is already reachable *from* ``dst``,
        so a single reachability probe over ``dst``'s descendants
        suffices — no full-graph DAG re-check per insert.
        """
        if src not in self.graph or dst not in self.graph:
            raise KeyError("add both patterns to the PPG before connecting them")
        if nx.has_path(self.graph, dst, src):
            raise ValueError(
                f"edge {src.name} -> {dst.name} would create a cycle in PPG "
                f"{self.name!r}"
            )
        if bytes_moved is None:
            bytes_moved = src.output.nbytes
        edge = PPGEdge(src, dst, bytes_moved)
        self.graph.add_edge(src, dst, edge=edge)
        return edge

    # -- queries -----------------------------------------------------------

    @property
    def patterns(self) -> List[Pattern]:
        """Patterns in topological order (stable for a given graph)."""
        return list(nx.topological_sort(self.graph))

    @property
    def edges(self) -> List[PPGEdge]:
        return [data["edge"] for _, _, data in self.graph.edges(data=True)]

    def successors(self, pattern: Pattern) -> List[Pattern]:
        return list(self.graph.successors(pattern))

    def predecessors(self, pattern: Pattern) -> List[Pattern]:
        return list(self.graph.predecessors(pattern))

    def edge_between(self, src: Pattern, dst: Pattern) -> PPGEdge:
        return self.graph.edges[src, dst]["edge"]

    def communication_bytes(self) -> int:
        """Total inter-pattern traffic (all through global memory before
        fusion) — the quantity global optimization attacks."""
        return sum(e.bytes_moved for e in self.edges)

    def sources(self) -> List[Pattern]:
        return [p for p in self.graph.nodes if self.graph.in_degree(p) == 0]

    def sinks(self) -> List[Pattern]:
        return [p for p in self.graph.nodes if self.graph.out_degree(p) == 0]

    def adjacent_pairs(self) -> List[Tuple[Pattern, Pattern]]:
        """Producer/consumer pairs — fusion candidates."""
        return [(u, v) for u, v in self.graph.edges]

    def validate(self) -> None:
        """Check PPG structural invariants."""
        if self.graph.number_of_nodes() == 0:
            raise ValueError(f"PPG {self.name!r} is empty")
        if not nx.is_directed_acyclic_graph(self.graph):
            raise ValueError(f"PPG {self.name!r} must be acyclic")

    def __len__(self) -> int:
        return self.graph.number_of_nodes()

    def __repr__(self) -> str:
        return (
            f"<PPG {self.name!r}: {len(self)} patterns, "
            f"{self.graph.number_of_edges()} deps>"
        )


class Kernel:
    """An OpenCL kernel: a named PPG plus its lowered CDFGs.

    This is the unit of design-space exploration (one design space per
    kernel per device, Table II) and of runtime scheduling (one node in
    the application kernel graph, Section V).
    """

    def __init__(
        self,
        name: str,
        ppg: PPG,
        platform_bias: Optional[Dict] = None,
    ) -> None:
        ppg.validate()
        self.name = name
        self.ppg = ppg
        self._cdfgs: Dict[Pattern, CDFG] = {}
        #: Calibration multipliers on modelled latency, keyed by
        #: :class:`~repro.hardware.specs.DeviceType`.  The analytical
        #: models are parameterized from public datasheets only; these
        #: constants absorb the per-kernel residual against the paper's
        #: measured hardware (toolchain quality, kernel-specific code
        #: generation) so the reproduced trade-off shapes match the
        #: published ones.  They scale latency only — knob trends and
        #: power still come from the models.
        self.platform_bias = dict(platform_bias or {})

    def latency_bias(self, device_type) -> float:
        """Calibration multiplier for one device family (default 1.0)."""
        return float(self.platform_bias.get(device_type, 1.0))

    def cdfg(self, pattern: Pattern) -> CDFG:
        """Lazily lower a pattern to its CDFG (cached)."""
        if pattern not in self._cdfgs:
            if pattern not in self.ppg.graph:
                raise KeyError(f"{pattern!r} is not part of kernel {self.name!r}")
            self._cdfgs[pattern] = lower_pattern(pattern)
        return self._cdfgs[pattern]

    @property
    def patterns(self) -> List[Pattern]:
        return self.ppg.patterns

    @property
    def pattern_kinds(self) -> Tuple[PatternKind, ...]:
        """Distinct pattern kinds, in first-appearance order (Table II)."""
        seen: List[PatternKind] = []
        for p in self.patterns:
            if p.kind not in seen:
                seen.append(p.kind)
        return tuple(seen)

    # -- aggregate workload, consumed by the hardware models ---------------

    @property
    def total_ops(self) -> float:
        """Total arithmetic operations per kernel invocation."""
        return sum(p.workload.total_ops for p in self.patterns)

    @property
    def io_bytes(self) -> int:
        """External input + output bytes (excludes inter-pattern traffic)."""
        srcs, snks = self.ppg.sources(), self.ppg.sinks()
        bytes_in = sum(sum(t.nbytes for t in p.inputs) for p in srcs)
        bytes_out = sum(p.output.nbytes for p in snks)
        return bytes_in + bytes_out

    @property
    def intermediate_bytes(self) -> int:
        """Inter-pattern traffic (fusion target)."""
        return self.ppg.communication_bytes()

    @property
    def max_data_parallelism(self) -> int:
        return max(p.data_parallelism for p in self.patterns)

    def _resident(self, stationary: bool) -> int:
        seen: Dict[str, int] = {}
        for pattern in self.patterns:
            for t in pattern.inputs:
                if t.resident and t.stationary == stationary:
                    seen[t.name] = t.nbytes
        return sum(seen.values())

    @property
    def resident_bytes(self) -> int:
        """Total parameter/state bytes (deduplicated by tensor name).

        These persist across invocations and are re-read every
        sequential step; see :class:`~repro.patterns.annotations.Tensor`.
        """
        return self._resident(True) + self._resident(False)

    @property
    def resident_stationary_bytes(self) -> int:
        """Resident bytes reused unchanged by every step (LSTM weights):
        an FPGA pins a compressed copy in BRAM once."""
        return self._resident(True)

    @property
    def resident_streamed_bytes(self) -> int:
        """Resident bytes where each step needs a different slice
        (per-layer DNN weights): streamed per step on all platforms."""
        return self._resident(False)

    def workload_summary(self) -> Workload:
        """Aggregate workload descriptor for the whole kernel."""
        elements = max(p.workload.elements for p in self.patterns)
        total_ops = self.total_ops
        regularity = min(p.workload.access_regularity for p in self.patterns)
        srcs, snks = self.ppg.sources(), self.ppg.sinks()
        return Workload(
            elements=elements,
            ops_per_element=total_ops / elements,
            bytes_in=sum(sum(t.nbytes for t in p.inputs) for p in srcs),
            bytes_out=sum(p.output.nbytes for p in snks),
            op_kind=self.patterns[0].workload.op_kind,
            access_regularity=regularity,
            sequential_steps=max(p.workload.sequential_steps for p in self.patterns),
        )

    def __repr__(self) -> str:
        kinds = ",".join(k.value for k in self.pattern_kinds)
        return f"<Kernel {self.name!r}: [{kinds}], {self.total_ops/1e6:.2f} Mops>"
