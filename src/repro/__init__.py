"""repro — a full reproduction of *Poly: Efficient Heterogeneous System
and Application Management for Interactive Applications* (HPCA 2019).

The package mirrors the paper's structure:

* :mod:`repro.patterns`  — the nine parallel patterns, PPG/CDFG and
  automatic pattern analysis (Section IV-A);
* :mod:`repro.frontend`  — annotated pseudo-OpenCL frontend;
* :mod:`repro.optim`     — Table-I knobs, local/global optimization and
  analytical-model-driven DSE (Sections IV-B/C);
* :mod:`repro.hardware`  — platform specs (Tables IV/V) and the
  GPU/FPGA analytical performance & power models;
* :mod:`repro.scheduler` — the two-step runtime kernel scheduler and
  the static baselines (Section V);
* :mod:`repro.runtime`   — leaf-node architectures (Table III), the
  request-level simulator, metrics, traces and the TCO model
  (Section VI);
* :mod:`repro.apps`      — the six QoS-sensitive benchmarks (Table II);
* :mod:`repro.experiments` — one regenerator per paper table/figure.

Quickstart::

    from repro import apps, runtime
    app = apps.build("ASR")
    system = runtime.setting("I", "Heter-Poly")
    spaces = app.explore(system.platforms)
    arrivals = runtime.poisson_arrivals(rps=30, duration_ms=20_000)
    result = runtime.run_simulation(system, app, spaces, arrivals)
    print(result.p99_ms, result.avg_power_w)
"""

__version__ = "1.0.0"

from . import apps, hardware, optim, patterns, runtime, scheduler

__all__ = [
    "apps",
    "hardware",
    "optim",
    "patterns",
    "runtime",
    "scheduler",
    "__version__",
]
