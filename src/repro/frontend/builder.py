"""Builder: lower parsed annotation ASTs to Kernel / KernelGraph objects.

The output is identical to what the programmatic API in
:mod:`repro.patterns` and :mod:`repro.apps` produces, so frontend-built
kernels flow through DSE, scheduling and simulation unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..patterns import (
    Gather,
    Kernel,
    Map,
    Pack,
    Pattern,
    PatternKind,
    Pipeline,
    PPG,
    Reduce,
    Scan,
    Scatter,
    Stencil,
    Tensor,
    Tiling,
)
from ..scheduler.kernel_graph import KernelGraph
from .ast_nodes import KernelDecl, Module, PatternDecl
from .parser import ParseError, parse

__all__ = ["build_kernel", "build_application_graph", "compile_source"]


def _build_tensor(decl) -> Tensor:
    return Tensor(
        decl.name,
        decl.shape,
        decl.dtype,
        resident=decl.resident,
        stationary=decl.stationary,
    )


def _build_pattern(
    decl: PatternDecl,
    tensors: Dict[str, Tensor],
    built: Dict[str, Pattern],
) -> Pattern:
    """Instantiate one pattern; pattern-name inputs use the producer's
    output tensor (implicit dataflow)."""
    inputs: List[Tensor] = []
    for name in decl.inputs:
        if name in tensors:
            inputs.append(tensors[name])
        elif name in built:
            inputs.append(built[name].output)
        else:  # parser validated; defensive
            raise ParseError(f"unknown input {name!r}", decl.line)
    if not inputs:
        raise ParseError(f"pattern {decl.name!r} needs at least one input", decl.line)

    kind = PatternKind.from_name(decl.kind)
    attrs = dict(decl.attrs)
    common = {
        "func": str(attrs.pop("func", "identity")),
        "ops_per_element": float(attrs.pop("ops", 1.0)),
    }
    inputs_t = tuple(inputs)

    if kind == PatternKind.MAP:
        return Map(inputs_t, **common)
    if kind == PatternKind.REDUCE:
        return Reduce(inputs_t, **common)
    if kind == PatternKind.SCAN:
        return Scan(inputs_t, **common)
    if kind == PatternKind.STENCIL:
        neigh = attrs.pop("neighborhood", None)
        if neigh is not None:
            if isinstance(neigh, tuple) and neigh and isinstance(neigh[0], int):
                neighborhood = tuple((int(n),) for n in neigh)
            else:
                neighborhood = tuple(neigh)
        else:
            neighborhood = ((0,),)
        return Stencil(inputs_t, neighborhood=neighborhood, **common)
    if kind == PatternKind.PIPELINE:
        stages = attrs.pop("stages", ("stage0",))
        if isinstance(stages, str):
            stages = (stages,)
        iterations = int(attrs.pop("iterations", 1))
        return Pipeline(
            inputs_t,
            stages=tuple(stages),
            ops_per_stage=common["ops_per_element"],
            iterations=iterations,
        )
    if kind == PatternKind.GATHER:
        index_space = attrs.pop("index_space", None)
        return Gather(
            inputs_t,
            index_space=int(index_space) if index_space else None,
            **common,
        )
    if kind == PatternKind.SCATTER:
        index_space = attrs.pop("index_space", None)
        return Scatter(
            inputs_t,
            index_space=int(index_space) if index_space else None,
            **common,
        )
    if kind == PatternKind.TILING:
        tile = attrs.pop("tile", (1,))
        grid = attrs.pop("grid", (1,))
        return Tiling(inputs_t, tile=tuple(tile), grid=tuple(grid), **common)
    if kind == PatternKind.PACK:
        return Pack(inputs_t, **common)
    raise ParseError(f"unsupported pattern kind {decl.kind!r}", decl.line)


def build_kernel(decl: KernelDecl, validate: bool = False) -> Kernel:
    """Lower one kernel declaration to a :class:`Kernel`.

    ``validate=True`` runs the pattern-layer lint rules on the built
    kernel and raises :class:`~repro.lint.LintError` on any ERROR
    diagnostic (shape/dtype mismatches, scatter races, cycles) so
    malformed sources fail at build time, not inside DSE.
    """
    tensors = {t.name: _build_tensor(t) for t in decl.tensors}
    ppg = PPG(decl.name)
    built: Dict[str, Pattern] = {}
    for pdecl in decl.patterns:
        pattern = _build_pattern(pdecl, tensors, built)
        built[pdecl.name] = pattern
        ppg.add_pattern(pattern)
        # Implicit edges: pattern-name inputs connect producer->consumer.
        for name in pdecl.inputs:
            if name in built and name != pdecl.name:
                producer = built[name]
                if producer is not pattern and not ppg.graph.has_edge(
                    producer, pattern
                ):
                    ppg.connect(producer, pattern)
    for dep in decl.deps:
        for src, dst in zip(dep.chain, dep.chain[1:]):
            if not ppg.graph.has_edge(built[src], built[dst]):
                ppg.connect(built[src], built[dst])
    kernel = Kernel(decl.name, ppg)
    if validate:
        from ..lint import run_lint

        run_lint(kernel).raise_if_errors(f"kernel {decl.name!r}")
    return kernel


def build_application_graph(
    module: Module, app_name: str, validate: bool = False
) -> Tuple[KernelGraph, float]:
    """Lower one app block to a :class:`KernelGraph` plus its QoS bound.

    ``validate=True`` additionally lints the assembled kernel graph
    (and every kernel in it) and raises on ERROR diagnostics.
    """
    if app_name not in module.apps:
        raise KeyError(f"module defines no app {app_name!r}")
    app = module.apps[app_name]
    graph = KernelGraph(app.name)
    for kname in app.kernels:
        if kname not in module.kernels:
            raise ParseError(f"app uses unknown kernel {kname!r}", app.line)
        graph.add_kernel(build_kernel(module.kernels[kname], validate=validate))
    for edge in app.edges:
        graph.connect(edge.src, edge.dst, edge.nbytes)
    graph.validate()
    if validate:
        from ..lint import LintContext, run_lint

        run_lint(graph, LintContext(qos_ms=app.qos_ms)).raise_if_errors(
            f"app {app_name!r}"
        )
    return graph, app.qos_ms


def compile_source(source: str, validate: bool = False):
    """One-shot convenience: parse and build everything in the source.

    Returns ``(kernels, graphs)``: all standalone kernels by name, and
    ``{app_name: (KernelGraph, qos_ms)}``.  ``validate=True`` gates
    every built object through the lint rules.
    """
    module = parse(source)
    kernels = {
        name: build_kernel(decl, validate=validate)
        for name, decl in module.kernels.items()
    }
    graphs = {
        name: build_application_graph(module, name, validate=validate)
        for name in module.apps
    }
    return kernels, graphs
