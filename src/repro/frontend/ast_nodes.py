"""AST nodes for the pattern-annotation frontend.

Poly's programming interface is function-level pattern annotations on
OpenCL kernels (Section IV-A, Table I).  This frontend accepts a
compact, line-oriented annotation language — the part of the OpenCL
source Poly actually consumes — and builds the same :class:`Kernel` /
:class:`KernelGraph` objects as the programmatic API:

.. code-block:: text

    kernel LSTM {
        tensor x (160, 1024) fp16
        tensor w (4, 1536, 2560) int8 resident
        pattern gates = map(x, w) func=mac ops=30720
        pattern recur = pipeline(x) stages=sigmoid,tanh ops=3 iterations=160
        dep gates -> recur
    }

    app ASR qos=200 {
        use LSTM
        edge LSTM -> FC
    }
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "TensorDecl",
    "PatternDecl",
    "DepDecl",
    "KernelDecl",
    "EdgeDecl",
    "AppDecl",
    "Module",
]


@dataclass(frozen=True)
class TensorDecl:
    """``tensor NAME (d0, d1, ...) dtype [resident] [streamed]``"""

    name: str
    shape: Tuple[int, ...]
    dtype: str = "fp32"
    resident: bool = False
    stationary: bool = True
    line: int = 0


@dataclass(frozen=True)
class PatternDecl:
    """``pattern NAME = kind(input, ...) key=value ...``"""

    name: str
    kind: str
    inputs: Tuple[str, ...]
    attrs: Dict[str, object] = field(default_factory=dict)
    line: int = 0


@dataclass(frozen=True)
class DepDecl:
    """``dep a -> b -> c`` (chained data dependencies)."""

    chain: Tuple[str, ...]
    line: int = 0


@dataclass
class KernelDecl:
    """One ``kernel NAME { ... }`` block."""

    name: str
    tensors: List[TensorDecl] = field(default_factory=list)
    patterns: List[PatternDecl] = field(default_factory=list)
    deps: List[DepDecl] = field(default_factory=list)
    line: int = 0


@dataclass(frozen=True)
class EdgeDecl:
    """``edge a -> b [bytes=N]`` inside an app block."""

    src: str
    dst: str
    nbytes: Optional[int] = None
    line: int = 0


@dataclass
class AppDecl:
    """One ``app NAME [qos=MS] { ... }`` block."""

    name: str
    qos_ms: float = 200.0
    kernels: List[str] = field(default_factory=list)
    edges: List[EdgeDecl] = field(default_factory=list)
    line: int = 0


@dataclass
class Module:
    """A parsed source file: kernels plus (optionally) app blocks."""

    kernels: Dict[str, KernelDecl] = field(default_factory=dict)
    apps: Dict[str, AppDecl] = field(default_factory=dict)
