"""Parser for the pattern-annotation language.

Line-oriented: every declaration fits on one line; ``kernel`` and
``app`` blocks are delimited by braces.  Errors carry line numbers so
annotation mistakes surface at compile time, mirroring Poly's
Clang-based annotation checker (Section IV-A).
"""

from __future__ import annotations

import re
from typing import Optional, Tuple

from .ast_nodes import (
    AppDecl,
    DepDecl,
    EdgeDecl,
    KernelDecl,
    Module,
    PatternDecl,
    TensorDecl,
)

__all__ = ["ParseError", "parse"]


class ParseError(ValueError):
    """Annotation syntax error with source location."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


_TENSOR_RE = re.compile(
    r"^tensor\s+(?P<name>\w+)\s*\((?P<shape>[\d\s,]+)\)"
    r"(?:\s+(?P<dtype>\w+))?(?P<flags>(?:\s+(?:resident|streamed))*)\s*$"
)
_PATTERN_RE = re.compile(
    r"^pattern\s+(?P<name>\w+)\s*=\s*(?P<kind>\w+)\s*"
    r"\((?P<inputs>[\w\s,]*)\)(?P<attrs>.*)$"
)
_DEP_RE = re.compile(r"^dep\s+(?P<chain>\w+(?:\s*->\s*\w+)+)\s*$")
_EDGE_RE = re.compile(
    r"^edge\s+(?P<src>\w+)\s*->\s*(?P<dst>\w+)(?:\s+bytes\s*=\s*(?P<nb>\d+))?\s*$"
)
_KERNEL_OPEN_RE = re.compile(r"^kernel\s+(?P<name>\w+)\s*\{\s*$")
_APP_OPEN_RE = re.compile(
    r"^app\s+(?P<name>\w+)(?:\s+qos\s*=\s*(?P<qos>[\d.]+))?\s*\{\s*$"
)
_USE_RE = re.compile(r"^use\s+(?P<name>\w+)\s*$")
_ATTR_RE = re.compile(r"(\w+)\s*=\s*(\([^)]*\)|[\w.,+-]+)")


def _parse_int_tuple(text: str, line: int) -> Tuple[int, ...]:
    try:
        return tuple(int(p) for p in text.replace("(", "").replace(")", "").split(",") if p.strip())
    except ValueError:
        raise ParseError(f"expected integer tuple, got {text!r}", line) from None


def _parse_attr_value(raw: str, line: int):
    """Attribute values: int, float, tuple of ints, or comma list of names."""
    raw = raw.strip()
    if raw.startswith("("):
        return _parse_int_tuple(raw, line)
    if "," in raw:
        return tuple(p.strip() for p in raw.split(",") if p.strip())
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


def _strip(line: str) -> str:
    """Drop comments (# and //) and whitespace."""
    for marker in ("#", "//"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line.strip()


def parse(source: str) -> Module:
    """Parse annotation source into a :class:`Module`."""
    module = Module()
    kernel: Optional[KernelDecl] = None
    app: Optional[AppDecl] = None

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = _strip(raw)
        if not line:
            continue

        if line == "}":
            if kernel is not None:
                _validate_kernel(kernel)
                module.kernels[kernel.name] = kernel
                kernel = None
            elif app is not None:
                module.apps[app.name] = app
                app = None
            else:
                raise ParseError("unmatched '}'", lineno)
            continue

        m = _KERNEL_OPEN_RE.match(line)
        if m:
            if kernel is not None or app is not None:
                raise ParseError("nested blocks are not allowed", lineno)
            if m.group("name") in module.kernels:
                raise ParseError(f"duplicate kernel {m.group('name')!r}", lineno)
            kernel = KernelDecl(name=m.group("name"), line=lineno)
            continue

        m = _APP_OPEN_RE.match(line)
        if m:
            if kernel is not None or app is not None:
                raise ParseError("nested blocks are not allowed", lineno)
            qos = float(m.group("qos")) if m.group("qos") else 200.0
            app = AppDecl(name=m.group("name"), qos_ms=qos, line=lineno)
            continue

        if kernel is not None:
            _parse_kernel_line(line, lineno, kernel)
        elif app is not None:
            _parse_app_line(line, lineno, app)
        else:
            raise ParseError(f"statement outside any block: {line!r}", lineno)

    if kernel is not None:
        raise ParseError(f"kernel {kernel.name!r} is missing '}}'", kernel.line)
    if app is not None:
        raise ParseError(f"app {app.name!r} is missing '}}'", app.line)
    return module


def _parse_kernel_line(line: str, lineno: int, kernel: KernelDecl) -> None:
    m = _TENSOR_RE.match(line)
    if m:
        flags = (m.group("flags") or "").split()
        kernel.tensors.append(
            TensorDecl(
                name=m.group("name"),
                shape=_parse_int_tuple(m.group("shape"), lineno),
                dtype=m.group("dtype") or "fp32",
                resident="resident" in flags or "streamed" in flags,
                stationary="streamed" not in flags,
                line=lineno,
            )
        )
        return
    m = _PATTERN_RE.match(line)
    if m:
        inputs = tuple(p.strip() for p in m.group("inputs").split(",") if p.strip())
        attrs = {
            key: _parse_attr_value(value, lineno)
            for key, value in _ATTR_RE.findall(m.group("attrs"))
        }
        kernel.patterns.append(
            PatternDecl(
                name=m.group("name"),
                kind=m.group("kind"),
                inputs=inputs,
                attrs=attrs,
                line=lineno,
            )
        )
        return
    m = _DEP_RE.match(line)
    if m:
        chain = tuple(p.strip() for p in m.group("chain").split("->"))
        kernel.deps.append(DepDecl(chain=chain, line=lineno))
        return
    raise ParseError(f"unrecognized kernel statement: {line!r}", lineno)


def _parse_app_line(line: str, lineno: int, app: AppDecl) -> None:
    m = _USE_RE.match(line)
    if m:
        app.kernels.append(m.group("name"))
        return
    m = _EDGE_RE.match(line)
    if m:
        nbytes = int(m.group("nb")) if m.group("nb") else None
        app.edges.append(
            EdgeDecl(src=m.group("src"), dst=m.group("dst"), nbytes=nbytes, line=lineno)
        )
        return
    raise ParseError(f"unrecognized app statement: {line!r}", lineno)


def _validate_kernel(kernel: KernelDecl) -> None:
    if not kernel.patterns:
        raise ParseError(f"kernel {kernel.name!r} declares no patterns", kernel.line)
    tensor_names = {t.name for t in kernel.tensors}
    pattern_names = {p.name for p in kernel.patterns}
    if len(pattern_names) != len(kernel.patterns):
        raise ParseError(
            f"kernel {kernel.name!r} has duplicate pattern names", kernel.line
        )
    for p in kernel.patterns:
        for inp in p.inputs:
            if inp not in tensor_names and inp not in pattern_names:
                raise ParseError(
                    f"pattern {p.name!r} references unknown input {inp!r}", p.line
                )
    for dep in kernel.deps:
        for node in dep.chain:
            if node not in pattern_names:
                raise ParseError(
                    f"dependency references unknown pattern {node!r}", dep.line
                )
