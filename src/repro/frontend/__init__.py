"""Pattern-annotation frontend: parse annotated pseudo-OpenCL into the
same Kernel/KernelGraph objects the programmatic API builds."""

from .ast_nodes import (
    AppDecl,
    DepDecl,
    EdgeDecl,
    KernelDecl,
    Module,
    PatternDecl,
    TensorDecl,
)
from .builder import build_application_graph, build_kernel, compile_source
from .parser import ParseError, parse

__all__ = [
    "parse",
    "ParseError",
    "Module",
    "KernelDecl",
    "PatternDecl",
    "TensorDecl",
    "DepDecl",
    "AppDecl",
    "EdgeDecl",
    "build_kernel",
    "build_application_graph",
    "compile_source",
]
