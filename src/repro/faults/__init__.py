"""Fault injection and failover resilience for the heterogeneous runtime.

The paper's system monitor (Fig. 2, Section VI-C) closes a feedback
loop over *healthy* devices; this package adds the unhealthy half of
datacenter reality so tail latency and QoS violations can be studied
under device failures:

* :mod:`repro.faults.events`   — typed fault events and deterministic,
  seed-driven MTBF/MTTR fault schedules;
* :mod:`repro.faults.policy`   — device health states and the
  timeout + capped-exponential-backoff retry policy;
* :mod:`repro.faults.injector` — the injection engine that applies a
  schedule to a running leaf node and intercepts doomed executions;
* :mod:`repro.faults.failover` — missed-heartbeat detection, replanning
  over the surviving device set (reusing the per-device Pareto fronts)
  and graceful degradation via priority load shedding.

Quickstart::

    from repro import apps, runtime
    from repro.faults import FaultSchedule

    app = apps.build("ASR")
    system = runtime.setting("I", "Heter-Poly")
    spaces = app.explore(system.platforms)
    arrivals = runtime.poisson_arrivals(rps=30, duration_ms=10_000)
    chaos = FaultSchedule.single_crash("fpga0", at_ms=4_000)
    result = runtime.run_simulation(system, app, spaces, arrivals, faults=chaos)
    print(result.availability, result.faults.mean_recovery_ms)
"""

from .events import FaultEvent, FaultKind, FaultSchedule
from .failover import FailoverPlanner, RecoveryRecord
from .injector import FaultInjector, ResilienceReport
from .policy import DeviceHealth, RetryPolicy

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultSchedule",
    "DeviceHealth",
    "RetryPolicy",
    "FaultInjector",
    "ResilienceReport",
    "FailoverPlanner",
    "RecoveryRecord",
]
