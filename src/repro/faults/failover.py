"""Failover planner: replanning over survivors and graceful degradation.

When the :class:`~repro.scheduler.monitor.SystemMonitor` detects a
failure (a device stops heartbeating for longer than the heartbeat
timeout), the planner:

1. quarantines the device (the dispatcher stops routing to it),
2. invalidates the node's precomputed operating plans and immediately
   re-runs the latency/energy scheduling passes over the *surviving*
   device set — the per-device Pareto fronts from the offline DSE are
   reused as-is, so a kernel whose preferred FPGA died falls back to
   its GPU implementations and vice versa,
3. records a :class:`RecoveryRecord` (crash -> detection -> replan)
   from which the resilience metrics derive recovery time.

When the surviving capacity cannot carry the offered load under the
QoS bound, the planner enters **graceful degradation**: the lowest-
priority slice of incoming requests is shed at admission so the rest
still meet the 200 ms bound, rather than every request missing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from ..obs.tracer import NULL_TRACER

__all__ = ["RecoveryRecord", "FailoverPlanner"]


@dataclass(frozen=True)
class RecoveryRecord:
    """One failure-to-failover episode on a device."""

    device_id: str
    failed_ms: float     # when the device actually went down
    detected_ms: float   # when the missed heartbeat crossed the timeout
    replanned_ms: float  # when the surviving-set plans were in place

    @property
    def detection_ms(self) -> float:
        return self.detected_ms - self.failed_ms

    @property
    def recovery_ms(self) -> float:
        """Crash-to-failover time: how long requests saw a degraded node."""
        return self.replanned_ms - self.failed_ms


class FailoverPlanner:
    """Reacts to monitor-detected failures by replanning over survivors."""

    #: Never shed more than this fraction, even under extreme capacity
    #: loss — some traffic must keep probing the system for recovery.
    MAX_SHED = 0.95

    def __init__(self, node, heartbeat_timeout_ms: float = 50.0) -> None:
        if heartbeat_timeout_ms <= 0:
            raise ValueError("heartbeat timeout must be positive")
        self.node = node
        self.monitor = node.monitor
        self.heartbeat_timeout_ms = heartbeat_timeout_ms
        #: Observability hook; the injector's bind() points this at the
        #: run's tracer so detections/replans land in the same stream.
        self.tracer = NULL_TRACER
        self.recoveries: List[RecoveryRecord] = []
        self.shed_level = 0.0
        self._down: Set[str] = set()

    # -- detection ------------------------------------------------------------

    def heartbeat(self, now_ms: float) -> None:
        """Live devices heartbeat into the monitor; a crashed device's
        beat stays frozen at its last pre-crash submission."""
        from .policy import DeviceHealth

        for dev in self.node.devices:
            if dev.health != DeviceHealth.FAILED:
                self.monitor.record_heartbeat(dev.device_id, now_ms)

    def poll(self, now_ms: float) -> None:
        """Confirm failures whose heartbeats have lapsed past the timeout."""
        from .policy import DeviceHealth

        by_id = {d.device_id: d for d in self.node.devices}
        for device_id in self.monitor.missed_heartbeats(
            now_ms, self.heartbeat_timeout_ms
        ):
            dev = by_id.get(device_id)
            if (
                dev is not None
                and dev.health == DeviceHealth.FAILED
                and not dev.failure_detected
            ):
                self.confirm_failure(dev, now_ms)

    # -- failover -------------------------------------------------------------

    def confirm_failure(self, device, now_ms: float) -> None:
        """Quarantine the device and replan over the surviving set."""
        device.failure_detected = True
        self._down.add(device.device_id)
        failed_at = device.failed_at_ms if device.failed_at_ms is not None else now_ms
        if self.tracer.enabled:
            last = self.monitor.last_heartbeat_ms(device.device_id)
            self.tracer.emit(
                "fault.heartbeat_miss",
                name=device.device_id,
                t_ms=now_ms,
                device=device.device_id,
                last_beat_ms=last if last is not None else failed_at,
            )
            self.tracer.emit(
                "fault.failover",
                name=device.device_id,
                t_ms=now_ms,
                device=device.device_id,
                failed_ms=failed_at,
                detected_ms=now_ms,
            )
        self.node.invalidate_plans()
        self.node.maybe_replan(now_ms)
        self.recoveries.append(
            RecoveryRecord(device.device_id, failed_at, now_ms, now_ms)
        )

    def on_recovery(self, device, now_ms: float) -> None:
        """A repaired device rejoins the pool: replan to reuse it."""
        if self.tracer.enabled:
            self.tracer.emit(
                "fault.recover",
                name=device.device_id,
                t_ms=now_ms,
                device=device.device_id,
            )
        self._down.discard(device.device_id)
        self.monitor.record_heartbeat(device.device_id, now_ms)
        self.node.invalidate_plans()
        self.node.maybe_replan(now_ms)
        if not self._down:
            self.shed_level = 0.0

    # -- graceful degradation -------------------------------------------------

    def should_shed(self, priority: float, now_ms: float) -> bool:
        """Load-shedding admission decision under degraded capacity.

        While any device is quarantined, compare the observed arrival
        rate against the surviving plan's capacity estimate; when the
        offered load exceeds it, shed the lowest-priority fraction of
        requests (``priority`` below the deficit fraction) so the
        remainder can still meet the QoS bound.
        """
        if not self._down:
            self.shed_level = 0.0
            return False
        capacity = self.node.capacity_estimate_rps()
        rate = self.monitor.arrival_rate_rps(now_ms)
        if capacity <= 0:
            self.shed_level = self.MAX_SHED
        elif rate <= capacity:
            self.shed_level = 0.0
        else:
            self.shed_level = min(1.0 - capacity / rate, self.MAX_SHED)
        return priority < self.shed_level

    @property
    def quarantined(self) -> Set[str]:
        return set(self._down)
