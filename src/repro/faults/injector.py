"""The fault-injection engine: applies a schedule to a running node.

The injector sits between the arrival stream and the leaf node.  On
every submission the node calls :meth:`FaultInjector.advance`, which

* applies every schedule event that has come due — crashing, throttling
  or repairing :class:`~repro.runtime.node.AcceleratorInstance` objects,
* lets live devices heartbeat into the system monitor, and
* polls the :class:`~repro.faults.failover.FailoverPlanner` so lapsed
  heartbeats turn into quarantine + replanning.

During dispatch the node asks :meth:`execution_fault` whether a just-
reserved execution is lost to an outage or a transient soft error; the
node then aborts the reservation and retries under the
:class:`~repro.faults.policy.RetryPolicy`.  Because the schedule is
static data and all randomness is seed-driven, a chaos run is exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..obs.tracer import NULL_TRACER
from .events import FaultEvent, FaultKind, FaultSchedule
from .failover import FailoverPlanner, RecoveryRecord
from .policy import DeviceHealth, RetryPolicy

__all__ = ["ResilienceReport", "FaultInjector"]


@dataclass
class ResilienceReport:
    """Aggregate outcome of one chaos run."""

    applied: List[FaultEvent] = field(default_factory=list)
    retries: int = 0
    failovers: int = 0          # retries that moved to another device
    shed: int = 0               # requests dropped by graceful degradation
    failed_requests: int = 0    # requests that exhausted their retries
    recoveries: List[RecoveryRecord] = field(default_factory=list)

    @property
    def mean_recovery_ms(self) -> float:
        from ..runtime.metrics import mean_recovery_ms

        return mean_recovery_ms([r.recovery_ms for r in self.recoveries])

    def summary(self) -> Dict[str, float]:
        return {
            "events_applied": float(len(self.applied)),
            "retries": float(self.retries),
            "failovers": float(self.failovers),
            "shed": float(self.shed),
            "failed_requests": float(self.failed_requests),
            "recoveries": float(len(self.recoveries)),
            "mean_recovery_ms": self.mean_recovery_ms,
        }

    def __repr__(self) -> str:
        return (
            f"<ResilienceReport: {len(self.applied)} events, "
            f"{self.retries} retries ({self.failovers} failovers), "
            f"{self.shed} shed, {self.failed_requests} failed, "
            f"{len(self.recoveries)} recoveries>"
        )


class FaultInjector:
    """Applies a :class:`FaultSchedule` to one leaf node over a run."""

    def __init__(
        self,
        schedule: FaultSchedule,
        retry_policy: Optional[RetryPolicy] = None,
        heartbeat_timeout_ms: float = 50.0,
        tracer=None,
    ) -> None:
        self.schedule = schedule
        self.policy = retry_policy or RetryPolicy()
        self.heartbeat_timeout_ms = heartbeat_timeout_ms
        #: Observability hook; lint rule OBS001 warns when fault
        #: injection runs with this left inert (chaos runs without a
        #: trace sink are hard to debug after the fact).
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.report = ResilienceReport()
        self._cursor = 0
        self._consumed: Set[int] = set()
        self._node = None
        self.planner: Optional[FailoverPlanner] = None

    # -- wiring ---------------------------------------------------------------

    def bind(self, node) -> FailoverPlanner:
        """Attach to a leaf node (one injector drives one node)."""
        if self._node is not None:
            raise RuntimeError("injector is already bound to a node")
        known = {d.device_id for d in node.devices}
        unknown = [d for d in self.schedule.device_ids() if d not in known]
        if unknown:
            raise ValueError(
                f"fault schedule names unknown devices {unknown}; "
                f"node has {sorted(known)}"
            )
        self._node = node
        if not self.tracer.enabled and node.tracer.enabled:
            # A traced node traces its faults too, even when the
            # injector was constructed before the tracer existed.
            self.tracer = node.tracer
        self.planner = FailoverPlanner(node, self.heartbeat_timeout_ms)
        self.planner.tracer = self.tracer
        self.report.recoveries = self.planner.recoveries
        node.attach_injector(self)
        return self.planner

    # -- the simulation clock -------------------------------------------------

    def advance(self, now_ms: float) -> None:
        """Apply all events due at ``now_ms``; heartbeat; detect."""
        if self._node is None:
            raise RuntimeError("injector is not bound to a node")
        by_id = {d.device_id: d for d in self._node.devices}
        events = self.schedule.events
        while self._cursor < len(events) and events[self._cursor].time_ms <= now_ms:
            event = events[self._cursor]
            self._cursor += 1
            self._apply(event, by_id[event.device_id], now_ms)
        self.planner.heartbeat(now_ms)
        self.planner.poll(now_ms)

    def _apply(self, event: FaultEvent, device, now_ms: float) -> None:
        if event.kind == FaultKind.DEVICE_CRASH:
            if device.health != DeviceHealth.FAILED:
                device.mark_failed(event.time_ms)
                self.report.applied.append(event)
                self._trace_applied(event)
        elif event.kind == FaultKind.SLOWDOWN:
            if device.health != DeviceHealth.FAILED:
                device.mark_degraded(event.magnitude)
                self.report.applied.append(event)
                self._trace_applied(event)
        elif event.kind == FaultKind.RECOVERY:
            was_failed = device.health == DeviceHealth.FAILED
            if device.health != DeviceHealth.HEALTHY:
                device.mark_recovered(event.time_ms)
                self.report.applied.append(event)
                self._trace_applied(event)
            if was_failed:
                self.planner.on_recovery(device, now_ms)
        else:  # TRANSIENT events fire at dispatch time, not here.
            pass

    def _trace_applied(self, event: FaultEvent) -> None:
        if self.tracer.enabled:
            args = {"fault": event.kind.value, "device": event.device_id}
            if event.kind == FaultKind.SLOWDOWN:
                args["magnitude"] = event.magnitude
            self.tracer.emit(
                "fault.inject",
                name=event.kind.value,
                t_ms=event.time_ms,
                **args,
            )

    # -- dispatch interception ------------------------------------------------

    def execution_fault(
        self, device, start_ms: float, end_ms: float
    ) -> Optional[Tuple[float, FaultKind]]:
        """Does an execution reserved on ``(start, end]`` fail?

        Returns ``(fault_ms, kind)`` for the earliest applicable fault —
        a fail-stop outage overlapping the window (including dispatches
        onto an already-dead but not-yet-quarantined device, which fail
        at their start), or an unconsumed transient soft error — else
        ``None``.  Transients are one-shot: the first execution that
        overlaps one consumes it.
        """
        crash_ms = self.schedule.first_crash_overlap(
            device.device_id, start_ms, end_ms
        )
        transient: Optional[Tuple[int, float]] = None
        for index, event in self.schedule.transients_for(device.device_id):
            if index in self._consumed:
                continue
            if start_ms < event.time_ms <= end_ms:
                transient = (index, event.time_ms)
                break
        if crash_ms is not None and (transient is None or crash_ms <= transient[1]):
            return crash_ms, FaultKind.DEVICE_CRASH
        if transient is not None:
            self._consumed.add(transient[0])
            self.report.applied.append(self.schedule.events[transient[0]])
            self._trace_applied(self.schedule.events[transient[0]])
            return transient[1], FaultKind.TRANSIENT
        return None
