"""Typed fault events and deterministic fault schedules.

A :class:`FaultSchedule` is an immutable, time-sorted list of
:class:`FaultEvent` objects describing *what goes wrong and when* on a
leaf node: device crashes, transient (soft-error) kernel failures,
thermal/degraded-clock slowdowns and recoveries.  Schedules are either
hand-written (deterministic chaos scenarios, e.g. "kill fpga0 at
3 s") or drawn from MTBF/MTTR exponential processes with a fixed seed,
so every chaos run is exactly reproducible.

The schedule is *pure data*: all mutation (device health, consumed
transients, detection bookkeeping) lives in
:class:`~repro.faults.injector.FaultInjector`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["FaultKind", "FaultEvent", "FaultSchedule"]


class FaultKind(enum.Enum):
    """The four event types the injection engine understands."""

    DEVICE_CRASH = "device_crash"    # device goes down (fail-stop)
    TRANSIENT = "transient"          # one kernel execution is lost
    SLOWDOWN = "slowdown"            # degraded clocks (thermal throttle)
    RECOVERY = "recovery"            # device returns to service


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: when, what, and on which device.

    ``magnitude`` only matters for :data:`FaultKind.SLOWDOWN`: it is the
    latency multiplier (>= 1) applied to executions while degraded.
    """

    time_ms: float
    kind: FaultKind
    device_id: str
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise ValueError("fault time must be non-negative")
        if not self.device_id:
            raise ValueError("fault event needs a device id")
        if self.kind == FaultKind.SLOWDOWN and self.magnitude < 1.0:
            raise ValueError("slowdown magnitude must be >= 1 (latency multiplier)")


class FaultSchedule:
    """An immutable, time-ordered fault scenario for one leaf node."""

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.time_ms, e.device_id, e.kind.value))
        )

    # -- construction ---------------------------------------------------------

    @classmethod
    def single_crash(
        cls,
        device_id: str,
        at_ms: float,
        recover_at_ms: Optional[float] = None,
    ) -> "FaultSchedule":
        """The canonical chaos scenario: one device dies mid-run (and
        optionally comes back)."""
        events = [FaultEvent(at_ms, FaultKind.DEVICE_CRASH, device_id)]
        if recover_at_ms is not None:
            if recover_at_ms <= at_ms:
                raise ValueError("recovery must come after the crash")
            events.append(FaultEvent(recover_at_ms, FaultKind.RECOVERY, device_id))
        return cls(events)

    @classmethod
    def from_mtbf(
        cls,
        device_ids: Sequence[str],
        duration_ms: float,
        mtbf_ms: float,
        mttr_ms: float,
        seed: int = 0,
        transient_rate_per_s: float = 0.0,
        slowdown_prob: float = 0.0,
        slowdown_factor: float = 1.5,
    ) -> "FaultSchedule":
        """Seed-driven generator: per-device alternating up/down renewal
        process with exponential MTBF (time-to-failure) and MTTR
        (time-to-repair), plus optional Poisson transient faults.

        With probability ``slowdown_prob`` a failure manifests as a
        thermal slowdown (degraded clocks) instead of a fail-stop crash;
        its recovery ends the throttling.  Identical seeds produce
        identical schedules.
        """
        if duration_ms <= 0:
            raise ValueError("duration must be positive")
        if mtbf_ms <= 0 or mttr_ms <= 0:
            raise ValueError("MTBF and MTTR must be positive")
        if not 0.0 <= slowdown_prob <= 1.0:
            raise ValueError("slowdown_prob must be in [0, 1]")
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []
        for device_id in device_ids:
            t = float(rng.exponential(mtbf_ms))
            while t < duration_ms:
                down = float(rng.exponential(mttr_ms))
                if rng.random() < slowdown_prob:
                    events.append(
                        FaultEvent(t, FaultKind.SLOWDOWN, device_id, slowdown_factor)
                    )
                else:
                    events.append(FaultEvent(t, FaultKind.DEVICE_CRASH, device_id))
                up = t + down
                if up < duration_ms:
                    events.append(FaultEvent(up, FaultKind.RECOVERY, device_id))
                t = up + float(rng.exponential(mtbf_ms))
            if transient_rate_per_s > 0:
                tt = float(rng.exponential(1000.0 / transient_rate_per_s))
                while tt < duration_ms:
                    events.append(FaultEvent(tt, FaultKind.TRANSIENT, device_id))
                    tt += float(rng.exponential(1000.0 / transient_rate_per_s))
        return cls(events)

    # -- queries --------------------------------------------------------------

    def for_device(self, device_id: str) -> List[FaultEvent]:
        return [e for e in self.events if e.device_id == device_id]

    def device_ids(self) -> List[str]:
        return sorted({e.device_id for e in self.events})

    def crashes(self) -> List[FaultEvent]:
        return [e for e in self.events if e.kind == FaultKind.DEVICE_CRASH]

    def down_intervals(self, device_id: str) -> List[Tuple[float, float]]:
        """Fail-stop outage windows ``(crash_ms, recovery_ms)`` for one
        device; an unrecovered crash extends to ``+inf``.  Nested or
        repeated crashes inside an open outage are collapsed."""
        out: List[Tuple[float, float]] = []
        open_at: Optional[float] = None
        for e in self.for_device(device_id):
            if e.kind == FaultKind.DEVICE_CRASH and open_at is None:
                open_at = e.time_ms
            elif e.kind == FaultKind.RECOVERY and open_at is not None:
                out.append((open_at, e.time_ms))
                open_at = None
        if open_at is not None:
            out.append((open_at, math.inf))
        return out

    def permanently_failed(self, device_id: str) -> bool:
        """True when the device's last outage never ends."""
        intervals = self.down_intervals(device_id)
        return bool(intervals) and math.isinf(intervals[-1][1])

    def first_crash_overlap(
        self, device_id: str, start_ms: float, end_ms: float
    ) -> Optional[float]:
        """The moment an execution spanning ``(start, end]`` on this
        device is lost to an outage, or ``None``.  An execution already
        inside an outage window is lost immediately (at its start)."""
        for lo, hi in self.down_intervals(device_id):
            if lo <= end_ms and hi > start_ms:
                return max(lo, start_ms)
        return None

    def transients_for(self, device_id: str) -> List[Tuple[int, FaultEvent]]:
        """Transient events on one device with their schedule indices
        (the injector tracks consumption by index)."""
        return [
            (i, e)
            for i, e in enumerate(self.events)
            if e.device_id == device_id and e.kind == FaultKind.TRANSIENT
        ]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __repr__(self) -> str:
        kinds = {}
        for e in self.events:
            kinds[e.kind.value] = kinds.get(e.kind.value, 0) + 1
        summary = ", ".join(f"{v} {k}" for k, v in sorted(kinds.items()))
        return f"<FaultSchedule: {len(self)} events ({summary or 'empty'})>"
