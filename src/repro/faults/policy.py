"""Device health states and the retry/failover policy.

``DeviceHealth`` is the three-state machine the runtime threads through
:class:`~repro.runtime.node.AcceleratorInstance`:

    HEALTHY -> DEGRADED (thermal slowdown) -> HEALTHY  (recovery)
    HEALTHY/DEGRADED -> FAILED (fail-stop crash) -> HEALTHY (repair)

``RetryPolicy`` governs what happens to an execution lost on a failed
device: the requester notices after ``timeout_ms`` (the latency-timeout
of the monitor's detection path), then retries with capped exponential
backoff up to ``max_retries`` times before the request is declared
failed.  Construction accepts degenerate values (zero timeout, infinite
cap) so that chaos scenarios can model them — the lint engine flags
them (rule RT005) instead.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

__all__ = ["DeviceHealth", "RetryPolicy"]


class DeviceHealth(enum.Enum):
    """Health state of one accelerator instance."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"   # serving, but with throttled clocks
    FAILED = "failed"       # fail-stop: executions on it are lost


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + capped-exponential-backoff retry for lost executions."""

    max_retries: int = 3
    #: How long a requester waits before declaring a dispatched
    #: execution lost (the failure-detection latency per attempt).
    timeout_ms: float = 20.0
    backoff_base_ms: float = 5.0
    backoff_cap_ms: float = 80.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.timeout_ms < 0:
            raise ValueError("timeout must be non-negative")
        if self.backoff_base_ms < 0:
            raise ValueError("backoff base must be non-negative")
        if self.backoff_cap_ms < 0:
            raise ValueError("backoff cap must be non-negative")

    def backoff_ms(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), capped."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        raw = self.backoff_base_ms * (2.0 ** attempt)
        return min(raw, self.backoff_cap_ms)

    @property
    def bounded(self) -> bool:
        """True when the backoff cap is finite and positive."""
        return 0.0 < self.backoff_cap_ms < math.inf
