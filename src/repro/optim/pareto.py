"""Pareto-frontier utilities.

The DSE keeps only points interesting for the runtime trade-off between
latency, throughput and power (Section IV-C).  These helpers are shared
by the design-space container, the scheduler and the experiment
harness.

The frontier is maintained *incrementally*: :class:`ParetoFrontier`
holds the current non-dominated set sorted by the first objective and
inserts each new point with a binary search plus a contiguous prune of
the points it dominates.  For the DSE's streaming use (thousands of
model evaluations per kernel, small surviving frontier) this replaces
the old sort-the-world pass with O(log m) work per point.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Generic, Iterator, List, Sequence, Tuple, TypeVar

T = TypeVar("T")

__all__ = [
    "ParetoFrontier",
    "IncrementalHypervolume",
    "pareto_front",
    "dominated_fraction",
    "hypervolume_2d",
]


class ParetoFrontier(Generic[T]):
    """Incrementally maintained 2-D minimization Pareto frontier.

    Invariants: the retained points are sorted by strictly increasing
    ``f1`` and, consequently, strictly decreasing ``f2`` — every point
    is non-dominated.  ``insert`` rejects weakly dominated candidates
    (so the *first* of two identical points wins) and evicts any
    retained points the candidate weakly dominates.
    """

    def __init__(self) -> None:
        self._f1: List[float] = []
        self._f2: List[float] = []
        self._items: List[T] = []

    def insert(self, item: T, f1: float, f2: float) -> bool:
        """Offer one point; returns True iff it joined the frontier."""
        # The best (lowest) f2 among retained points with f1' <= f1 sits
        # at the largest such f1'; if it is <= f2 the candidate is
        # (weakly) dominated.
        last_leq = bisect_right(self._f1, f1) - 1
        if last_leq >= 0 and self._f2[last_leq] <= f2:
            return False
        # Evict the contiguous run of points the candidate weakly
        # dominates: those with f1' >= f1 and f2' >= f2.
        lo = bisect_left(self._f1, f1)
        hi = lo
        while hi < len(self._f1) and self._f2[hi] >= f2:
            hi += 1
        if hi > lo:
            del self._f1[lo:hi]
            del self._f2[lo:hi]
            del self._items[lo:hi]
        self._f1.insert(lo, f1)
        self._f2.insert(lo, f2)
        self._items.insert(lo, item)
        return True

    def dominated(self, f1: float, f2: float) -> bool:
        """Would a point with these objectives be rejected?"""
        last_leq = bisect_right(self._f1, f1) - 1
        return last_leq >= 0 and self._f2[last_leq] <= f2

    def items(self) -> List[T]:
        """Frontier members sorted by ascending ``f1``."""
        return list(self._items)

    def objectives(self) -> List[Tuple[float, float]]:
        """``(f1, f2)`` pairs of the frontier, ascending in ``f1``."""
        return list(zip(self._f1, self._f2))

    def hypervolume(self, reference: Tuple[float, float]) -> float:
        """Area dominated by the frontier up to ``reference``.

        Single O(n) sweep over the sorted invariant: ``_f1`` is strictly
        ascending and ``_f2`` strictly descending, so each point adds a
        disjoint rectangle ``(rx - f1) * (prev_y - f2)``.  Points beyond
        the reference in either objective contribute nothing.
        """
        rx, ry = reference
        area = 0.0
        prev_y = ry
        for x, y in zip(self._f1, self._f2):
            if x > rx or y > ry:
                continue
            if prev_y > y:
                area += (rx - x) * (prev_y - y)
                prev_y = y
        return area

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __repr__(self) -> str:
        return f"<ParetoFrontier: {len(self)} points>"


class IncrementalHypervolume(Generic[T]):
    """Hypervolume tracker over a streaming :class:`ParetoFrontier`.

    Used by the guided search to detect quality stalls: each ``insert``
    offers a point to the wrapped frontier and returns the hypervolume
    *gain* it produced.  Dominated offers are rejected in O(log n)
    without touching the area; accepted offers trigger one O(n) re-sweep
    of the (small) frontier, which for DSE-sized fronts is cheaper and
    simpler than maintaining per-point area deltas under eviction.
    """

    def __init__(self, reference: Tuple[float, float]) -> None:
        rx, ry = reference
        self.reference: Tuple[float, float] = (float(rx), float(ry))
        self.frontier: ParetoFrontier[T] = ParetoFrontier()
        self._area = 0.0

    @property
    def area(self) -> float:
        """Current dominated area up to the reference point."""
        return self._area

    def insert(self, item: T, f1: float, f2: float) -> float:
        """Offer a point; returns the hypervolume gained (0.0 if rejected)."""
        if not self.frontier.insert(item, f1, f2):
            return 0.0
        new_area = self.frontier.hypervolume(self.reference)
        gain = new_area - self._area
        self._area = new_area
        return gain

    def __len__(self) -> int:
        return len(self.frontier)


def pareto_front(
    items: Sequence[T],
    objectives: Callable[[T], Tuple[float, float]],
) -> List[T]:
    """2-D minimization Pareto frontier of ``items``.

    ``objectives`` maps an item to ``(f1, f2)``; both are minimized.
    Returns the frontier sorted by ascending ``f1``.  Duplicate points
    keep their first occurrence.
    """
    frontier: ParetoFrontier[T] = ParetoFrontier()
    for item in items:
        f1, f2 = objectives(item)
        frontier.insert(item, f1, f2)
    return frontier.items()


def dominated_fraction(
    items: Sequence[T],
    objectives: Callable[[T], Tuple[float, float]],
) -> float:
    """Fraction of items strictly dominated by some other item."""
    if not items:
        return 0.0
    front = set(map(id, pareto_front(items, objectives)))
    # Frontier membership is necessary but not sufficient for
    # non-domination only in the presence of ties on f1; treat frontier
    # points as non-dominated (consistent with pareto_front semantics).
    return 1.0 - len(front) / len(items)


def hypervolume_2d(
    items: Sequence[T],
    objectives: Callable[[T], Tuple[float, float]],
    reference: Tuple[float, float],
) -> float:
    """Hypervolume (area) dominated by ``items`` up to ``reference``.

    A standard DSE quality metric: larger is a better frontier.  Both
    objectives are minimized and must not exceed the reference point.
    """
    front = pareto_front(items, objectives)
    if not front:
        return 0.0
    rx, ry = reference
    area = 0.0
    prev_y = ry
    for item in front:
        x, y = objectives(item)
        if x > rx or y > ry:
            continue
        area += (rx - x) * (prev_y - y) if prev_y > y else 0.0
        # Width accounted from this x to the reference; subsequent points
        # only add the strip below the current best y.
        prev_y = min(prev_y, y)
    return area
