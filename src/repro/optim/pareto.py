"""Pareto-frontier utilities.

The DSE keeps only points interesting for the runtime trade-off between
latency, throughput and power (Section IV-C).  These helpers are shared
by the design-space container, the scheduler and the experiment
harness.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")

__all__ = ["pareto_front", "dominated_fraction", "hypervolume_2d"]


def pareto_front(
    items: Sequence[T],
    objectives: Callable[[T], Tuple[float, float]],
) -> List[T]:
    """2-D minimization Pareto frontier of ``items``.

    ``objectives`` maps an item to ``(f1, f2)``; both are minimized.
    Returns the frontier sorted by ascending ``f1``.  Duplicate points
    keep their first occurrence.
    """
    decorated = sorted(
        ((objectives(it), i, it) for i, it in enumerate(items)),
        key=lambda t: (t[0][0], t[0][1], t[1]),
    )
    front: List[T] = []
    best_f2 = float("inf")
    for (f1, f2), _, item in decorated:
        if f2 < best_f2:
            front.append(item)
            best_f2 = f2
    return front


def dominated_fraction(
    items: Sequence[T],
    objectives: Callable[[T], Tuple[float, float]],
) -> float:
    """Fraction of items strictly dominated by some other item."""
    if not items:
        return 0.0
    front = set(map(id, pareto_front(items, objectives)))
    # Frontier membership is necessary but not sufficient for
    # non-domination only in the presence of ties on f1; treat frontier
    # points as non-dominated (consistent with pareto_front semantics).
    return 1.0 - len(front) / len(items)


def hypervolume_2d(
    items: Sequence[T],
    objectives: Callable[[T], Tuple[float, float]],
    reference: Tuple[float, float],
) -> float:
    """Hypervolume (area) dominated by ``items`` up to ``reference``.

    A standard DSE quality metric: larger is a better frontier.  Both
    objectives are minimized and must not exceed the reference point.
    """
    front = pareto_front(items, objectives)
    if not front:
        return 0.0
    rx, ry = reference
    area = 0.0
    prev_y = ry
    for item in front:
        x, y = objectives(item)
        if x > rx or y > ry:
            continue
        area += (rx - x) * (prev_y - y) if prev_y > y else 0.0
        # Width accounted from this x to the reference; subsequent points
        # only add the strip below the current best y.
        prev_y = min(prev_y, y)
    return area
