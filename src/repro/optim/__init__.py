"""Compile-time optimization: Table-I knobs, local/global passes, DSE.

Implements Poly's offline kernel analysis component (Section IV): the
per-pattern optimization options, the local and global optimization
passes, analytical-model-driven design space exploration and Pareto
frontier extraction.
"""

from .design_point import DesignPoint, KernelDesignSpace
from .dse import enumerate_configs, explore_application, explore_kernel, resolve_n_jobs
from .global_opt import FusionDecision, GlobalOptimizer, GlobalPlan
from .knobs import applicable_knobs, knob_candidates
from .local_opt import LocalOptimizer, LocalPlan
from .pareto import (
    IncrementalHypervolume,
    ParetoFrontier,
    dominated_fraction,
    hypervolume_2d,
    pareto_front,
)
from .search import (
    GenerationStats,
    RungStats,
    SearchConfig,
    SearchStats,
    explore_kernel_guided,
    space_hypervolume,
)

__all__ = [
    "DesignPoint",
    "KernelDesignSpace",
    "explore_kernel",
    "explore_application",
    "explore_kernel_guided",
    "enumerate_configs",
    "resolve_n_jobs",
    "LocalOptimizer",
    "LocalPlan",
    "GlobalOptimizer",
    "GlobalPlan",
    "FusionDecision",
    "knob_candidates",
    "applicable_knobs",
    "ParetoFrontier",
    "IncrementalHypervolume",
    "pareto_front",
    "dominated_fraction",
    "hypervolume_2d",
    "SearchConfig",
    "SearchStats",
    "RungStats",
    "GenerationStats",
    "space_hypervolume",
]
