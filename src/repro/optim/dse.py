"""Model-driven design space exploration (Section IV-C).

Exhaustive evaluation of every knob combination would take "tens of
hours" with real toolchains; the paper instead navigates with the
analytical models, reducing exploration to seconds.  We do the same:
enumerate the pruned local space crossed with the global options,
evaluate every combination with the GPU/FPGA analytical model, drop
infeasible FPGA points, and optionally subsample to a target size (the
per-kernel design counts of Table II).

Two mechanisms keep the sweep fast at application scale:

* model evaluations are memoized behind the process-wide
  :mod:`repro.hardware.model_cache`, so re-exploring an unchanged
  kernel (repeated experiments, figure regeneration, the bench
  harness's warm trials) costs dictionary lookups instead of model math;
* ``explore_application(n_jobs=N)`` fans the independent
  (kernel, platform) explorations out over a ``ProcessPoolExecutor``.
  Each pair's exploration is self-contained and deterministic, so the
  parallel product is bit-identical to the ``n_jobs=1`` serial path;
  workers ship their cache deltas back so the parent stays warm.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware import ImplConfig
from ..hardware.model_cache import evaluate_cached, model_cache
from ..hardware.specs import DeviceType
from ..patterns.ppg import Kernel
from .design_point import DesignPoint, KernelDesignSpace
from .global_opt import GlobalOptimizer
from .local_opt import LocalOptimizer

__all__ = [
    "explore_kernel",
    "explore_application",
    "enumerate_configs",
    "prune_invalid_configs",
]


def enumerate_configs(kernel: Kernel, spec) -> List[ImplConfig]:
    """Enumerate candidate implementations after local+global pruning.

    The local pass supplies per-knob candidates and forced values; the
    global pass decides whether a fused variant is worth exploring
    (doubling the space when it is).
    """
    local = LocalOptimizer(spec.device_type).plan(kernel)
    global_plan = GlobalOptimizer(spec).plan(kernel)

    fused_options = (False, True) if global_plan.worthwhile else (False,)
    names = sorted(local.candidates)
    value_lists = [local.candidates[n] for n in names]

    configs: List[ImplConfig] = []
    for values in itertools.product(*value_lists):
        assignment = dict(zip(names, values))
        assignment.update(local.forced)
        for fused in fused_options:
            configs.append(ImplConfig(fused=fused, **assignment))
    return configs


def prune_invalid_configs(
    kernel: Kernel, spec, configs: Sequence[ImplConfig]
) -> Tuple[List[ImplConfig], "LintReport"]:
    """Drop configs the optimization-layer lint rules reject.

    Runs the ``OPT00x`` rules (knob applicability, FPGA resource budget,
    degenerate work-groups) over every candidate *before* the analytical
    models are evaluated; returns the surviving configs plus the full
    report so callers can surface why points were pruned.
    """
    from ..lint import DesignCheck, LintReport, run_lint

    report = LintReport()
    kept: List[ImplConfig] = []
    for config in configs:
        point_report = run_lint(DesignCheck(kernel, config, spec))
        report.extend(point_report)
        if point_report.ok:
            kept.append(config)
    return kept, report


def _evaluate(
    kernel: Kernel, spec, configs: Sequence[ImplConfig]
) -> List[DesignPoint]:
    """Run the analytical model over the candidates, dropping infeasible
    FPGA points (designs that do not place on the part).

    Evaluations go through the shared model cache: identical
    (kernel, platform, config) triples are computed once per process.
    """
    points: List[DesignPoint] = []
    for config in configs:
        est = evaluate_cached(kernel, spec, config)
        if not est.feasible:
            continue
        points.append(
            DesignPoint(
                kernel_name=kernel.name,
                platform=spec.name,
                device_type=spec.device_type,
                config=config,
                latency_ms=est.latency_ms,
                power_w=est.active_power_w,
            )
        )
    return points


def _point_order_key(point: DesignPoint) -> Tuple:
    """Total order on design points: objectives, then the full knob tuple.

    (latency, power) alone is not a total order — distinct configs can
    model identically — so sorting by it leaves tie order at the mercy
    of the input ordering.  Appending the config fields makes subsample
    selection a pure function of the point *set*, independent of
    enumeration or worker completion order.
    """
    return (point.latency_ms, point.power_w) + dataclasses.astuple(point.config)


def _subsample(points: List[DesignPoint], target: int) -> List[DesignPoint]:
    """Deterministically thin a design space to ``target`` points.

    Keeps the Pareto-relevant extremes by sampling evenly across the
    latency-sorted list — the paper's spaces (Table II) are similarly
    curated subsets of the raw combinatorial space.
    """
    if len(points) <= target:
        return points
    ordered = sorted(points, key=_point_order_key)
    step = (len(ordered) - 1) / (target - 1)
    picked = [ordered[round(i * step)] for i in range(target)]
    # Rounding can collide; dedupe while preserving order.
    seen, unique = set(), []
    for p in picked:
        key = id(p)
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique


def explore_kernel(
    kernel: Kernel,
    spec,
    target_points: Optional[int] = None,
    validate: bool = False,
) -> KernelDesignSpace:
    """Explore one kernel on one platform; returns its design space.

    ``target_points`` mirrors Table II's per-kernel design counts; when
    given, the evaluated space is thinned to that size.

    ``validate=True`` lints the kernel first (raising
    :class:`~repro.lint.LintError` on pattern-layer errors) and prunes
    configs the optimization-layer rules reject *before* the analytical
    models run; the number of pruned points is recorded on the returned
    space as ``pruned_invalid``.
    """
    pruned = 0
    if validate:
        from ..lint import LintContext, run_lint

        run_lint(kernel, LintContext(spec=spec)).raise_if_errors(
            f"kernel {kernel.name!r}"
        )
    configs = enumerate_configs(kernel, spec)
    if validate:
        kept, _report = prune_invalid_configs(kernel, spec, configs)
        pruned = len(configs) - len(kept)
        configs = kept
    points = _evaluate(kernel, spec, configs)
    if not points:
        raise RuntimeError(
            f"no feasible design for kernel {kernel.name!r} on {spec.name!r}"
        )
    if target_points is not None:
        points = _subsample(points, target_points)
    return KernelDesignSpace(
        kernel.name, spec.name, spec.device_type, points, pruned_invalid=pruned
    )


def _explore_task(task: Tuple[Kernel, object, Optional[int], bool]) -> Tuple:
    """Worker entry: one (kernel, platform) exploration (picklable).

    Returns the space plus the model-cache delta (new entries, hit/miss
    counts) this exploration produced: a forked worker inherits the
    parent's cache copy-on-write, but its additions die with the
    process unless the parent writes them back.
    """
    kernel, spec, target, validate = task
    known = model_cache.known_keys()
    hits, misses = model_cache.hits, model_cache.misses
    space = explore_kernel(kernel, spec, target_points=target, validate=validate)
    return (
        space,
        model_cache.delta(known),
        model_cache.hits - hits,
        model_cache.misses - misses,
    )


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize a worker count: ``None``/``-1`` mean all CPUs."""
    if n_jobs is None or n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return n_jobs


def explore_application(
    kernels: Sequence[Kernel],
    specs: Sequence,
    targets: Optional[Dict[Tuple[str, DeviceType], int]] = None,
    validate: bool = False,
    n_jobs: int = 1,
) -> Dict[Tuple[str, str], KernelDesignSpace]:
    """Explore every kernel of an application on every platform.

    Returns ``{(kernel_name, platform_name): KernelDesignSpace}`` — the
    complete compile-time product the runtime scheduler loads.
    ``validate`` gates each per-kernel exploration through the lint
    rules (see :func:`explore_kernel`).

    ``n_jobs`` fans the independent (kernel, platform) explorations out
    over a process pool (``-1`` = all CPUs).  Each exploration is
    deterministic and self-contained, so any worker count produces a
    product bit-identical to the serial ``n_jobs=1`` path; result
    ordering is fixed by the (kernels x specs) enumeration, never by
    worker completion order.
    """
    tasks: List[Tuple[Kernel, object, Optional[int], bool]] = []
    keys: List[Tuple[str, str]] = []
    for kernel in kernels:
        for spec in specs:
            target = None
            if targets is not None:
                target = targets.get((kernel.name, spec.device_type))
            tasks.append((kernel, spec, target, validate))
            keys.append((kernel.name, spec.name))

    workers = min(resolve_n_jobs(n_jobs), max(len(tasks), 1))
    results: List[KernelDesignSpace] = []
    if workers <= 1 or len(tasks) <= 1:
        results = [
            explore_kernel(kernel, spec, target_points=target, validate=val)
            for kernel, spec, target, val in tasks
        ]
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            for space, entries, hits, misses in pool.map(_explore_task, tasks):
                model_cache.merge(entries, hits, misses)
                results.append(space)
    return dict(zip(keys, results))
