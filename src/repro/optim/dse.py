"""Model-driven design space exploration (Section IV-C).

Exhaustive evaluation of every knob combination would take "tens of
hours" with real toolchains; the paper instead navigates with the
analytical models, reducing exploration to seconds.  We do the same:
enumerate the pruned local space crossed with the global options,
evaluate every combination with the GPU/FPGA analytical model, drop
infeasible FPGA points, and optionally subsample to a target size (the
per-kernel design counts of Table II).

Two mechanisms keep the sweep fast at application scale:

* model evaluations are memoized behind the process-wide
  :mod:`repro.hardware.model_cache`, so re-exploring an unchanged
  kernel (repeated experiments, figure regeneration, the bench
  harness's warm trials) costs dictionary lookups instead of model math;
* ``explore_application(n_jobs=N)`` fans the independent
  (kernel, platform) explorations out over a ``ProcessPoolExecutor``.
  Each pair's exploration is self-contained and deterministic, so the
  parallel product is bit-identical to the ``n_jobs=1`` serial path;
  workers ship their cache deltas back so the parent stays warm.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware import ImplConfig
from ..hardware.model_cache import model_cache
from ..hardware.specs import DeviceType
from ..patterns.ppg import Kernel
from .design_point import DesignPoint, KernelDesignSpace
from .global_opt import GlobalOptimizer
from .local_opt import LocalOptimizer

__all__ = [
    "explore_kernel",
    "explore_application",
    "enumerate_configs",
    "prune_invalid_configs",
]


def _knob_space(
    kernel: Kernel, spec, overrides: Optional[Dict[str, Sequence]] = None
) -> Tuple[Dict[str, Tuple], Dict[str, object], Tuple[bool, ...]]:
    """Per-knob candidate values, forced assignments and fusion options.

    The shared substrate of exhaustive enumeration and the guided
    search's genome.  ``overrides`` replaces the candidate list of
    knobs already present in the plan (names the local pass pruned away
    or never enabled are ignored) — the hook the bench harness uses to
    synthetically enlarge the space.
    """
    local = LocalOptimizer(spec.device_type).plan(kernel)
    global_plan = GlobalOptimizer(spec).plan(kernel)
    candidates: Dict[str, Tuple] = dict(local.candidates)
    if overrides:
        for name, values in overrides.items():
            if name in candidates:
                candidates[name] = tuple(values)
    fused_options = (False, True) if global_plan.worthwhile else (False,)
    return candidates, dict(local.forced), fused_options


def enumerate_configs(
    kernel: Kernel, spec, overrides: Optional[Dict[str, Sequence]] = None
) -> List[ImplConfig]:
    """Enumerate candidate implementations after local+global pruning.

    The local pass supplies per-knob candidates and forced values; the
    global pass decides whether a fused variant is worth exploring
    (doubling the space when it is).
    """
    candidates, forced, fused_options = _knob_space(kernel, spec, overrides)
    names = sorted(candidates)
    value_lists = [candidates[n] for n in names]

    configs: List[ImplConfig] = []
    for values in itertools.product(*value_lists):
        assignment = dict(zip(names, values))
        assignment.update(forced)
        for fused in fused_options:
            configs.append(ImplConfig(fused=fused, **assignment))
    return configs


def prune_invalid_configs(
    kernel: Kernel, spec, configs: Sequence[ImplConfig]
) -> Tuple[List[ImplConfig], "LintReport"]:
    """Drop configs the optimization-layer lint rules reject.

    Runs the ``OPT00x`` rules (knob applicability, FPGA resource budget,
    degenerate work-groups) over every candidate *before* the analytical
    models are evaluated; returns the surviving configs plus the full
    report so callers can surface why points were pruned.
    """
    from ..lint import DesignCheck, LintReport, run_lint

    report = LintReport()
    kept: List[ImplConfig] = []
    for config in configs:
        point_report = run_lint(DesignCheck(kernel, config, spec))
        report.extend(point_report)
        if point_report.ok:
            kept.append(config)
    return kept, report


def _evaluate(
    kernel: Kernel, spec, configs: Sequence[ImplConfig]
) -> List[DesignPoint]:
    """Run the analytical model over the candidates, dropping infeasible
    FPGA points (designs that do not place on the part).

    Evaluations go through the shared model cache's bulk path: cached
    entries are looked up in one pass and the misses are computed in a
    single vectorized model call (float-identical to the scalar path).
    """
    points: List[DesignPoint] = []
    for config, est in zip(configs, model_cache.evaluate_many(kernel, spec, configs)):
        if not est.feasible:
            continue
        points.append(
            DesignPoint(
                kernel_name=kernel.name,
                platform=spec.name,
                device_type=spec.device_type,
                config=config,
                latency_ms=est.latency_ms,
                power_w=est.active_power_w,
            )
        )
    return points


def _point_order_key(point: DesignPoint) -> Tuple:
    """Total order on design points: objectives, then the full knob tuple.

    (latency, power) alone is not a total order — distinct configs can
    model identically — so sorting by it leaves tie order at the mercy
    of the input ordering.  Appending the config fields makes subsample
    selection a pure function of the point *set*, independent of
    enumeration or worker completion order.
    """
    return (point.latency_ms, point.power_w) + dataclasses.astuple(point.config)


def _subsample(points: List[DesignPoint], target: int) -> List[DesignPoint]:
    """Deterministically thin a design space to ``target`` points.

    Keeps the Pareto-relevant extremes by sampling evenly across the
    latency-sorted list — the paper's spaces (Table II) are similarly
    curated subsets of the raw combinatorial space.
    """
    if len(points) <= target:
        return points
    ordered = sorted(points, key=_point_order_key)
    step = (len(ordered) - 1) / (target - 1)
    picked = [ordered[round(i * step)] for i in range(target)]
    # Rounding can collide; dedupe while preserving order.
    seen, unique = set(), []
    for p in picked:
        key = id(p)
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique


def explore_kernel(
    kernel: Kernel,
    spec,
    target_points: Optional[int] = None,
    validate: bool = False,
    candidate_overrides: Optional[Dict[str, Sequence]] = None,
) -> KernelDesignSpace:
    """Explore one kernel on one platform; returns its design space.

    ``target_points`` mirrors Table II's per-kernel design counts; when
    given, the evaluated space is thinned to that size.

    ``validate=True`` lints the kernel first (raising
    :class:`~repro.lint.LintError` on pattern-layer errors) and prunes
    configs the optimization-layer rules reject *before* the analytical
    models run; the number of pruned points is recorded on the returned
    space as ``pruned_invalid``.
    """
    pruned = 0
    if validate:
        from ..lint import LintContext, run_lint

        run_lint(kernel, LintContext(spec=spec)).raise_if_errors(
            f"kernel {kernel.name!r}"
        )
    configs = enumerate_configs(kernel, spec, overrides=candidate_overrides)
    if validate:
        kept, _report = prune_invalid_configs(kernel, spec, configs)
        pruned = len(configs) - len(kept)
        configs = kept
    points = _evaluate(kernel, spec, configs)
    if not points:
        raise RuntimeError(
            f"no feasible design for kernel {kernel.name!r} on {spec.name!r}"
        )
    if target_points is not None:
        points = _subsample(points, target_points)
    return KernelDesignSpace(
        kernel.name, spec.name, spec.device_type, points, pruned_invalid=pruned
    )


def _explore_one(
    kernel: Kernel,
    spec,
    target: Optional[int],
    validate: bool,
    strategy: str,
    search,
    overrides: Optional[Dict[str, Sequence]],
) -> Tuple[KernelDesignSpace, Optional["SearchStats"]]:
    """One (kernel, platform) exploration under either strategy.

    Returns the space plus the guided-search stats (``None`` on the
    exhaustive path) so callers — serial loop and pool workers alike —
    report identically.
    """
    if strategy == "guided":
        from .search import explore_kernel_guided

        return explore_kernel_guided(
            kernel,
            spec,
            search=search,
            target_points=target,
            validate=validate,
            candidate_overrides=overrides,
        )
    if strategy != "exhaustive":
        raise ValueError(f"unknown strategy {strategy!r}")
    space = explore_kernel(
        kernel,
        spec,
        target_points=target,
        validate=validate,
        candidate_overrides=overrides,
    )
    return space, None


def _explore_task(task: Tuple) -> Tuple:
    """Worker entry: one (kernel, platform) exploration (picklable).

    Returns the space and search stats plus the model-cache delta (new
    entries, hit/miss counts) this exploration produced: a forked
    worker inherits the parent's cache copy-on-write, but its additions
    die with the process unless the parent writes them back.
    """
    kernel, spec, target, validate, strategy, search, overrides = task
    known = model_cache.known_keys()
    hits, misses = model_cache.hits, model_cache.misses
    space, stats = _explore_one(
        kernel, spec, target, validate, strategy, search, overrides
    )
    return (
        space,
        stats,
        model_cache.delta(known),
        model_cache.hits - hits,
        model_cache.misses - misses,
    )


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize a worker count: ``None``/``-1`` mean all CPUs."""
    if n_jobs is None or n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return n_jobs


def _report_exploration(
    spaces: Sequence[KernelDesignSpace],
    stats_list: Sequence,
    metrics,
    tracer,
) -> None:
    """Parent-side metrics/trace reporting, identical across paths.

    Runs after the serial loop, the process pool and the guided search
    alike, over worker-returned data — so counters (including
    ``dse_pruned_invalid_total``) and ``dse.search.*`` events do not
    depend on ``n_jobs`` or the strategy taken.
    """
    if metrics is not None:
        points_c = metrics.counter("dse_design_points_total")
        pruned_c = metrics.counter("dse_pruned_invalid_total")
        for space in spaces:
            points_c.inc(len(space))
            pruned_c.inc(space.pruned_invalid)
        search_stats = [s for s in stats_list if s is not None]
        if search_stats:
            evals_c = metrics.counter("dse_search_evaluations_total")
            explored_c = metrics.counter("dse_search_explored_total")
            skipped_c = metrics.counter("dse_search_skipped_total")
            screened_c = metrics.counter("dse_search_screened_total")
            gens_c = metrics.counter("dse_search_generations_total")
            for s in search_stats:
                evals_c.inc(s.evaluations)
                explored_c.inc(s.explored)
                skipped_c.inc(s.skipped)
                screened_c.inc(s.screened_infeasible)
                gens_c.inc(s.generations)
    if tracer is not None and getattr(tracer, "enabled", False):
        for stats in stats_list:
            if stats is None:
                continue
            label = f"{stats.kernel_name}@{stats.platform}"
            for r in stats.rungs:
                tracer.emit(
                    "dse.search.rung",
                    name=label,
                    kernel=stats.kernel_name,
                    platform=stats.platform,
                    rung=r.rung,
                    pool=r.pool,
                    kept=r.kept,
                )
            for g in stats.generation_log:
                tracer.emit(
                    "dse.search.generation",
                    name=label,
                    kernel=stats.kernel_name,
                    platform=stats.platform,
                    generation=g.generation,
                    evaluations=g.evaluations,
                    front_points=g.front_points,
                    hypervolume=g.hypervolume,
                )
            tracer.emit(
                "dse.search.done",
                name=label,
                kernel=stats.kernel_name,
                platform=stats.platform,
                strategy=stats.strategy,
                explored=stats.explored,
                pruned_invalid=stats.pruned_invalid,
                skipped=stats.skipped,
                evaluations=stats.evaluations,
                generations=stats.generations,
            )


def explore_application(
    kernels: Sequence[Kernel],
    specs: Sequence,
    targets: Optional[Dict[Tuple[str, DeviceType], int]] = None,
    validate: bool = False,
    n_jobs: int = 1,
    strategy: str = "exhaustive",
    search=None,
    metrics=None,
    tracer=None,
    candidate_overrides: Optional[Dict[str, Sequence]] = None,
) -> Dict[Tuple[str, str], KernelDesignSpace]:
    """Explore every kernel of an application on every platform.

    Returns ``{(kernel_name, platform_name): KernelDesignSpace}`` — the
    complete compile-time product the runtime scheduler loads.
    ``validate`` gates each per-kernel exploration through the lint
    rules (see :func:`explore_kernel`).

    ``strategy`` selects the explorer: ``"exhaustive"`` enumerates and
    evaluates the whole pruned space; ``"guided"`` runs the
    successive-halving + genetic search of :mod:`repro.optim.search`
    under ``search`` (a :class:`~repro.optim.search.SearchConfig`,
    defaulted when omitted), attaching per-space ``search_stats``.

    ``n_jobs`` fans the independent (kernel, platform) explorations out
    over a process pool (``-1`` = all CPUs).  Each exploration is
    deterministic and self-contained — the guided search's RNG is keyed
    per (seed, kernel, platform) — so any worker count produces a
    product bit-identical to the serial ``n_jobs=1`` path; result
    ordering is fixed by the (kernels x specs) enumeration, never by
    worker completion order.

    ``metrics`` (a ``MetricsRegistry``) and ``tracer`` (a ``SpanTracer``)
    receive exploration counters and ``dse.search.*`` events; both are
    driven from the parent process over worker-returned stats, so the
    reported numbers are identical across worker counts.
    """
    if strategy not in ("exhaustive", "guided"):
        raise ValueError(f"unknown strategy {strategy!r}")
    if strategy == "guided" and search is None:
        from .search import SearchConfig

        search = SearchConfig()
    tasks: List[Tuple] = []
    keys: List[Tuple[str, str]] = []
    for kernel in kernels:
        for spec in specs:
            target = None
            if targets is not None:
                target = targets.get((kernel.name, spec.device_type))
            tasks.append(
                (kernel, spec, target, validate, strategy, search, candidate_overrides)
            )
            keys.append((kernel.name, spec.name))

    workers = min(resolve_n_jobs(n_jobs), max(len(tasks), 1))
    results: List[KernelDesignSpace] = []
    stats_list: List = []
    if workers <= 1 or len(tasks) <= 1:
        for task in tasks:
            space, stats = _explore_one(*task)
            results.append(space)
            stats_list.append(stats)
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            for space, stats, entries, hits, misses in pool.map(_explore_task, tasks):
                model_cache.merge(entries, hits, misses)
                results.append(space)
                stats_list.append(stats)
    _report_exploration(results, stats_list, metrics, tracer)
    return dict(zip(keys, results))
