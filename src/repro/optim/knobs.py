"""Optimization knobs per parallel pattern and platform (Table I).

Table I of the paper lists, for every parallel pattern, which
optimizations apply on GPUs and which on FPGAs.  This module encodes
that table: given the pattern kinds present in a kernel and the target
device family, it produces the candidate values for every applicable
knob of :class:`~repro.hardware.config.ImplConfig`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Sequence, Tuple

from ..patterns.annotations import PatternKind
from ..hardware.specs import DeviceType

__all__ = [
    "GPU_KNOBS_BY_PATTERN",
    "FPGA_KNOBS_BY_PATTERN",
    "knob_candidates",
    "applicable_knobs",
]

# ---------------------------------------------------------------------------
# Which knobs each pattern enables (Table I, "Optimization on Hardware
# Platforms" columns).  Knob names match ImplConfig fields.
# ---------------------------------------------------------------------------

GPU_KNOBS_BY_PATTERN: Dict[PatternKind, FrozenSet[str]] = {
    PatternKind.MAP: frozenset({"work_group_size", "unroll"}),          # wg size, TLP
    PatternKind.REDUCE: frozenset({"unroll", "pipelined"}),             # serial/tree, sw pipeline, unroll
    PatternKind.SCAN: frozenset({"use_scratchpad", "memory_coalescing"}),
    PatternKind.STENCIL: frozenset({"use_scratchpad", "work_group_size", "unroll"}),
    PatternKind.PIPELINE: frozenset({"pipelined"}),                     # register reuse, sw pipeline, pipes
    PatternKind.GATHER: frozenset({"use_scratchpad", "memory_coalescing"}),
    PatternKind.SCATTER: frozenset({"use_scratchpad", "memory_coalescing"}),
    PatternKind.TILING: frozenset({"work_group_size"}),
    PatternKind.PACK: frozenset({"work_group_size", "memory_coalescing"}),
}

FPGA_KNOBS_BY_PATTERN: Dict[PatternKind, FrozenSet[str]] = {
    PatternKind.MAP: frozenset(
        {"work_group_size", "compute_units", "unroll", "bram_ports"}
    ),
    PatternKind.REDUCE: frozenset({"pipelined", "bram_ports", "unroll"}),
    PatternKind.SCAN: frozenset({"unroll", "bram_ports"}),
    PatternKind.STENCIL: frozenset(
        {"double_buffer", "work_group_size", "compute_units", "unroll"}
    ),
    PatternKind.PIPELINE: frozenset({"pipelined"}),                     # hw pipeline, pipes
    PatternKind.GATHER: frozenset({"double_buffer"}),                   # + burst access
    PatternKind.SCATTER: frozenset({"double_buffer"}),
    PatternKind.TILING: frozenset({"work_group_size"}),
    PatternKind.PACK: frozenset({"pipelined", "bram_ports"}),
}

# ---------------------------------------------------------------------------
# Candidate values per knob per device family.  DVFS levels come from the
# DVFSPolicy ladders so that compile-time points line up with the runtime
# operating points.
# ---------------------------------------------------------------------------

_GPU_CANDIDATES: Dict[str, Tuple] = {
    "work_group_size": (64, 128, 256, 512),
    "unroll": (1, 2, 4, 8),
    "use_scratchpad": (False, True),
    "memory_coalescing": (False, True),
    "pipelined": (False, True),
    "freq_scale": (1.0, 0.8, 0.62, 0.45),
}

_FPGA_CANDIDATES: Dict[str, Tuple] = {
    "work_group_size": (64, 256),
    "unroll": (1, 4, 16, 32),
    "compute_units": (1, 2, 4, 8),
    "bram_ports": (1, 4, 16, 32),
    "pipelined": (False, True),
    "double_buffer": (False, True),
    "freq_scale": (1.0, 0.75, 0.5),
}


def applicable_knobs(
    kinds: Sequence[PatternKind], device_type: DeviceType
) -> FrozenSet[str]:
    """Union of Table-I knobs enabled by the given pattern kinds.

    ``freq_scale`` is always applicable: DVFS is a platform feature, not
    a code transformation.
    """
    table = (
        GPU_KNOBS_BY_PATTERN
        if device_type == DeviceType.GPU
        else FPGA_KNOBS_BY_PATTERN
    )
    knobs = set()
    for kind in kinds:
        knobs |= table[kind]
    knobs.add("freq_scale")
    return frozenset(knobs)


def knob_candidates(
    kinds: Sequence[PatternKind], device_type: DeviceType
) -> Dict[str, Tuple]:
    """Candidate values for every knob applicable to this kernel.

    Inapplicable knobs are pinned to their ImplConfig defaults by simply
    being absent from the returned dict.
    """
    candidates = (
        _GPU_CANDIDATES if device_type == DeviceType.GPU else _FPGA_CANDIDATES
    )
    active = applicable_knobs(kinds, device_type)
    return {name: values for name, values in candidates.items() if name in active}
