"""Design points and per-kernel design spaces.

A :class:`DesignPoint` is one fully evaluated implementation of a kernel
on a concrete platform: the knob assignment plus the latency, power and
(for FPGAs) resource estimates the analytical models produced.  A
:class:`KernelDesignSpace` collects all points of one (kernel, platform)
pair — the object Fig. 1(c) plots and the runtime scheduler consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..hardware.config import ImplConfig
from ..hardware.specs import DeviceType

__all__ = ["DesignPoint", "KernelDesignSpace"]


@dataclass(frozen=True)
class DesignPoint:
    """One implementation of one kernel on one platform."""

    kernel_name: str
    platform: str
    device_type: DeviceType
    config: ImplConfig
    latency_ms: float
    power_w: float
    #: Index within its design space; the paper's :math:`k_i^r` notation.
    index: int = -1

    def __post_init__(self) -> None:
        if self.latency_ms <= 0:
            raise ValueError("latency must be positive")
        if self.power_w <= 0:
            raise ValueError("power must be positive")

    @property
    def energy_mj(self) -> float:
        """Energy per invocation, millijoules."""
        return self.latency_ms * self.power_w

    @property
    def energy_efficiency(self) -> float:
        """Invocations per joule — the y-axis of Fig. 1(c)."""
        return 1000.0 / self.energy_mj

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance on (latency, power): <= on both, < on one."""
        return (
            self.latency_ms <= other.latency_ms
            and self.power_w <= other.power_w
            and (
                self.latency_ms < other.latency_ms or self.power_w < other.power_w
            )
        )

    def label(self) -> str:
        """Paper-style label, e.g. ``K^3 @ FPGA``."""
        return f"{self.kernel_name}^{self.index} @ {self.device_type.value}"


class KernelDesignSpace:
    """All evaluated implementations of one kernel on one platform.

    Produced by :func:`repro.optim.dse.explore_kernel`; the runtime
    scheduler picks implementations out of the Pareto subset.
    """

    def __init__(
        self,
        kernel_name: str,
        platform: str,
        device_type: DeviceType,
        points: Sequence[DesignPoint],
        pruned_invalid: int = 0,
    ) -> None:
        if not points:
            raise ValueError(
                f"design space of {kernel_name!r} on {platform!r} is empty — "
                "no feasible implementation was found"
            )
        self.kernel_name = kernel_name
        self.platform = platform
        self.device_type = device_type
        #: Number of enumerated configs the lint validation gate dropped
        #: before model evaluation (``explore_kernel(validate=True)``).
        self.pruned_invalid = pruned_invalid
        #: :class:`~repro.optim.search.SearchStats` when this space was
        #: produced by the guided explorer; ``None`` on exhaustive paths.
        self.search_stats = None
        # Re-index points so labels are stable.
        self.points: List[DesignPoint] = [
            DesignPoint(
                kernel_name=p.kernel_name,
                platform=p.platform,
                device_type=p.device_type,
                config=p.config,
                latency_ms=p.latency_ms,
                power_w=p.power_w,
                index=i,
            )
            for i, p in enumerate(
                sorted(points, key=lambda p: (p.latency_ms, p.power_w))
            )
        ]
        # The points list is frozen after construction, so the scheduler
        # selections below are pure and memoizable.  min_latency() sits
        # on the runtime hot path (rank priorities, throughput planning,
        # failover candidates); computing each selection once turns those
        # into attribute reads.
        self._min_latency: Optional[DesignPoint] = None
        self._min_power: Optional[DesignPoint] = None
        self._max_efficiency: Optional[DesignPoint] = None
        self._pareto: Optional[List[DesignPoint]] = None

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def __getitem__(self, index: int) -> DesignPoint:
        return self.points[index]

    # -- the selections the paper's scheduler uses --------------------------

    def min_latency(self) -> DesignPoint:
        """Fastest implementation (baseline hard-mapping under tight QoS)."""
        if self._min_latency is None:
            self._min_latency = min(self.points, key=lambda p: p.latency_ms)
        return self._min_latency

    def min_power(self) -> DesignPoint:
        """Lowest-power implementation (deep energy saving mode)."""
        if self._min_power is None:
            self._min_power = min(self.points, key=lambda p: p.power_w)
        return self._min_power

    def max_efficiency(self) -> DesignPoint:
        """Most energy-efficient implementation (baseline under slack QoS)."""
        if self._max_efficiency is None:
            self._max_efficiency = max(
                self.points, key=lambda p: p.energy_efficiency
            )
        return self._max_efficiency

    def pareto(self) -> List[DesignPoint]:
        """Latency/power Pareto frontier, sorted by ascending latency.

        Returns a fresh list each call (callers may slice/extend), built
        from a memoized frontier.
        """
        if self._pareto is None:
            frontier: List[DesignPoint] = []
            best_power = float("inf")
            for p in self.points:  # already sorted by (latency, power)
                if p.power_w < best_power:
                    frontier.append(p)
                    best_power = p.power_w
            self._pareto = frontier
        return list(self._pareto)

    def within_latency(self, bound_ms: float) -> List[DesignPoint]:
        """All points meeting a latency bound."""
        return [p for p in self.points if p.latency_ms <= bound_ms]

    def summary(self) -> Dict[str, float]:
        """Extent of the space: latency and power ranges."""
        lats = [p.latency_ms for p in self.points]
        pows = [p.power_w for p in self.points]
        return {
            "points": float(len(self.points)),
            "pareto_points": float(len(self.pareto())),
            "latency_min_ms": min(lats),
            "latency_max_ms": max(lats),
            "power_min_w": min(pows),
            "power_max_w": max(pows),
        }

    def __repr__(self) -> str:
        s = self.summary()
        return (
            f"<KernelDesignSpace {self.kernel_name!r} on {self.platform!r}: "
            f"{len(self)} pts ({int(s['pareto_points'])} Pareto), "
            f"lat [{s['latency_min_ms']:.1f}, {s['latency_max_ms']:.1f}] ms>"
        )
