"""Global optimization pass (Section IV-B, step 2).

The global pass looks across patterns:

* **Fusion** — merge neighbouring patterns so their intermediate tensor
  stays in on-chip memory (scratchpad/pipes on GPUs, BRAM on FPGAs)
  instead of bouncing through global memory, subject to the on-chip
  capacity constraint;
* **Deferred resolution** — size the scratchpad/buffers of Gather and
  Scatter patterns from their (now known) neighbours' parallelism;
* **Transfer strategy** — decide, per PPG edge, on-chip vs. off-chip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..hardware.specs import DeviceType
from ..patterns.analysis import analyze_kernel
from ..patterns.annotations import Pattern
from ..patterns.ppg import Kernel

__all__ = ["FusionDecision", "GlobalPlan", "GlobalOptimizer"]


@dataclass(frozen=True)
class FusionDecision:
    """One fused producer/consumer pair and the traffic it saves."""

    src: Pattern
    dst: Pattern
    bytes_saved: int


@dataclass
class GlobalPlan:
    """Outcome of global optimization for one (kernel, device) pair."""

    kernel: Kernel
    device_type: DeviceType
    fusions: List[FusionDecision] = field(default_factory=list)
    resolved_parallelism: Dict[Pattern, int] = field(default_factory=dict)

    @property
    def fused_bytes(self) -> int:
        """Total inter-pattern traffic kept on chip."""
        return sum(f.bytes_saved for f in self.fusions)

    @property
    def fusion_fraction(self) -> float:
        """Fraction of intermediate traffic eliminated by fusion."""
        total = self.kernel.intermediate_bytes
        return self.fused_bytes / total if total else 0.0

    @property
    def worthwhile(self) -> bool:
        """Whether the fused variant deserves its own design points."""
        return self.fusion_fraction > 0.05


class GlobalOptimizer:
    """Makes cross-pattern decisions for one device family."""

    def __init__(self, spec) -> None:
        self.spec = spec
        self.device_type = spec.device_type

    @property
    def onchip_capacity_bytes(self) -> int:
        """Usable on-chip memory for fused intermediates.

        GPUs: scratchpad per CU times a conservative CU share; FPGAs:
        the BRAM budget left after datapath buffers (~60%).
        """
        if self.device_type == DeviceType.GPU:
            # 64 KB per CU, ~32 CUs worth usable by one kernel.
            return int(self.spec.scratchpad_kb_per_cu * 1024 * 32)
        return int(self.spec.bram_bytes * 0.6)

    def plan(self, kernel: Kernel) -> GlobalPlan:
        """Build the global plan: greedy capacity-bounded fusion plus
        deferred-pattern resolution (both per Section IV-B)."""
        analysis = analyze_kernel(kernel)
        plan = GlobalPlan(kernel=kernel, device_type=self.device_type)

        budget = self.onchip_capacity_bytes
        for cand in analysis.fusion_candidates(budget):
            if cand.bytes_moved <= budget:
                plan.fusions.append(
                    FusionDecision(cand.src, cand.dst, cand.bytes_moved)
                )
                budget -= cand.bytes_moved

        plan.resolved_parallelism = analysis.resolve_deferred()
        return plan
