"""Local optimization pass (Section IV-B, step 1).

For each parallel pattern, Poly prepares the suite of optimization
options from Table I and applies the ones that can be decided from the
pattern's own CDFG: parallelism-driven knob bounds, memory-optimization
eligibility, and the pending ("deferred") decisions that must wait for
the global pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..hardware.specs import DeviceType
from ..patterns.analysis import KernelAnalysis, analyze_kernel
from ..patterns.annotations import Pattern, PatternKind
from ..patterns.ppg import Kernel
from .knobs import knob_candidates

__all__ = ["LocalPlan", "LocalOptimizer"]


@dataclass
class LocalPlan:
    """Outcome of local optimization for one (kernel, device) pair.

    * ``candidates`` — per-knob candidate values after parallelism
      pruning (e.g. unroll factors beyond the pattern's compute
      parallelism are dropped);
    * ``forced`` — knob values the pass fixes outright (e.g. coalescing
      is always beneficial once a Gather/Scatter is present);
    * ``pending`` — patterns whose sizing decisions are deferred to the
      global pass (Section IV-B's scratchpad example).
    """

    kernel: Kernel
    device_type: DeviceType
    candidates: Dict[str, Tuple] = field(default_factory=dict)
    forced: Dict[str, object] = field(default_factory=dict)
    pending: List[Pattern] = field(default_factory=list)

    @property
    def space_size(self) -> int:
        """Number of raw combinations before global options multiply in."""
        size = 1
        for values in self.candidates.values():
            size *= len(values)
        return size


class LocalOptimizer:
    """Applies Table-I local optimizations to every pattern of a kernel."""

    def __init__(self, device_type: DeviceType) -> None:
        self.device_type = device_type

    def plan(self, kernel: Kernel) -> LocalPlan:
        """Build the local optimization plan for ``kernel``."""
        analysis = analyze_kernel(kernel)
        candidates = dict(knob_candidates(kernel.pattern_kinds, self.device_type))
        plan = LocalPlan(kernel=kernel, device_type=self.device_type)

        self._prune_parallelism(kernel, analysis, candidates)
        plan.forced.update(self._force_obvious(kernel, analysis, candidates))
        plan.candidates = candidates
        plan.pending = analysis.deferred_patterns
        return plan

    # -- internals -----------------------------------------------------------

    def _prune_parallelism(
        self,
        kernel: Kernel,
        analysis: KernelAnalysis,
        candidates: Dict[str, Tuple],
    ) -> None:
        """Drop spatial-parallelism candidates the kernel cannot use.

        The automatic pattern analysis bounds compute parallelism; knob
        values whose lane count exceeds it only waste resources, so the
        local pass removes them (this is what keeps Table II's spaces in
        the tens-to-hundreds rather than thousands).
        """
        max_par = analysis.total_parallelism
        if "unroll" in candidates:
            kept = tuple(v for v in candidates["unroll"] if v <= max(max_par, 1))
            candidates["unroll"] = kept or (1,)
        if "compute_units" in candidates:
            kept = tuple(
                v for v in candidates["compute_units"] if v <= max(max_par, 1)
            )
            candidates["compute_units"] = kept or (1,)
        if "work_group_size" in candidates:
            kept = tuple(
                v for v in candidates["work_group_size"] if v <= max(max_par, 64)
            )
            candidates["work_group_size"] = kept or (64,)

    def _force_obvious(
        self,
        kernel: Kernel,
        analysis: KernelAnalysis,
        candidates: Dict[str, Tuple],
    ) -> Dict[str, object]:
        """Fix knobs whose best value is unconditional for this kernel.

        Memory coalescing (GPU) and burst/double-buffering (FPGA) never
        hurt once an irregular-access pattern is present, so the pass
        pins them instead of doubling the space.
        """
        forced: Dict[str, object] = {}
        kinds = set(kernel.pattern_kinds)
        irregular = kinds & {PatternKind.GATHER, PatternKind.SCATTER}
        if irregular and self.device_type == DeviceType.GPU:
            if "memory_coalescing" in candidates:
                candidates.pop("memory_coalescing")
                forced["memory_coalescing"] = True
        if irregular and self.device_type == DeviceType.FPGA:
            if "double_buffer" in candidates:
                candidates.pop("double_buffer")
                forced["double_buffer"] = True
        # A pure-Pipeline kernel on FPGA is always worth pipelining.
        if kinds == {PatternKind.PIPELINE} and self.device_type == DeviceType.FPGA:
            if "pipelined" in candidates:
                candidates.pop("pipelined")
                forced["pipelined"] = True
        return forced
