"""Guided design-space exploration (ROADMAP item 3).

Exhaustive enumeration scales multiplicatively with every new Table-I
knob; the OPT004 budget caps it at 2048 configs/kernel and the next
knob dimensions (thread coarsening, inter-kernel pipes) blow well past
that.  This module searches the space instead of enumerating it, with
two stages under one model-evaluation budget:

1. **Successive halving** over the full enumerated knob space using a
   cheap low-fidelity analytical proxy (vectorized roofline-style
   scoring, no model-cache traffic).  Each rung halves the candidate
   pool under a rotating latency/power scalarization — always retaining
   the proxy-Pareto members — until the pool reaches the genetic
   population size.
2. **Genetic refinement** over real model evaluations: tournament
   selection on Pareto-rank-peeled parents, per-knob uniform crossover,
   and mutation resampling from the enumerated candidate lists, driven
   by a deterministic ``SeedSequence``-keyed RNG.

All real evaluations go through the vectorized
:meth:`~repro.hardware.model_cache.ModelEvalCache.evaluate_many` bulk
path (one numpy model call per generation).  The budget counts
*requested* evaluations — cache hits included — so the same seed yields
identical evaluation counts regardless of cache warmth, and the search
degrades to exhaustive exactly when the enumerated space fits the
budget, guaranteeing the guided front equals the exhaustive front on
today's apps (the golden A/B property the tests pin down).
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..hardware.config import ImplConfig
from ..hardware.fpga_model import FPGAModel
from ..hardware.model_cache import CachedEstimate, kernel_signature, model_cache
from ..hardware.specs import DeviceType
from ..patterns.ppg import Kernel
from .design_point import DesignPoint, KernelDesignSpace
from .pareto import IncrementalHypervolume, ParetoFrontier

__all__ = [
    "SearchConfig",
    "RungStats",
    "GenerationStats",
    "SearchStats",
    "search_rng",
    "explore_kernel_guided",
    "space_hypervolume",
]


@dataclass(frozen=True)
class SearchConfig:
    """Tuning knobs of the guided explorer.

    ``max_evals`` budgets *requested model evaluations* (the quantity
    OPT004 checks in guided mode); spaces that fit the budget are
    evaluated exhaustively.  ``seed`` keys the deterministic RNG
    (``None`` trips OPT005 and falls back to 0);
    ``min_hypervolume_ratio`` is the quality gate the bench suite
    enforces against the exhaustive front (``None`` trips OPT005).
    """

    max_evals: int = 512
    seed: Optional[int] = 0
    rungs: int = 3
    population: int = 32
    generations: int = 8
    tournament: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.15
    stall_generations: int = 3
    min_hypervolume_ratio: Optional[float] = 0.99

    def __post_init__(self) -> None:
        if self.max_evals < 1:
            raise ValueError("max_evals must be >= 1")
        if self.rungs < 1:
            raise ValueError("rungs must be >= 1")
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if self.generations < 0:
            raise ValueError("generations must be >= 0")
        if self.tournament < 1:
            raise ValueError("tournament must be >= 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if self.stall_generations < 1:
            raise ValueError("stall_generations must be >= 1")
        if self.min_hypervolume_ratio is not None and not (
            0.0 < self.min_hypervolume_ratio <= 1.0
        ):
            raise ValueError("min_hypervolume_ratio must be in (0, 1]")


@dataclass(frozen=True)
class RungStats:
    """One successive-halving rung: pool size before and after."""

    rung: int
    pool: int
    kept: int


@dataclass(frozen=True)
class GenerationStats:
    """One genetic generation: cumulative evals and front quality."""

    generation: int
    evaluations: int
    front_points: int
    hypervolume: float


@dataclass
class SearchStats:
    """Everything a guided exploration did, picklable for pool workers.

    ``explored`` is the enumerated space size; ``evaluations`` the
    requested model evaluations (hits + misses — cache-warmth
    independent); ``skipped`` the duplicate/pruned children the GA
    declined to re-evaluate; ``screened_infeasible`` the FPGA configs
    the vectorized resource screen dropped before any latency/power
    model ran.
    """

    kernel_name: str
    platform: str
    strategy: str = "guided"
    explored: int = 0
    pruned_invalid: int = 0
    screened_infeasible: int = 0
    skipped: int = 0
    evaluations: int = 0
    generations: int = 0
    exhaustive_equivalent: bool = False
    hypervolume: float = 0.0
    rungs: List[RungStats] = field(default_factory=list)
    generation_log: List[GenerationStats] = field(default_factory=list)


def search_rng(seed: int, kernel: Kernel, spec) -> np.random.Generator:
    """Deterministic per-(seed, kernel, platform) random generator.

    Keyed through sha256 of the kernel's model signature and the
    platform name, so streams are independent of ``PYTHONHASHSEED``,
    enumeration order and worker process — the same triple always
    replays the same search.
    """
    digest = hashlib.sha256(
        f"{seed}|{kernel_signature(kernel)}|{spec.name}".encode()
    ).digest()
    words = [int.from_bytes(digest[i : i + 4], "big") for i in range(0, 16, 4)]
    return np.random.default_rng(np.random.SeedSequence(words))


# -- low-fidelity proxy -------------------------------------------------------


def _proxy_objectives(
    kernel: Kernel, spec, configs: Sequence[ImplConfig]
) -> Tuple[np.ndarray, np.ndarray]:
    """Roofline-style screening objectives, vectorized over configs.

    Deliberately *not* the real models: no occupancy tables, no
    calibration bias, no resource placement — just monotone trends in
    the knobs, cheap enough to score the entire enumerated space
    without touching the model cache.  Used only to rank
    successive-halving pools; proxy numbers never reach a DesignPoint.
    """
    n = len(configs)
    freq = np.fromiter((c.freq_scale for c in configs), np.float64, n)
    unroll = np.fromiter((float(c.unroll) for c in configs), np.float64, n)
    wg = np.fromiter((float(c.work_group_size) for c in configs), np.float64, n)
    fused = np.fromiter((c.fused for c in configs), np.bool_, n)
    ops = float(kernel.total_ops)
    io = float(max(kernel.io_bytes, 1))
    dynamic = spec.peak_power_w - spec.idle_power_w
    if spec.device_type == DeviceType.GPU:
        coal = np.where(
            np.fromiter((c.memory_coalescing for c in configs), np.bool_, n),
            1.0,
            0.55,
        )
        scratch = np.where(
            np.fromiter((c.use_scratchpad for c in configs), np.bool_, n), 0.8, 1.0
        )
        occ = np.minimum(wg / 256.0, 1.0) * np.sqrt(np.minimum(unroll / 4.0, 1.0))
        occ = np.maximum(occ, 0.05)
        compute = ops / (spec.peak_gflops * 1e6 * freq * occ)
        memory = io * scratch / (spec.mem_bandwidth_gbps * 1e6 * coal)
        power = spec.idle_power_w + dynamic * occ * freq**2.2
    else:
        cu = np.fromiter((float(c.compute_units) for c in configs), np.float64, n)
        ports = np.fromiter((float(c.bram_ports) for c in configs), np.float64, n)
        pipelined = np.fromiter((c.pipelined for c in configs), np.bool_, n)
        lanes = np.maximum(unroll * cu, 1.0)
        ii = np.where(pipelined, 1.0, 4.0)
        starve = np.maximum(lanes / np.maximum(ports * 32.0, 1.0), 1.0)
        fmax = spec.peak_freq_mhz * spec.achievable_freq_frac * freq
        compute = ops * ii * starve / (lanes * fmax * 1e3)
        bw = np.where(
            np.fromiter((c.double_buffer for c in configs), np.bool_, n), 0.75, 0.45
        )
        memory = io / (spec.mem_bandwidth_gbps * 1e6 * bw)
        util = np.minimum((lanes + ports) / 64.0, 1.0)
        power = spec.idle_power_w + dynamic * np.maximum(util, 0.05) * freq**2
    latency = np.maximum(compute, memory) + 0.3 * np.minimum(compute, memory)
    latency = np.where(fused, latency * 0.9, latency)
    return latency, power


def _front_mask(f1: np.ndarray, f2: np.ndarray) -> np.ndarray:
    """Membership mask of the 2-D minimization Pareto front."""
    order = np.lexsort((f2, f1))
    mask = np.zeros(len(f1), dtype=bool)
    best = np.inf
    for j in order:
        if f2[j] < best:
            mask[j] = True
            best = f2[j]
    return mask


def _pareto_ranks(f1: np.ndarray, f2: np.ndarray) -> np.ndarray:
    """Front-peeling rank per point: 0 = Pareto front, 1 = next, ..."""
    n = len(f1)
    ranks = np.full(n, -1, dtype=np.int64)
    remaining = np.arange(n)
    rank = 0
    while len(remaining):
        mask = _front_mask(f1[remaining], f2[remaining])
        ranks[remaining[mask]] = rank
        remaining = remaining[~mask]
        rank += 1
    return ranks


def _normalized(values: np.ndarray) -> np.ndarray:
    span = float(np.ptp(values))
    if span <= 0.0:
        return np.zeros(len(values))
    return (values - float(values.min())) / span


def _successive_halving(
    configs: Sequence[ImplConfig],
    proxy_lat: np.ndarray,
    proxy_pow: np.ndarray,
    search: SearchConfig,
    stats: SearchStats,
) -> List[int]:
    """Shrink the candidate pool to the GA population size, rung by rung.

    Each rung halves the pool (the final rung clamps to the population
    size) under a rotating latency/power blend; the proxy-Pareto members
    of the current pool are always retained so neither extreme of the
    trade-off can be screened out.  Selection is a stable argsort over
    proxy scores — fully deterministic, no RNG involved.
    """
    target = search.population
    pool = list(range(len(configs)))
    for rung in range(search.rungs):
        if len(pool) <= target:
            break
        keep_n = max(len(pool) // 2, target)
        if rung == search.rungs - 1:
            keep_n = target
        lat = proxy_lat[pool]
        pw = proxy_pow[pool]
        weight = (rung + 0.5) / search.rungs
        score = weight * _normalized(lat) + (1.0 - weight) * _normalized(pw)
        order = np.argsort(score, kind="stable")
        kept: List[int] = []
        seen = set()
        for j in np.nonzero(_front_mask(lat, pw))[0]:
            kept.append(pool[j])
            seen.add(pool[j])
        for j in order:
            if len(kept) >= max(keep_n, len(seen)):
                break
            idx = pool[int(j)]
            if idx not in seen:
                seen.add(idx)
                kept.append(idx)
        kept.sort()  # pool order = enumeration order, not score order
        stats.rungs.append(RungStats(rung=rung, pool=len(pool), kept=len(kept)))
        pool = kept
    return pool


# -- genetic refinement -------------------------------------------------------


def _selection_keys(
    population: Sequence[Tuple[ImplConfig, float, float]],
) -> List[Tuple]:
    """Total-order sort keys: Pareto rank, scalarized score, knob tuple."""
    lat = np.fromiter((p[1] for p in population), np.float64, len(population))
    pw = np.fromiter((p[2] for p in population), np.float64, len(population))
    ranks = _pareto_ranks(lat, pw)
    score = 0.5 * _normalized(lat) + 0.5 * _normalized(pw)
    return [
        (int(ranks[i]), float(score[i]), dataclasses.astuple(population[i][0]))
        for i in range(len(population))
    ]


def _tournament(
    rng: np.random.Generator,
    population: Sequence[Tuple[ImplConfig, float, float]],
    keys: Sequence[Tuple],
    size: int,
) -> ImplConfig:
    entrants = rng.integers(0, len(population), size=min(size, len(population)))
    best = min(entrants, key=lambda i: keys[int(i)])
    return population[int(best)][0]


def _points_of(
    kernel: Kernel,
    spec,
    evaluated: Dict[ImplConfig, CachedEstimate],
) -> List[DesignPoint]:
    return [
        DesignPoint(
            kernel_name=kernel.name,
            platform=spec.name,
            device_type=spec.device_type,
            config=config,
            latency_ms=est.latency_ms,
            power_w=est.active_power_w,
        )
        for config, est in evaluated.items()
        if est.feasible
    ]


def space_hypervolume(
    space: KernelDesignSpace, reference: Optional[Tuple[float, float]] = None
) -> float:
    """Hypervolume of a design space's latency/power Pareto front.

    The default reference is 1.05x the space's own worst corner;
    callers comparing two spaces (the bench harness's guided-vs-
    exhaustive ratio) must pass one shared reference.
    """
    if reference is None:
        reference = (
            1.05 * max(p.latency_ms for p in space.points),
            1.05 * max(p.power_w for p in space.points),
        )
    frontier: ParetoFrontier[DesignPoint] = ParetoFrontier()
    for p in space.points:
        frontier.insert(p, p.latency_ms, p.power_w)
    return frontier.hypervolume(reference)


def explore_kernel_guided(
    kernel: Kernel,
    spec,
    search: Optional[SearchConfig] = None,
    target_points: Optional[int] = None,
    validate: bool = False,
    candidate_overrides: Optional[Dict[str, Sequence]] = None,
) -> Tuple[KernelDesignSpace, SearchStats]:
    """Guided exploration of one (kernel, platform) pair.

    Mirrors :func:`~repro.optim.dse.explore_kernel` (same lint gate,
    same ``pruned_invalid`` accounting, same subsampling) but spends at
    most ``search.max_evals`` model evaluations.  When the enumerated
    space fits the budget the search is exhaustive-equivalent and the
    returned front is exactly the exhaustive one.  Returns the design
    space (built from every feasible evaluated point, with the stats
    attached as ``space.search_stats``) plus the :class:`SearchStats`.
    """
    from .dse import _evaluate, _subsample, enumerate_configs, prune_invalid_configs

    search = search or SearchConfig()
    stats = SearchStats(kernel_name=kernel.name, platform=spec.name)
    if validate:
        from ..lint import LintContext, run_lint

        run_lint(kernel, LintContext(spec=spec)).raise_if_errors(
            f"kernel {kernel.name!r}"
        )
    configs = enumerate_configs(kernel, spec, overrides=candidate_overrides)
    stats.explored = len(configs)
    pruned_set: frozenset = frozenset()
    if validate:
        kept, _report = prune_invalid_configs(kernel, spec, configs)
        stats.pruned_invalid = len(configs) - len(kept)
        pruned_set = frozenset(set(configs) - set(kept))
        configs = kept

    if len(configs) <= search.max_evals:
        # Budget covers the whole space: evaluate everything, so the
        # guided front IS the exhaustive front.
        stats.exhaustive_equivalent = True
        stats.evaluations = len(configs)
        points = _evaluate(kernel, spec, configs)
        return _finish(kernel, spec, points, target_points, stats, _subsample)

    rng = search_rng(search.seed if search.seed is not None else 0, kernel, spec)

    # FPGA placement screen: the vectorized resource model rejects
    # un-placeable configs without spending latency/power evaluations.
    if spec.device_type == DeviceType.FPGA:
        feasible = FPGAModel(spec).feasible_batch(kernel, configs)
        stats.screened_infeasible = int(len(configs) - int(feasible.sum()))
        configs = [c for c, ok in zip(configs, feasible) if ok]
    if not configs:
        raise RuntimeError(
            f"no feasible design for kernel {kernel.name!r} on {spec.name!r}"
        )

    proxy_lat, proxy_pow = _proxy_objectives(kernel, spec, configs)
    pool = _successive_halving(configs, proxy_lat, proxy_pow, search, stats)
    seeds = [configs[i] for i in pool][: search.max_evals]

    evaluated: Dict[ImplConfig, CachedEstimate] = {}
    estimates = model_cache.evaluate_many(kernel, spec, seeds)
    stats.evaluations += len(seeds)
    population: List[Tuple[ImplConfig, float, float]] = []
    for config, est in zip(seeds, estimates):
        evaluated[config] = est
        if est.feasible:
            population.append((config, est.latency_ms, est.active_power_w))
    if not population:
        raise RuntimeError(
            f"no feasible design for kernel {kernel.name!r} on {spec.name!r}"
        )

    reference = (
        2.0 * max(p[1] for p in population),
        2.0 * max(p[2] for p in population),
    )
    front: IncrementalHypervolume[ImplConfig] = IncrementalHypervolume(reference)
    for config, lat, pw in population:
        front.insert(config, lat, pw)
    stats.generation_log.append(
        GenerationStats(0, stats.evaluations, len(front), front.area)
    )

    gene_names, gene_values, forced = _gene_space(kernel, spec, candidate_overrides)
    stall = 0
    for gen in range(1, search.generations + 1):
        remaining = search.max_evals - stats.evaluations
        if remaining <= 0:
            break
        keys = _selection_keys(population)
        children: List[ImplConfig] = []
        pending = set()
        attempts = 0
        want = min(search.population, remaining)
        while len(children) < want and attempts < 20 * search.population:
            attempts += 1
            child = _breed(
                rng, population, keys, search, gene_names, gene_values, forced
            )
            if child in evaluated or child in pending or child in pruned_set:
                stats.skipped += 1
                continue
            pending.add(child)
            children.append(child)
        if not children:
            break
        estimates = model_cache.evaluate_many(kernel, spec, children)
        stats.evaluations += len(children)
        gain = 0.0
        for config, est in zip(children, estimates):
            evaluated[config] = est
            if est.feasible:
                population.append((config, est.latency_ms, est.active_power_w))
                gain += front.insert(config, est.latency_ms, est.active_power_w)
        stats.generations = gen
        stats.generation_log.append(
            GenerationStats(gen, stats.evaluations, len(front), front.area)
        )
        population = _survivors(population, search.population)
        stall = stall + 1 if gain <= 0.0 else 0
        if stall >= search.stall_generations:
            break

    points = _points_of(kernel, spec, evaluated)
    return _finish(kernel, spec, points, target_points, stats, _subsample)


def _finish(
    kernel: Kernel,
    spec,
    points: List[DesignPoint],
    target_points: Optional[int],
    stats: SearchStats,
    subsample,
) -> Tuple[KernelDesignSpace, SearchStats]:
    if not points:
        raise RuntimeError(
            f"no feasible design for kernel {kernel.name!r} on {spec.name!r}"
        )
    if target_points is not None:
        points = subsample(points, target_points)
    space = KernelDesignSpace(
        kernel.name,
        spec.name,
        spec.device_type,
        points,
        pruned_invalid=stats.pruned_invalid,
    )
    stats.hypervolume = space_hypervolume(space)
    space.search_stats = stats
    return space, stats


def _gene_space(
    kernel: Kernel, spec, overrides: Optional[Dict[str, Sequence]]
) -> Tuple[List[str], Dict[str, Tuple], Dict[str, object]]:
    """Genome layout: knob names, per-knob alleles, forced assignments.

    Children are always built from the enumerated candidate lists (plus
    the fusion options), so every bred config lies inside the
    enumerated space — lint-pruned children are simply skipped.
    """
    from .dse import _knob_space

    candidates, forced, fused_options = _knob_space(kernel, spec, overrides)
    names = sorted(candidates) + ["fused"]
    values = {name: tuple(candidates[name]) for name in sorted(candidates)}
    values["fused"] = tuple(fused_options)
    return names, values, forced


def _breed(
    rng: np.random.Generator,
    population: Sequence[Tuple[ImplConfig, float, float]],
    keys: Sequence[Tuple],
    search: SearchConfig,
    gene_names: List[str],
    gene_values: Dict[str, Tuple],
    forced: Dict[str, object],
) -> ImplConfig:
    """One child: tournament parents, uniform crossover, mutation."""
    parent = _tournament(rng, population, keys, search.tournament)
    genes = [getattr(parent, name) for name in gene_names]
    if float(rng.random()) < search.crossover_rate:
        other = _tournament(rng, population, keys, search.tournament)
        for k, name in enumerate(gene_names):
            if float(rng.random()) < 0.5:
                genes[k] = getattr(other, name)
    for k, name in enumerate(gene_names):
        if float(rng.random()) < search.mutation_rate:
            alleles = gene_values[name]
            genes[k] = alleles[int(rng.integers(len(alleles)))]
    assignment = dict(zip(gene_names, genes))
    assignment.update(forced)
    return ImplConfig(**assignment)


def _survivors(
    population: List[Tuple[ImplConfig, float, float]], size: int
) -> List[Tuple[ImplConfig, float, float]]:
    """Deterministic (rank, score, knob-tuple) truncation selection."""
    if len(population) <= size:
        return population
    keys = _selection_keys(population)
    order = sorted(range(len(population)), key=lambda i: keys[i])
    return [population[i] for i in order[:size]]
