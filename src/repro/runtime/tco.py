"""Total cost of ownership and cost efficiency (Section VI-E, Fig. 14).

Cost efficiency is "the value of the maximum throughput divided by
TCO", computed with the datacenter TCO model of Patterson [57] with the
same parameter style as Sirius [4]: amortized server+accelerator capex,
datacenter infrastructure capex per provisioned watt, and energy opex
scaled by PUE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .cluster import SystemConfig

__all__ = ["TCOParameters", "TCOModel", "FleetTCO"]


@dataclass(frozen=True)
class TCOParameters:
    """Knobs of the Patterson-style TCO model (defaults follow the
    published parameterization used by Sirius [4])."""

    #: Host server cost (chassis, CPU, DRAM, NIC), USD.
    server_cost_usd: float = 2500.0
    #: Server+accelerator amortization period, years.
    amortization_years: float = 3.0
    #: Datacenter construction cost per provisioned watt, USD/W,
    #: amortized over its lifetime below.
    datacenter_capex_per_w: float = 10.0
    datacenter_amortization_years: float = 12.0
    #: Electricity price, USD per kWh, and power usage effectiveness.
    energy_cost_per_kwh: float = 0.067
    pue: float = 1.1
    #: Yearly maintenance as a fraction of capex.
    maintenance_frac: float = 0.05

    def __post_init__(self) -> None:
        if self.amortization_years <= 0 or self.datacenter_amortization_years <= 0:
            raise ValueError("amortization periods must be positive")
        if self.pue < 1.0:
            raise ValueError("PUE cannot be below 1.0")


class TCOModel:
    """Monthly TCO and cost efficiency of one leaf-node architecture."""

    HOURS_PER_MONTH = 730.0

    def __init__(self, params: Optional[TCOParameters] = None) -> None:
        self.params = params or TCOParameters()

    def monthly_capex_usd(self, system: SystemConfig) -> float:
        """Amortized server + accelerator purchase cost per month."""
        p = self.params
        hw = p.server_cost_usd + system.capex_usd
        return hw / (p.amortization_years * 12.0)

    def monthly_infrastructure_usd(self, system: SystemConfig) -> float:
        """Amortized datacenter build-out for the provisioned watts."""
        p = self.params
        provisioned_w = system.peak_power_w * p.pue
        return (
            provisioned_w
            * p.datacenter_capex_per_w
            / (p.datacenter_amortization_years * 12.0)
        )

    def monthly_maintenance_usd(self, system: SystemConfig) -> float:
        """Monthly maintenance as a fraction of hardware capex."""
        p = self.params
        return (p.server_cost_usd + system.capex_usd) * p.maintenance_frac / 12.0

    def monthly_energy_usd(self, avg_power_w: float) -> float:
        """Electricity for the measured average node power."""
        if avg_power_w < 0:
            raise ValueError("power must be non-negative")
        p = self.params
        kwh = avg_power_w / 1000.0 * self.HOURS_PER_MONTH * p.pue
        return kwh * p.energy_cost_per_kwh

    def monthly_tco_usd(self, system: SystemConfig, avg_power_w: float) -> float:
        """Total monthly cost of the node at the given average power."""
        capex = self.monthly_capex_usd(system)
        infra = self.monthly_infrastructure_usd(system)
        energy = self.monthly_energy_usd(avg_power_w)
        maintenance = self.monthly_maintenance_usd(system)
        return capex + infra + energy + maintenance

    def cost_efficiency(
        self, system: SystemConfig, max_rps: float, avg_power_w: float
    ) -> float:
        """Fig. 14's metric: sustainable RPS per monthly TCO dollar."""
        if max_rps < 0:
            raise ValueError("throughput must be non-negative")
        return max_rps / self.monthly_tco_usd(system, avg_power_w)

    def for_fleet(self, system: SystemConfig, n_nodes: float) -> "FleetTCO":
        """Fleet-level aggregation of one node architecture's fixed
        costs, amortized at ``n_nodes`` nodes.

        ``n_nodes`` may be fractional: an elastic fleet's monthly bill
        is driven by the *time-weighted* node count (a node provisioned
        for half the month costs half a node-month of capex,
        infrastructure and maintenance).  Energy is intentionally not
        part of :class:`FleetTCO` — it scales with measured fleet power,
        not node count, and is added via :meth:`monthly_energy_usd`.
        """
        if n_nodes < 0:
            raise ValueError("node count must be non-negative")
        return FleetTCO(
            codename=system.codename,
            n_nodes=float(n_nodes),
            monthly_capex_usd=self.monthly_capex_usd(system) * n_nodes,
            monthly_infrastructure_usd=(
                self.monthly_infrastructure_usd(system) * n_nodes
            ),
            monthly_maintenance_usd=(
                self.monthly_maintenance_usd(system) * n_nodes
            ),
        )


@dataclass(frozen=True)
class FleetTCO:
    """Node-count-weighted fixed costs of one template in a fleet."""

    codename: str
    n_nodes: float
    monthly_capex_usd: float
    monthly_infrastructure_usd: float
    monthly_maintenance_usd: float

    def monthly_fixed_usd(self) -> float:
        """All power-independent monthly costs of this template slice."""
        return (
            self.monthly_capex_usd
            + self.monthly_infrastructure_usd
            + self.monthly_maintenance_usd
        )

    def monthly_tco_usd(self, monthly_energy_usd: float) -> float:
        """Fixed costs plus the measured-energy bill for this slice."""
        if monthly_energy_usd < 0:
            raise ValueError("energy cost must be non-negative")
        return self.monthly_fixed_usd() + monthly_energy_usd
