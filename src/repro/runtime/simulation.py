"""Request-level simulation driver and power accounting.

``run_simulation`` replays an arrival stream against a leaf node and
produces a :class:`SimulationResult`: per-request latencies plus a
binned power timeline.

Power accounting is post-hoc: every realized execution contributes its
active energy to the bins it overlaps; the remaining (idle) time is
charged at the device's idle power, where Poly systems walk the DVFS
ladder with the bin's utilization and drop fully-idle FPGAs into the
low-power-bitstream state, while static systems idle at full clocks —
the asymmetry behind Fig. 9/12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..apps.base import Application
from ..faults.events import FaultSchedule
from ..faults.injector import FaultInjector, ResilienceReport
from ..faults.policy import RetryPolicy
from ..optim.design_point import KernelDesignSpace
from .cluster import SchedulingPolicy, SystemConfig
from .engine import EventHeapEngine
from .loadgen import ArrivalSpec
from .metrics import availability, tail_latency_p99, violation_ratio
from .node import LeafNode, RequestRecord

__all__ = ["SimulationResult", "run_simulation"]


@dataclass
class SimulationResult:
    """Outcome of one (system, application, arrival-stream) run."""

    system: str
    app: str
    duration_ms: float
    requests: List[RequestRecord]
    power_bins_w: np.ndarray
    bin_ms: float
    warmup_ms: float = 0.0
    faults: Optional[ResilienceReport] = None
    #: The leaf node that produced this result (device records, final
    #: health) — what the obs digest and exporters read post-run.
    node: Optional[LeafNode] = field(default=None, repr=False, compare=False)

    def latencies_ms(self) -> List[float]:
        """Steady-state request latencies (warm-up excluded; shed and
        abandoned requests never produce a service latency)."""
        return [
            r.latency_ms
            for r in self.requests
            if r.arrival_ms >= self.warmup_ms and r.served
        ]

    @property
    def p99_ms(self) -> float:
        return tail_latency_p99(self.latencies_ms())

    @property
    def mean_latency_ms(self) -> float:
        lats = self.latencies_ms()
        if not lats:
            return float("nan")
        return sum(lats) / len(lats)

    @property
    def availability(self) -> float:
        """Fraction of offered requests actually served (all of them in
        a fault-free run; failovers count as served, shed/failed do
        not)."""
        return availability(
            sum(1 for r in self.requests if r.served), len(self.requests)
        )

    def qos_violations(self, bound_ms: float) -> float:
        return violation_ratio(self.latencies_ms(), bound_ms)

    @property
    def avg_power_w(self) -> float:
        """Average node power over the steady-state window."""
        skip = int(self.warmup_ms / self.bin_ms)
        if skip >= len(self.power_bins_w):
            return float("nan")
        return float(np.mean(self.power_bins_w[skip:]))

    @property
    def energy_j(self) -> float:
        return float(np.sum(self.power_bins_w) * self.bin_ms / 1000.0)

    @property
    def arrival_span_ms(self) -> float:
        """The offered-load window the power bins cover."""
        return len(self.power_bins_w) * self.bin_ms

    @property
    def throughput_rps(self) -> float:
        effective = self.arrival_span_ms - self.warmup_ms
        n = len(self.latencies_ms())
        return n * 1000.0 / effective if effective > 0 else 0.0

    def __repr__(self) -> str:
        return (
            f"<SimulationResult {self.app} on {self.system}: "
            f"{len(self.requests)} reqs, p99 {self.p99_ms:.1f} ms, "
            f"avg {self.avg_power_w:.0f} W>"
        )


def run_simulation(
    system: SystemConfig,
    app: Application,
    design_spaces: Mapping[Tuple[str, str], KernelDesignSpace],
    arrivals_ms: Union[Sequence[float], ArrivalSpec],
    bin_ms: float = 1000.0,
    warmup_frac: float = 0.1,
    seed: int = 0,
    replan_interval_ms: float = 250.0,
    faults: Optional[Union[FaultSchedule, FaultInjector]] = None,
    retry_policy: Optional[RetryPolicy] = None,
    priorities: Optional[Sequence[float]] = None,
    tracer=None,
    metrics=None,
    plan_cache=None,
    engine: str = "event",
) -> SimulationResult:
    """Replay ``arrivals_ms`` (sorted timestamps) on a fresh leaf node.

    ``faults`` (a :class:`FaultSchedule`, or a pre-built
    :class:`FaultInjector` for custom retry/heartbeat settings) turns
    the run into a chaos experiment; ``priorities`` optionally assigns a
    per-request priority in [0, 1] (parallel to the *sorted* arrival
    stream) consulted by graceful-degradation load shedding.  With
    ``faults=None`` the run is bit-identical to the pre-fault-injection
    simulator.

    ``tracer`` (a :class:`repro.obs.SpanTracer`) records the typed
    event stream of the run — request lifecycle, scheduling decisions,
    dispatches, faults — plus one ``kernel.exec`` span per realized
    device execution at the end; ``metrics`` (a
    :class:`repro.obs.MetricsRegistry`) receives the run's aggregate
    counters/gauges/histograms.  Both default to off, leaving the run
    bit-identical to an uninstrumented build.

    ``plan_cache`` (a :class:`repro.scheduler.SchedulePlanCache`)
    memoizes the node's schedule plans and enables the compiled
    dispatch fast path; seeded runs are bit-identical with the cache on
    or off (golden-tested), the cache only removes recomputation.

    ``arrivals_ms`` may also be an :class:`ArrivalSpec` — the
    declarative stream description shared with the cluster driver —
    realized here through its own seed.

    ``engine`` selects the simulation core: ``"event"`` (default)
    drives the run through the global event-heap engine
    (:class:`repro.runtime.engine.EventHeapEngine`, ≥10x request
    throughput at high load); ``"legacy"`` keeps the original
    per-request submit loop.  Seeded runs are float-identical across
    the two (golden-tested); traced runs emit byte-identical event
    streams natively from the engine's loop (chaos runs delegate each
    arrival to the node, so the equivalence is structural there).
    """
    if engine not in ("event", "legacy"):
        raise ValueError(f"unknown engine {engine!r}")
    if isinstance(arrivals_ms, ArrivalSpec):
        arrivals_ms = arrivals_ms.generate()
    if not arrivals_ms:
        raise ValueError("empty arrival stream")
    if tracer is None and isinstance(faults, FaultInjector):
        # A pre-built injector constructed with its own tracer traces
        # the whole run, not just the fault path.
        if faults.tracer.enabled:
            tracer = faults.tracer
    node = LeafNode(
        system,
        app,
        design_spaces,
        replan_interval_ms=replan_interval_ms,
        seed=seed,
        tracer=tracer,
        plan_cache=plan_cache,
    )
    injector: Optional[FaultInjector] = None
    if faults is not None:
        if isinstance(faults, FaultInjector):
            injector = faults
        else:
            injector = FaultInjector(faults, retry_policy=retry_policy)
        injector.bind(node)
    elif retry_policy is not None:
        raise ValueError("retry_policy given without a fault schedule")

    ordered = sorted(arrivals_ms)
    if priorities is not None and len(priorities) != len(ordered):
        raise ValueError("priorities must match the arrival stream length")
    if engine == "event":
        requests = EventHeapEngine(node).run(ordered, priorities=priorities)
    elif priorities is None:
        requests = [node.submit(t) for t in ordered]
    else:
        requests = [
            node.submit(t, priority=p) for t, p in zip(ordered, priorities)
        ]

    # Latency statistics run to the last completion; power is accounted
    # over the *offered-load* window only — in overload the post-arrival
    # drain is not part of "power at load L" (a saturated system keeps
    # receiving load in reality).  The span comes from the *sorted*
    # stream: the caller's last element need not be its latest arrival.
    arrival_span_ms = max(ordered[-1], bin_ms)
    duration_ms = max(max(r.completion_ms for r in requests), ordered[-1])
    power = _power_timeline(node, arrival_span_ms, bin_ms)
    result = SimulationResult(
        system=system.codename,
        app=app.name,
        duration_ms=duration_ms,
        requests=requests,
        power_bins_w=power,
        bin_ms=bin_ms,
        warmup_ms=arrival_span_ms * warmup_frac,
        faults=injector.report if injector is not None else None,
    )
    if (tracer is not None and tracer.enabled) or metrics is not None:
        # Lazy import: the hot path never touches the obs package.
        from ..obs.summary import emit_execution_spans, record_simulation_metrics

        if tracer is not None and tracer.enabled:
            emit_execution_spans(tracer, node)
        if metrics is not None:
            record_simulation_metrics(metrics, result, node)
    result.node = node
    return result


def _power_timeline(
    node: LeafNode, duration_ms: float, bin_ms: float
) -> np.ndarray:
    """Per-bin average node power (active + policy-dependent idle).

    Vectorized interval arithmetic: every execution record contributes
    its clipped overlap with each covered bin via ``np.add.at``, which
    accumulates in operand order — emitting the (record, bin) pairs in
    the same record-major order the scalar loop visited keeps the
    per-bin float sums bit-identical to the original implementation.
    The DVFS idle-power ladder is applied as a batched ``searchsorted``
    over the ascending levels instead of a per-bin ``pick_level`` call.
    """
    if bin_ms <= 0:
        raise ValueError("bin width must be positive")
    n_bins = max(int(np.ceil(duration_ms / bin_ms)), 1)
    total = np.zeros(n_bins)
    poly = node.system.policy == SchedulingPolicy.POLY

    for dev in node.devices:
        active_energy = np.zeros(n_bins)  # W * ms per bin
        busy = np.zeros(n_bins)
        # Columnar read: engine runs never materialize dataclass
        # records for power accounting (same floats, same order).
        col_starts, col_ends, col_powers = dev.record_columns()
        if col_starts:
            starts = np.array(col_starts)
            rec_ends = np.array(col_ends)
            powers = np.array(col_powers)
            first = (starts // bin_ms).astype(np.int64)
            last = np.minimum(
                (rec_ends // bin_ms).astype(np.int64), n_bins - 1
            )
            # Records entirely past the window have last < first.
            span = np.maximum(last - first + 1, 0)
            rec_idx = np.repeat(np.arange(len(starts)), span)
            offsets = np.arange(int(span.sum())) - np.repeat(
                np.cumsum(span) - span, span
            )
            bins = first[rec_idx] + offsets
            lo = np.maximum(starts[rec_idx], bins * bin_ms)
            hi = np.minimum(rec_ends[rec_idx], (bins + 1) * bin_ms)
            overlap = hi - lo
            m = overlap > 0
            np.add.at(active_energy, bins[m], (powers[rec_idx] * overlap)[m])
            np.add.at(busy, bins[m], overlap[m])

        busy = np.minimum(busy, bin_ms)
        idle = bin_ms - busy
        util = busy / bin_ms
        dvfs = dev.dvfs
        if poly:
            # pick_level: the lowest level whose 80%-derated throughput
            # clears the load, else the highest level.  Over ascending
            # levels that is a searchsorted on level*0.8; fully idle
            # bins drop to the deep-idle state instead.
            asc = np.array(sorted(dvfs.levels))
            idx = np.searchsorted(asc * 0.8, util, side="left")
            level_power = np.array(
                [dvfs.idle_power_w(float(lv)) for lv in asc]
                + [dvfs.idle_power_w(float(dvfs.levels[0]))]
            )
            idle_power = np.where(
                util == 0.0, dvfs.low_power_state_w(), level_power[idx]
            )
        else:
            idle_power = np.full(n_bins, dvfs.idle_power_w(1.0))
        total += (active_energy + idle_power * idle) / bin_ms
    return total
