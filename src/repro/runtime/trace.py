"""Datacenter utilization traces (Section VI-C).

The paper replays a 24-hour server-utilization trace from the public
Google cluster data set (May 2011, 12.5k machines) [56].  That data is
not shipped here, so this module provides (a) a synthetic generator
matched to the qualitative shape of Fig. 11 — a diurnal swing with
superimposed bursts and noise — and (b) a loader for the real trace's
per-interval utilization format for users who have it.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["UtilizationTrace", "synthesize_google_trace", "load_trace_csv"]


@dataclass(frozen=True)
class UtilizationTrace:
    """Per-interval utilization in [0, 1]."""

    utilization: Sequence[float]
    interval_s: float
    name: str = "trace"

    def __post_init__(self) -> None:
        if not len(self.utilization):
            raise ValueError("trace is empty")
        if self.interval_s <= 0:
            raise ValueError("interval must be positive")
        if any(u < 0.0 or u > 1.0 for u in self.utilization):
            raise ValueError("utilization values must lie in [0, 1]")

    @property
    def duration_s(self) -> float:
        return len(self.utilization) * self.interval_s

    @property
    def mean_utilization(self) -> float:
        return float(np.mean(np.asarray(self.utilization)))

    def resampled(self, factor: int) -> "UtilizationTrace":
        """Keep every ``factor``-th sample (coarser replay)."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        return UtilizationTrace(
            tuple(self.utilization[::factor]),
            self.interval_s * factor,
            f"{self.name}/{factor}x",
        )


def synthesize_google_trace(
    hours: float = 24.0,
    interval_s: float = 300.0,
    seed: int = 2011,
    base: float = 0.35,
    diurnal_amplitude: float = 0.25,
    burst_rate_per_hour: float = 0.7,
    noise_sigma: float = 0.04,
) -> UtilizationTrace:
    """Synthesize a Google-cluster-like 24 h utilization trace.

    Shape ingredients (matching the published cluster analyses and the
    look of Fig. 11): a mean utilization well below saturation, a
    diurnal sine with an afternoon peak, Poisson bursts that jump
    utilization for a few intervals, and Gaussian measurement noise.
    """
    if hours <= 0 or interval_s <= 0:
        raise ValueError("hours and interval must be positive")
    n = int(hours * 3600.0 / interval_s)
    rng = np.random.default_rng(seed)
    t_hours = np.arange(n) * interval_s / 3600.0

    # Diurnal component peaking around 15:00.
    diurnal = base + diurnal_amplitude * np.sin(
        2.0 * math.pi * (t_hours - 9.0) / 24.0
    )

    # Bursts: exponential decay over ~3 intervals.
    bursts = np.zeros(n)
    n_bursts = rng.poisson(burst_rate_per_hour * hours)
    for _ in range(n_bursts):
        at = rng.integers(0, n)
        height = rng.uniform(0.15, 0.4)
        for k in range(at, min(at + 8, n)):
            bursts[k] += height * math.exp(-(k - at) / 3.0)

    noise = rng.normal(0.0, noise_sigma, size=n)
    util = np.clip(diurnal + bursts + noise, 0.02, 1.0)
    return UtilizationTrace(tuple(util.tolist()), interval_s, "google-synthetic")


def load_trace_csv(path: str, column: str = "utilization") -> UtilizationTrace:
    """Load a per-interval utilization CSV (``interval_s`` inferred from
    a ``timestamp`` column if present, else 300 s)."""
    rows: List[dict] = []
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    if not rows:
        raise ValueError(f"{path!r} contains no rows")
    util = [float(r[column]) for r in rows]
    interval_s = 300.0
    if "timestamp" in rows[0] and len(rows) > 1:
        interval_s = float(rows[1]["timestamp"]) - float(rows[0]["timestamp"])
        if interval_s <= 0:
            raise ValueError("timestamps must be increasing")
    return UtilizationTrace(tuple(util), interval_s, name=path)
