"""Datacenter runtime substrate: cluster configs, load generation, the
leaf-node simulator, metrics, traces and the TCO model."""

from .cluster import (
    DEFAULT_POWER_CAP_W,
    SchedulingPolicy,
    SETTINGS,
    SystemConfig,
    provision,
    setting,
)
from .engine import EventHeap, EventHeapEngine, EventKind
from .loadgen import (
    ArrivalSpec,
    constant_arrivals,
    flash_crowd_arrivals,
    pareto_poisson_arrivals,
    poisson_arrivals,
    trace_arrivals,
)
from .metrics import (
    availability,
    energy_proportionality,
    ideal_power_curve,
    max_throughput_under_qos,
    mean_recovery_ms,
    percentile_latency,
    tail_latency_p99,
    violation_ratio,
)
from .node import AcceleratorInstance, ExecutionRecord, LeafNode, RequestRecord
from .simulation import SimulationResult, run_simulation
from .tco import FleetTCO, TCOModel, TCOParameters
from .trace import UtilizationTrace, load_trace_csv, synthesize_google_trace

__all__ = [
    "SystemConfig",
    "SchedulingPolicy",
    "provision",
    "setting",
    "SETTINGS",
    "DEFAULT_POWER_CAP_W",
    "ArrivalSpec",
    "EventHeap",
    "EventHeapEngine",
    "EventKind",
    "constant_arrivals",
    "poisson_arrivals",
    "trace_arrivals",
    "pareto_poisson_arrivals",
    "flash_crowd_arrivals",
    "LeafNode",
    "AcceleratorInstance",
    "ExecutionRecord",
    "RequestRecord",
    "SimulationResult",
    "run_simulation",
    "percentile_latency",
    "tail_latency_p99",
    "violation_ratio",
    "energy_proportionality",
    "ideal_power_curve",
    "max_throughput_under_qos",
    "availability",
    "mean_recovery_ms",
    "TCOModel",
    "TCOParameters",
    "FleetTCO",
    "UtilizationTrace",
    "synthesize_google_trace",
    "load_trace_csv",
]
