"""Open-loop request generators.

The motivation study feeds requests at a constant interval swept from
100 ms down to 1 ms (Section II-B); the static evaluation sweeps load
levels from 10% to 100% of a system's saturation throughput (Section
VI-B); the trace study replays a 24-hour utilization trace.  All three
reduce to generating sorted arrival timestamps.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "constant_arrivals",
    "poisson_arrivals",
    "trace_arrivals",
]


def constant_arrivals(rps: float, duration_ms: float, start_ms: float = 0.0) -> List[float]:
    """Constant-interval arrivals at ``rps`` requests per second."""
    if rps <= 0:
        return []
    if duration_ms <= 0:
        raise ValueError("duration must be positive")
    interval = 1000.0 / rps
    n = int(duration_ms / interval)
    return [start_ms + i * interval for i in range(n)]


def poisson_arrivals(
    rps: float,
    duration_ms: float,
    rng: Optional[np.random.Generator] = None,
    start_ms: float = 0.0,
) -> List[float]:
    """Poisson arrivals at mean rate ``rps`` — the open-loop load the
    tail-latency experiments use (queueing needs stochastic arrivals to
    produce realistic p99 behaviour)."""
    if rps <= 0:
        return []
    if duration_ms <= 0:
        raise ValueError("duration must be positive")
    rng = rng or np.random.default_rng(0)
    mean_gap = 1000.0 / rps
    # Draw enough gaps to cover the horizon with margin, then trim.
    n_est = max(int(duration_ms / mean_gap * 1.3) + 16, 16)
    times: List[float] = []
    t = start_ms
    while True:
        gaps = rng.exponential(mean_gap, size=n_est)
        for g in gaps:
            t += g
            if t >= start_ms + duration_ms:
                return times
            times.append(t)


def trace_arrivals(
    utilization: Sequence[float],
    interval_ms: float,
    peak_rps: float,
    rng: Optional[np.random.Generator] = None,
) -> List[float]:
    """Arrivals following a piecewise utilization trace.

    ``utilization[i]`` in [0, 1] scales ``peak_rps`` over the i-th
    interval of length ``interval_ms`` (the Google-trace replay of
    Section VI-C).
    """
    if interval_ms <= 0 or peak_rps <= 0:
        raise ValueError("interval and peak rate must be positive")
    rng = rng or np.random.default_rng(0)
    times: List[float] = []
    for i, u in enumerate(utilization):
        u = min(max(float(u), 0.0), 1.0)
        rate = u * peak_rps
        if rate <= 0:
            continue
        times.extend(
            poisson_arrivals(rate, interval_ms, rng, start_ms=i * interval_ms)
        )
    return times
