"""Open-loop request generators.

The motivation study feeds requests at a constant interval swept from
100 ms down to 1 ms (Section II-B); the static evaluation sweeps load
levels from 10% to 100% of a system's saturation throughput (Section
VI-B); the trace study replays a 24-hour utilization trace.  All three
reduce to generating sorted arrival timestamps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ArrivalSpec",
    "constant_arrivals",
    "poisson_arrivals",
    "trace_arrivals",
    "pareto_poisson_arrivals",
    "flash_crowd_arrivals",
]


def constant_arrivals(rps: float, duration_ms: float, start_ms: float = 0.0) -> List[float]:
    """Constant-interval arrivals at ``rps`` requests per second."""
    if rps <= 0:
        return []
    if duration_ms <= 0:
        raise ValueError("duration must be positive")
    interval = 1000.0 / rps
    n = int(duration_ms / interval)
    return [start_ms + i * interval for i in range(n)]


def poisson_arrivals(
    rps: float,
    duration_ms: float,
    rng: Optional[np.random.Generator] = None,
    start_ms: float = 0.0,
) -> List[float]:
    """Poisson arrivals at mean rate ``rps`` — the open-loop load the
    tail-latency experiments use (queueing needs stochastic arrivals to
    produce realistic p99 behaviour)."""
    if rps <= 0:
        return []
    if duration_ms <= 0:
        raise ValueError("duration must be positive")
    rng = rng or np.random.default_rng(0)
    mean_gap = 1000.0 / rps
    # Draw enough gaps to cover the horizon with margin, then trim.
    n_est = max(int(duration_ms / mean_gap * 1.3) + 16, 16)
    end_ms = start_ms + duration_ms
    times: List[float] = []
    t = start_ms
    while True:
        gaps = rng.exponential(mean_gap, size=n_est)
        # np.cumsum accumulates left-to-right, so seeding the chain with
        # ``t`` reproduces the scalar ``t += g`` float sequence exactly;
        # the RNG consumes whole chunks either way, so a seeded stream
        # is bit-identical to the per-gap scalar loop this replaces.
        cum = np.cumsum(np.concatenate(((t,), gaps)))[1:]
        cut = int(np.searchsorted(cum, end_ms, side="left"))
        times.extend(cum[:cut].tolist())
        if cut < n_est:
            return times
        t = float(cum[-1])


def pareto_poisson_arrivals(
    rps: float,
    duration_ms: float,
    rng: Optional[np.random.Generator] = None,
    start_ms: float = 0.0,
    window_ms: float = 1_000.0,
    alpha: float = 2.5,
) -> List[float]:
    """Heavy-tail arrivals: a Pareto-modulated Poisson process.

    Real interactive-service traffic is burstier than Poisson — rates
    cluster into heavy-tailed episodes.  This generator draws one
    Pareto(``alpha``) rate multiplier per ``window_ms`` modulation
    window (normalized so the long-run mean rate stays ``rps``) and
    emits Poisson arrivals at the modulated rate within each window.
    Smaller ``alpha`` means heavier bursts; ``alpha`` must exceed 1 so
    the multiplier's mean exists.
    """
    if rps <= 0:
        return []
    if duration_ms <= 0:
        raise ValueError("duration must be positive")
    if window_ms <= 0:
        raise ValueError("modulation window must be positive")
    if alpha <= 1.0:
        raise ValueError("alpha must exceed 1 (heavier tails have no mean)")
    rng = rng or np.random.default_rng(0)
    # rng.pareto draws Lomax; +1 gives classical Pareto with x_m = 1 and
    # mean alpha / (alpha - 1); dividing by that mean keeps E[rate] = rps.
    mean_multiplier = alpha / (alpha - 1.0)
    times: List[float] = []
    n_windows = int(math.ceil(duration_ms / window_ms))
    for i in range(n_windows):
        multiplier = (1.0 + float(rng.pareto(alpha))) / mean_multiplier
        w_start = start_ms + i * window_ms
        w_len = min(window_ms, start_ms + duration_ms - w_start)
        rate = rps * multiplier
        if rate <= 0 or w_len <= 0:
            continue
        times.extend(poisson_arrivals(rate, w_len, rng, start_ms=w_start))
    return times


def flash_crowd_arrivals(
    base_rps: float,
    duration_ms: float,
    surge_start_ms: float,
    surge_duration_ms: float,
    surge_multiplier: float = 5.0,
    rng: Optional[np.random.Generator] = None,
    start_ms: float = 0.0,
) -> List[float]:
    """Baseline Poisson load with one flash-crowd surge.

    A surge window multiplies the offered rate by ``surge_multiplier``
    (a news event hitting an interactive service — ROADMAP item 4's
    flash-crowd scenario).  Implemented as baseline arrivals plus an
    *extra* Poisson stream at ``base_rps * (surge_multiplier - 1)``
    inside the surge window, merge-sorted: the baseline stream's draws
    are identical with and without the surge, so A/B comparisons under
    one seed isolate the surge's effect.
    """
    if base_rps <= 0:
        return []
    if duration_ms <= 0:
        raise ValueError("duration must be positive")
    if surge_duration_ms < 0:
        raise ValueError("surge duration must be non-negative")
    if surge_multiplier < 1.0:
        raise ValueError("a flash crowd cannot shrink the load")
    rng = rng or np.random.default_rng(0)
    base = poisson_arrivals(base_rps, duration_ms, rng, start_ms=start_ms)
    surge_start = max(surge_start_ms, start_ms)
    surge_end = min(surge_start_ms + surge_duration_ms, start_ms + duration_ms)
    extra_rate = base_rps * (surge_multiplier - 1.0)
    if surge_end <= surge_start or extra_rate <= 0:
        return base
    surge = poisson_arrivals(
        extra_rate, surge_end - surge_start, rng, start_ms=surge_start
    )
    return sorted(base + surge)


def trace_arrivals(
    utilization: Sequence[float],
    interval_ms: float,
    peak_rps: float,
    rng: Optional[np.random.Generator] = None,
) -> List[float]:
    """Arrivals following a piecewise utilization trace.

    ``utilization[i]`` in [0, 1] scales ``peak_rps`` over the i-th
    interval of length ``interval_ms`` (the Google-trace replay of
    Section VI-C).
    """
    if interval_ms <= 0 or peak_rps <= 0:
        raise ValueError("interval and peak rate must be positive")
    rng = rng or np.random.default_rng(0)
    times: List[float] = []
    for i, u in enumerate(utilization):
        u = min(max(float(u), 0.0), 1.0)
        rate = u * peak_rps
        if rate <= 0:
            continue
        times.extend(
            poisson_arrivals(rate, interval_ms, rng, start_ms=i * interval_ms)
        )
    return times


@dataclass(frozen=True)
class ArrivalSpec:
    """A declarative arrival stream, shared by the single-node and
    fleet drivers.

    ``run_simulation`` and ``ClusterSimulation.run`` both accept an
    ``ArrivalSpec`` in place of a raw timestamp list and realize it
    through :meth:`generate` — one code path, so a loadgen modulation
    change (Pareto windows, flash-crowd surges, trace replay) can never
    drift between single-node and fleet replays.  The spec carries no
    RNG of its own: the caller supplies the generator (the cluster
    driver passes its dedicated arrival child stream), or ``generate``
    falls back to ``default_rng(seed)``.
    """

    kind: str
    rps: float = 0.0
    duration_ms: float = 0.0
    start_ms: float = 0.0
    #: Pareto modulation (kind="pareto").
    window_ms: float = 1_000.0
    alpha: float = 2.5
    #: Flash-crowd surge (kind="flash_crowd").
    surge_start_ms: float = 0.0
    surge_duration_ms: float = 0.0
    surge_multiplier: float = 5.0
    #: Trace replay (kind="trace").
    utilization: Tuple[float, ...] = field(default=())
    interval_ms: float = 0.0
    peak_rps: float = 0.0
    #: Seed for the fallback generator when no RNG is supplied.
    seed: int = 0

    _KINDS = ("constant", "poisson", "pareto", "flash_crowd", "trace")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; expected one of "
                f"{self._KINDS}"
            )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def constant(
        cls, rps: float, duration_ms: float, start_ms: float = 0.0
    ) -> "ArrivalSpec":
        return cls("constant", rps=rps, duration_ms=duration_ms, start_ms=start_ms)

    @classmethod
    def poisson(
        cls, rps: float, duration_ms: float, start_ms: float = 0.0, seed: int = 0
    ) -> "ArrivalSpec":
        return cls(
            "poisson", rps=rps, duration_ms=duration_ms, start_ms=start_ms,
            seed=seed,
        )

    @classmethod
    def pareto(
        cls,
        rps: float,
        duration_ms: float,
        window_ms: float = 1_000.0,
        alpha: float = 2.5,
        start_ms: float = 0.0,
        seed: int = 0,
    ) -> "ArrivalSpec":
        return cls(
            "pareto", rps=rps, duration_ms=duration_ms, window_ms=window_ms,
            alpha=alpha, start_ms=start_ms, seed=seed,
        )

    @classmethod
    def flash_crowd(
        cls,
        base_rps: float,
        duration_ms: float,
        surge_start_ms: float,
        surge_duration_ms: float,
        surge_multiplier: float = 5.0,
        start_ms: float = 0.0,
        seed: int = 0,
    ) -> "ArrivalSpec":
        return cls(
            "flash_crowd", rps=base_rps, duration_ms=duration_ms,
            surge_start_ms=surge_start_ms, surge_duration_ms=surge_duration_ms,
            surge_multiplier=surge_multiplier, start_ms=start_ms, seed=seed,
        )

    @classmethod
    def trace(
        cls,
        utilization: Sequence[float],
        interval_ms: float,
        peak_rps: float,
        seed: int = 0,
    ) -> "ArrivalSpec":
        return cls(
            "trace", utilization=tuple(float(u) for u in utilization),
            interval_ms=interval_ms, peak_rps=peak_rps, seed=seed,
        )

    # -- realization ----------------------------------------------------------

    def generate(
        self, rng: Optional[np.random.Generator] = None
    ) -> List[float]:
        """Realize the stream.  Same spec + same generator state =>
        the identical timestamp list, on every driver."""
        if rng is None and self.kind != "constant":
            rng = np.random.default_rng(self.seed)
        if self.kind == "constant":
            return constant_arrivals(self.rps, self.duration_ms, self.start_ms)
        if self.kind == "poisson":
            return poisson_arrivals(
                self.rps, self.duration_ms, rng, start_ms=self.start_ms
            )
        if self.kind == "pareto":
            return pareto_poisson_arrivals(
                self.rps, self.duration_ms, rng, start_ms=self.start_ms,
                window_ms=self.window_ms, alpha=self.alpha,
            )
        if self.kind == "flash_crowd":
            return flash_crowd_arrivals(
                self.rps, self.duration_ms, self.surge_start_ms,
                self.surge_duration_ms, self.surge_multiplier, rng,
                start_ms=self.start_ms,
            )
        return trace_arrivals(
            self.utilization, self.interval_ms, self.peak_rps, rng
        )
