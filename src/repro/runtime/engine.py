"""Global event-heap simulation engine.

The simulator's original inner loop dispatched every request through
``LeafNode.submit`` — a per-request tower of method calls, dict plumbing
and dataclass construction.  This module replaces that loop with a
single global event heap and an incremental-EST fast path:

* **One event stream.** All simulation time advances through an
  :class:`EventHeap` of typed :class:`EventKind` events — arrivals
  (batched into chunks), autoscaler scale evaluations (cluster driver),
  fault/heartbeat delivery (delegated runs) and kernel completions
  (validation mode).  Same-time events pop in taxonomy order, FIFO
  within a kind, so interleavings are deterministic by construction.

* **Incremental EST tables.** Per plan, the engine compiles each
  kernel's dispatch entries once — batch-1..``MAX_GPU_BATCH`` latency/
  power ladders, device rows with integer tie-break ranks, PCIe
  transfer costs per DAG edge — and keeps earliest-start state (device
  horizons, open GPU batches, loaded FPGA bitstreams) updated at
  reservation commit instead of recomputing per request.  Device
  horizons stay write-through on the :class:`AcceleratorInstance`, so
  external readers (cluster dispatcher queue depths, the load signal)
  always see fresh state.

* **The bit-identity contract.** Seeded runs are float-identical to the
  legacy loop: the fast path replays the exact float expressions of
  ``LeafNode._execute_kernel_fast`` (itself golden-tested against the
  plain path), draws noise from the same buffered log-normal stream
  (numpy's vectorized draws match scalar draws bit-for-bit — the
  PR 5 replay technique), and folds the monitor's EWMA correction
  inline with identical arithmetic.  Runs the fast path cannot replay
  exactly — fault injection (extra RNG consumers, heartbeats) — are
  *delegated*: the heap still orders the arrivals, but each one
  executes through ``LeafNode.submit`` itself, which is trivially
  identical.

* **Native tracing.** An enabled tracer no longer delegates: the
  engine swaps a :class:`_BufferTracer` onto the node (and its
  scheduler) for the run's lifetime, the compiled dispatch program
  appends compact per-request tuples (admit / kernel dispatch /
  complete) next to the buffered control-plane emissions (replans,
  scheduler placements, monitor snapshots), and every chunk flushes
  the buffer to the real tracer in legacy emission order — so traced
  seeded runs produce byte-identical span streams to the legacy loop
  while keeping most of the engine speedup (gated by ``repro bench
  --suite obs``).

Golden A/B tests (``tests/test_engine.py``) hold the two engines
bit-identical on seeded fault-free and chaos runs; ``repro bench
--suite sim`` gates the speedup.
"""

from __future__ import annotations

import heapq
from enum import IntEnum
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..hardware.specs import DeviceType
from ..obs.tracer import SpanTracer
from .node import MAX_GPU_BATCH, NOISE_SIGMA, LeafNode, RequestRecord

__all__ = ["EventKind", "Event", "EventHeap", "EventHeapEngine"]

#: Arrivals are pushed in chunks of this size: one heap transaction
#: amortizes over many requests while staying interruptible by
#: earlier-timestamped events (completions in validation mode).
ARRIVAL_CHUNK = 1024

#: Process-wide cache of compiled dispatch-program code objects, keyed
#: by generated source (identical plans on identical node configs
#: generate identical source; the population is one entry per distinct
#: plan shape, so the cache stays small).
_CODE_CACHE: Dict[str, object] = {}


class EventKind(IntEnum):
    """Typed simulation events.  The integer value doubles as the
    tie-break priority at equal timestamps: scale evaluations run
    before the arrivals of the same instant (matching the legacy
    ``while next_eval <= t`` drain), completions free devices before
    same-time arrivals see them, dispatches trail their arrival."""

    SCALE = 0
    FAULT = 1
    HEARTBEAT = 2
    KERNEL_COMPLETE = 3
    ARRIVAL = 4
    DISPATCH = 5


class Event(NamedTuple):
    t_ms: float
    kind: EventKind
    payload: object


class EventHeap:
    """Stable min-heap of timed events.

    Ordered by ``(t_ms, kind, seq)``: time first, taxonomy priority at
    ties, insertion order within a kind.  Popping is therefore globally
    deterministic for any push order of the same event set.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, object]] = []
        self._seq = 0

    def push(self, t_ms: float, kind: EventKind, payload: object = None) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (t_ms, int(kind), self._seq, payload))

    def pop(self) -> Event:
        t_ms, kind, _, payload = heapq.heappop(self._heap)
        return Event(t_ms, EventKind(kind), payload)

    def peek(self) -> Optional[Event]:
        if not self._heap:
            return None
        t_ms, kind, _, payload = self._heap[0]
        return Event(t_ms, EventKind(kind), payload)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


# Compiled dispatch-entry field layout (tuples, not dataclasses: the
# inner loop indexes them):
#   entry = (rows, lat1, impl_key, is_gpu, overflow_ms, power1,
#            lats, pows, point_index, kernel_name, fill)
# where lats/pows are 1-indexed per-batch ladders (GPU, lazily filled
# through ``fill`` — 0.0 marks an unfilled cell, latencies are always
# positive) or None (FPGA), and each device row is the mutable list
#   row = [device, open_batches, pending_rows, rank, reconfig_ms]
# with open-batch cells [launch_ms, end_ms, size, row_ref, noise].
# Rows are rank-sorted, so a pool scan needs only a strict ``<`` —
# the first minimum seen is the lowest-ranked one.


class _BufferTracer:
    """Tracer stand-in the engine swaps onto the node (and its
    scheduler) for the lifetime of a traced fast-path run.

    Control-plane emissions — replans, scheduler placements, monitor
    snapshots — land in the engine's trace buffer as passthrough
    records, interleaved with the compact per-request tuples the
    dispatch program appends, so :meth:`EventHeapEngine._flush_trace`
    can replay the whole stream to the real tracer in legacy emission
    order.  Timestamps resolve at emit time (``now_ms`` is mutable and
    advanced by ``maybe_replan`` exactly as on a real tracer)."""

    __slots__ = ("_append", "now_ms")

    enabled = True

    def __init__(self, buffer: list) -> None:
        self._append = buffer.append
        self.now_ms = 0.0

    def emit(
        self,
        kind: str,
        name: str = "",
        t_ms: Optional[float] = None,
        dur_ms: Optional[float] = None,
        **args: Any,
    ) -> None:
        self._append(
            (0, kind, name, self.now_ms if t_ms is None else t_ms, dur_ms, args)
        )


def _make_fill(node, platform, name, point, lats, pows):
    """Lazy GPU-ladder cell fill: evaluates the hardware model for one
    batch size on first use (exactly the sizes the legacy loop's
    ``_latency_fn`` cache would see) and memoizes it in the ladder."""

    def fill(size: int) -> float:
        lat, power = node._latency_of_platform(platform, name, point, size)
        lats[size] = lat
        pows[size] = power
        return lat

    return fill


class EventHeapEngine:
    """Event-heap replay of one :class:`LeafNode`'s request stream.

    ``run`` drives a whole sorted stream; ``process`` admits a single
    arrival (the cluster driver's per-route entry point).  Call
    :meth:`finalize` once after the last arrival to flush the inlined
    monitor state and the noise-buffer cursor back onto the node.

    Runs the fast path cannot replicate exactly — an attached fault
    injector (extra RNG consumers, heartbeats) — are delegated to
    ``node.submit`` per arrival (``delegated`` is True); everything the
    engine promises about bit-identity then holds trivially.  An
    enabled tracer runs *natively*: emissions buffer as compact tuples
    and flush per chunk in legacy order, byte-identical to the
    delegated stream (golden-tested) at a fraction of its cost.
    """

    def __init__(self, node: LeafNode, validate: bool = False) -> None:
        self._node = node
        self._validate = validate
        self.delegated = node._injector is not None
        self._traced = node.tracer.enabled and not self.delegated
        self.heap = EventHeap()
        #: Validation-mode accounting (see :meth:`run`).
        self.dispatched = 0
        self.completions_drained = 0
        self._last_pop_ms = -float("inf")

        mon = node.monitor
        self._corr = mon._correction
        self._alpha = mon.ewma_alpha
        self._corr_lo, self._corr_hi = mon.correction_bounds
        self._window = mon.window
        self._arr: List[float] = []
        self._lats: List[float] = []

        #: Buffered noise draws, adopted from the node (same stream).
        self._nbuf: List[float] = node._noise_buf.tolist()
        self._npos = node._noise_pos

        self._req_arr: List[float] = []
        self._req_comp: List[float] = []
        self._req_pred: List[float] = []
        self._max_comp = 0.0

        #: Integer tie-break ranks, ordered by device_id — isomorphic to
        #: the legacy string comparisons (ids are unique).
        self._ranks = {
            d.device_id: i
            for i, d in enumerate(
                sorted(node.devices, key=lambda d: d.device_id)
            )
        }
        self._rows: Dict[int, list] = {}
        self._compiled: Dict[int, tuple] = {}
        self._steps: list = []
        #: Compiled dispatch program for the current plan (codegen path).
        self._fn: Any = None
        self._codegen_src = ""
        self._plan_ok = False
        self._win = 0.0
        self._makespan = 0.0
        self._last_replan = node._last_replan_ms

        order = node._topo_order
        self._kindex = {name: i for i, name in enumerate(order)}
        self._ends_t = [0.0] * len(order)
        self._ends_dev: List[object] = [None] * len(order)
        sinks = tuple(self._kindex[s] for s in node._sinks)
        self._sinks = sinks
        self._single_sink = sinks[0] if len(sinks) == 1 else -1
        self._finalized = False

        #: Native-tracing state: the trace buffer, the real tracer, and
        #: the request-sequence cursor adopted from the node.  The
        #: buffer tracer stays swapped in until :meth:`finalize`.
        self._tb: list = []
        self._rq = node._req_seq
        self._last_t: Optional[float] = None
        self._sched_swapped = False
        if self._traced:
            self._tracer = node.tracer
            buffer_tracer = _BufferTracer(self._tb)
            node.tracer = buffer_tracer
            sched = node._scheduler
            if hasattr(sched, "tracer"):
                self._sched_swapped = True
                self._sched_tracer = sched.tracer
                sched.tracer = buffer_tracer

    # -- driving --------------------------------------------------------------

    def run(
        self,
        ordered: Sequence[float],
        priorities: Optional[Sequence[float]] = None,
    ) -> List[RequestRecord]:
        """Replay a sorted arrival stream and return its request records.

        Fast-path runs push the stream as chunked ARRIVAL events (and,
        in validation mode, one KERNEL_COMPLETE per dispatch, checked
        for monotone pop order and conservation against the dispatch
        count).  Delegated runs push one ARRIVAL per request and submit
        each through the node.
        """
        heap = self.heap
        if self.delegated:
            node = self._node
            if priorities is None:
                for t in ordered:
                    heap.push(t, EventKind.ARRIVAL, 1.0)
            else:
                for t, p in zip(ordered, priorities):
                    heap.push(t, EventKind.ARRIVAL, p)
            records = []
            while heap:
                ev = heap.pop()
                records.append(node.submit(ev.t_ms, priority=ev.payload))
            self.finalize()
            return records

        n = len(ordered)
        for i in range(0, n, ARRIVAL_CHUNK):
            chunk = ordered[i : i + ARRIVAL_CHUNK]
            prios = (
                None
                if priorities is None
                else priorities[i : i + ARRIVAL_CHUNK]
            )
            heap.push(ordered[i], EventKind.ARRIVAL, (chunk, prios))
        while heap:
            ev = heap.pop()
            if ev.t_ms < self._last_pop_ms:
                raise AssertionError(
                    f"event heap popped backwards: {ev.t_ms} after "
                    f"{self._last_pop_ms}"
                )
            self._last_pop_ms = ev.t_ms
            if ev.kind is EventKind.ARRIVAL:
                chunk, prios = ev.payload
                self._process_chunk(chunk, prios)
            elif ev.kind is EventKind.KERNEL_COMPLETE:
                self.completions_drained += 1
        self.finalize()
        return self.records()

    def process(self, t_ms: float, priority: float = 1.0) -> RequestRecord:
        """Admit one arrival (the cluster driver's entry point)."""
        if self.delegated:
            return self._node.submit(t_ms, priority=priority)
        self._process_chunk((t_ms,), (priority,))
        return RequestRecord(
            self._req_arr[-1], self._req_comp[-1], self._req_pred[-1]
        )

    def records(self) -> List[RequestRecord]:
        """Materialize the per-request records (fast-path runs)."""
        return [
            RequestRecord(a, c, p)
            for a, c, p in zip(self._req_arr, self._req_comp, self._req_pred)
        ]

    @property
    def max_completion_ms(self) -> float:
        return self._max_comp

    def finalize(self) -> None:
        """Flush inlined state back onto the node: the monitor's
        sliding windows (deque ``maxlen`` truncates identically to
        per-request appends), the EWMA correction, and the noise-buffer
        cursor — after this the node is indistinguishable from one that
        ran the legacy loop.  Traced runs additionally flush the trace
        buffer, restore the real tracer onto the node/scheduler, and
        write the request-sequence cursor back."""
        if self._finalized or self.delegated:
            self._finalized = True
            return
        node = self._node
        mon = node.monitor
        mon._arrival_times.extend(self._arr)
        mon._latencies.extend(self._lats)
        mon._correction = self._corr
        self._arr = []
        self._lats = []
        node._noise_buf = np.asarray(self._nbuf)
        node._noise_pos = self._npos
        if self._traced:
            self._flush_trace()
            node.tracer = self._tracer
            if self._sched_swapped:
                node._scheduler.tracer = self._sched_tracer
            node._req_seq = self._rq
            node._current_req = self._rq
        self._finalized = True

    def _flush_trace(self) -> None:
        """Replay the trace buffer to the real tracer.

        The buffered tuples use :class:`SpanTracer`'s raw-record format
        (tags 1-3 for the per-request lifecycle, tag 0 for control-plane
        emissions already resolved by the buffer tracer), so a plain
        :class:`SpanTracer` takes a single ``extend`` onto its staging
        list — the events materialize lazily at read time into exactly
        what ``LeafNode.submit`` would have emitted: same names, rounded
        fields and emission order.  Tracer subclasses fall back to
        ``emit``.
        """
        tr = self._tracer
        if self._last_t is not None:
            tr.now_ms = self._last_t
        tb = self._tb
        if not tb:
            return
        if type(tr) is SpanTracer:
            tr._raw.extend(tb)
        else:
            for rec in tb:
                tag = rec[0]
                if tag == 2:
                    _, ready, rq, kn, dev, pt, start, end = rec
                    tr.emit(
                        "kernel.dispatch",
                        name=kn,
                        t_ms=ready,
                        req=rq,
                        kernel=kn,
                        device=dev,
                        point=pt,
                        start_ms=round(start, 6),
                        end_ms=round(end, 6),
                    )
                elif tag == 1:
                    _, t, rq, p = rec
                    tr.emit(
                        "request.admit",
                        name=f"req-{rq}",
                        t_ms=t,
                        req=rq,
                        priority=round(p, 6),
                    )
                elif tag == 3:
                    _, comp, rq, lat = rec
                    tr.emit(
                        "request.complete",
                        name=f"req-{rq}",
                        t_ms=comp,
                        req=rq,
                        latency_ms=round(lat, 6),
                        retries=0,
                    )
                else:
                    _, kind, name, ts, dur, args = rec
                    tr.emit(kind, name=name, t_ms=ts, dur_ms=dur, **args)
        tb.clear()

    # -- plan compilation ------------------------------------------------------

    def _row(self, dev) -> list:
        row = self._rows.get(id(dev))
        if row is None:
            row = [
                dev,
                {},
                dev.adopt_row_store(),
                self._ranks[dev.device_id],
                dev.reconfig_ms,
            ]
            self._rows[id(dev)] = row
        return row

    def _compile(self, plan) -> list:
        """Compile the active plan into per-kernel dispatch steps.

        Same sources as ``LeafNode._compiled_table`` (live platform
        pools, the shared latency cache), extended with the full
        per-batch GPU ladder so joins never call back into the model,
        and with predecessor/transfer indices resolved to integers.
        """
        node = self._node
        live = node._live_by_platform()
        kindex = self._kindex
        steps = []
        for ki, name in enumerate(node._topo_order):
            per_platform = plan.get(name)
            entries = []
            if per_platform:
                for platform, point in per_platform.items():
                    devs = live.get(platform)
                    if not devs:
                        continue
                    lat1, power1 = node._latency_of_platform(
                        platform, name, point, 1
                    )
                    is_gpu = devs[0].device_type == DeviceType.GPU
                    fill = None
                    if is_gpu:
                        # Lazy ladder: only batch-1 up front, higher
                        # sizes filled on first join — the same model
                        # evaluations, in the same order, as the legacy
                        # loop's per-size ``_latency_fn`` cache.
                        lats = [0.0] * (MAX_GPU_BATCH + 1)
                        pows = [0.0] * (MAX_GPU_BATCH + 1)
                        lats[1], pows[1] = lat1, power1
                        fill = _make_fill(
                            node, platform, name, point, lats, pows
                        )
                    else:
                        lats = pows = None
                    rows = sorted(
                        (self._row(d) for d in devs),
                        key=lambda r: r[3],
                    )
                    entries.append(
                        (
                            rows,
                            lat1,
                            (name, point.index),
                            is_gpu,
                            node._OVERFLOW_FACTOR * point.latency_ms,
                            power1,
                            lats,
                            pows,
                            point.index,
                            name,
                            fill,
                        )
                    )
            if not entries:
                raise RuntimeError(f"kernel {name!r} has no planned platform")
            preds = tuple(
                (kindex[p], node._xfer_ms[(p, name)])
                for p in node._preds[name]
            )
            steps.append((ki, entries, preds))
        return steps

    def _sync_plan(self, t_ms: float) -> None:
        """Replan through the node (same signal path, same state
        mutations) and point the fast loop at the compiled table for
        whichever plan object is now active."""
        node = self._node
        node.maybe_replan(t_ms)
        plan = node._plan
        self._plan_ok = bool(plan)
        self._last_replan = node._last_replan_ms
        self._makespan = node._plan_makespan_ms
        if node._is_poly:
            self._win = node._win_loaded if node._was_loaded else 0.0
        else:
            self._win = node.system.batch_window_ms
        if not plan:
            return
        cached = self._compiled.get(id(plan))
        if cached is None or cached[0] is not plan:
            steps = self._compile(plan)
            fn = (
                None
                if self._validate
                else self._codegen(steps, self._traced)
            )
            cached = (plan, steps, fn)
            self._compiled[id(plan)] = cached
        self._steps = cached[1]
        self._fn = cached[2]

    # -- dispatch-program generation -------------------------------------------

    def _codegen(self, steps, traced: bool = False):
        """Specialize the compiled tables into one straight-line chunk
        runner for this plan.

        The generated function unrolls every kernel step: pool scans
        become rank-ordered straight-line comparisons (strict ``<`` —
        the rows are rank-sorted, so the first minimum is the
        tie-break winner), per-entry constants (batch-1 latencies,
        impl keys, PCIe transfer costs, overflow thresholds) are baked
        in as literals or bound objects, and device horizons / loaded
        bitstreams / DAG end times live in plain locals, synced back to
        the authoritative objects when the runner returns — at every
        replan boundary and chunk end, so external readers (the replan
        signal path, the cluster dispatcher) always observe fresh
        state.  Float expressions are copied verbatim from the generic
        interpreter, so the two stay bit-identical by construction.

        Returns a function
        ``run(chunk, i, t_limit, win, mk, corr, npos, nbuf, max_comp)``
        that admits ``chunk[i:]`` until a timestamp reaches ``t_limit``
        (the next replan boundary) and returns the updated cursor and
        carried state.

        With ``traced`` the runner takes three extra parameters —
        ``rq`` (the request-sequence cursor), ``sk`` (1 when the chunk
        driver already emitted the admit for the first request, i.e.
        the one that triggered a replan) and ``pr`` (the chunk-aligned
        priority sequence, or None) — appends compact admit / dispatch
        / complete tuples to the engine's trace buffer at the same
        program points ``LeafNode.submit`` emits, and returns ``rq``.
        The traced variant generates different source, so it lands in
        its own ``_CODE_CACHE`` entry.
        """
        node = self._node
        consts: list = []
        bound: List[str] = []

        def bind(value, base: str) -> str:
            name = f"{base}{len(consts)}"
            consts.append(value)
            bound.append(name)
            return name

        # One local slot per device the plan touches: h<d> horizon,
        # l<d> loaded bitstream (FPGA pools only).
        dev_slot: Dict[int, int] = {}
        dev_name: List[str] = []
        dev_fpga: List[bool] = []
        dev_row: List[list] = []
        ename: Dict[int, Dict[str, str]] = {}
        for _ki, entries, _preds in steps:
            for entry in entries:
                for row in entry[0]:
                    key = id(row[0])
                    if key not in dev_slot:
                        dev_slot[key] = len(dev_name)
                        dev_name.append(bind(row[0], "D"))
                        dev_fpga.append(not entry[3])
                        dev_row.append(row)
                    elif not entry[3]:
                        dev_fpga[dev_slot[key]] = True
                names = ename.setdefault(id(entry), {})
                if not names:
                    names["K"] = bind(entry[2], "K")
                    names["N"] = bind(entry[9], "N")
                    if entry[3]:
                        names["LT"] = bind(entry[6], "LT")
                        names["PW"] = bind(entry[7], "PW")
                        names["FL"] = bind(entry[10], "FL")
        ra_name = {
            id(row[0]): bind(row[2].append, "RA") for row in dev_row
        }
        bd_name = {id(row[0]): bind(row[1], "BD") for row in dev_row}

        ET = bind(self._ends_t, "ET")
        ED = bind(self._ends_dev, "ED")
        LATA = bind(self._lats.append, "LATA")
        RCA = bind(self._req_comp.append, "RCA")
        RPA = bind(self._req_pred.append, "RPA")
        LN = bind(node._rng.lognormal, "LN")
        TB = bind(self._tb.append, "TB") if traced else ""
        sigma = repr(NOISE_SIGMA)
        maxb = repr(int(MAX_GPU_BATCH))
        alpha = repr(self._alpha)
        clo = repr(self._corr_lo)
        chi = repr(self._corr_hi)

        out: List[str] = []
        emit = out.append

        def scan_code(
            pad: str, entry, row, f_var: str, br: str = "br"
        ) -> None:
            """Finish-time estimate for one device row (verbatim the
            generic interpreter's expressions)."""
            nm = ename[id(entry)]
            di = dev_slot[id(row[0])]
            h = f"h{di}"
            if entry[3]:
                bd = bd_name[id(row[0])]
                emit(f"{pad}b = {bd}.get({nm['K']})")
                emit(
                    f"{pad}if b is not None and b[0] >= {br} "
                    f"and b[2] < {maxb}:"
                )
                emit(f"{pad}    lv = {nm['LT']}[b[2] + 1]")
                emit(f"{pad}    if lv == 0.0:")
                emit(f"{pad}        lv = {nm['FL']}(b[2] + 1)")
                emit(f"{pad}    {f_var} = b[0] + lv")
                emit(f"{pad}else:")
                emit(
                    f"{pad}    {f_var} = ({h} if {h} > {br} else {br})"
                    f" + {entry[1]!r}"
                )
            else:
                li = f"l{di}"
                emit(f"{pad}s = {h} if {h} > {br} else {br}")
                emit(f"{pad}if {li} is not None and {li} != {nm['K']}:")
                emit(f"{pad}    s += {row[4]!r}")
                emit(f"{pad}{f_var} = s + {entry[1]!r}")

        def dispatch_code(pad: str, ki: int, entry, row, preds) -> None:
            """Reservation commit on the winning (entry, device)."""
            nm = ename[id(entry)]
            di = dev_slot[id(row[0])]
            dn = dev_name[di]
            h = f"h{di}"
            if not preds:
                emit(f"{pad}ready = t")
            else:
                j0, x0 = preds[0]
                emit(
                    f"{pad}p = e{j0} if d{j0} is {dn} "
                    f"else e{j0} + {x0!r}"
                )
                emit(f"{pad}ready = p if p > t else t")
                for j, x in preds[1:]:
                    emit(
                        f"{pad}p = e{j} if d{j} is {dn} "
                        f"else e{j} + {x!r}"
                    )
                    emit(f"{pad}if p > ready: ready = p")
            dev_id = row[0].device_id
            if entry[3]:
                bd = bd_name[id(row[0])]
                emit(f"{pad}b = {bd}.get({nm['K']})")
                emit(
                    f"{pad}if b is not None and b[0] >= ready "
                    f"and b[2] < {maxb}:"
                )
                emit(f"{pad}    oe = b[1]")
                emit(f"{pad}    sz = b[2] + 1")
                emit(f"{pad}    b[2] = sz")
                emit(f"{pad}    lv = {nm['LT']}[sz]")
                emit(f"{pad}    if lv == 0.0:")
                emit(f"{pad}        lv = {nm['FL']}(sz)")
                emit(f"{pad}    end = b[0] + lv * b[4]")
                emit(f"{pad}    b[1] = end")
                emit(f"{pad}    rec = b[3]")
                emit(f"{pad}    rec[3] = end")
                emit(f"{pad}    rec[4] = {nm['PW']}[sz]")
                emit(f"{pad}    rec[5] = sz")
                emit(f"{pad}    hh = {h} + (end - oe)")
                emit(f"{pad}    {h} = hh if hh > end else end")
                if traced:
                    emit(
                        f"{pad}    {TB}((2, ready, rq, {entry[9]!r}, "
                        f"{dev_id!r}, {entry[8]!r}, b[0], end))"
                    )
                emit(f"{pad}else:")
                emit(f"{pad}    rw = ready + win")
                emit(f"{pad}    la = {h} if {h} > rw else rw")
                emit(f"{pad}    end = la + {entry[1]!r} * noise")
                emit(
                    f"{pad}    rec = [{nm['N']}, {entry[8]!r}, la, end, "
                    f"{entry[5]!r}, 1]"
                )
                emit(f"{pad}    {ra_name[id(row[0])]}(rec)")
                emit(f"{pad}    {h} = end")
                emit(f"{pad}    {bd}[{nm['K']}] = [la, end, 1, rec, noise]")
                if traced:
                    emit(
                        f"{pad}    {TB}((2, ready, rq, {entry[9]!r}, "
                        f"{dev_id!r}, {entry[8]!r}, la, end))"
                    )
            else:
                li = f"l{di}"
                emit(f"{pad}st = {h} if {h} > ready else ready")
                emit(f"{pad}if {li} is not None and {li} != {nm['K']}:")
                emit(f"{pad}    st += {row[4]!r}")
                emit(f"{pad}{li} = {nm['K']}")
                emit(f"{pad}end = st + {entry[1]!r} * noise")
                emit(
                    f"{pad}{ra_name[id(row[0])]}(({nm['N']}, {entry[8]!r}, "
                    f"st, end, {entry[5]!r}, 1))"
                )
                emit(f"{pad}{h} = end")
                if traced:
                    emit(
                        f"{pad}{TB}((2, ready, rq, {entry[9]!r}, "
                        f"{dev_id!r}, {entry[8]!r}, st, end))"
                    )
            emit(f"{pad}e{ki} = end")
            emit(f"{pad}d{ki} = {dn}")

        params = ", ".join(
            f"{name}=_C[{idx}]" for idx, name in enumerate(bound)
        )
        emit("def _make(_C):")
        extra = " rq, sk, pr," if traced else ""
        emit(
            "    def _run(chunk, i, t_limit, win, mk, corr, npos, nbuf,"
            f" max_comp,{extra} {params}):"
        )
        emit("        n = len(chunk)")
        emit("        nlen = len(nbuf)")
        for ki in range(len(steps)):
            emit(f"        e{ki} = {ET}[{ki}]")
            emit(f"        d{ki} = {ED}[{ki}]")
        for di, dn in enumerate(dev_name):
            emit(f"        h{di} = {dn}.horizon_ms")
            if dev_fpga[di]:
                emit(f"        l{di} = {dn}.loaded_impl")
        emit("        while i < n:")
        emit("            t = chunk[i]")
        emit("            if t >= t_limit:")
        emit("                break")
        emit("            i += 1")
        if traced:
            # The admit event precedes everything the request does
            # (LeafNode.submit emits it first); the replan-triggering
            # request's admit was already emitted by the chunk driver.
            emit("            if sk:")
            emit("                sk = 0")
            emit("            else:")
            emit("                rq += 1")
            emit(
                f"                {TB}((1, t, rq, "
                "1.0 if pr is None else pr[i - 1]))"
            )

        pad = "            "
        for ki, entries, preds in steps:
            if preds:
                j0 = preds[0][0]
                emit(f"{pad}br = e{j0} if e{j0} > t else t")
                for j, _x in preds[1:]:
                    emit(f"{pad}if e{j} > br: br = e{j}")
            else:
                emit(f"{pad}br = t")

            primary = entries[0]
            branches = [
                (entry, row) for entry in entries for row in entry[0]
            ]
            single = len(branches) == 1
            has_alts = len(entries) > 1

            if not single:
                first = True
                bw = 0
                for row in primary[0]:
                    if first:
                        scan_code(pad, primary, row, "bf")
                        if has_alts:
                            emit(f"{pad}brk = {row[3]}")
                        emit(f"{pad}bw = 0")
                        first = False
                    else:
                        scan_code(pad, primary, row, "f")
                        emit(f"{pad}if f < bf:")
                        emit(f"{pad}    bf = f")
                        if has_alts:
                            emit(f"{pad}    brk = {row[3]}")
                        emit(f"{pad}    bw = {bw}")
                    bw += 1
                if has_alts:
                    emit(f"{pad}if bf - br > {primary[4]!r}:")
                    apad = pad + "    "
                    for alt in entries[1:]:
                        for row in alt[0]:
                            scan_code(apad, alt, row, "f")
                            emit(
                                f"{apad}if f < bf or "
                                f"(f == bf and {row[3]} < brk):"
                            )
                            emit(f"{apad}    bf = f")
                            emit(f"{apad}    brk = {row[3]}")
                            emit(f"{apad}    bw = {bw}")
                            bw += 1

            emit(f"{pad}if npos >= nlen:")
            emit(f"{pad}    nbuf = {LN}(0.0, {sigma}, 2048).tolist()")
            emit(f"{pad}    nlen = 2048")
            emit(f"{pad}    npos = 0")
            emit(f"{pad}noise = nbuf[npos]")
            emit(f"{pad}npos += 1")

            if single:
                dispatch_code(pad, ki, branches[0][0], branches[0][1], preds)
            else:
                for bw, (entry, row) in enumerate(branches):
                    if bw == 0:
                        emit(f"{pad}if bw == 0:")
                    else:
                        emit(f"{pad}elif bw == {bw}:")
                    dispatch_code(pad + "    ", ki, entry, row, preds)

        sinks = self._sinks
        emit(f"{pad}comp = e{sinks[0]}")
        for s in sinks[1:]:
            emit(f"{pad}if e{s} > comp: comp = e{s}")
        emit(f"{pad}if comp > max_comp:")
        emit(f"{pad}    max_comp = comp")
        emit(f"{pad}lat = comp - t")
        if traced:
            emit(f"{pad}{TB}((3, comp, rq, lat))")
        emit(f"{pad}{LATA}(lat)")
        emit(f"{pad}{RCA}(comp)")
        emit(f"{pad}{RPA}(mk)")
        emit(f"{pad}if mk > 0.0:")
        emit(f"{pad}    r = lat / mk")
        emit(f"{pad}    if r < {clo}:")
        emit(f"{pad}        r = {clo}")
        emit(f"{pad}    elif r > {chi}:")
        emit(f"{pad}        r = {chi}")
        emit(f"{pad}    corr += {alpha} * (r - corr)")

        for di, dn in enumerate(dev_name):
            emit(f"        {dn}.horizon_ms = h{di}")
            if dev_fpga[di]:
                emit(f"        {dn}.loaded_impl = l{di}")
        for ki in range(len(steps)):
            emit(f"        {ET}[{ki}] = e{ki}")
            emit(f"        {ED}[{ki}] = d{ki}")
        if traced:
            emit("        return i, corr, npos, nbuf, max_comp, rq")
        else:
            emit("        return i, corr, npos, nbuf, max_comp")
        emit("    return _run")

        src = "\n".join(out) + "\n"
        self._codegen_src = src
        # Bytecode compilation dominates generation cost; the source is
        # deterministic for a given (plan, node config), so the code
        # object is shared process-wide (fresh engines re-bind their
        # own constants through ``_make``).
        code = _CODE_CACHE.get(src)
        if code is None:
            code = compile(src, "<dispatch-program>", "exec")
            _CODE_CACHE[src] = code
        namespace: Dict[str, object] = {"len": len}
        exec(code, namespace)
        return namespace["_make"](consts)

    # -- the fast path ---------------------------------------------------------

    def _process_chunk(
        self,
        chunk: Sequence[float],
        prios: Optional[Sequence[float]] = None,
    ) -> None:
        """Admit a chunk of arrivals through the compiled dispatch
        program (or the generic interpreter in validation mode).

        Both paths are float-expression-identical to
        ``LeafNode._execute_kernel_fast`` per kernel, with the
        monitor's bookkeeping inlined (EWMA correction folded
        sequentially; queue depth nets to zero per request; the sliding
        windows are rebuilt at finalize).  ``prios`` only matters for
        traced runs (admit events carry the priority); the simulated
        floats never depend on it outside delegated chaos runs.
        """
        if self._validate:
            self._process_chunk_generic(chunk, prios)
            return
        if self._traced:
            self._process_chunk_traced(chunk, prios)
            return
        node = self._node
        interval = node.replan_interval_ms
        self._arr.extend(chunk)
        self._req_arr.extend(chunk)
        i = 0
        n = len(chunk)
        while i < n:
            t = chunk[i]
            if not self._plan_ok or t - self._last_replan >= interval:
                self._sync_plan(t)
                if not self._plan_ok:
                    raise RuntimeError("node has no plan (fast path)")
            (
                i,
                self._corr,
                self._npos,
                self._nbuf,
                self._max_comp,
            ) = self._fn(
                chunk,
                i,
                self._last_replan + interval,
                self._win,
                self._makespan,
                self._corr,
                self._npos,
                self._nbuf,
                self._max_comp,
            )
        w = self._window
        if len(self._lats) > 4 * w:
            del self._lats[: len(self._lats) - w]
        if len(self._arr) > 4 * w:
            del self._arr[: len(self._arr) - w]

    def _flush_monitor(self) -> None:
        """Sync the inlined monitor state onto the node before a traced
        replan: ``monitor.snapshot`` inside ``maybe_replan`` must see
        exactly the arrivals/latencies/correction a legacy run would —
        every prior request completed, the triggering one not yet
        recorded.  ``clear()`` (never rebinding) keeps the compiled
        program's bound ``append`` methods valid."""
        mon = self._node.monitor
        mon._arrival_times.extend(self._arr)
        mon._latencies.extend(self._lats)
        mon._correction = self._corr
        self._arr.clear()
        self._lats.clear()

    def _process_chunk_traced(
        self,
        chunk: Sequence[float],
        prios: Optional[Sequence[float]] = None,
    ) -> None:
        """Traced twin of the fast chunk loop.

        Differences from the untraced body, each forced by legacy
        emission order: the admit of a replan-triggering request is
        emitted *before* the replan's own buffered emissions (``sk=1``
        tells the compiled runner to skip it); the monitor buffers
        flush onto the node right before ``_sync_plan`` so the replan
        snapshot matches; and ``_arr`` extends per processed segment —
        never up front — so a snapshot cannot see in-flight or future
        arrivals.  The trace buffer flushes at chunk end, keeping
        cluster-layer emissions (``cluster.route`` lands directly on
        the real tracer between ``process`` calls) correctly
        interleaved.
        """
        node = self._node
        interval = node.replan_interval_ms
        self._req_arr.extend(chunk)
        tb_append = self._tb.append
        i = 0
        n = len(chunk)
        while i < n:
            t = chunk[i]
            sk = 0
            if not self._plan_ok or t - self._last_replan >= interval:
                self._rq += 1
                tb_append(
                    (1, t, self._rq, 1.0 if prios is None else prios[i])
                )
                sk = 1
                self._flush_monitor()
                self._sync_plan(t)
                if not self._plan_ok:
                    raise RuntimeError("node has no plan (fast path)")
            prev = i
            (
                i,
                self._corr,
                self._npos,
                self._nbuf,
                self._max_comp,
                self._rq,
            ) = self._fn(
                chunk,
                i,
                self._last_replan + interval,
                self._win,
                self._makespan,
                self._corr,
                self._npos,
                self._nbuf,
                self._max_comp,
                self._rq,
                sk,
                prios,
            )
            self._arr.extend(chunk[prev:i])
        w = self._window
        if len(self._lats) > 4 * w:
            del self._lats[: len(self._lats) - w]
        if len(self._arr) > 4 * w:
            del self._arr[: len(self._arr) - w]
        if n:
            self._last_t = chunk[n - 1]
        self._flush_trace()

    def _process_chunk_generic(
        self,
        chunk: Sequence[float],
        prios: Optional[Sequence[float]] = None,
    ) -> None:
        """Interpreter twin of the compiled dispatch program — same
        float expressions over the same tables, one table lookup at a
        time.  Validation mode runs it so every dispatch can push its
        KERNEL_COMPLETE event through the heap.  Traced runs buffer
        the same admit/dispatch/complete tuples as the compiled
        runner."""
        node = self._node
        interval = node.replan_interval_ms
        traced = self._traced
        tb_append = self._tb.append
        rq = self._rq
        last = self._last_replan
        plan_ok = self._plan_ok
        steps = self._steps
        win = self._win
        makespan = self._makespan
        single_sink = self._single_sink
        sinks = self._sinks
        ends_t = self._ends_t
        ends_dev = self._ends_dev
        nbuf = self._nbuf
        npos = self._npos
        nlen = len(nbuf)
        lognormal = node._rng.lognormal
        corr = self._corr
        alpha = self._alpha
        lo = self._corr_lo
        hi = self._corr_hi
        arr_append = self._arr.append
        lat_append = self._lats.append
        req_arr = self._req_arr.append
        req_comp = self._req_comp.append
        req_pred = self._req_pred.append
        max_comp = self._max_comp
        validate = self._validate
        inf = float("inf")

        for idx, t in enumerate(chunk):
            if traced:
                rq += 1
                tb_append(
                    (1, t, rq, 1.0 if prios is None else prios[idx])
                )
            if not plan_ok or t - last >= interval:
                self._npos = npos
                self._nbuf = nbuf
                if traced:
                    self._corr = corr
                    self._flush_monitor()
                self._sync_plan(t)
                last = self._last_replan
                plan_ok = self._plan_ok
                steps = self._steps
                win = self._win
                makespan = self._makespan
                nbuf = self._nbuf
                npos = self._npos
                nlen = len(nbuf)
                if not plan_ok:
                    raise RuntimeError("node has no plan (fast path)")

            for ki, entries, preds in steps:
                if preds:
                    br = t
                    for j, _x in preds:
                        e = ends_t[j]
                        if e > br:
                            br = e
                else:
                    br = t

                entry = entries[0]
                rows = entry[0]
                lat1 = entry[1]
                key = entry[2]
                is_gpu = entry[3]
                lats = entry[6]
                best_fin = inf
                best_rank = 1 << 30
                best_row = rows[0]
                if is_gpu:
                    for row in rows:
                        b = row[1].get(key)
                        if (
                            b is not None
                            and b[0] >= br
                            and b[2] < MAX_GPU_BATCH
                        ):
                            lv = lats[b[2] + 1]
                            if lv == 0.0:
                                lv = entry[10](b[2] + 1)
                            fin = b[0] + lv
                        else:
                            h = row[0].horizon_ms
                            fin = (h if h > br else br) + lat1
                        if fin < best_fin or (
                            fin == best_fin and row[3] < best_rank
                        ):
                            best_fin = fin
                            best_rank = row[3]
                            best_row = row
                else:
                    for row in rows:
                        h = row[0].horizon_ms
                        s = h if h > br else br
                        li = row[0].loaded_impl
                        if li is not None and li != key:
                            s += row[4]
                        fin = s + lat1
                        if fin < best_fin or (
                            fin == best_fin and row[3] < best_rank
                        ):
                            best_fin = fin
                            best_rank = row[3]
                            best_row = row

                if len(entries) > 1 and best_fin - br > entry[4]:
                    for alt in entries[1:]:
                        a_lat1 = alt[1]
                        a_key = alt[2]
                        a_lats = alt[6]
                        if alt[3]:
                            for row in alt[0]:
                                b = row[1].get(a_key)
                                if (
                                    b is not None
                                    and b[0] >= br
                                    and b[2] < MAX_GPU_BATCH
                                ):
                                    lv = a_lats[b[2] + 1]
                                    if lv == 0.0:
                                        lv = alt[10](b[2] + 1)
                                    fin = b[0] + lv
                                else:
                                    h = row[0].horizon_ms
                                    fin = (h if h > br else br) + a_lat1
                                if fin < best_fin or (
                                    fin == best_fin and row[3] < best_rank
                                ):
                                    best_fin = fin
                                    best_rank = row[3]
                                    best_row = row
                                    entry = alt
                        else:
                            for row in alt[0]:
                                h = row[0].horizon_ms
                                s = h if h > br else br
                                li = row[0].loaded_impl
                                if li is not None and li != a_key:
                                    s += row[4]
                                fin = s + a_lat1
                                if fin < best_fin or (
                                    fin == best_fin and row[3] < best_rank
                                ):
                                    best_fin = fin
                                    best_rank = row[3]
                                    best_row = row
                                    entry = alt
                    lat1 = entry[1]
                    key = entry[2]
                    is_gpu = entry[3]
                    lats = entry[6]

                dev = best_row[0]
                if preds:
                    ready = t
                    for j, x in preds:
                        e = ends_t[j]
                        if ends_dev[j] is not dev:
                            e = e + x
                        if e > ready:
                            ready = e
                else:
                    ready = t

                if npos >= nlen:
                    nbuf = lognormal(0.0, NOISE_SIGMA, 2048).tolist()
                    nlen = 2048
                    npos = 0
                noise = nbuf[npos]
                npos += 1

                if is_gpu:
                    batches = best_row[1]
                    b = batches.get(key)
                    if (
                        b is not None
                        and b[0] >= ready
                        and b[2] < MAX_GPU_BATCH
                    ):
                        old_end = b[1]
                        size = b[2] + 1
                        b[2] = size
                        lv = lats[size]
                        if lv == 0.0:
                            lv = entry[10](size)
                        end = b[0] + lv * b[4]
                        b[1] = end
                        rec = b[3]
                        rec[3] = end
                        rec[4] = entry[7][size]
                        rec[5] = size
                        h = dev.horizon_ms + (end - old_end)
                        dev.horizon_ms = h if h > end else end
                        if traced:
                            tb_append(
                                (2, ready, rq, entry[9], dev.device_id,
                                 entry[8], b[0], end)
                            )
                    else:
                        h = dev.horizon_ms
                        rw = ready + win
                        launch = h if h > rw else rw
                        end = launch + lat1 * noise
                        rec = [entry[9], entry[8], launch, end, entry[5], 1]
                        best_row[2].append(rec)
                        dev.horizon_ms = end
                        batches[key] = [launch, end, 1, rec, noise]
                        if traced:
                            tb_append(
                                (2, ready, rq, entry[9], dev.device_id,
                                 entry[8], launch, end)
                            )
                else:
                    h = dev.horizon_ms
                    start = h if h > ready else ready
                    li = dev.loaded_impl
                    if li is not None and li != key:
                        start += best_row[4]
                    dev.loaded_impl = key
                    end = start + lat1 * noise
                    best_row[2].append(
                        [entry[9], entry[8], start, end, entry[5], 1]
                    )
                    dev.horizon_ms = end
                    if traced:
                        tb_append(
                            (2, ready, rq, entry[9], dev.device_id,
                             entry[8], start, end)
                        )

                ends_t[ki] = end
                ends_dev[ki] = dev
                if validate:
                    self.dispatched += 1
                    self.heap.push(end, EventKind.KERNEL_COMPLETE, dev)

            if single_sink >= 0:
                comp = ends_t[single_sink]
            else:
                comp = max(ends_t[s] for s in sinks)
            if comp > max_comp:
                max_comp = comp
            lat = comp - t
            if traced:
                tb_append((3, comp, rq, lat))
            arr_append(t)
            lat_append(lat)
            req_arr(t)
            req_comp(comp)
            req_pred(makespan)
            if makespan > 0.0:
                ratio = lat / makespan
                if ratio < lo:
                    ratio = lo
                elif ratio > hi:
                    ratio = hi
                corr += alpha * (ratio - corr)

        self._corr = corr
        self._nbuf = nbuf
        self._npos = npos
        self._max_comp = max_comp
        w = self._window
        if len(self._lats) > 4 * w:
            del self._lats[: len(self._lats) - w]
        if len(self._arr) > 4 * w:
            del self._arr[: len(self._arr) - w]
        if traced:
            self._rq = rq
            if len(chunk):
                self._last_t = chunk[len(chunk) - 1]
            self._flush_trace()
