"""Evaluation metrics: tail latency, energy proportionality, QoS.

Implements Eq. 1 (energy proportionality) and the derived quantities
used by Figs. 1, 7-10: percentile tail latency, maximum throughput
under a QoS bound, and violation ratios.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "percentile_latency",
    "tail_latency_p99",
    "violation_ratio",
    "energy_proportionality",
    "ideal_power_curve",
    "max_throughput_under_qos",
    "availability",
    "mean_recovery_ms",
]


def percentile_latency(latencies_ms: Sequence[float], percentile: float) -> float:
    """Empirical percentile using the nearest-rank method (what tail-
    latency SLOs use in practice)."""
    if not len(latencies_ms):
        raise ValueError("no latencies to summarize")
    if not 0.0 < percentile <= 100.0:
        raise ValueError("percentile must be in (0, 100]")
    ordered = sorted(latencies_ms)
    rank = max(math.ceil(percentile / 100.0 * len(ordered)) - 1, 0)
    return ordered[rank]


def tail_latency_p99(latencies_ms: Sequence[float]) -> float:
    """The paper's 99th-percentile tail latency."""
    return percentile_latency(latencies_ms, 99.0)


def violation_ratio(latencies_ms: Sequence[float], bound_ms: float) -> float:
    """Fraction of requests exceeding the latency bound."""
    if not len(latencies_ms):
        raise ValueError("no latencies to summarize")
    if bound_ms <= 0:
        raise ValueError("bound must be positive")
    over = sum(1 for lat in latencies_ms if lat > bound_ms)
    return over / len(latencies_ms)


def ideal_power_curve(loads: Sequence[float], peak_power_w: float) -> np.ndarray:
    """The ideal energy-proportional curve: power linear in load, zero at
    idle (the red dotted line of Fig. 1b)."""
    loads = np.asarray(loads, dtype=float)
    if np.any(loads < 0) or np.any(loads > 1.0 + 1e-9):
        raise ValueError("loads must lie in [0, 1]")
    return loads * peak_power_w


def energy_proportionality(
    loads: Sequence[float], powers_w: Sequence[float]
) -> float:
    """Energy proportionality per Eq. 1.

    ``EP = 1 - (Area_actual - Area_ideal) / Area_ideal`` where the
    areas are under the measured and ideal power-vs-load curves.  The
    ideal curve is linear from zero idle power to the system's measured
    power at full load.  EP = 1 for a perfectly proportional system and
    decreases as idle power grows.
    """
    loads = np.asarray(loads, dtype=float)
    powers = np.asarray(powers_w, dtype=float)
    if loads.shape != powers.shape or loads.size < 2:
        raise ValueError("need matching load/power arrays with >= 2 points")
    order = np.argsort(loads)
    loads, powers = loads[order], powers[order]
    # Anchor the ideal proportional line at the curve's peak power (for
    # a monotone curve this is the full-load power; measured curves can
    # dip near saturation, and the ideal system is still "peak power at
    # peak throughput").
    peak = float(np.max(powers))
    if peak <= 0:
        raise ValueError("peak power must be positive")
    area_actual = float(np.trapezoid(powers, loads))
    area_ideal = float(np.trapezoid(ideal_power_curve(loads, peak), loads))
    if area_ideal <= 0:
        raise ValueError("degenerate load range")
    return 1.0 - (area_actual - area_ideal) / area_ideal


def availability(n_served: int, n_offered: int) -> float:
    """Fraction of offered requests the system actually served — the
    resilience subsystem's headline number (1.0 when nothing was shed
    or abandoned; ``nan`` when nothing was offered)."""
    if n_served < 0 or n_offered < 0:
        raise ValueError("counts must be non-negative")
    if n_served > n_offered:
        raise ValueError("cannot serve more requests than were offered")
    if n_offered == 0:
        return float("nan")
    return n_served / n_offered


def mean_recovery_ms(durations_ms: Sequence[float]) -> float:
    """Mean crash-to-failover recovery time; ``nan`` with no failures
    (a fault-free run has no recovery episodes, not a zero-length
    one).  Zero-duration episodes (detection and replan in the same
    tick) are legal and average to 0.0; negative or non-finite
    durations are rejected — a NaN-poisoned mean would propagate
    silently into availability dashboards."""
    if not len(durations_ms):
        return float("nan")
    if any(not math.isfinite(d) for d in durations_ms):
        raise ValueError("recovery durations must be finite")
    if any(d < 0 for d in durations_ms):
        raise ValueError("recovery durations must be non-negative")
    return sum(durations_ms) / len(durations_ms)


def max_throughput_under_qos(
    rps_levels: Sequence[float],
    p99_ms: Sequence[float],
    bound_ms: float,
) -> float:
    """Largest swept RPS whose p99 meets the bound (Fig. 8's metric).

    Returns 0.0 when even the lowest level violates the bound.
    """
    if len(rps_levels) != len(p99_ms) or not len(rps_levels):
        raise ValueError("need matching, non-empty sweep arrays")
    best = 0.0
    for rps, p99 in sorted(zip(rps_levels, p99_ms)):
        if p99 <= bound_ms:
            best = rps
    return best
