"""Leaf-node runtime: accelerator instances and the request dispatcher.

This module realizes scheduling decisions on concrete devices over
simulated time.  It captures the runtime behaviours the evaluation
hinges on:

* **GPU batching** — requests that queue behind an un-launched GPU
  batch of the same kernel implementation join it; batch latency comes
  from the analytical model at the grown batch size.  Static GPU
  systems additionally hold batches open for a fixed window (the
  batching latency Section VI-B attributes to Homo-GPU on IR); Poly
  relies on natural queue-driven batching only.
* **FPGA reconfiguration** — dispatch prefers an FPGA that already has
  the chosen implementation loaded; switching implementations costs
  the part's reconfiguration latency (Section VI-C's "reconfiguring
  FPGA with a low-power kernel").
* **Execution noise** — realized latencies deviate from the analytical
  prediction by a few percent (the paper reports <6% model error), so
  the monitor's feedback correction has something to correct.
* **Device health** — every instance carries a
  :class:`~repro.faults.policy.DeviceHealth` state; with a
  :class:`~repro.faults.injector.FaultInjector` attached, executions
  lost to crashes or soft errors are retried under a timeout + capped-
  backoff policy and failed over to surviving devices.  Without an
  injector the fault machinery is fully inert: the request path is the
  exact healthy-device code, bit-identical to a fault-free build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

import numpy as np

from ..apps.base import Application
from ..faults.events import FaultKind
from ..faults.policy import DeviceHealth
from ..hardware import DVFSPolicy, PCIeLink, model_for
from ..hardware.model_cache import evaluate_cached
from ..hardware.specs import DeviceType
from ..obs.tracer import NULL_TRACER
from ..optim.design_point import DesignPoint, KernelDesignSpace
from ..scheduler import (
    DeviceSlot,
    PolyScheduler,
    SchedulePlanCache,
    StaticScheduler,
    SystemMonitor,
)
from .cluster import SchedulingPolicy, SystemConfig

__all__ = [
    "ExecutionRecord",
    "AcceleratorInstance",
    "RequestRecord",
    "LeafNode",
]

#: Largest batch a GPU execution may accumulate (serving frameworks cap
#: batches to bound tail latency; DjiNN-style services use O(10)).
MAX_GPU_BATCH = 10
#: Log-normal sigma of the execution-time noise (paper: <6% model error).
NOISE_SIGMA = 0.04


@dataclass
class ExecutionRecord:
    """One realized device execution (possibly a batch)."""

    device_id: str
    kernel_name: str
    point_index: int
    start_ms: float
    end_ms: float
    power_w: float
    batch: int = 1


@dataclass
class _OpenBatch:
    """A GPU batch that has not launched yet and may accept joiners."""

    kernel_name: str
    point: DesignPoint
    launch_ms: float
    end_ms: float
    size: int
    record: ExecutionRecord
    noise: float


class AcceleratorInstance:
    """One physical accelerator with its reservation timeline."""

    def __init__(self, device_id: str, spec, latency_fn) -> None:
        self.device_id = device_id
        self.spec = spec
        self.device_type: DeviceType = spec.device_type
        self.dvfs = DVFSPolicy(spec)
        self.horizon_ms = 0.0
        self._records: List[ExecutionRecord] = []
        #: Columnar execution rows appended by the event-heap engine
        #: (``[kernel, point, start, end, power, batch]`` per realized
        #: execution), materialized into :class:`ExecutionRecord`s only
        #: when :attr:`records` is read — the engine's hot path never
        #: constructs dataclasses.
        self._pending_rows: Optional[List[list]] = None
        self._latency_fn = latency_fn
        self._open_batches: Dict[Tuple[str, int], _OpenBatch] = {}
        #: (kernel_name, point_index) currently configured on an FPGA.
        self.loaded_impl: Optional[Tuple[str, int]] = None
        self.reconfig_ms = getattr(spec, "reconfig_ms", 0.0)
        #: Health state driven by the fault-injection subsystem; a node
        #: without an injector never leaves HEALTHY.
        self.health = DeviceHealth.HEALTHY
        #: Latency multiplier while thermally degraded (1.0 = nominal).
        self.slowdown = 1.0
        self.failed_at_ms: Optional[float] = None
        #: True once the failover planner has quarantined this device.
        self.failure_detected = False

    # -- execution records ----------------------------------------------------

    @property
    def records(self) -> List[ExecutionRecord]:
        """Realized executions, materializing any engine rows first.

        The returned list is the live backing store (callers append to
        it on the legacy dispatch path).  Materialization keeps row
        order, so record-major consumers (the power timeline) see the
        same dispatch-ordered sequence either way.  Reading this while
        the event engine still holds an open GPU batch on a pending row
        would detach that batch's future join mutations — the engine
        only exposes rows between requests, and every consumer of
        ``records`` reads post-run.
        """
        rows = self._pending_rows
        if rows:
            did = self.device_id
            self._records.extend(
                ExecutionRecord(did, r[0], r[1], r[2], r[3], r[4], r[5])
                for r in rows
            )
            rows.clear()
        return self._records

    @records.setter
    def records(self, value: List[ExecutionRecord]) -> None:
        self._records = value
        if self._pending_rows:
            self._pending_rows.clear()

    def record_columns(self) -> Tuple[List[float], List[float], List[float]]:
        """Parallel ``(start, end, power)`` lists of every realized
        execution — the power-timeline reader, which never needs the
        dataclass view."""
        rows = self._pending_rows
        if rows and not self._records:
            return (
                [r[2] for r in rows],
                [r[3] for r in rows],
                [r[4] for r in rows],
            )
        recs = self.records
        return (
            [r.start_ms for r in recs],
            [r.end_ms for r in recs],
            [r.power_w for r in recs],
        )

    def adopt_row_store(self) -> List[list]:
        """The engine's append target for this device's executions."""
        if self._pending_rows is None:
            self._pending_rows = []
        return self._pending_rows

    # -- health ---------------------------------------------------------------

    @property
    def is_schedulable(self) -> bool:
        """False only for a failed device the planner has quarantined;
        an undetected crash still attracts dispatches (they time out)."""
        return not (self.health == DeviceHealth.FAILED and self.failure_detected)

    def mark_failed(self, now_ms: float) -> None:
        """Fail-stop crash: in-flight work dies with the device and it
        stops drawing active power."""
        self.health = DeviceHealth.FAILED
        self.failed_at_ms = now_ms
        self.failure_detected = False
        for rec in self.records:
            if rec.end_ms > now_ms:
                rec.end_ms = max(rec.start_ms, now_ms)
        self._open_batches.clear()
        self.horizon_ms = min(self.horizon_ms, now_ms)

    def mark_degraded(self, factor: float) -> None:
        """Thermal throttle: executions stretch by ``factor``."""
        if factor < 1.0:
            raise ValueError("slowdown factor must be >= 1")
        self.health = DeviceHealth.DEGRADED
        self.slowdown = factor

    def mark_recovered(self, now_ms: float) -> None:
        """Repair: back to nominal clocks; an FPGA returns with no
        bitstream loaded (reconfiguration is paid again)."""
        self.health = DeviceHealth.HEALTHY
        self.slowdown = 1.0
        self.failed_at_ms = None
        self.failure_detected = False
        self.horizon_ms = max(self.horizon_ms, now_ms)
        self.loaded_impl = None
        self._open_batches.clear()

    def abort_execution(
        self, kernel_name: str, point_index: int, end_ms: float, fault_ms: float
    ) -> None:
        """Cut short the just-reserved execution lost at ``fault_ms``:
        its record stops accruing power there and the device's timeline
        is wound back to what its surviving reservations need."""
        for rec in reversed(self.records):
            if (
                rec.kernel_name == kernel_name
                and rec.point_index == point_index
                and rec.end_ms == end_ms
            ):
                rec.end_ms = max(rec.start_ms, min(rec.end_ms, fault_ms))
                break
        key = (kernel_name, point_index)
        batch = self._open_batches.get(key)
        if batch is not None and batch.end_ms == end_ms:
            del self._open_batches[key]
        self.horizon_ms = max((r.end_ms for r in self.records), default=0.0)

    # -- dispatch -------------------------------------------------------------

    def effective_start(self, ready_ms: float, impl_key: Tuple[str, int]) -> float:
        """Earliest start for an implementation, counting reconfiguration."""
        start = max(self.horizon_ms, ready_ms)
        if (
            self.device_type == DeviceType.FPGA
            and self.loaded_impl is not None
            and self.loaded_impl != impl_key
        ):
            start += self.reconfig_ms
        return start

    def dispatch(
        self,
        kernel_name: str,
        point: DesignPoint,
        ready_ms: float,
        batch_window_ms: float,
        noise: float,
    ) -> Tuple[float, float]:
        """Reserve the execution; returns its (start, end) in ms."""
        if self.device_type == DeviceType.GPU:
            return self._dispatch_gpu(
                kernel_name, point, ready_ms, batch_window_ms, noise
            )
        return self._dispatch_fpga(kernel_name, point, ready_ms, noise)

    def _joinable(self, key: Tuple[str, int], ready_ms: float):
        """The open batch this execution could join, if any."""
        batch = self._open_batches.get(key)
        if (
            batch is not None
            and batch.launch_ms >= ready_ms
            and batch.size < MAX_GPU_BATCH
        ):
            return batch
        return None

    def _dispatch_gpu(
        self,
        kernel_name: str,
        point: DesignPoint,
        ready_ms: float,
        batch_window_ms: float,
        noise: float,
    ) -> Tuple[float, float]:
        key = (kernel_name, point.index)
        batch = self._joinable(key, ready_ms)
        if batch is not None:
            # Join: same implementation and the batch has not launched.
            # Growing the batch extends its end; any work already queued
            # behind it is pushed back by the same delta (approximation:
            # the already-recorded timestamps of that work are kept).
            old_end = batch.end_ms
            batch.size += 1
            latency, power = self._latency_fn(kernel_name, point, batch.size)
            batch.end_ms = batch.launch_ms + latency * batch.noise
            batch.record.end_ms = batch.end_ms
            batch.record.power_w = power
            batch.record.batch = batch.size
            self.horizon_ms = max(self.horizon_ms + (batch.end_ms - old_end),
                                  batch.end_ms)
            return batch.launch_ms, batch.end_ms

        launch = max(self.horizon_ms, ready_ms + batch_window_ms)
        latency, power = self._latency_fn(kernel_name, point, 1)
        end = launch + latency * noise
        record = ExecutionRecord(
            self.device_id, kernel_name, point.index, launch, end, power, 1
        )
        self.records.append(record)
        self.horizon_ms = end
        self._open_batches[key] = _OpenBatch(
            kernel_name, point, launch, end, 1, record, noise
        )
        return launch, end

    def _dispatch_fpga(
        self,
        kernel_name: str,
        point: DesignPoint,
        ready_ms: float,
        noise: float,
    ) -> Tuple[float, float]:
        impl_key = (kernel_name, point.index)
        start = self.effective_start(ready_ms, impl_key)
        self.loaded_impl = impl_key
        latency, power = self._latency_fn(kernel_name, point, 1)
        end = start + latency * noise
        self.records.append(
            ExecutionRecord(
                self.device_id, kernel_name, point.index, start, end, power, 1
            )
        )
        self.horizon_ms = end
        return start, end

    def estimate_finish(
        self, kernel_name: str, point: DesignPoint, ready_ms: float
    ) -> float:
        """Estimated completion if this execution were dispatched here —
        the quantity the per-request allocator minimizes."""
        impl_key = (kernel_name, point.index)
        if self.device_type == DeviceType.GPU:
            batch = self._joinable(impl_key, ready_ms)
            if batch is not None:
                latency, _ = self._latency_fn(kernel_name, point, batch.size + 1)
                return batch.launch_ms + latency
        latency, _ = self._latency_fn(kernel_name, point, 1)
        return self.effective_start(ready_ms, impl_key) + latency

    def backlog_ms(self, now_ms: float) -> float:
        """Queued work ahead of a new arrival."""
        return max(self.horizon_ms - now_ms, 0.0)

    def busy_ms_total(self) -> float:
        return sum(r.end_ms - r.start_ms for r in self.records)


@dataclass
class RequestRecord:
    """Per-request outcome."""

    arrival_ms: float
    completion_ms: float
    predicted_ms: float
    #: Lost executions retried on this request's behalf (chaos runs).
    retries: int = 0
    #: Shed at admission by graceful degradation (never executed).
    dropped: bool = False
    #: Exhausted its retry budget without completing.
    failed: bool = False

    @property
    def latency_ms(self) -> float:
        return self.completion_ms - self.arrival_ms

    @property
    def served(self) -> bool:
        """True when the request actually completed its kernel graph."""
        return not (self.dropped or self.failed)


class _NoEligibleDevice(RuntimeError):
    """No surviving device can run a kernel (internal to the allocator)."""


class _RequestAbandoned(RuntimeError):
    """A request exhausted its retry budget or outlived every device."""

    def __init__(self, kernel_name: str, when_ms: float) -> None:
        super().__init__(f"kernel {kernel_name!r} abandoned at {when_ms:.1f} ms")
        self.kernel_name = kernel_name
        self.when_ms = when_ms


class LeafNode:
    """A datacenter leaf node executing one application's requests.

    Holds the accelerator instances, the scheduling policy (Poly or
    static), the current kernel-to-implementation plan, and the system
    monitor driving the feedback loop.
    """

    def __init__(
        self,
        system: SystemConfig,
        app: Application,
        design_spaces: Mapping[Tuple[str, str], KernelDesignSpace],
        replan_interval_ms: float = 250.0,
        seed: int = 0,
        pcie: Optional[PCIeLink] = None,
        tracer=None,
        plan_cache: Optional[SchedulePlanCache] = None,
    ) -> None:
        self.system = system
        self.app = app
        self.design_spaces = design_spaces
        self.replan_interval_ms = replan_interval_ms
        self.pcie = pcie or PCIeLink()
        #: Observability hook; the inert default keeps the request path
        #: byte-identical to an uninstrumented build.
        self.tracer = NULL_TRACER if tracer is None else tracer
        #: Opt-in schedule-plan memoization.  ``None`` keeps the exact
        #: legacy request path; with a cache, fault-free requests take a
        #: compiled dispatch fast path (seeded runs stay bit-identical —
        #: golden-tested) and the node's model-latency lookups fill
        #: through the process-wide :func:`evaluate_cached` table.
        self._plan_cache = plan_cache
        if plan_cache is not None:
            plan_cache.bind_invalidation(self)
        self.monitor = SystemMonitor()
        self._rng = np.random.default_rng(seed)
        #: Buffered log-normal noise draws (fast path only).  numpy's
        #: ``Generator.lognormal(size=N)`` yields the bit-identical
        #: sequence to N scalar draws, so buffering cannot change a
        #: seeded run — it only amortizes the per-draw call overhead.
        self._noise_buf = np.empty(0)
        self._noise_pos = 0
        self._models = {spec.name: model_for(spec) for spec in system.platforms}
        self._kernels = {k.name: k for k in app.kernels}
        self._latency_cache: Dict[Tuple[str, str, int, int], Tuple[float, float]] = {}

        self.devices: List[AcceleratorInstance] = [
            AcceleratorInstance(device_id, spec, self._latency_of(spec))
            for device_id, spec in system.device_inventory()
        ]
        self._by_platform: Dict[str, List[AcceleratorInstance]] = {}
        for dev in self.devices:
            self._by_platform.setdefault(dev.spec.name, []).append(dev)

        if system.policy == SchedulingPolicy.POLY:
            self._scheduler = PolyScheduler(
                design_spaces,
                app.qos_ms,
                self.pcie,
                tracer=self.tracer,
                plan_cache=plan_cache,
            )
        else:
            self._scheduler = StaticScheduler(design_spaces, app.qos_ms, self.pcie)
        #: Per-kernel operating points: {kernel: {platform: point}}.
        self._plan: Dict[str, Dict[str, DesignPoint]] = {}
        self._plan_makespan_ms = 0.0
        self._last_replan_ms = -float("inf")
        self._was_loaded = False
        self._light_since = 0
        self._heavy_since = 0
        self._light_plan = None
        self._heavy_plan = None
        self._light_makespan = 0.0
        self._heavy_makespan = 0.0
        self._topo_order = app.graph.kernel_names  # already topological
        graph = app.graph
        #: Per-kernel predecessor tuples and the sink set, precomputed —
        #: the graph is immutable once the node is built.
        self._preds: Dict[str, Tuple[str, ...]] = {
            name: tuple(graph.predecessors(name)) for name in self._topo_order
        }
        self._sinks: Tuple[str, ...] = tuple(graph.sinks())
        #: PCIe device-to-device transfer per edge (pure function of the
        #: edge bytes — constant for the node's lifetime).
        self._xfer_ms: Dict[Tuple[str, str], float] = {
            (pred, name): self.pcie.device_to_device_ms(
                graph.edge_bytes(pred, name)
            )
            for name in self._topo_order
            for pred in self._preds[name]
        }
        #: Poly's loaded-mode GPU batching window (see :meth:`_gpu_window`).
        self._win_loaded = min(0.04 * app.qos_ms, 10.0)
        self._is_poly = system.policy == SchedulingPolicy.POLY
        #: Compiled per-kernel dispatch table (fast path), rebuilt when
        #: the active plan object changes.
        self._dispatch_table: Optional[Dict[str, list]] = None
        self._compiled_for: Optional[object] = None
        #: Fault-injection hooks; ``None`` keeps the request path on the
        #: exact healthy-device code (bit-identical to a fault-free run).
        self._injector = None
        self._planner = None
        self._req_seq = 0
        self._current_req = 0
        self._traced_mode: Optional[str] = None

    @property
    def plan_cache(self) -> Optional[SchedulePlanCache]:
        """The bound schedule-plan cache, if any (read by RT006)."""
        return self._plan_cache

    # -- fault hooks ----------------------------------------------------------

    def attach_injector(self, injector) -> None:
        """Wire a bound :class:`~repro.faults.injector.FaultInjector`."""
        if self._injector is not None:
            raise RuntimeError("node already has a fault injector")
        self._injector = injector
        self._planner = injector.planner

    def invalidate_plans(self) -> None:
        """Drop the precomputed operating plans; the next
        :meth:`maybe_replan` re-runs the latency/energy scheduling
        passes over the currently schedulable (surviving) device set.

        With a plan cache attached, the cached schedules for this
        application are dropped too — they were computed against the
        previous live-device view (this is the invalidation hook the
        fault/recovery path depends on; see
        :class:`~repro.scheduler.SchedulePlanCache`)."""
        self._light_plan = None
        self._heavy_plan = None
        self._plan = {}
        self._plan_makespan_ms = 0.0
        self._last_replan_ms = -float("inf")
        self._dispatch_table = None
        self._compiled_for = None
        if self._plan_cache is not None:
            self._plan_cache.invalidate(self.app.graph.structural_signature())

    def _live_by_platform(self) -> Dict[str, List[AcceleratorInstance]]:
        """Platform pools restricted to schedulable devices (platforms
        with no survivors disappear).  Without an injector this is the
        full inventory, untouched."""
        if self._injector is None:
            return self._by_platform
        out: Dict[str, List[AcceleratorInstance]] = {}
        for platform, devs in self._by_platform.items():
            live = [d for d in devs if d.is_schedulable]
            if live:
                out[platform] = live
        return out

    # -- planning -------------------------------------------------------------

    def _latency_of(self, spec):
        model = self._models[spec.name]

        def fn(kernel_name: str, point: DesignPoint, batch: int):
            key = (spec.name, kernel_name, point.index, batch)
            cached = self._latency_cache.get(key)
            if cached is None:
                if self._plan_cache is not None:
                    # Cache-enabled nodes fill misses through the
                    # process-wide model-eval table: identical floats
                    # (same model classes), but a fresh node on a warm
                    # process skips the model math entirely.
                    est = evaluate_cached(
                        self._kernels[kernel_name], spec, point.config, batch
                    )
                else:
                    est = model.estimate(
                        self._kernels[kernel_name], point.config, batch
                    )
                cached = (est.latency_ms, est.active_power_w)
                self._latency_cache[key] = cached
            return cached

        return fn

    def _device_slots(self, now_ms: float) -> List[DeviceSlot]:
        devices = (
            self.devices
            if self._injector is None
            else [d for d in self.devices if d.is_schedulable]
        )
        return [
            DeviceSlot(
                d.device_id, d.spec.name, d.device_type, d.backlog_ms(now_ms)
            )
            for d in devices
        ]

    def maybe_replan(self, now_ms: float) -> None:
        """Refresh the kernel plan once per interval (Section V: "at each
        time interval").

        Poly holds two precomputed operating plans and toggles between
        them on the queue-pressure signal (Section VI-B: "dynamically
        allocates ... requests to FPGAs when the load is light or shifts
        the workload to GPU when the load is much heavier"):

        * **light** — the two-step schedule on an idle node: Step 1
          latency placement, Step 2 energy swaps within the QoS slack;
          alternates carry each platform's most efficient point so the
          dispatcher can still spill.
        * **heavy** — a bottleneck-minimizing placement costing each
          kernel by its amortized per-request occupancy (batched on
          GPUs), with minimum-latency implementations everywhere.

        Static baselines compute their single hard-mapped plan once and
        never change it.
        """
        if now_ms - self._last_replan_ms < self.replan_interval_ms and self._plan:
            return
        self._last_replan_ms = now_ms
        tr = self.tracer
        if tr.enabled:
            tr.now_ms = now_ms
        if self._light_plan is None:
            self._light_plan, self._light_makespan = self._scheduled_plan()
            if self.system.policy == SchedulingPolicy.POLY:
                self._heavy_plan = self._throughput_plan()
                self._heavy_makespan = sum(
                    next(iter(p.values())).latency_ms
                    for p in self._heavy_plan.values()
                )
            else:
                self._heavy_plan = self._light_plan
                self._heavy_makespan = self._light_makespan
            if tr.enabled:
                tr.emit(
                    "plan.computed",
                    name="light",
                    t_ms=now_ms,
                    mode="light",
                    makespan_ms=round(self._light_makespan, 6),
                    kernels=len(self._light_plan),
                )
                tr.emit(
                    "plan.computed",
                    name="heavy",
                    t_ms=now_ms,
                    mode="heavy",
                    makespan_ms=round(self._heavy_makespan, 6),
                    kernels=len(self._heavy_plan),
                )
        if self._loaded_signal(now_ms):
            self._plan = self._heavy_plan
            self._plan_makespan_ms = self._heavy_makespan
            mode = "heavy"
        else:
            self._plan = self._light_plan
            self._plan_makespan_ms = self._light_makespan
            mode = "light"
        if tr.enabled:
            if mode != self._traced_mode:
                self._traced_mode = mode
                tr.emit(
                    "plan.mode",
                    name=mode,
                    t_ms=now_ms,
                    mode=mode,
                    makespan_ms=round(self._plan_makespan_ms, 6),
                )
            snap = self.monitor.snapshot(now_ms)
            tr.emit("monitor.snapshot", name="monitor", t_ms=now_ms, **snap)

    def _scheduled_plan(
        self,
    ) -> Tuple[Dict[str, Dict[str, DesignPoint]], float]:
        """Run the policy's scheduler on an idle node -> light-load plan."""
        slots = self._device_slots(now_ms=float("inf"))
        if not slots:  # total blackout: every device is quarantined
            return {}, 0.0
        for slot in slots:
            slot.available_at_ms = 0.0
        if isinstance(self._scheduler, PolyScheduler):
            schedule, _ = self._scheduler.schedule(self.app.graph, slots)
        else:
            schedule = self._scheduler.schedule(self.app.graph, slots)
        platform_of = {s.device_id: s.platform for s in slots}
        live = self._live_by_platform()
        plan: Dict[str, Dict[str, DesignPoint]] = {}
        for a in schedule:
            chosen_platform = platform_of[a.device_id]
            per_platform = {chosen_platform: a.point}
            if self.system.policy == SchedulingPolicy.POLY:
                for platform in live:
                    if platform == chosen_platform:
                        continue
                    space = self.design_spaces.get((a.kernel_name, platform))
                    if space is None:
                        continue
                    per_platform[platform] = space.max_efficiency()
            plan[a.kernel_name] = per_platform
        return plan, schedule.makespan_ms

    def _loaded_signal(self, now_ms: float) -> bool:
        """Queue-pressure detector with hysteresis.

        The backlog on the most-loaded device is the queue-length signal
        of Section VI-C: entering high-performance mode at 25% of the
        QoS bound and leaving it below 10% avoids mode flapping.
        """
        devices = (
            self.devices
            if self._injector is None
            else [d for d in self.devices if d.is_schedulable]
        )
        if not devices:
            return self._was_loaded
        backlog = max(d.backlog_ms(now_ms) for d in devices)
        if self._was_loaded:
            # Leave high-performance mode only after the queues have
            # stayed short for several consecutive intervals.
            if backlog < 0.10 * self.app.qos_ms:
                self._light_since += 1
            else:
                self._light_since = 0
            if self._light_since >= 8:
                self._was_loaded = False
                self._light_since = 0
        elif backlog > 0.20 * self.app.qos_ms:
            # Two consecutive pressured intervals before committing to
            # the heavy plan: one-interval blips ride on the light plan.
            self._heavy_since += 1
            if self._heavy_since >= 2:
                self._was_loaded = True
                self._light_since = 0
                self._heavy_since = 0
        else:
            self._heavy_since = 0
        return self._was_loaded

    #: Candidate operating batches when costing GPU kernels under load.
    _PLANNING_BATCHES = (32, 16, 8, 4, 2, 1)
    #: A batched execution costs roughly one extra batch of waiting, so a
    #: GPU operating point must satisfy margin * lat(B) <= QoS share.
    _BATCH_LATENCY_MARGIN = 2.0
    #: Backlog (in units of the preferred implementation's latency) that
    #: triggers overflow onto an alternate platform.  Kept high: spilling
    #: a long FPGA kernel onto the GPU delays the short GPU-planned
    #: kernels queued behind it, so overflow only fires under gross
    #: imbalance.
    _OVERFLOW_FACTOR = 4.0

    def _qos_share_ms(self, name: str) -> float:
        """The slice of the latency bound kernel ``name`` may consume:
        proportional to its weight on the *critical path* of the kernel
        DAG (parallel branches do not add latency)."""
        lat1 = {}
        live = self._live_by_platform()
        for kernel in self._topo_order:
            best = float("inf")
            for platform in live:
                space = self.design_spaces.get((kernel, platform))
                if space is not None:
                    best = min(best, space.min_latency().latency_ms)
            lat1[kernel] = best
        # Longest path through the DAG under single-shot latencies.
        longest: Dict[str, float] = {}
        for kernel in self._topo_order:
            preds = self.app.graph.predecessors(kernel)
            longest[kernel] = lat1[kernel] + max(
                (longest[p] for p in preds), default=0.0
            )
        critical = max(longest.values()) if longest else 0.0
        if critical <= 0:
            return self.app.qos_ms
        return self.app.qos_ms * lat1[name] / critical

    def _amortized_cost_ms(self, platform: str, name: str, point) -> Optional[float]:
        """Per-request device occupancy at the QoS-feasible operating
        point: the largest batch whose latency (plus one batch of
        accumulation wait) still fits the kernel's QoS share on GPUs;
        single-shot on FPGAs.  Returns ``None`` when no batch fits —
        the kernel cannot be served on this platform under load without
        blowing the tail-latency budget (the reason Poly keeps
        latency-critical kernels on FPGAs, Section VI-B).
        """
        dev_type = self._by_platform[platform][0].device_type
        if dev_type != DeviceType.GPU:
            lat1, _ = self._latency_of_platform(platform, name, point, 1)
            return lat1
        share = self._qos_share_ms(name)
        for b in self._PLANNING_BATCHES:
            lat_b, _ = self._latency_of_platform(platform, name, point, b)
            if self._BATCH_LATENCY_MARGIN * lat_b <= share:
                return lat_b / b
        return None

    def _throughput_plan(self) -> Dict[str, Dict[str, DesignPoint]]:
        """Bottleneck-minimizing kernel-to-platform assignment.

        Greedy longest-processing-time placement of kernels onto the
        platform pools, costing each kernel by its amortized per-request
        occupancy; every kernel keeps its min-latency point on every
        platform so the dispatcher can overflow.
        """
        live = self._live_by_platform()
        if not live:
            return {}
        pools = {p: 0.0 for p in live}
        counts = {p: len(devs) for p, devs in live.items()}
        options: Dict[str, Dict[str, Tuple[DesignPoint, float]]] = {}
        for name in self._topo_order:
            options[name] = {}
            fallback = None
            # A batched GPU placement trades latency (batch accumulation
            # waits) for throughput; it is only competitive when the GPU
            # is at least latency-comparable single-shot — otherwise the
            # FPGA pool serves the kernel with both better latency and
            # enough capacity.
            best_fpga_lat = min(
                (
                    self.design_spaces[(name, platform)].min_latency().latency_ms
                    for platform in live
                    if live[platform][0].device_type
                    != DeviceType.GPU
                    and (name, platform) in self.design_spaces
                ),
                default=None,
            )
            for platform in live:
                space = self.design_spaces.get((name, platform))
                if space is None:
                    continue
                point = space.min_latency()
                is_gpu = (
                    self._by_platform[platform][0].device_type == DeviceType.GPU
                )
                if (
                    is_gpu
                    and best_fpga_lat is not None
                    and point.latency_ms > 1.5 * best_fpga_lat
                ):
                    fallback = (platform, point)
                    continue
                cost = self._amortized_cost_ms(platform, name, point)
                if cost is None:
                    fallback = (platform, point)
                    continue
                options[name][platform] = (point, cost)
            if not options[name] and fallback is not None:
                # No QoS-feasible platform: serve it anyway (single-shot
                # cost) rather than dropping the kernel.
                platform, point = fallback
                options[name][platform] = (point, point.latency_ms)
        # A kernel whose every implementation lives on a dead platform
        # cannot be planned; requests needing it fail over or abandon.
        options = {name: opts for name, opts in options.items() if opts}
        # Place costly kernels first.
        order = sorted(
            options,
            key=lambda n: max(c for _, c in options[n].values()),
            reverse=True,
        )
        plan: Dict[str, Dict[str, DesignPoint]] = {}
        preferred: Dict[str, str] = {}
        for name in order:
            def pool_load(p):
                return (pools[p] + options[name][p][1]) / counts[p]

            best = min(options[name], key=pool_load)
            # Energy-aware tie-break: among platforms within 15% of the
            # best pool load, take the lowest-power implementation — the
            # throughput plan should not burn GPU watts for a placement
            # the FPGA pool can absorb equally well.
            near = [
                p for p in options[name] if pool_load(p) <= 1.15 * pool_load(best)
            ]
            best_platform = min(near, key=lambda p: options[name][p][0].power_w)
            pools[best_platform] += options[name][best_platform][1]
            preferred[name] = best_platform
        for name in self._topo_order:
            if name not in options:
                continue
            per_platform = {p: pt for p, (pt, _) in options[name].items()}
            # Order matters downstream: put the preferred platform first.
            pref = preferred[name]
            ordered = {pref: per_platform[pref]}
            ordered.update(per_platform)
            plan[name] = ordered
        return plan

    # -- request path -----------------------------------------------------------

    def submit(self, arrival_ms: float, priority: float = 1.0) -> RequestRecord:
        """Admit one request: realize its kernels on devices.

        ``priority`` in [0, 1] only matters under graceful degradation:
        when a failure leaves the surviving capacity below the offered
        load, the failover planner sheds the lowest-priority requests at
        admission so the rest still meet the QoS bound.
        """
        tr = self.tracer
        if tr.enabled:
            tr.now_ms = arrival_ms
            self._req_seq += 1
            self._current_req = self._req_seq
            tr.emit(
                "request.admit",
                name=f"req-{self._current_req}",
                t_ms=arrival_ms,
                req=self._current_req,
                priority=round(priority, 6),
            )
        if self._injector is not None:
            self._injector.advance(arrival_ms)
        self.maybe_replan(arrival_ms)
        self.monitor.record_arrival(arrival_ms)
        if self._planner is not None and self._planner.should_shed(
            priority, arrival_ms
        ):
            self.monitor.record_drop()
            self._injector.report.shed += 1
            if tr.enabled:
                tr.emit(
                    "request.shed",
                    name=f"req-{self._current_req}",
                    t_ms=arrival_ms,
                    req=self._current_req,
                )
            return RequestRecord(
                arrival_ms, arrival_ms, self._plan_makespan_ms, dropped=True
            )

        ends: Dict[str, Tuple[float, str]] = {}  # kernel -> (end, device_id)
        retries = 0
        try:
            if self._injector is not None:
                for name in self._topo_order:
                    end, device_id, used = self._execute_kernel_resilient(
                        name, ends, arrival_ms
                    )
                    retries += used
                    ends[name] = (end, device_id)
            elif self._plan_cache is not None:
                # Compiled dispatch: same decisions as _execute_kernel,
                # minus the per-request plan/pool bookkeeping (golden
                # tests hold the two paths bit-identical).
                table = self._compiled_table()
                for name in self._topo_order:
                    device_id, end = self._execute_kernel_fast(
                        name, ends, arrival_ms, table
                    )
                    ends[name] = (end, device_id)
            else:
                for name in self._topo_order:
                    device, _, _, end = self._execute_kernel(
                        name, ends, arrival_ms
                    )
                    ends[name] = (end, device.device_id)
        except _RequestAbandoned as abandoned:
            self._injector.report.failed_requests += 1
            completion = max(abandoned.when_ms, arrival_ms)
            record = RequestRecord(
                arrival_ms,
                completion,
                self._plan_makespan_ms,
                retries=retries,
                failed=True,
            )
            self.monitor.record_completion(record.latency_ms, None)
            if tr.enabled:
                tr.emit(
                    "request.abandon",
                    name=f"req-{self._current_req}",
                    t_ms=completion,
                    req=self._current_req,
                    kernel=abandoned.kernel_name,
                    retries=retries,
                )
            return record

        completion = max(ends[s][0] for s in self._sinks)
        predicted = self._plan_makespan_ms
        record = RequestRecord(arrival_ms, completion, predicted, retries=retries)
        self.monitor.record_completion(record.latency_ms, predicted or None)
        if tr.enabled:
            tr.emit(
                "request.complete",
                name=f"req-{self._current_req}",
                t_ms=completion,
                req=self._current_req,
                latency_ms=round(record.latency_ms, 6),
                retries=retries,
            )
        return record

    def _execute_kernel(
        self,
        name: str,
        ends: Dict[str, Tuple[float, str]],
        arrival_ms: float,
        floor_ms: float = 0.0,
        exclude: FrozenSet[str] = frozenset(),
    ) -> Tuple[AcceleratorInstance, DesignPoint, float, float]:
        """Allocate and dispatch one kernel; returns (device, point,
        start, end).  ``floor_ms``/``exclude`` are only exercised by the
        retry path — at their defaults this is the exact healthy-device
        execution."""
        graph = self.app.graph
        base_ready = arrival_ms
        for pred in graph.predecessors(name):
            base_ready = max(base_ready, ends[pred][0])
        if floor_ms > base_ready:
            base_ready = floor_ms
        device, point = self._allocate(name, base_ready, exclude)
        # Charge PCIe for every producer that ran on a different
        # physical device (data bounces through host DRAM).
        ready = arrival_ms
        for pred in graph.predecessors(name):
            pred_end, pred_dev = ends[pred]
            if pred_dev != device.device_id:
                pred_end += self.pcie.device_to_device_ms(
                    graph.edge_bytes(pred, name)
                )
            ready = max(ready, pred_end)
        if floor_ms > ready:
            ready = floor_ms
        noise = float(self._rng.lognormal(0.0, NOISE_SIGMA))
        if device.slowdown != 1.0:
            noise *= device.slowdown
        start, end = device.dispatch(
            name, point, ready, self._gpu_window(device), noise
        )
        if self.tracer.enabled:
            # Decision record: the reserved window at dispatch time (GPU
            # batch joins may later stretch the realized execution, which
            # the end-of-run kernel.exec spans report truthfully).
            self.tracer.emit(
                "kernel.dispatch",
                name=name,
                t_ms=ready,
                req=self._current_req,
                kernel=name,
                device=device.device_id,
                point=point.index,
                start_ms=round(start, 6),
                end_ms=round(end, 6),
            )
        return device, point, start, end

    # -- compiled dispatch fast path (plan-cache mode, healthy devices) -------

    def _next_noise(self) -> float:
        """Next execution-noise draw, buffered.

        Bit-identical to a scalar ``rng.lognormal(0.0, NOISE_SIGMA)``
        per call: numpy draws vectorized log-normals in the same stream
        order as repeated scalar draws.
        """
        buf = self._noise_buf
        pos = self._noise_pos
        if pos >= len(buf):
            buf = self._noise_buf = self._rng.lognormal(
                0.0, NOISE_SIGMA, size=2048
            )
            pos = 0
        self._noise_pos = pos + 1
        return float(buf[pos])

    def _compiled_table(self) -> Dict[str, list]:
        """Per-kernel dispatch entries compiled from the active plan.

        Each entry is ``(point, devices, lat1_ms, impl_key, is_gpu,
        overflow_ms, power1_w)`` in the plan's platform order (preferred
        first) — everything :meth:`_allocate` recomputes per request
        that is in fact constant for the plan's lifetime.  ``lat1_ms``/
        ``power1_w`` are the exact batch-1 tuple the device's
        ``_latency_fn`` serves (same shared latency cache), so the
        inlined dispatch below reproduces its floats bit-for-bit.  The
        table is keyed to the plan *object*, so light/heavy toggles swap
        between two compiled tables and :meth:`invalidate_plans` drops
        both.
        """
        plan = self._plan
        if plan is self._compiled_for and self._dispatch_table is not None:
            return self._dispatch_table
        table: Dict[str, list] = {}
        live = self._live_by_platform()
        for name, per_platform in plan.items():
            entries = []
            for platform, point in per_platform.items():
                devs = live.get(platform)
                if not devs:
                    continue
                lat1, power1 = self._latency_of_platform(
                    platform, name, point, 1
                )
                entries.append(
                    (
                        point,
                        list(devs),
                        lat1,
                        (name, point.index),
                        devs[0].device_type == DeviceType.GPU,
                        self._OVERFLOW_FACTOR * point.latency_ms,
                        power1,
                    )
                )
            if entries:
                table[name] = entries
        self._dispatch_table = table
        self._compiled_for = plan
        return table

    def _execute_kernel_fast(
        self,
        name: str,
        ends: Dict[str, Tuple[float, str]],
        arrival_ms: float,
        table: Dict[str, list],
    ) -> Tuple[str, float]:
        """Healthy-path kernel execution over the compiled table.

        Decision-for-decision the same as :meth:`_execute_kernel` +
        :meth:`_allocate` (same finish estimates, same ``(finish,
        device_id)`` tie-breaks, same overflow rule, same noise stream),
        with :meth:`DeviceSim.dispatch`'s bookkeeping inlined — the
        same state mutations and float expressions, minus the per-call
        dispatch plumbing; returns (device_id, end_ms).
        """
        entries = table.get(name)
        if not entries:
            raise RuntimeError(f"kernel {name!r} has no planned platform")
        preds = self._preds[name]
        base_ready = arrival_ms
        for pred in preds:
            e = ends[pred][0]
            if e > base_ready:
                base_ready = e

        point, devs, lat1, impl_key, is_gpu, overflow_ms, power1 = entries[0]
        best_fin = float("inf")
        best_id = ""
        device = None
        for d in devs:
            if is_gpu:
                b = d._open_batches.get(impl_key)
                if (
                    b is not None
                    and b.launch_ms >= base_ready
                    and b.size < MAX_GPU_BATCH
                ):
                    fin = b.launch_ms + d._latency_fn(name, point, b.size + 1)[0]
                else:
                    h = d.horizon_ms
                    fin = (h if h > base_ready else base_ready) + lat1
            else:
                h = d.horizon_ms
                s = h if h > base_ready else base_ready
                li = d.loaded_impl
                if li is not None and li != impl_key:
                    s += d.reconfig_ms
                fin = s + lat1
            if fin < best_fin or (fin == best_fin and d.device_id < best_id):
                best_fin = fin
                best_id = d.device_id
                device = d
        chosen_point = point
        chosen_gpu = is_gpu
        chosen_key = impl_key
        chosen_lat1 = lat1
        chosen_power1 = power1

        if len(entries) > 1 and best_fin - base_ready > overflow_ms:
            best_key = (best_fin, best_id)
            for alt in entries[1:]:
                a_point, a_devs, a_lat1, a_key, a_gpu, _, a_power1 = alt
                for d in a_devs:
                    if a_gpu:
                        b = d._open_batches.get(a_key)
                        if (
                            b is not None
                            and b.launch_ms >= base_ready
                            and b.size < MAX_GPU_BATCH
                        ):
                            fin = b.launch_ms + d._latency_fn(
                                name, a_point, b.size + 1
                            )[0]
                        else:
                            h = d.horizon_ms
                            fin = (h if h > base_ready else base_ready) + a_lat1
                    else:
                        h = d.horizon_ms
                        s = h if h > base_ready else base_ready
                        li = d.loaded_impl
                        if li is not None and li != a_key:
                            s += d.reconfig_ms
                        fin = s + a_lat1
                    cand = (fin, d.device_id)
                    if cand < best_key:
                        best_key = cand
                        device = d
                        chosen_point = a_point
                        chosen_gpu = a_gpu
                        chosen_key = a_key
                        chosen_lat1 = a_lat1
                        chosen_power1 = a_power1

        dev_id = device.device_id
        ready = arrival_ms
        for pred in preds:
            pe, pd = ends[pred]
            if pd != dev_id:
                pe += self._xfer_ms[(pred, name)]
            if pe > ready:
                ready = pe
        noise = self._next_noise()
        if device.slowdown != 1.0:
            noise *= device.slowdown

        # Inlined DeviceSim.dispatch: identical mutations and float
        # expressions as _dispatch_gpu/_dispatch_fpga, with the batch-1
        # (latency, power) read from the compiled table instead of a
        # _latency_fn call (same cached tuple).
        if chosen_gpu:
            b = device._open_batches.get(chosen_key)
            if (
                b is not None
                and b.launch_ms >= ready
                and b.size < MAX_GPU_BATCH
            ):
                old_end = b.end_ms
                b.size += 1
                latency, power = device._latency_fn(
                    name, chosen_point, b.size
                )
                b.end_ms = b.launch_ms + latency * b.noise
                b.record.end_ms = b.end_ms
                b.record.power_w = power
                b.record.batch = b.size
                device.horizon_ms = max(
                    device.horizon_ms + (b.end_ms - old_end), b.end_ms
                )
                start, end = b.launch_ms, b.end_ms
            else:
                if self._is_poly:
                    win = self._win_loaded if self._was_loaded else 0.0
                else:
                    win = self.system.batch_window_ms
                launch = max(device.horizon_ms, ready + win)
                end = launch + chosen_lat1 * noise
                record = ExecutionRecord(
                    dev_id, name, chosen_point.index, launch, end,
                    chosen_power1, 1,
                )
                device.records.append(record)
                device.horizon_ms = end
                device._open_batches[chosen_key] = _OpenBatch(
                    name, chosen_point, launch, end, 1, record, noise
                )
                start = launch
        else:
            h = device.horizon_ms
            start = h if h > ready else ready
            li = device.loaded_impl
            if li is not None and li != chosen_key:
                start += device.reconfig_ms
            device.loaded_impl = chosen_key
            end = start + chosen_lat1 * noise
            device.records.append(
                ExecutionRecord(
                    dev_id, name, chosen_point.index, start, end,
                    chosen_power1, 1,
                )
            )
            device.horizon_ms = end
        if self.tracer.enabled:
            self.tracer.emit(
                "kernel.dispatch",
                name=name,
                t_ms=ready,
                req=self._current_req,
                kernel=name,
                device=dev_id,
                point=chosen_point.index,
                start_ms=round(start, 6),
                end_ms=round(end, 6),
            )
        return dev_id, end

    def _execute_kernel_resilient(
        self,
        name: str,
        ends: Dict[str, Tuple[float, str]],
        arrival_ms: float,
    ) -> Tuple[float, str, int]:
        """Execute one kernel under fault injection.

        Each reserved execution is checked against the injector: a lost
        one (outage overlap or transient soft error) is aborted, waited
        out (``timeout_ms`` — the requester's latency-timeout detection)
        and retried with capped exponential backoff.  A crash excludes
        the dead device from this request's further attempts, so retries
        naturally fail over — to another instance, or to another
        accelerator family via the plan's per-platform alternates.
        Returns (end, device_id, retries_used).
        """
        injector = self._injector
        policy = injector.policy
        exclude: Set[str] = set()
        floor_ms = 0.0
        first_device: Optional[str] = None
        attempt = 0
        while True:
            try:
                device, point, start, end = self._execute_kernel(
                    name, ends, arrival_ms, floor_ms, frozenset(exclude)
                )
            except _NoEligibleDevice:
                raise _RequestAbandoned(
                    name, max(floor_ms, arrival_ms)
                ) from None
            fault = injector.execution_fault(device, start, end)
            if fault is None:
                if first_device is not None and device.device_id != first_device:
                    injector.report.failovers += 1
                return end, device.device_id, attempt
            fault_ms, kind = fault
            device.abort_execution(name, point.index, end, fault_ms)
            if first_device is None:
                first_device = device.device_id
            injector.report.retries += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    "fault.retry",
                    name=name,
                    t_ms=fault_ms,
                    req=self._current_req,
                    kernel=name,
                    device=device.device_id,
                    fault=kind.value,
                    attempt=attempt,
                )
            if kind == FaultKind.DEVICE_CRASH:
                exclude.add(device.device_id)
            if attempt >= policy.max_retries:
                raise _RequestAbandoned(name, fault_ms + policy.timeout_ms)
            floor_ms = fault_ms + policy.timeout_ms + policy.backoff_ms(attempt)
            attempt += 1

    def _gpu_window(self, device: AcceleratorInstance) -> float:
        if device.device_type != DeviceType.GPU:
            return 0.0
        if self.system.policy == SchedulingPolicy.POLY:
            # Poly opens a batching window only in high-performance mode:
            # a small admission delay keeps the GPU in its efficient
            # batched regime under load, while light load stays
            # latency-optimal with immediate launches.
            return min(0.04 * self.app.qos_ms, 10.0) if self._was_loaded else 0.0
        return self.system.batch_window_ms

    def _allocate(
        self,
        kernel_name: str,
        ready_ms: float,
        exclude: FrozenSet[str] = frozenset(),
    ) -> Tuple[AcceleratorInstance, DesignPoint]:
        """Pick the executing (device, implementation) for one kernel.

        The preferred platform (first in the plan's dict) wins unless
        its best instance is backlogged beyond ``_OVERFLOW_FACTOR``
        times the implementation latency, in which case the earliest
        finisher across all planned platforms is taken — Poly's dynamic
        reallocation under load imbalance.

        Under fault injection, quarantined devices and this request's
        ``exclude`` set (devices it already lost executions to) drop out
        of every pool; when the plan's platforms have no survivors at
        all, the allocator falls back to any surviving platform with a
        design space for the kernel (min-latency point) — the cross-
        family failover of Section VI-C's degraded-operation story.
        """
        planned = self._plan.get(kernel_name)
        if planned is None or not planned:
            if self._injector is None:
                raise RuntimeError(
                    f"kernel {kernel_name!r} has no planned platform"
                )
            usable = self._failover_candidates(kernel_name, exclude)
        else:
            live = self._live_by_platform()
            usable = [
                (platform, point, devs)
                for platform, point in planned.items()
                for devs in (
                    [d for d in live.get(platform, ()) if d.device_id not in exclude],
                )
                if devs
            ]
            if not usable and self._injector is not None:
                usable = self._failover_candidates(kernel_name, exclude)
        if not usable:
            raise _NoEligibleDevice(kernel_name)

        pref_platform, pref_point, pref_devs = usable[0]
        pref_dev = min(
            pref_devs,
            key=lambda d: (
                d.estimate_finish(kernel_name, pref_point, ready_ms),
                d.device_id,
            ),
        )
        pref_finish = pref_dev.estimate_finish(kernel_name, pref_point, ready_ms)
        backlog = pref_finish - ready_ms

        if len(usable) == 1 or backlog <= (
            self._OVERFLOW_FACTOR * pref_point.latency_ms
        ):
            return pref_dev, pref_point

        best = (pref_finish, pref_dev.device_id, pref_dev, pref_point)
        for platform, point, devs in usable[1:]:
            for dev in devs:
                finish = dev.estimate_finish(kernel_name, point, ready_ms)
                cand = (finish, dev.device_id, dev, point)
                if cand[:2] < best[:2]:
                    best = cand
        return best[2], best[3]

    def _failover_candidates(
        self, kernel_name: str, exclude: FrozenSet[str]
    ) -> List[Tuple[str, DesignPoint, List[AcceleratorInstance]]]:
        """Emergency placement when the plan offers no surviving device:
        every live platform holding a design space for the kernel, at
        its minimum-latency Pareto point."""
        out: List[Tuple[str, DesignPoint, List[AcceleratorInstance]]] = []
        for platform, devs in self._live_by_platform().items():
            space = self.design_spaces.get((kernel_name, platform))
            if space is None:
                continue
            eligible = [d for d in devs if d.device_id not in exclude]
            if eligible:
                out.append((platform, space.min_latency(), eligible))
        return out

    # -- accounting -------------------------------------------------------------

    def all_records(self) -> List[ExecutionRecord]:
        out: List[ExecutionRecord] = []
        for dev in self.devices:
            out.extend(dev.records)
        return out

    def capacity_estimate_rps(self) -> float:
        """Crude sustained-throughput estimate of the current plan,
        used by the monitor's load normalization."""
        if not self._plan:
            return 1.0
        busy: Dict[str, float] = {}
        for name, per_platform in self._plan.items():
            platform, point = next(iter(per_platform.items()))  # preferred
            amortize = 1.0
            if self._by_platform[platform][0].device_type == DeviceType.GPU:
                # Batching amortization at a typical operating batch.
                lat1, _ = self._latency_of_platform(platform, name, point, 1)
                lat8, _ = self._latency_of_platform(platform, name, point, 8)
                amortize = lat8 / (8.0 * lat1)
            lat, _ = self._latency_of_platform(platform, name, point, 1)
            busy[platform] = busy.get(platform, 0.0) + lat * amortize
        live = self._live_by_platform()
        rps = float("inf")
        for platform, total in busy.items():
            count = len(live.get(platform, ()))
            if count == 0:
                continue
            rps = min(rps, count * 1000.0 / total)
        if rps == float("inf"):
            return 0.0
        return rps

    def _latency_of_platform(self, platform, name, point, batch):
        spec = self._by_platform[platform][0].spec
        return self._latency_of(spec)(name, point, batch)
