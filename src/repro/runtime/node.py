"""Leaf-node runtime: accelerator instances and the request dispatcher.

This module realizes scheduling decisions on concrete devices over
simulated time.  It captures the runtime behaviours the evaluation
hinges on:

* **GPU batching** — requests that queue behind an un-launched GPU
  batch of the same kernel implementation join it; batch latency comes
  from the analytical model at the grown batch size.  Static GPU
  systems additionally hold batches open for a fixed window (the
  batching latency Section VI-B attributes to Homo-GPU on IR); Poly
  relies on natural queue-driven batching only.
* **FPGA reconfiguration** — dispatch prefers an FPGA that already has
  the chosen implementation loaded; switching implementations costs
  the part's reconfiguration latency (Section VI-C's "reconfiguring
  FPGA with a low-power kernel").
* **Execution noise** — realized latencies deviate from the analytical
  prediction by a few percent (the paper reports <6% model error), so
  the monitor's feedback correction has something to correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..apps.base import Application
from ..hardware import DVFSPolicy, PCIeLink, model_for
from ..hardware.specs import DeviceType
from ..optim.design_point import DesignPoint, KernelDesignSpace
from ..scheduler import DeviceSlot, PolyScheduler, StaticScheduler, SystemMonitor
from .cluster import SchedulingPolicy, SystemConfig

__all__ = [
    "ExecutionRecord",
    "AcceleratorInstance",
    "RequestRecord",
    "LeafNode",
]

#: Largest batch a GPU execution may accumulate (serving frameworks cap
#: batches to bound tail latency; DjiNN-style services use O(10)).
MAX_GPU_BATCH = 10
#: Log-normal sigma of the execution-time noise (paper: <6% model error).
NOISE_SIGMA = 0.04


@dataclass
class ExecutionRecord:
    """One realized device execution (possibly a batch)."""

    device_id: str
    kernel_name: str
    point_index: int
    start_ms: float
    end_ms: float
    power_w: float
    batch: int = 1


@dataclass
class _OpenBatch:
    """A GPU batch that has not launched yet and may accept joiners."""

    kernel_name: str
    point: DesignPoint
    launch_ms: float
    end_ms: float
    size: int
    record: ExecutionRecord
    noise: float


class AcceleratorInstance:
    """One physical accelerator with its reservation timeline."""

    def __init__(self, device_id: str, spec, latency_fn) -> None:
        self.device_id = device_id
        self.spec = spec
        self.device_type: DeviceType = spec.device_type
        self.dvfs = DVFSPolicy(spec)
        self.horizon_ms = 0.0
        self.records: List[ExecutionRecord] = []
        self._latency_fn = latency_fn
        self._open_batches: Dict[Tuple[str, int], _OpenBatch] = {}
        #: (kernel_name, point_index) currently configured on an FPGA.
        self.loaded_impl: Optional[Tuple[str, int]] = None
        self.reconfig_ms = getattr(spec, "reconfig_ms", 0.0)

    # -- dispatch -------------------------------------------------------------

    def effective_start(self, ready_ms: float, impl_key: Tuple[str, int]) -> float:
        """Earliest start for an implementation, counting reconfiguration."""
        start = max(self.horizon_ms, ready_ms)
        if (
            self.device_type == DeviceType.FPGA
            and self.loaded_impl is not None
            and self.loaded_impl != impl_key
        ):
            start += self.reconfig_ms
        return start

    def dispatch(
        self,
        kernel_name: str,
        point: DesignPoint,
        ready_ms: float,
        batch_window_ms: float,
        noise: float,
    ) -> Tuple[float, float]:
        """Reserve the execution; returns its (start, end) in ms."""
        if self.device_type == DeviceType.GPU:
            return self._dispatch_gpu(
                kernel_name, point, ready_ms, batch_window_ms, noise
            )
        return self._dispatch_fpga(kernel_name, point, ready_ms, noise)

    def _joinable(self, key: Tuple[str, int], ready_ms: float):
        """The open batch this execution could join, if any."""
        batch = self._open_batches.get(key)
        if (
            batch is not None
            and batch.launch_ms >= ready_ms
            and batch.size < MAX_GPU_BATCH
        ):
            return batch
        return None

    def _dispatch_gpu(
        self,
        kernel_name: str,
        point: DesignPoint,
        ready_ms: float,
        batch_window_ms: float,
        noise: float,
    ) -> Tuple[float, float]:
        key = (kernel_name, point.index)
        batch = self._joinable(key, ready_ms)
        if batch is not None:
            # Join: same implementation and the batch has not launched.
            # Growing the batch extends its end; any work already queued
            # behind it is pushed back by the same delta (approximation:
            # the already-recorded timestamps of that work are kept).
            old_end = batch.end_ms
            batch.size += 1
            latency, power = self._latency_fn(kernel_name, point, batch.size)
            batch.end_ms = batch.launch_ms + latency * batch.noise
            batch.record.end_ms = batch.end_ms
            batch.record.power_w = power
            batch.record.batch = batch.size
            self.horizon_ms = max(self.horizon_ms + (batch.end_ms - old_end),
                                  batch.end_ms)
            return batch.launch_ms, batch.end_ms

        launch = max(self.horizon_ms, ready_ms + batch_window_ms)
        latency, power = self._latency_fn(kernel_name, point, 1)
        end = launch + latency * noise
        record = ExecutionRecord(
            self.device_id, kernel_name, point.index, launch, end, power, 1
        )
        self.records.append(record)
        self.horizon_ms = end
        self._open_batches[key] = _OpenBatch(
            kernel_name, point, launch, end, 1, record, noise
        )
        return launch, end

    def _dispatch_fpga(
        self,
        kernel_name: str,
        point: DesignPoint,
        ready_ms: float,
        noise: float,
    ) -> Tuple[float, float]:
        impl_key = (kernel_name, point.index)
        start = self.effective_start(ready_ms, impl_key)
        self.loaded_impl = impl_key
        latency, power = self._latency_fn(kernel_name, point, 1)
        end = start + latency * noise
        self.records.append(
            ExecutionRecord(
                self.device_id, kernel_name, point.index, start, end, power, 1
            )
        )
        self.horizon_ms = end
        return start, end

    def estimate_finish(
        self, kernel_name: str, point: DesignPoint, ready_ms: float
    ) -> float:
        """Estimated completion if this execution were dispatched here —
        the quantity the per-request allocator minimizes."""
        impl_key = (kernel_name, point.index)
        if self.device_type == DeviceType.GPU:
            batch = self._joinable(impl_key, ready_ms)
            if batch is not None:
                latency, _ = self._latency_fn(kernel_name, point, batch.size + 1)
                return batch.launch_ms + latency
        latency, _ = self._latency_fn(kernel_name, point, 1)
        return self.effective_start(ready_ms, impl_key) + latency

    def backlog_ms(self, now_ms: float) -> float:
        """Queued work ahead of a new arrival."""
        return max(self.horizon_ms - now_ms, 0.0)

    def busy_ms_total(self) -> float:
        return sum(r.end_ms - r.start_ms for r in self.records)


@dataclass
class RequestRecord:
    """Per-request outcome."""

    arrival_ms: float
    completion_ms: float
    predicted_ms: float

    @property
    def latency_ms(self) -> float:
        return self.completion_ms - self.arrival_ms


class LeafNode:
    """A datacenter leaf node executing one application's requests.

    Holds the accelerator instances, the scheduling policy (Poly or
    static), the current kernel-to-implementation plan, and the system
    monitor driving the feedback loop.
    """

    def __init__(
        self,
        system: SystemConfig,
        app: Application,
        design_spaces: Mapping[Tuple[str, str], KernelDesignSpace],
        replan_interval_ms: float = 250.0,
        seed: int = 0,
        pcie: Optional[PCIeLink] = None,
    ) -> None:
        self.system = system
        self.app = app
        self.design_spaces = design_spaces
        self.replan_interval_ms = replan_interval_ms
        self.pcie = pcie or PCIeLink()
        self.monitor = SystemMonitor()
        self._rng = np.random.default_rng(seed)
        self._models = {spec.name: model_for(spec) for spec in system.platforms}
        self._kernels = {k.name: k for k in app.kernels}
        self._latency_cache: Dict[Tuple[str, str, int, int], Tuple[float, float]] = {}

        self.devices: List[AcceleratorInstance] = [
            AcceleratorInstance(device_id, spec, self._latency_of(spec))
            for device_id, spec in system.device_inventory()
        ]
        self._by_platform: Dict[str, List[AcceleratorInstance]] = {}
        for dev in self.devices:
            self._by_platform.setdefault(dev.spec.name, []).append(dev)

        if system.policy == SchedulingPolicy.POLY:
            self._scheduler = PolyScheduler(design_spaces, app.qos_ms, self.pcie)
        else:
            self._scheduler = StaticScheduler(design_spaces, app.qos_ms, self.pcie)
        #: Per-kernel operating points: {kernel: {platform: point}}.
        self._plan: Dict[str, Dict[str, DesignPoint]] = {}
        self._plan_makespan_ms = 0.0
        self._last_replan_ms = -float("inf")
        self._was_loaded = False
        self._light_since = 0
        self._heavy_since = 0
        self._light_plan = None
        self._heavy_plan = None
        self._light_makespan = 0.0
        self._heavy_makespan = 0.0
        self._topo_order = app.graph.kernel_names  # already topological

    # -- planning -------------------------------------------------------------

    def _latency_of(self, spec):
        model = self._models[spec.name]

        def fn(kernel_name: str, point: DesignPoint, batch: int):
            key = (spec.name, kernel_name, point.index, batch)
            cached = self._latency_cache.get(key)
            if cached is None:
                est = model.estimate(self._kernels[kernel_name], point.config, batch)
                cached = (est.latency_ms, est.active_power_w)
                self._latency_cache[key] = cached
            return cached

        return fn

    def _device_slots(self, now_ms: float) -> List[DeviceSlot]:
        return [
            DeviceSlot(
                d.device_id, d.spec.name, d.device_type, d.backlog_ms(now_ms)
            )
            for d in self.devices
        ]

    def maybe_replan(self, now_ms: float) -> None:
        """Refresh the kernel plan once per interval (Section V: "at each
        time interval").

        Poly holds two precomputed operating plans and toggles between
        them on the queue-pressure signal (Section VI-B: "dynamically
        allocates ... requests to FPGAs when the load is light or shifts
        the workload to GPU when the load is much heavier"):

        * **light** — the two-step schedule on an idle node: Step 1
          latency placement, Step 2 energy swaps within the QoS slack;
          alternates carry each platform's most efficient point so the
          dispatcher can still spill.
        * **heavy** — a bottleneck-minimizing placement costing each
          kernel by its amortized per-request occupancy (batched on
          GPUs), with minimum-latency implementations everywhere.

        Static baselines compute their single hard-mapped plan once and
        never change it.
        """
        if now_ms - self._last_replan_ms < self.replan_interval_ms and self._plan:
            return
        self._last_replan_ms = now_ms
        if self._light_plan is None:
            self._light_plan, self._light_makespan = self._scheduled_plan()
            if self.system.policy == SchedulingPolicy.POLY:
                self._heavy_plan = self._throughput_plan()
                self._heavy_makespan = sum(
                    next(iter(p.values())).latency_ms
                    for p in self._heavy_plan.values()
                )
            else:
                self._heavy_plan = self._light_plan
                self._heavy_makespan = self._light_makespan
        if self._loaded_signal(now_ms):
            self._plan = self._heavy_plan
            self._plan_makespan_ms = self._heavy_makespan
        else:
            self._plan = self._light_plan
            self._plan_makespan_ms = self._light_makespan

    def _scheduled_plan(
        self,
    ) -> Tuple[Dict[str, Dict[str, DesignPoint]], float]:
        """Run the policy's scheduler on an idle node -> light-load plan."""
        slots = self._device_slots(now_ms=float("inf"))
        for slot in slots:
            slot.available_at_ms = 0.0
        if isinstance(self._scheduler, PolyScheduler):
            schedule, _ = self._scheduler.schedule(self.app.graph, slots)
        else:
            schedule = self._scheduler.schedule(self.app.graph, slots)
        platform_of = {s.device_id: s.platform for s in slots}
        plan: Dict[str, Dict[str, DesignPoint]] = {}
        for a in schedule:
            chosen_platform = platform_of[a.device_id]
            per_platform = {chosen_platform: a.point}
            if self.system.policy == SchedulingPolicy.POLY:
                for platform in self._by_platform:
                    if platform == chosen_platform:
                        continue
                    space = self.design_spaces.get((a.kernel_name, platform))
                    if space is None:
                        continue
                    per_platform[platform] = space.max_efficiency()
            plan[a.kernel_name] = per_platform
        return plan, schedule.makespan_ms

    def _loaded_signal(self, now_ms: float) -> bool:
        """Queue-pressure detector with hysteresis.

        The backlog on the most-loaded device is the queue-length signal
        of Section VI-C: entering high-performance mode at 25% of the
        QoS bound and leaving it below 10% avoids mode flapping.
        """
        backlog = max(d.backlog_ms(now_ms) for d in self.devices)
        if self._was_loaded:
            # Leave high-performance mode only after the queues have
            # stayed short for several consecutive intervals.
            if backlog < 0.10 * self.app.qos_ms:
                self._light_since += 1
            else:
                self._light_since = 0
            if self._light_since >= 8:
                self._was_loaded = False
                self._light_since = 0
        elif backlog > 0.20 * self.app.qos_ms:
            # Two consecutive pressured intervals before committing to
            # the heavy plan: one-interval blips ride on the light plan.
            self._heavy_since += 1
            if self._heavy_since >= 2:
                self._was_loaded = True
                self._light_since = 0
                self._heavy_since = 0
        else:
            self._heavy_since = 0
        return self._was_loaded

    #: Candidate operating batches when costing GPU kernels under load.
    _PLANNING_BATCHES = (32, 16, 8, 4, 2, 1)
    #: A batched execution costs roughly one extra batch of waiting, so a
    #: GPU operating point must satisfy margin * lat(B) <= QoS share.
    _BATCH_LATENCY_MARGIN = 2.0
    #: Backlog (in units of the preferred implementation's latency) that
    #: triggers overflow onto an alternate platform.  Kept high: spilling
    #: a long FPGA kernel onto the GPU delays the short GPU-planned
    #: kernels queued behind it, so overflow only fires under gross
    #: imbalance.
    _OVERFLOW_FACTOR = 4.0

    def _qos_share_ms(self, name: str) -> float:
        """The slice of the latency bound kernel ``name`` may consume:
        proportional to its weight on the *critical path* of the kernel
        DAG (parallel branches do not add latency)."""
        lat1 = {}
        for kernel in self._topo_order:
            best = float("inf")
            for platform in self._by_platform:
                space = self.design_spaces.get((kernel, platform))
                if space is not None:
                    best = min(best, space.min_latency().latency_ms)
            lat1[kernel] = best
        # Longest path through the DAG under single-shot latencies.
        longest: Dict[str, float] = {}
        for kernel in self._topo_order:
            preds = self.app.graph.predecessors(kernel)
            longest[kernel] = lat1[kernel] + max(
                (longest[p] for p in preds), default=0.0
            )
        critical = max(longest.values()) if longest else 0.0
        if critical <= 0:
            return self.app.qos_ms
        return self.app.qos_ms * lat1[name] / critical

    def _amortized_cost_ms(self, platform: str, name: str, point) -> Optional[float]:
        """Per-request device occupancy at the QoS-feasible operating
        point: the largest batch whose latency (plus one batch of
        accumulation wait) still fits the kernel's QoS share on GPUs;
        single-shot on FPGAs.  Returns ``None`` when no batch fits —
        the kernel cannot be served on this platform under load without
        blowing the tail-latency budget (the reason Poly keeps
        latency-critical kernels on FPGAs, Section VI-B).
        """
        dev_type = self._by_platform[platform][0].device_type
        if dev_type != DeviceType.GPU:
            lat1, _ = self._latency_of_platform(platform, name, point, 1)
            return lat1
        share = self._qos_share_ms(name)
        for b in self._PLANNING_BATCHES:
            lat_b, _ = self._latency_of_platform(platform, name, point, b)
            if self._BATCH_LATENCY_MARGIN * lat_b <= share:
                return lat_b / b
        return None

    def _throughput_plan(self) -> Dict[str, Dict[str, DesignPoint]]:
        """Bottleneck-minimizing kernel-to-platform assignment.

        Greedy longest-processing-time placement of kernels onto the
        platform pools, costing each kernel by its amortized per-request
        occupancy; every kernel keeps its min-latency point on every
        platform so the dispatcher can overflow.
        """
        pools = {p: 0.0 for p in self._by_platform}
        counts = {p: len(devs) for p, devs in self._by_platform.items()}
        options: Dict[str, Dict[str, Tuple[DesignPoint, float]]] = {}
        for name in self._topo_order:
            options[name] = {}
            fallback = None
            # A batched GPU placement trades latency (batch accumulation
            # waits) for throughput; it is only competitive when the GPU
            # is at least latency-comparable single-shot — otherwise the
            # FPGA pool serves the kernel with both better latency and
            # enough capacity.
            best_fpga_lat = min(
                (
                    self.design_spaces[(name, platform)].min_latency().latency_ms
                    for platform in self._by_platform
                    if self._by_platform[platform][0].device_type
                    != DeviceType.GPU
                    and (name, platform) in self.design_spaces
                ),
                default=None,
            )
            for platform in self._by_platform:
                space = self.design_spaces.get((name, platform))
                if space is None:
                    continue
                point = space.min_latency()
                is_gpu = (
                    self._by_platform[platform][0].device_type == DeviceType.GPU
                )
                if (
                    is_gpu
                    and best_fpga_lat is not None
                    and point.latency_ms > 1.5 * best_fpga_lat
                ):
                    fallback = (platform, point)
                    continue
                cost = self._amortized_cost_ms(platform, name, point)
                if cost is None:
                    fallback = (platform, point)
                    continue
                options[name][platform] = (point, cost)
            if not options[name] and fallback is not None:
                # No QoS-feasible platform: serve it anyway (single-shot
                # cost) rather than dropping the kernel.
                platform, point = fallback
                options[name][platform] = (point, point.latency_ms)
        # Place costly kernels first.
        order = sorted(
            options,
            key=lambda n: max(c for _, c in options[n].values()),
            reverse=True,
        )
        plan: Dict[str, Dict[str, DesignPoint]] = {}
        preferred: Dict[str, str] = {}
        for name in order:
            def pool_load(p):
                return (pools[p] + options[name][p][1]) / counts[p]

            best = min(options[name], key=pool_load)
            # Energy-aware tie-break: among platforms within 15% of the
            # best pool load, take the lowest-power implementation — the
            # throughput plan should not burn GPU watts for a placement
            # the FPGA pool can absorb equally well.
            near = [
                p for p in options[name] if pool_load(p) <= 1.15 * pool_load(best)
            ]
            best_platform = min(near, key=lambda p: options[name][p][0].power_w)
            pools[best_platform] += options[name][best_platform][1]
            preferred[name] = best_platform
        for name in self._topo_order:
            per_platform = {p: pt for p, (pt, _) in options[name].items()}
            # Order matters downstream: put the preferred platform first.
            pref = preferred[name]
            ordered = {pref: per_platform[pref]}
            ordered.update(per_platform)
            plan[name] = ordered
        return plan

    # -- request path -----------------------------------------------------------

    def submit(self, arrival_ms: float) -> RequestRecord:
        """Admit one request: realize its kernels on devices."""
        self.maybe_replan(arrival_ms)
        self.monitor.record_arrival(arrival_ms)

        ends: Dict[str, Tuple[float, str]] = {}  # kernel -> (end, device_id)
        graph = self.app.graph
        for name in self._topo_order:
            base_ready = arrival_ms
            for pred in graph.predecessors(name):
                base_ready = max(base_ready, ends[pred][0])
            device, point = self._allocate(name, base_ready)
            # Charge PCIe for every producer that ran on a different
            # physical device (data bounces through host DRAM).
            ready = arrival_ms
            for pred in graph.predecessors(name):
                pred_end, pred_dev = ends[pred]
                if pred_dev != device.device_id:
                    pred_end += self.pcie.device_to_device_ms(
                        graph.edge_bytes(pred, name)
                    )
                ready = max(ready, pred_end)
            noise = float(self._rng.lognormal(0.0, NOISE_SIGMA))
            _, end = device.dispatch(
                name, point, ready, self._gpu_window(device), noise
            )
            ends[name] = (end, device.device_id)

        completion = max(ends[s][0] for s in graph.sinks())
        predicted = self._plan_makespan_ms
        record = RequestRecord(arrival_ms, completion, predicted)
        self.monitor.record_completion(record.latency_ms, predicted or None)
        return record

    def _gpu_window(self, device: AcceleratorInstance) -> float:
        if device.device_type != DeviceType.GPU:
            return 0.0
        if self.system.policy == SchedulingPolicy.POLY:
            # Poly opens a batching window only in high-performance mode:
            # a small admission delay keeps the GPU in its efficient
            # batched regime under load, while light load stays
            # latency-optimal with immediate launches.
            return min(0.04 * self.app.qos_ms, 10.0) if self._was_loaded else 0.0
        return self.system.batch_window_ms

    def _allocate(
        self, kernel_name: str, ready_ms: float
    ) -> Tuple[AcceleratorInstance, DesignPoint]:
        """Pick the executing (device, implementation) for one kernel.

        The preferred platform (first in the plan's dict) wins unless
        its best instance is backlogged beyond ``_OVERFLOW_FACTOR``
        times the implementation latency, in which case the earliest
        finisher across all planned platforms is taken — Poly's dynamic
        reallocation under load imbalance.
        """
        entries = list(self._plan[kernel_name].items())
        if not entries:
            raise RuntimeError(f"kernel {kernel_name!r} has no planned platform")

        pref_platform, pref_point = entries[0]
        pref_dev = min(
            self._by_platform[pref_platform],
            key=lambda d: (
                d.estimate_finish(kernel_name, pref_point, ready_ms),
                d.device_id,
            ),
        )
        pref_finish = pref_dev.estimate_finish(kernel_name, pref_point, ready_ms)
        backlog = pref_finish - ready_ms

        if len(entries) == 1 or backlog <= (
            self._OVERFLOW_FACTOR * pref_point.latency_ms
        ):
            return pref_dev, pref_point

        best = (pref_finish, pref_dev.device_id, pref_dev, pref_point)
        for platform, point in entries[1:]:
            for dev in self._by_platform[platform]:
                finish = dev.estimate_finish(kernel_name, point, ready_ms)
                cand = (finish, dev.device_id, dev, point)
                if cand[:2] < best[:2]:
                    best = cand
        return best[2], best[3]

    # -- accounting -------------------------------------------------------------

    def all_records(self) -> List[ExecutionRecord]:
        out: List[ExecutionRecord] = []
        for dev in self.devices:
            out.extend(dev.records)
        return out

    def capacity_estimate_rps(self) -> float:
        """Crude sustained-throughput estimate of the current plan,
        used by the monitor's load normalization."""
        if not self._plan:
            return 1.0
        busy: Dict[str, float] = {}
        for name, per_platform in self._plan.items():
            platform, point = next(iter(per_platform.items()))  # preferred
            amortize = 1.0
            if self._by_platform[platform][0].device_type == DeviceType.GPU:
                # Batching amortization at a typical operating batch.
                lat1, _ = self._latency_of_platform(platform, name, point, 1)
                lat8, _ = self._latency_of_platform(platform, name, point, 8)
                amortize = lat8 / (8.0 * lat1)
            lat, _ = self._latency_of_platform(platform, name, point, 1)
            busy[platform] = busy.get(platform, 0.0) + lat * amortize
        rps = float("inf")
        for platform, total in busy.items():
            count = len(self._by_platform[platform])
            rps = min(rps, count * 1000.0 / total)
        return rps

    def _latency_of_platform(self, platform, name, point, batch):
        spec = self._by_platform[platform][0].spec
        return self._latency_of(spec)(name, point, batch)
