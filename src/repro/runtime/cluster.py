"""Leaf-node architectures and provisioning (Table III, Section II-A).

Three architectures are compared throughout the paper, all provisioned
under a common node power cap from the accelerators' peak powers:

* **Homo-GPU**   — GPUs only, static hard-mapped scheduling;
* **Homo-FPGA**  — FPGAs only, static hard-mapped scheduling;
* **Heter-Poly** — both, driven by Poly's runtime scheduler.

``provision`` implements the power-split rule of Section VI-D: given a
cap and a GPU/FPGA split ratio, the device counts are the largest that
fit each side's budget.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..hardware.specs import (
    AMD_W9100,
    INTEL_ARRIA10,
    NVIDIA_K20,
    XILINX_7V3,
    XILINX_ZCU102,
    FPGASpec,
    GPUSpec,
)

__all__ = [
    "SchedulingPolicy",
    "SystemConfig",
    "provision",
    "setting",
    "SETTINGS",
    "DEFAULT_POWER_CAP_W",
]

#: Leaf-node accelerator power cap used in the static evaluation.
DEFAULT_POWER_CAP_W = 500.0


class SchedulingPolicy(enum.Enum):
    """Runtime policy of a system architecture."""

    POLY = "poly"       # two-step Poly scheduler, dynamic
    STATIC = "static"   # hard mapping, fixed implementation [4]


@dataclass(frozen=True)
class SystemConfig:
    """One leaf-node architecture: device inventory plus policy."""

    codename: str
    gpu_spec: Optional[GPUSpec]
    n_gpus: int
    fpga_spec: Optional[FPGASpec]
    n_fpgas: int
    policy: SchedulingPolicy
    #: Static GPU systems wait this long to assemble request batches
    #: (the batching latency the IR discussion in Section VI-B blames);
    #: Poly relies on natural queue-driven batching instead.
    batch_window_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.n_gpus < 0 or self.n_fpgas < 0:
            raise ValueError("device counts must be non-negative")
        if self.n_gpus == 0 and self.n_fpgas == 0:
            raise ValueError(f"system {self.codename!r} has no devices")
        if self.n_gpus > 0 and self.gpu_spec is None:
            raise ValueError("n_gpus > 0 requires a gpu_spec")
        if self.n_fpgas > 0 and self.fpga_spec is None:
            raise ValueError("n_fpgas > 0 requires an fpga_spec")

    @property
    def peak_power_w(self) -> float:
        """Sum of accelerator peak powers (the provisioning constraint)."""
        gpu = self.gpu_spec.peak_power_w * self.n_gpus if self.gpu_spec else 0.0
        fpga = self.fpga_spec.peak_power_w * self.n_fpgas if self.fpga_spec else 0.0
        return gpu + fpga

    @property
    def capex_usd(self) -> float:
        """Accelerator purchase cost (feeds the TCO model)."""
        gpu = self.gpu_spec.price_usd * self.n_gpus if self.gpu_spec else 0.0
        fpga = self.fpga_spec.price_usd * self.n_fpgas if self.fpga_spec else 0.0
        return gpu + fpga

    @property
    def platforms(self) -> List:
        """Distinct platform specs present in the node."""
        out = []
        if self.n_gpus:
            out.append(self.gpu_spec)
        if self.n_fpgas:
            out.append(self.fpga_spec)
        return out

    def device_inventory(self) -> List[Tuple[str, object]]:
        """``(device_id, spec)`` for every accelerator instance."""
        devices: List[Tuple[str, object]] = []
        for i in range(self.n_gpus):
            devices.append((f"gpu{i}", self.gpu_spec))
        for i in range(self.n_fpgas):
            devices.append((f"fpga{i}", self.fpga_spec))
        return devices

    def __repr__(self) -> str:
        parts = []
        if self.n_gpus:
            parts.append(f"{self.gpu_spec.name} x{self.n_gpus}")
        if self.n_fpgas:
            parts.append(f"{self.fpga_spec.name} x{self.n_fpgas}")
        return (
            f"<SystemConfig {self.codename}: {' + '.join(parts)}, "
            f"{self.peak_power_w:.0f} W peak, {self.policy.value}>"
        )


def provision(
    codename: str,
    gpu_spec: Optional[GPUSpec],
    fpga_spec: Optional[FPGASpec],
    power_cap_w: float,
    gpu_power_split: float,
    policy: SchedulingPolicy,
    batch_window_ms: float = 0.0,
) -> SystemConfig:
    """Provision a node under ``power_cap_w`` at the given power split.

    ``gpu_power_split`` in [0, 1] is the fraction of the cap granted to
    GPUs (Fig. 13's x-axis); each side packs as many devices as fit.
    """
    if not 0.0 <= gpu_power_split <= 1.0:
        raise ValueError("gpu_power_split must be in [0, 1]")
    if power_cap_w <= 0:
        raise ValueError("power cap must be positive")
    n_gpus = (
        int((power_cap_w * gpu_power_split + 1e-6) // gpu_spec.peak_power_w)
        if gpu_spec and gpu_power_split > 0
        else 0
    )
    n_fpgas = (
        int((power_cap_w * (1 - gpu_power_split) + 1e-6) // fpga_spec.peak_power_w)
        if fpga_spec and gpu_power_split < 1
        else 0
    )
    return SystemConfig(
        codename=codename,
        gpu_spec=gpu_spec,
        n_gpus=n_gpus,
        fpga_spec=fpga_spec,
        n_fpgas=n_fpgas,
        policy=policy,
        batch_window_ms=batch_window_ms,
    )


#: Table III: the three hardware settings.  Device counts are the
#: paper's (Homo-GPU x2 GPUs; Homo-FPGA x10/x16/x8 FPGAs; Heter-Poly at
#: the 50%-50% split).
_SETTING_PARTS = {
    "I": (AMD_W9100, XILINX_7V3, 10, 5),
    "II": (NVIDIA_K20, XILINX_ZCU102, 16, 8),
    "III": (NVIDIA_K20, INTEL_ARRIA10, 8, 4),
}


def setting(number: str, system: str) -> SystemConfig:
    """Build one Table-III configuration.

    ``number`` is ``"I" | "II" | "III"``; ``system`` is ``"Homo-GPU" |
    "Homo-FPGA" | "Heter-Poly"``.
    """
    try:
        gpu, fpga, n_fpga_homo, n_fpga_heter = _SETTING_PARTS[number]
    except KeyError:
        raise KeyError(f"unknown setting {number!r}; expected I, II or III") from None
    if system == "Homo-GPU":
        return SystemConfig(
            codename=f"Homo-GPU/{number}",
            gpu_spec=gpu,
            n_gpus=2,
            fpga_spec=None,
            n_fpgas=0,
            policy=SchedulingPolicy.STATIC,
            batch_window_ms=10.0,
        )
    if system == "Homo-FPGA":
        return SystemConfig(
            codename=f"Homo-FPGA/{number}",
            gpu_spec=None,
            n_gpus=0,
            fpga_spec=fpga,
            n_fpgas=n_fpga_homo,
            policy=SchedulingPolicy.STATIC,
        )
    if system == "Heter-Poly":
        return SystemConfig(
            codename=f"Heter-Poly/{number}",
            gpu_spec=gpu,
            n_gpus=1,
            fpga_spec=fpga,
            n_fpgas=n_fpga_heter,
            policy=SchedulingPolicy.POLY,
        )
    raise KeyError(
        f"unknown system {system!r}; expected Homo-GPU, Homo-FPGA or Heter-Poly"
    )


def SETTINGS(number: str) -> Dict[str, SystemConfig]:
    """All three systems of one setting, keyed by codename family."""
    return {
        name: setting(number, name)
        for name in ("Homo-GPU", "Homo-FPGA", "Heter-Poly")
    }
