"""Deterministic performance benchmark harness (``repro bench``).

Times the three hot paths the ROADMAP's "fast as the hardware allows"
goal cares about — per-app design-space exploration, the two-step
scheduler, and a fixed simulation run — over repeated trials, and emits
a schema-stable ``BENCH_<label>.json`` (medians, point counts, model
cache hit rates).  :mod:`repro.benchref.compare` gates a fresh result
against a checked-in baseline (``benchmarks/baseline.json``), which is
what CI's ``perf-smoke`` job runs.
"""

from .compare import BaselineComparison, compare_to_baseline, load_bench_json
from .harness import (
    SCHEMA_VERSION,
    calibrate,
    default_output_path,
    render_bench,
    run_bench,
    write_bench_json,
)

__all__ = [
    "SCHEMA_VERSION",
    "run_bench",
    "write_bench_json",
    "default_output_path",
    "render_bench",
    "calibrate",
    "load_bench_json",
    "compare_to_baseline",
    "BaselineComparison",
]
