"""Baseline comparison: the CI performance gate.

``benchmarks/baseline.json`` is a checked-in BENCH document recorded on
a reference machine.  A fresh run regresses when its *normalized* DSE
median — seconds divided by the run's own calibration time, i.e. the
cost in units of "this machine's scalar speed" — exceeds the baseline's
normalized median by more than ``max_ratio``.  Normalization is what
lets a laptop-recorded baseline gate a CI runner of a different speed
without hand-tuned fudge factors.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence

from .harness import SCHEMA_VERSION

__all__ = ["BaselineComparison", "compare_to_baseline", "load_bench_json"]

#: Sections of a per-app entry that are gated.  ``dse`` tracks the
#: offline exploration cost; ``sched`` tracks the cached runtime hot
#: path (``cold_s`` = plan-cache fill, ``median_s`` = warm steady state);
#: ``sim`` tracks the event-heap engine (``cold_s`` = plan/code-cache
#: fill, ``median_s`` = warm event-engine steady state); ``cluster``
#: tracks the fleet replay (dispatcher + autoscaler loop); ``obs``
#: tracks the traced event engine (native in-loop span emission);
#: ``dse_search`` tracks the budgeted guided explorer on the enlarged
#: synthetic space (``cold_s``/``median_s`` are the guided trials).
GATED_SECTIONS = ("dse", "sched", "sim", "cluster", "obs", "dse_search")

#: Metrics gated within each section (when present in both documents).
#: ``cold_s`` catches model-evaluation slowdowns the warm cache would
#: hide; ``median_s`` (warm under >=2 trials) catches cache regressions.
GATED_METRICS = ("median_s", "cold_s")


def load_bench_json(path) -> Dict:
    """Load and structurally validate one BENCH document."""
    doc = json.loads(Path(path).read_text())
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r} != supported {SCHEMA_VERSION}"
        )
    for key in ("label", "apps", "calibration_s"):
        if key not in doc:
            raise ValueError(f"{path}: missing BENCH key {key!r}")
    if doc["calibration_s"] <= 0:
        raise ValueError(f"{path}: calibration_s must be positive")
    return doc


@dataclass
class BaselineComparison:
    """Outcome of gating one BENCH run against a baseline."""

    max_ratio: float
    #: ``{(app, section): ratio}`` of normalized medians (current / base).
    ratios: Dict = field(default_factory=dict)
    #: Human-readable descriptions of gate failures.
    regressions: List[str] = field(default_factory=list)
    #: Apps present in only one of the two documents (not gated).
    skipped: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = []
        for (app, metric), ratio in sorted(self.ratios.items()):
            verdict = "OK" if ratio <= self.max_ratio else "REGRESSION"
            lines.append(
                f"  {app:4s} {metric:14s} {ratio:5.2f}x vs baseline "
                f"(gate {self.max_ratio:.1f}x) [{verdict}]"
            )
        for app in self.skipped:
            lines.append(f"  {app:4s} skipped: not in both documents")
        lines.append("gate: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def compare_to_baseline(
    current: Dict,
    baseline: Dict,
    max_ratio: float = 2.0,
    sections: Sequence[str] = GATED_SECTIONS,
) -> BaselineComparison:
    """Gate ``current`` against ``baseline`` on normalized medians.

    Only apps present in both documents are gated; a missing app is
    recorded as skipped rather than failed, so the gate keeps working
    while the benched app set evolves.
    """
    if max_ratio <= 0:
        raise ValueError("max_ratio must be positive")
    result = BaselineComparison(max_ratio=max_ratio)
    cur_cal = current["calibration_s"]
    base_cal = baseline["calibration_s"]
    cur_apps, base_apps = current["apps"], baseline["apps"]
    for app in sorted(set(cur_apps) | set(base_apps)):
        if app not in cur_apps or app not in base_apps:
            result.skipped.append(app)
            continue
        for section in sections:
            cur_sec = cur_apps[app].get(section)
            base_sec = base_apps[app].get(section)
            if not cur_sec or not base_sec:
                continue
            for metric in GATED_METRICS:
                cur_val = cur_sec.get(metric)
                base_val = base_sec.get(metric)
                if cur_val is None or base_val is None:
                    continue
                cur_norm = cur_val / cur_cal
                base_norm = base_val / base_cal
                ratio = cur_norm / base_norm if base_norm > 0 else float("inf")
                result.ratios[(app, f"{section}.{metric}")] = ratio
                if ratio > max_ratio:
                    result.regressions.append(
                        f"{app}/{section}.{metric}: normalized time "
                        f"{ratio:.2f}x the baseline (gate {max_ratio:.1f}x; "
                        f"current {cur_val*1000:.1f} ms, baseline "
                        f"{base_val*1000:.1f} ms)"
                    )
    return result
