"""Benchmark harness: timed DSE / scheduler / simulation trials.

Everything here is deterministic modulo wall-clock noise: the DSE and
scheduler are pure functions of the app and platform specs, and the
simulation replays a seeded Poisson stream.  Timings use
``time.perf_counter`` and are reported per trial plus as medians, so a
single noisy trial cannot fake a regression.

To make results comparable across machines of different speeds, every
run also times a fixed pure-Python calibration workload; gates divide
measured times by the calibration time (see
:mod:`repro.benchref.compare`), turning "seconds on this box" into
"multiples of this box's scalar speed".
"""

from __future__ import annotations

import gc
import json
import statistics
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import apps as apps_mod
from .. import runtime
from ..hardware.model_cache import clear_model_cache, model_cache
from ..scheduler import DeviceSlot, PolyScheduler

__all__ = [
    "SCHEMA_VERSION",
    "run_bench",
    "write_bench_json",
    "default_output_path",
    "render_bench",
    "calibrate",
]

#: Bump only on breaking changes to the BENCH JSON layout; consumers
#: (the CI gate, trend tooling) key off this.
SCHEMA_VERSION = 1

#: Iterations of the calibration loop (a fixed integer-sum workload).
_CALIBRATION_LOOPS = 2_000_000


def calibrate() -> float:
    """Seconds this machine needs for the fixed calibration workload."""
    start = time.perf_counter()
    acc = 0
    for i in range(_CALIBRATION_LOOPS):
        acc += i & 1023
    elapsed = time.perf_counter() - start
    # Keep the accumulator alive so the loop cannot be optimized away.
    assert acc >= 0
    return elapsed


def _timed_trials(fn, trials: int) -> List[float]:
    """Time ``trials`` calls of ``fn`` with the cyclic GC paused.

    Collector pauses scale with the number of live objects, so a trial
    late in a long process (a full-suite run, the test session) would
    otherwise measure the *process history* rather than ``fn`` — the
    allocation-heavy simulation trials drifted 2-4x slower purely from
    accumulated gen-2 scan cost.  Collecting up front and disabling the
    GC for the timed window removes that noise; refcounting still frees
    the (acyclic) bulk of each trial's garbage immediately.
    """
    out = []
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(trials):
            start = time.perf_counter()
            fn()
            out.append(time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return out


def _bench_dse(app, platforms, trials: int, n_jobs: int) -> Dict:
    """Time the full application DSE; trial 0 is cold (cache cleared),
    later trials run against the warm model cache.

    Cache accounting reads from an obs :class:`MetricsRegistry` bound to
    the model cache for the duration of the trials — the same counters a
    ``repro obs`` run exports — rather than scraping the cache's internal
    ints; the emitted ``cache`` keys stay schema-compatible with
    SCHEMA_VERSION 1 documents.
    """
    from ..obs.metrics import MetricsRegistry

    clear_model_cache()
    registry = MetricsRegistry()
    model_cache.bind_metrics(registry)
    try:
        trial_s: List[float] = []
        spaces = None
        for i in range(trials):
            start = time.perf_counter()
            spaces = app.explore(platforms, n_jobs=n_jobs)
            trial_s.append(time.perf_counter() - start)
        hits = int(registry.value("model_cache_hits_total"))
        misses = int(registry.value("model_cache_misses_total"))
        merges = int(registry.value("model_cache_merges_total"))
    finally:
        model_cache.bind_metrics(None)
    total = hits + misses
    assert spaces is not None
    points = sum(len(s) for s in spaces.values())
    pareto_points = sum(len(s.pareto()) for s in spaces.values())
    pruned_invalid = sum(
        getattr(s, "pruned_invalid", 0) for s in spaces.values()
    )
    return {
        "trial_s": trial_s,
        "median_s": statistics.median(trial_s),
        "cold_s": trial_s[0],
        "warm_median_s": (
            statistics.median(trial_s[1:]) if len(trial_s) > 1 else None
        ),
        "spaces": len(spaces),
        "points": points,
        "pareto_points": pareto_points,
        "pruned_invalid": pruned_invalid,
        "cache": {
            "hits": hits,
            "misses": misses,
            "merges": merges,
            "hit_rate": round(hits / total, 4) if total else 0.0,
        },
    }


def _bench_scheduler(app, system, spaces, trials: int) -> Dict:
    """Time the two-step schedule of one request on an idle node."""
    devices = [
        DeviceSlot(device_id, spec.name, spec.device_type)
        for device_id, spec in system.device_inventory()
    ]
    scheduler = PolyScheduler(spaces, app.qos_ms)
    n_swaps = 0

    def one() -> None:
        nonlocal n_swaps
        _, swaps = scheduler.schedule(app.graph, devices)
        n_swaps = len(swaps)

    trial_s = _timed_trials(one, trials)
    return {
        "trial_s": trial_s,
        "median_s": statistics.median(trial_s),
        "swaps": n_swaps,
    }


def _bench_simulation(
    app, system, spaces, trials: int, rps: float, duration_ms: float, seed: int
) -> Dict:
    """Time a fixed seeded Poisson-stream replay."""
    arrivals = runtime.poisson_arrivals(
        rps, duration_ms, rng=np.random.default_rng(seed)
    )
    p99 = float("nan")

    def one() -> None:
        nonlocal p99
        result = runtime.run_simulation(system, app, spaces, arrivals, seed=seed)
        p99 = result.p99_ms

    trial_s = _timed_trials(one, trials)
    return {
        "trial_s": trial_s,
        "median_s": statistics.median(trial_s),
        "requests": len(arrivals),
        "p99_ms": round(p99, 3),
    }


#: (requests/sec, stream duration ms) per sched-bench load level.
_SCHED_LOADS = {"low": (60.0, 6_000.0), "high": (400.0, 10_000.0)}


def _bench_sched(app, system, spaces, trials: int, seed: int) -> Dict:
    """Steady-state ``run_simulation`` throughput, plan cache on vs off.

    Replays the same seeded Poisson stream at a low and a high request
    rate.  One cached run fills a fresh
    :class:`~repro.scheduler.SchedulePlanCache` (the ``cached_cold_s``
    fill cost), then each trial times an uncached run (the exact legacy
    path, ``plan_cache=None``) back-to-back with a warm cached run
    (plan-cache hits + compiled dispatch + process-wide model-eval
    warmth).  Machine-speed noise (frequency scaling, a busy CI
    neighbour) drifts on timescales longer than one trial, so the gated
    ``speedup`` is the median of the *per-pair* ratios — each ratio
    compares two runs milliseconds apart — which is far more stable
    than a ratio of independent medians.  Both modes produce
    bit-identical results (reported as ``identical``); plan-cache hit
    accounting is read back from a bound :class:`MetricsRegistry`.
    """
    from ..obs.metrics import MetricsRegistry
    from ..scheduler import SchedulePlanCache

    loads: Dict = {}
    for load_key, (rps, duration_ms) in _SCHED_LOADS.items():
        arrivals = runtime.poisson_arrivals(
            rps, duration_ms, rng=np.random.default_rng(seed)
        )
        results = {}

        def run(plan_cache=None, mode=None):
            res = runtime.run_simulation(
                system, app, spaces, arrivals, seed=seed, plan_cache=plan_cache
            )
            if mode is not None and mode not in results:
                results[mode] = res
            return res

        clear_model_cache()
        registry = MetricsRegistry()
        cache = SchedulePlanCache()
        cache.bind_metrics(registry)
        try:
            cached_cold_s = _timed_trials(
                lambda: run(plan_cache=cache, mode="cached"), 1
            )[0]
            uncached_s: List[float] = []
            cached_warm_s: List[float] = []
            for _ in range(trials):
                uncached_s += _timed_trials(lambda: run(mode="uncached"), 1)
                cached_warm_s += _timed_trials(
                    lambda: run(plan_cache=cache), 1
                )
            hits = int(registry.value("plan_cache_hits_total"))
            misses = int(registry.value("plan_cache_misses_total"))
            evictions = int(registry.value("plan_cache_evictions_total"))
        finally:
            cache.bind_metrics(None)
        total = hits + misses

        uncached_median = statistics.median(uncached_s)
        cached_warm = statistics.median(cached_warm_s)
        pair_speedups = [
            u / c for u, c in zip(uncached_s, cached_warm_s)
        ]
        n = len(arrivals)
        identical = [
            r.latency_ms for r in results["uncached"].requests
        ] == [r.latency_ms for r in results["cached"].requests]
        loads[load_key] = {
            "rps": rps,
            "duration_ms": duration_ms,
            "requests": n,
            "uncached_trial_s": uncached_s,
            "uncached_median_s": uncached_median,
            "uncached_req_per_s": n / uncached_median,
            "cached_cold_s": cached_cold_s,
            "cached_warm_trial_s": cached_warm_s,
            "cached_warm_median_s": cached_warm,
            "cached_warm_req_per_s": n / cached_warm,
            "pair_speedups": pair_speedups,
            "speedup": statistics.median(pair_speedups),
            "p99_ms": round(results["cached"].p99_ms, 3),
            "identical": identical,
            "plan_cache": {
                "hits": hits,
                "misses": misses,
                "evictions": evictions,
                "hit_rate": round(hits / total, 4) if total else 0.0,
            },
        }

    high = loads["high"]
    return {
        # Generic-gate keys (median_s / cold_s) describe the cached mode
        # at high load — the steady state the CI baseline tracks.
        "trial_s": [high["cached_cold_s"]] + high["cached_warm_trial_s"],
        "median_s": high["cached_warm_median_s"],
        "cold_s": high["cached_cold_s"],
        "speedup": high["speedup"],
        "loads": loads,
    }


#: (requests/sec, stream duration ms) per sim-bench load level — same
#: levels as the sched bench so the two sections compose into one story
#: (plan cache speedup x engine speedup).
_SIM_LOADS = {"low": (60.0, 6_000.0), "high": (400.0, 10_000.0)}


def _bench_sim(app, system, spaces, trials: int, seed: int) -> Dict:
    """Event-heap engine throughput vs. the legacy per-request loop.

    Replays the same seeded Poisson stream through
    ``run_simulation(engine="legacy")`` (the pre-rewrite submit loop,
    no plan cache — exactly what every caller ran before the engine
    landed) and through ``engine="event"`` with a warm
    :class:`~repro.scheduler.SchedulePlanCache` (the full fast path:
    chunked arrival events, incremental EST tables, compiled per-plan
    dispatch programs).  One warm-up event run fills the plan cache and
    the process-wide code cache (``event_cold_s``); each trial then
    times a legacy run back-to-back with a warm event run, and the
    gated ``speedup`` is the median of the per-pair ratios — robust to
    machine-speed drift, like the sched bench.  Both engines produce
    float-identical request streams (``identical``), golden-tested in
    ``tests/test_engine.py`` and re-checked here per load level.
    """
    from ..scheduler import SchedulePlanCache

    loads: Dict = {}
    for load_key, (rps, duration_ms) in _SIM_LOADS.items():
        arrivals = runtime.poisson_arrivals(
            rps, duration_ms, rng=np.random.default_rng(seed)
        )
        results = {}

        def run(engine, plan_cache=None, mode=None):
            res = runtime.run_simulation(
                system, app, spaces, arrivals, seed=seed,
                plan_cache=plan_cache, engine=engine,
            )
            if mode is not None and mode not in results:
                results[mode] = res
            return res

        clear_model_cache()
        cache = SchedulePlanCache()
        event_cold_s = _timed_trials(
            lambda: run("event", plan_cache=cache, mode="event"), 1
        )[0]
        legacy_s: List[float] = []
        event_warm_s: List[float] = []
        for _ in range(trials):
            legacy_s += _timed_trials(lambda: run("legacy", mode="legacy"), 1)
            event_warm_s += _timed_trials(
                lambda: run("event", plan_cache=cache), 1
            )

        legacy_median = statistics.median(legacy_s)
        event_warm = statistics.median(event_warm_s)
        pair_speedups = [lg / ev for lg, ev in zip(legacy_s, event_warm_s)]
        n = len(arrivals)
        identical = [
            (r.arrival_ms, r.completion_ms, r.predicted_ms)
            for r in results["legacy"].requests
        ] == [
            (r.arrival_ms, r.completion_ms, r.predicted_ms)
            for r in results["event"].requests
        ] and results["legacy"].power_bins_w.tolist() == results[
            "event"
        ].power_bins_w.tolist()
        loads[load_key] = {
            "rps": rps,
            "duration_ms": duration_ms,
            "requests": n,
            "legacy_trial_s": legacy_s,
            "legacy_median_s": legacy_median,
            "legacy_req_per_s": n / legacy_median,
            "event_cold_s": event_cold_s,
            "event_warm_trial_s": event_warm_s,
            "event_warm_median_s": event_warm,
            "event_req_per_s": n / event_warm,
            "pair_speedups": pair_speedups,
            "speedup": statistics.median(pair_speedups),
            "p99_ms": round(results["event"].p99_ms, 3),
            "identical": identical,
        }

    high = loads["high"]
    return {
        # Generic-gate keys (median_s / cold_s) describe the event
        # engine at high load — the steady state the CI baseline tracks.
        "trial_s": [high["event_cold_s"]] + high["event_warm_trial_s"],
        "median_s": high["event_warm_median_s"],
        "cold_s": high["event_cold_s"],
        "speedup": high["speedup"],
        "loads": loads,
    }


#: (requests/sec, stream duration ms) per obs-bench load level — the
#: sim-bench levels, so retained-speedup composes with the engine story.
_OBS_LOADS = {"low": (60.0, 6_000.0), "high": (400.0, 10_000.0)}

#: Head-sampling policy exercised per load level to document the
#: artifact-bounding ratio (tail criteria keep QoS violators).
_OBS_SAMPLE_RATE = 0.1


def _bench_obs(app, system, spaces, trials: int, seed: int) -> Dict:
    """Traced-engine overhead and retained speedup vs. the legacy loop.

    The sim bench times the *untraced* engines; this section answers
    the observability question PR 7 left open — what does turning the
    tracer on cost?  Per load level it replays the same seeded stream
    three ways: traced legacy (the golden anchor), traced event engine
    (native buffered emission), and untraced event engine.  Each trial
    times the three back-to-back; the gated ``speedup`` is the median
    per-pair traced-legacy / traced-event ratio (the *retained* engine
    speedup with tracing on, CI-gated via ``--min-obs-retention``), and
    ``overhead`` is traced-event / untraced-event.  Event-stream
    construction stays inside the timed window (buffered raw records);
    :class:`~repro.obs.tracer.TraceEvent` materialization is lazy and
    happens at export for either engine, so it is excluded
    symmetrically.  One traced pair per level is byte-compared
    (``identical``) — the same golden contract ``tests/test_engine.py``
    enforces — and the level's stream is head+tail sampled at
    ``_OBS_SAMPLE_RATE`` to document the bounded-artifact ratio.
    """
    from ..obs.sampling import SamplingPolicy, sample_events
    from ..obs.tracer import SpanTracer
    from ..scheduler import SchedulePlanCache

    loads: Dict = {}
    for load_key, (rps, duration_ms) in _OBS_LOADS.items():
        arrivals = runtime.poisson_arrivals(
            rps, duration_ms, rng=np.random.default_rng(seed)
        )
        tracers: Dict[str, SpanTracer] = {}

        def run(engine, plan_cache=None, traced=True, mode=None):
            tracer = SpanTracer() if traced else None
            runtime.run_simulation(
                system, app, spaces, arrivals, seed=seed,
                plan_cache=plan_cache, engine=engine, tracer=tracer,
            )
            if mode is not None and mode not in tracers:
                tracers[mode] = tracer
            return tracer

        clear_model_cache()
        cache = SchedulePlanCache()
        event_cold_s = _timed_trials(
            lambda: run("event", plan_cache=cache, mode="event"), 1
        )[0]
        legacy_s: List[float] = []
        event_s: List[float] = []
        untraced_s: List[float] = []
        for _ in range(trials):
            legacy_s += _timed_trials(
                lambda: run("legacy", mode="legacy"), 1
            )
            event_s += _timed_trials(
                lambda: run("event", plan_cache=cache), 1
            )
            untraced_s += _timed_trials(
                lambda: run("event", plan_cache=cache, traced=False), 1
            )

        legacy_median = statistics.median(legacy_s)
        event_median = statistics.median(event_s)
        untraced_median = statistics.median(untraced_s)
        pair_speedups = [lg / ev for lg, ev in zip(legacy_s, event_s)]
        identical = [
            e.to_dict() for e in tracers["legacy"].events
        ] == [e.to_dict() for e in tracers["event"].events]
        events = tracers["event"].events
        sampled = sample_events(
            events,
            SamplingPolicy(
                head_rate=_OBS_SAMPLE_RATE, seed=seed, tail_qos_ms=app.qos_ms
            ),
        )
        n = len(arrivals)
        loads[load_key] = {
            "rps": rps,
            "duration_ms": duration_ms,
            "requests": n,
            "events": len(events),
            "legacy_trial_s": legacy_s,
            "legacy_median_s": legacy_median,
            "event_cold_s": event_cold_s,
            "event_trial_s": event_s,
            "event_median_s": event_median,
            "untraced_trial_s": untraced_s,
            "untraced_median_s": untraced_median,
            "pair_speedups": pair_speedups,
            "speedup": statistics.median(pair_speedups),
            "overhead": round(event_median / untraced_median, 4),
            "identical": identical,
            "sampling": {
                "head_rate": _OBS_SAMPLE_RATE,
                "kept_events": len(sampled.events),
                "total_events": len(events),
                "kept_requests": len(sampled.kept_requests),
                "dropped_spans": sampled.dropped_spans,
            },
        }

    high = loads["high"]
    return {
        # Generic-gate keys (median_s / cold_s) describe the traced
        # event engine at high load — the steady state the CI baseline
        # tracks.
        "trial_s": [high["event_cold_s"]] + high["event_trial_s"],
        "median_s": high["event_median_s"],
        "cold_s": high["event_cold_s"],
        "speedup": high["speedup"],
        "overhead": high["overhead"],
        "loads": loads,
    }


#: Mini diurnal utilization profile for the cluster bench: one
#: compressed rise-peak-fall swing that forces the autoscaler through a
#: full scale-up *and* scale-down episode per trial.
_CLUSTER_PROFILE = (0.15, 0.3, 0.6, 0.9, 0.95, 0.7, 0.4, 0.15, 0.1, 0.1)
_CLUSTER_INTERVAL_S = 9.0
#: Offered peak load as a multiple of one node's sustained capacity
#: (>1 so a single node cannot absorb the peak).
_CLUSTER_PEAK_FACTOR = 2.5


def _bench_cluster(app, system, spaces, trials: int, seed: int) -> Dict:
    """Time one fleet replay of the mini diurnal profile.

    Each trial drives a fresh :class:`~repro.cluster.ClusterSimulation`
    (an instance runs once) over the same seeded arrival stream, so
    every trial reproduces the identical routing/scaling decisions and
    wall-clock is the only variable.  The emitted section carries the
    fleet-level quality metrics the baseline gate and trend tooling
    track: served throughput, fleet p99, QoS-interval fraction, and the
    scale-up/scale-down lags (``None`` when the replay had no such
    episode — absent episodes are not zero-lag episodes).
    """
    from ..cluster import AutoscalerConfig, ClusterSimulation
    from ..runtime.trace import UtilizationTrace

    trace = UtilizationTrace(
        _CLUSTER_PROFILE, _CLUSTER_INTERVAL_S, name="bench-mini-diurnal"
    )
    config = AutoscalerConfig(min_nodes=1, max_nodes=6)

    def build():
        return ClusterSimulation(
            system, app, spaces, config=config, seed=seed
        )

    peak_rps = build()._template_capacity(system) * _CLUSTER_PEAK_FACTOR
    result = None

    def one() -> None:
        nonlocal result
        result = build().replay(trace, peak_rps=peak_rps)

    trial_s = _timed_trials(one, trials)
    assert result is not None
    up_lag = result.scale_up_lag_ms
    down_lag = result.scale_down_lag_ms
    return {
        "trial_s": trial_s,
        "median_s": statistics.median(trial_s),
        "cold_s": trial_s[0],
        "requests": len(result.requests),
        "peak_rps": round(peak_rps, 3),
        "served_rps": round(result.served_rps, 3),
        "p99_ms": round(result.p99_ms, 3),
        "qos_ok_frac": round(result.qos_ok_frac(), 4),
        "mean_fleet": round(result.mean_fleet_size, 4),
        "launches": result.launches,
        "terminations": result.terminations,
        "scale_up_lag_ms": (
            round(up_lag, 3) if result.scale_up_lags_ms else None
        ),
        "scale_down_lag_ms": (
            round(down_lag, 3) if result.scale_down_lags_ms else None
        ),
        "cost_efficiency": round(result.cost_efficiency(), 6),
    }


#: Synthetic knob-space enlargement for the dse-search bench: a denser
#: frequency ladder plus extra work-group sizes.  Both knobs exist on
#: every device family, so the override multiplies each per-device
#: space — 10x on the GPU (freq 4->20, wg 4->8) and ~27x on the FPGA
#: (freq 3->20, wg 2->8) — without inventing knobs the models ignore.
_DSE_SEARCH_OVERRIDES = {
    "freq_scale": tuple(
        round(float(v), 4) for v in np.linspace(0.3, 1.0, 20)
    ),
    "work_group_size": (32, 64, 96, 128, 192, 256, 384, 512),
}

#: Evaluation budget the guided explorer gets on the enlarged space.
_DSE_SEARCH_MAX_EVALS = 512


def _bench_dse_search(app, platforms, trials: int, n_jobs: int, seed: int) -> Dict:
    """Guided (successive-halving + genetic) DSE vs. exhaustive enumeration.

    Two questions, answered on two spaces:

    * **Exactness** — on the app's real (un-enlarged) knob space the
      guided explorer gets an unbounded budget, which makes every
      (kernel, platform) run exhaustive-equivalent; its Pareto front
      must equal the exhaustive front point-for-point
      (``front_identical``, the golden A/B contract of
      ``tests/test_search.py``).
    * **Efficiency** — on the :data:`_DSE_SEARCH_OVERRIDES`-enlarged
      space (>=10x per device) the budgeted explorer must recover
      >=99% of the exhaustive hypervolume with a fraction of the model
      evaluations.  Each trial times exhaustive and guided
      back-to-back from a cold model cache, so the gated ``speedup``
      is a median of per-pair ratios like the sched/sim benches;
      requested-evaluation counts come from the cache's own counters
      (hits + misses == evaluations the strategy asked for).

    Hypervolume ratios share one reference per (kernel, platform) —
    1.05x the exhaustive space's worst corner — so guided fronts are
    scored against the ground-truth frame, not their own.  The
    enlarged-space runs use ``validate=False``: per-config lint over a
    ~30x space measures the linter, not the search.
    """
    from ..optim.dse import explore_application
    from ..optim.search import SearchConfig, space_hypervolume

    def explore(strategy, search=None, overrides=None):
        return explore_application(
            app.kernels, platforms, n_jobs=n_jobs, strategy=strategy,
            search=search, candidate_overrides=overrides,
        )

    def front_key(space):
        return [
            (p.config, p.latency_ms, p.power_w) for p in space.pareto()
        ]

    # Exactness on the real space: unbounded budget -> exhaustive-
    # equivalent guided runs, fronts must match exactly.
    clear_model_cache()
    exact_exhaustive = explore("exhaustive")
    full_budget = SearchConfig(max_evals=10**9, seed=seed)
    exact_guided = explore("guided", search=full_budget)
    front_identical = all(
        front_key(exact_exhaustive[key]) == front_key(exact_guided[key])
        for key in exact_exhaustive
    )

    # Efficiency on the enlarged space: paired cold-vs-cold trials.
    search = SearchConfig(max_evals=_DSE_SEARCH_MAX_EVALS, seed=seed)
    exhaustive_s: List[float] = []
    guided_s: List[float] = []
    exhaustive_spaces = guided_spaces = None
    exhaustive_evals = 0
    for _ in range(trials):
        clear_model_cache()
        start = time.perf_counter()
        exhaustive_spaces = explore(
            "exhaustive", overrides=_DSE_SEARCH_OVERRIDES
        )
        exhaustive_s.append(time.perf_counter() - start)
        exhaustive_evals = model_cache.hits + model_cache.misses
        clear_model_cache()
        start = time.perf_counter()
        guided_spaces = explore(
            "guided", search=search, overrides=_DSE_SEARCH_OVERRIDES
        )
        guided_s.append(time.perf_counter() - start)
    assert exhaustive_spaces is not None and guided_spaces is not None

    guided_evals = sum(
        s.search_stats.evaluations for s in guided_spaces.values()
    )
    explored = sum(
        s.search_stats.explored for s in guided_spaces.values()
    )
    ratios = []
    for key, ex_space in exhaustive_spaces.items():
        reference = (
            1.05 * max(p.latency_ms for p in ex_space),
            1.05 * max(p.power_w for p in ex_space),
        )
        hv_exhaustive = space_hypervolume(ex_space, reference)
        hv_guided = space_hypervolume(guided_spaces[key], reference)
        ratios.append(hv_guided / hv_exhaustive if hv_exhaustive else 1.0)

    pair_speedups = [ex / g for ex, g in zip(exhaustive_s, guided_s)]
    return {
        "trial_s": guided_s,
        "median_s": statistics.median(guided_s),
        "cold_s": guided_s[0],
        "exhaustive_trial_s": exhaustive_s,
        "exhaustive_median_s": statistics.median(exhaustive_s),
        "pair_speedups": pair_speedups,
        "speedup": statistics.median(pair_speedups),
        "explored": explored,
        "exhaustive_evaluations": exhaustive_evals,
        "guided_evaluations": guided_evals,
        "eval_ratio": (
            round(exhaustive_evals / guided_evals, 4) if guided_evals else None
        ),
        "hypervolume_ratio": round(min(ratios), 6),
        "hypervolume_ratio_mean": round(
            sum(ratios) / len(ratios), 6
        ),
        "front_identical": front_identical,
        "max_evals": _DSE_SEARCH_MAX_EVALS,
        "seed": seed,
    }


#: Section sets per bench suite.
_SUITES = ("full", "sched", "sim", "cluster", "obs", "dse")


def run_bench(
    app_names: Optional[Sequence[str]] = None,
    setting: str = "I",
    system_name: str = "Heter-Poly",
    trials: int = 3,
    n_jobs: int = 1,
    rps: float = 20.0,
    duration_ms: float = 2_000.0,
    seed: int = 0,
    label: str = "local",
    suite: str = "full",
) -> Dict:
    """Run the harness; returns the BENCH document as a dict.

    ``suite`` selects the sections: ``"full"`` runs DSE + scheduler +
    simulation + sched + sim + cluster + obs + dse-search (everything),
    ``"sched"`` runs only the runtime sched benchmark (plan-cache
    on/off throughput), ``"sim"`` runs only the engine benchmark
    (event-heap vs. legacy loop throughput), ``"cluster"`` runs only
    the fleet replay benchmark, ``"obs"`` runs only the
    tracing-overhead benchmark (retained traced-engine speedup vs. the
    legacy loop), and ``"dse"`` runs only the guided-vs-exhaustive
    search benchmark (paired timing, eval counts, hypervolume ratio).
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    if suite not in _SUITES:
        raise ValueError(f"unknown suite {suite!r}; choose from {_SUITES}")
    names = [n.upper() for n in (app_names or sorted(apps_mod.APP_BUILDERS))]
    unknown = [n for n in names if n not in apps_mod.APP_BUILDERS]
    if unknown:
        raise KeyError(
            f"unknown app(s) {unknown}; choose from {sorted(apps_mod.APP_BUILDERS)}"
        )
    system = runtime.setting(setting, system_name)
    doc: Dict = {
        "schema_version": SCHEMA_VERSION,
        "label": label,
        "setting": setting,
        "system": system_name,
        "trials": trials,
        "n_jobs": n_jobs,
        "suite": suite,
        "calibration_s": calibrate(),
        "apps": {},
    }
    for name in names:
        app = apps_mod.build(name)
        row: Dict = {}
        if suite == "full":
            row["dse"] = _bench_dse(app, system.platforms, trials, n_jobs)
        spaces = app.explore(system.platforms)  # warm: cache hits only
        if suite == "full":
            row["scheduler"] = _bench_scheduler(app, system, spaces, trials)
            row["simulation"] = _bench_simulation(
                app, system, spaces, trials, rps, duration_ms, seed
            )
        if suite in ("full", "sched"):
            row["sched"] = _bench_sched(app, system, spaces, trials, seed)
        if suite in ("full", "sim"):
            row["sim"] = _bench_sim(app, system, spaces, trials, seed)
        if suite in ("full", "cluster"):
            row["cluster"] = _bench_cluster(app, system, spaces, trials, seed)
        if suite in ("full", "obs"):
            row["obs"] = _bench_obs(app, system, spaces, trials, seed)
        if suite in ("full", "dse"):
            row["dse_search"] = _bench_dse_search(
                app, system.platforms, trials, n_jobs, seed
            )
        doc["apps"][name] = row
    return doc


def default_output_path(label: str, directory: str = ".") -> Path:
    """The conventional ``BENCH_<label>.json`` location."""
    return Path(directory) / f"BENCH_{label}.json"


def write_bench_json(doc: Dict, path) -> Path:
    """Serialize one BENCH document (stable key order, trailing newline)."""
    out = Path(path)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return out


def render_bench(doc: Dict) -> str:
    """Human-readable summary of one BENCH document."""
    lines = [
        f"bench '{doc['label']}' on {doc['system']}/Setting-{doc['setting']} "
        f"({doc['trials']} trial(s), n_jobs={doc['n_jobs']}, "
        f"calibration {doc['calibration_s']*1000:.0f} ms)"
    ]
    for name, row in doc["apps"].items():
        if "dse" in row:
            dse, sched, sim = row["dse"], row["scheduler"], row["simulation"]
            warm = dse["warm_median_s"]
            warm_txt = f"{warm*1000:8.1f}" if warm is not None else "     n/a"
            lines.append(
                f"  {name:4s} dse {dse['cold_s']*1000:8.1f} ms cold /{warm_txt} ms warm "
                f"({dse['points']} pts, cache {dse['cache']['hit_rate']*100:.0f}% hits)  "
                f"sched {sched['median_s']*1000:7.2f} ms  "
                f"sim {sim['median_s']*1000:8.1f} ms (p99 {sim['p99_ms']:.1f} ms)"
            )
        if "sched" in row:
            s = row["sched"]
            high = s["loads"]["high"]
            lines.append(
                f"  {name:4s} sched-rt {high['uncached_median_s']*1000:8.1f} ms uncached / "
                f"{s['median_s']*1000:8.1f} ms cached warm "
                f"({s['speedup']:.2f}x, {high['requests']} reqs, "
                f"plan cache {high['plan_cache']['hit_rate']*100:.0f}% hits, "
                f"identical={high['identical']})"
            )
        if "sim" in row:
            s = row["sim"]
            high = s["loads"]["high"]
            lines.append(
                f"  {name:4s} sim      {high['legacy_median_s']*1000:8.1f} ms legacy / "
                f"{s['median_s']*1000:8.1f} ms event warm "
                f"({s['speedup']:.2f}x, {high['requests']} reqs, "
                f"{high['event_req_per_s']:,.0f} req/s, "
                f"identical={high['identical']})"
            )
        if "cluster" in row:
            c = row["cluster"]
            up = c["scale_up_lag_ms"]
            down = c["scale_down_lag_ms"]
            lines.append(
                f"  {name:4s} cluster {c['median_s']*1000:8.1f} ms "
                f"({c['requests']} reqs @ {c['served_rps']:.1f} rps, "
                f"p99 {c['p99_ms']:.1f} ms, fleet {c['mean_fleet']:.1f}, "
                f"qos-ok {c['qos_ok_frac']*100:.0f}%, "
                f"lag up {f'{up:.0f} ms' if up is not None else 'n/a'} / "
                f"down {f'{down:.0f} ms' if down is not None else 'n/a'})"
            )
        if "obs" in row:
            o = row["obs"]
            high = o["loads"]["high"]
            samp = high["sampling"]
            lines.append(
                f"  {name:4s} obs     {high['legacy_median_s']*1000:8.1f} ms traced legacy / "
                f"{o['median_s']*1000:8.1f} ms traced event "
                f"({o['speedup']:.2f}x retained, {o['overhead']:.2f}x overhead, "
                f"{high['events']:,} events, "
                f"sampled {samp['kept_events']:,}, "
                f"identical={high['identical']})"
            )
        if "dse_search" in row:
            d = row["dse_search"]
            lines.append(
                f"  {name:4s} dse-srch {d['exhaustive_median_s']*1000:8.1f} ms exhaustive / "
                f"{d['median_s']*1000:8.1f} ms guided "
                f"({d['speedup']:.2f}x, evals {d['exhaustive_evaluations']} vs "
                f"{d['guided_evaluations']} ({d['eval_ratio']:.1f}x), "
                f"hv {d['hypervolume_ratio']:.4f}, "
                f"front_identical={d['front_identical']})"
            )
    return "\n".join(lines)
