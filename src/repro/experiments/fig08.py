"""Fig. 8 — maximum system throughput under the QoS bound (Section VI-B).

For every benchmark and system, the largest sustained request rate with
p99 <= 200 ms, normalized by the common RPS anchor; plus the average
and geometric-mean columns.  Headline shape: Heter-Poly consistently
beats both baselines — the paper reports +40% over Homo-GPU and +20%
over Homo-FPGA on average, with Homo-FPGA ahead of Homo-GPU on FQT (83%
vs 64%) and behind on compute-dense batched workloads.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..apps import APP_BUILDERS
from .harness import (
    DEFAULT_LOADS,
    PEAK_RPS,
    SYSTEM_NAMES,
    geomean,
    get_app,
    max_rps,
    render_table,
    systems,
)

__all__ = ["run", "render"]


def run(
    app_names: Sequence[str] = tuple(APP_BUILDERS),
    loads: Sequence[float] = DEFAULT_LOADS,
    duration_ms: float = 6000.0,
) -> Dict[str, Dict[str, float]]:
    """Returns ``{system: {app: normalized max throughput in [0,1]}}``
    plus ``avg``/``geomean`` summary keys."""
    archs = systems("I")
    out: Dict[str, Dict[str, float]] = {name: {} for name in SYSTEM_NAMES}
    for app_name in app_names:
        app = get_app(app_name)
        for sys_name in SYSTEM_NAMES:
            knee = max_rps(app, archs[sys_name], loads, duration_ms=duration_ms)
            out[sys_name][app_name] = knee / PEAK_RPS
    for sys_name in SYSTEM_NAMES:
        values = list(out[sys_name].values())
        out[sys_name]["avg"] = sum(values) / len(values)
        out[sys_name]["geomean"] = geomean(values)
    return out


def improvement_summary(data: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Heter-Poly's average improvement over each baseline (the paper's
    +40% / +20% numbers)."""
    poly = data["Heter-Poly"]["avg"]
    return {
        "vs_homo_gpu": poly / max(data["Homo-GPU"]["avg"], 1e-9) - 1.0,
        "vs_homo_fpga": poly / max(data["Homo-FPGA"]["avg"], 1e-9) - 1.0,
    }


def render(data: Dict[str, Dict[str, float]]) -> str:
    apps = [k for k in next(iter(data.values())) if k not in ("avg", "geomean")]
    headers = ("system", *apps, "avg", "geomean")
    rows = [
        (
            sys_name,
            *(f"{data[sys_name][a]*100:.0f}%" for a in apps),
            f"{data[sys_name]['avg']*100:.0f}%",
            f"{data[sys_name]['geomean']*100:.0f}%",
        )
        for sys_name in data
    ]
    imp = improvement_summary(data)
    table = render_table(
        headers, rows, "Fig. 8: normalized max throughput under 200 ms QoS"
    )
    return (
        table
        + f"\nHeter-Poly vs Homo-GPU: +{imp['vs_homo_gpu']*100:.0f}%"
        + f"   vs Homo-FPGA: +{imp['vs_homo_fpga']*100:.0f}%"
    )
