"""Fig. 13 — architecture scalability via the GPU/FPGA power split
(Section VI-D).

Sweeps the power split between GPUs and FPGAs from 0% (Homo-FPGA) to
100% (Homo-GPU) in 20% steps under a node power cap, for the device
pairs of all three settings, and measures the maximum throughput under
QoS.  Shape to reproduce: the heterogeneous points beat both endpoints,
with the peak strictly inside the interval.  (The paper sweeps a
1000 W cap; we default to the 500 W leaf-node cap our calibration
targets — at 1000 W our FPGA fleet is large enough that its endpoint
is no longer the paper's; pass ``power_cap_w=1000`` to reproduce the
raw sweep.)
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..runtime import SchedulingPolicy, provision
from .harness import DEFAULT_LOADS, get_app, max_rps, render_table

__all__ = ["run", "render", "SPLITS"]

# 20% steps plus the 55% point that affords the paper's Heter-Poly
# device mix (one 270 W GPU + five 45 W FPGAs) under a 500 W cap.
SPLITS = (0.0, 0.2, 0.4, 0.55, 0.8, 1.0)

#: Device pairs per Table-III setting.
_SETTING_PAIRS = {
    "I": ("AMD FirePro W9100", "Xilinx Virtex7-690t ADM-PCIE-7V3"),
    "II": ("NVIDIA Tesla K20", "Xilinx Zynq UltraScale+ ZCU102"),
    "III": ("NVIDIA Tesla K20", "Intel Arria 10 GX115"),
}


def run(
    setting_numbers: Sequence[str] = ("I", "II", "III"),
    app_name: str = "FQT",
    power_cap_w: float = 500.0,
    loads: Sequence[float] = DEFAULT_LOADS,
    duration_ms: float = 5000.0,
) -> Dict[str, List[Tuple[float, float]]]:
    """Returns ``{setting: [(split, max_rps), ...]}``."""
    from ..hardware.specs import spec_by_name

    app = get_app(app_name)
    out: Dict[str, List[Tuple[float, float]]] = {}
    for number in setting_numbers:
        gpu_name, fpga_name = _SETTING_PAIRS[number]
        gpu, fpga = spec_by_name(gpu_name), spec_by_name(fpga_name)
        curve: List[Tuple[float, float]] = []
        for split in SPLITS:
            # Pure endpoints use the static policy (they are the homo
            # baselines); mixed points run Poly.
            policy = (
                SchedulingPolicy.STATIC
                if split in (0.0, 1.0)
                else SchedulingPolicy.POLY
            )
            system = provision(
                codename=f"split-{split:.0%}",
                gpu_spec=gpu,
                fpga_spec=fpga,
                power_cap_w=power_cap_w,
                gpu_power_split=split,
                policy=policy,
                batch_window_ms=10.0 if policy == SchedulingPolicy.STATIC else 0.0,
            )
            if system.n_gpus == 0 and split > 0 and split < 1:
                # Split too small to afford a GPU; skip degenerate point.
                continue
            knee = max_rps(app, system, loads, duration_ms=duration_ms)
            curve.append((split, knee))
        out[number] = curve
    return out


def render(data: Dict[str, List[Tuple[float, float]]]) -> str:
    parts = []
    for number, curve in data.items():
        rows = [(f"{split*100:.0f}% GPU", f"{knee:.0f}") for split, knee in curve]
        parts.append(
            render_table(
                ("power split", "max RPS"),
                rows,
                f"Fig. 13 (Setting-{number}): throughput vs GPU/FPGA power split",
            )
        )
    return "\n\n".join(parts)
