"""Shared experiment machinery: system building, DSE caching, sweeps.

Every figure regenerator in this package uses the same primitives:

* ``systems(setting)`` — the three Table-III architectures;
* ``spaces_for(app, system)`` — cached offline DSE results;
* ``run_at(app, system, rps)`` — one simulation point;
* ``load_sweep`` / ``max_rps`` — the load sweeps behind Figs. 7-10.

The paper sweeps load from 10% to 100% of system saturation; we anchor
100% load at :data:`PEAK_RPS` requests/s for every benchmark so the
three systems of a setting share an x-axis.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from .. import apps as apps_mod
from ..apps.base import Application
from ..runtime import (
    SimulationResult,
    SystemConfig,
    max_throughput_under_qos,
    poisson_arrivals,
    run_simulation,
    setting,
)

__all__ = [
    "PEAK_RPS",
    "DEFAULT_LOADS",
    "SYSTEM_NAMES",
    "systems",
    "get_app",
    "spaces_for",
    "run_at",
    "load_sweep",
    "max_rps",
    "render_table",
]

#: 100%-load anchor (requests per second) shared by all benchmarks.
PEAK_RPS = 120.0

#: The paper's 10%..100% load levels (we default to a coarser grid to
#: keep the benchmark harness fast; pass explicit loads for full runs).
DEFAULT_LOADS = (0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0)

SYSTEM_NAMES = ("Homo-GPU", "Homo-FPGA", "Heter-Poly")

_app_cache: Dict[str, Application] = {}
_space_cache: Dict[Tuple[str, str], Mapping] = {}


def get_app(name: str) -> Application:
    """Benchmark instance (cached — building is cheap but DSE keys off
    object identity of kernels, so reuse matters)."""
    if name not in _app_cache:
        _app_cache[name] = apps_mod.build(name)
    return _app_cache[name]


def systems(setting_number: str = "I") -> Dict[str, SystemConfig]:
    """The three architectures of one Table-III setting."""
    return {name: setting(setting_number, name) for name in SYSTEM_NAMES}


def spaces_for(app: Application, system: SystemConfig):
    """Offline DSE results for (app, system), cached per platform set."""
    key = (app.name, "+".join(sorted(p.name for p in system.platforms)))
    if key not in _space_cache:
        _space_cache[key] = app.explore(system.platforms)
    return _space_cache[key]


def run_at(
    app: Application,
    system: SystemConfig,
    rps: float,
    duration_ms: float = 9000.0,
    seed: int = 0,
) -> SimulationResult:
    """Simulate one load point."""
    arrivals = poisson_arrivals(rps, duration_ms)
    return run_simulation(
        system, app, spaces_for(app, system), arrivals, seed=seed
    )


def load_sweep(
    app: Application,
    system: SystemConfig,
    loads: Sequence[float] = DEFAULT_LOADS,
    peak_rps: float = PEAK_RPS,
    duration_ms: float = 9000.0,
    seed: int = 0,
) -> List[Tuple[float, SimulationResult]]:
    """Sweep load levels; returns ``[(load, result), ...]``."""
    out = []
    for load in loads:
        rps = max(load * peak_rps, 1.0)
        out.append((load, run_at(app, system, rps, duration_ms, seed)))
    return out


def max_rps(
    app: Application,
    system: SystemConfig,
    loads: Sequence[float] = DEFAULT_LOADS,
    peak_rps: float = PEAK_RPS,
    duration_ms: float = 9000.0,
) -> float:
    """Maximum sustained RPS under the app's QoS bound (Fig. 8 metric)."""
    sweep = load_sweep(app, system, loads, peak_rps, duration_ms)
    return max_throughput_under_qos(
        [load * peak_rps for load, _ in sweep],
        [r.p99_ms for _, r in sweep],
        app.qos_ms,
    )


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table (what the benchmark harness prints)."""
    cols = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    def fmt(row):
        return "  ".join(str(c).ljust(w) for c, w in zip(row, cols))
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in cols))
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (Fig. 8's summary column)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
