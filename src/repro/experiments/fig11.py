"""Fig. 11 — the 24-hour datacenter utilization trace (Section VI-C).

The paper replays a Google cluster trace [56]; we synthesize a trace
with the same qualitative shape (diurnal swing, bursts, noise — see
:func:`repro.runtime.trace.synthesize_google_trace`) and report its
summary statistics.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..runtime import synthesize_google_trace

__all__ = ["run", "render"]


def run(hours: float = 24.0, interval_s: float = 300.0, seed: int = 2011) -> Dict:
    trace = synthesize_google_trace(hours=hours, interval_s=interval_s, seed=seed)
    util = np.asarray(trace.utilization)
    hour_axis = np.arange(len(util)) * interval_s / 3600.0
    return {
        "trace": trace,
        "series": list(zip(hour_axis.tolist(), util.tolist())),
        "mean": float(util.mean()),
        "min": float(util.min()),
        "max": float(util.max()),
        "p95": float(np.percentile(util, 95)),
    }


def render(data: Dict) -> str:
    lines = [
        "Fig. 11: synthetic Google-style 24 h utilization trace",
        f"  intervals : {len(data['series'])} x {data['trace'].interval_s:.0f} s",
        f"  mean/min/max utilization : {data['mean']:.2f} / {data['min']:.2f} / {data['max']:.2f}",
        f"  p95 utilization : {data['p95']:.2f}",
        "",
        "  hour  utilization (hourly means)",
    ]
    series = data["series"]
    per_hour = {}
    for hour, util in series:
        per_hour.setdefault(int(hour), []).append(util)
    for hour in sorted(per_hour):
        mean = sum(per_hour[hour]) / len(per_hour[hour])
        bar = "#" * int(mean * 50)
        lines.append(f"  {hour:4d}  {mean:.2f} {bar}")
    return "\n".join(lines)
