"""Fig. 9 — power-scaling trends vs load (Section VI-B).

Average node power as a function of load for three representative
benchmarks (the paper shows ASR, FQT and IR; the others scale
similarly) plus the ideal energy-proportional line.  Shape to
reproduce: Heter-Poly's curve hugs the ideal (low idle power, DVFS,
low-power bitstreams), while both baselines sit far above it at low
load.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..runtime import ideal_power_curve
from .harness import (
    DEFAULT_LOADS,
    SYSTEM_NAMES,
    get_app,
    load_sweep,
    render_table,
    systems,
)

__all__ = ["run", "render", "REPRESENTATIVE_APPS"]

#: The three benchmarks Fig. 9 plots.
REPRESENTATIVE_APPS = ("ASR", "FQT", "IR")


def run(
    app_names: Sequence[str] = REPRESENTATIVE_APPS,
    loads: Sequence[float] = DEFAULT_LOADS,
    duration_ms: float = 6000.0,
) -> Dict[str, Dict[str, List[Tuple[float, float]]]]:
    """Returns ``{app: {system|"ideal": [(load, power_w), ...]}}``."""
    archs = systems("I")
    out: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for app_name in app_names:
        app = get_app(app_name)
        curves: Dict[str, List[Tuple[float, float]]] = {}
        for sys_name in SYSTEM_NAMES:
            sweep = load_sweep(app, archs[sys_name], loads, duration_ms=duration_ms)
            curves[sys_name] = [(load, r.avg_power_w) for load, r in sweep]
        # The ideal proportional line is per-system (zero at idle, its
        # own measured power at 100% load) — exactly the normalization
        # Eq. 1 uses; the rendered "ideal" column shows the Heter-Poly
        # one as the figure's dotted reference.
        ideal = ideal_power_curve(
            list(loads), curves["Heter-Poly"][-1][1]
        )
        curves["ideal"] = list(zip(loads, ideal.tolist()))
        out[app_name] = curves
    return out


def normalized_gap(curve: Sequence[Tuple[float, float]]) -> float:
    """Mean distance from the system's own ideal proportional line,
    normalized by its own peak power (lower = more proportional)."""
    peak = max(p for _, p in curve)
    return sum(p - load * peak for load, p in curve) / (len(curve) * peak)


def render(data: Dict[str, Dict[str, List[Tuple[float, float]]]]) -> str:
    parts = []
    for app_name, curves in data.items():
        loads = [f"{load*100:.0f}%" for load, _ in next(iter(curves.values()))]
        rows = [
            (name, *(f"{p:.0f}" for _, p in curve))
            for name, curve in curves.items()
        ]
        parts.append(
            render_table(
                ("system", *loads),
                rows,
                f"Fig. 9 ({app_name}): average power (W) vs load",
            )
        )
    return "\n\n".join(parts)
