"""Experiment regenerators — one module per paper table/figure.

Each module exposes ``run(...) -> data`` and ``render(data) -> str``;
the benchmark harness in ``benchmarks/`` calls these and asserts the
paper's qualitative shapes.

| Module   | Reproduces                                             |
|----------|--------------------------------------------------------|
| fig01    | Motivation study: latency/RPS, EP, Pareto, per-kernel  |
| fig06    | Two-step scheduling of ASR (Gantt + energy swaps)      |
| table2   | Benchmark inventory and design-space sizes             |
| fig07    | Tail latency vs load, 6 apps x 3 systems               |
| fig08    | Max throughput under QoS (+avg, geomean)               |
| fig09    | Power-scaling trends vs load                           |
| fig10    | Energy proportionality per benchmark                   |
| fig11    | 24 h utilization trace                                 |
| fig12    | Trace-driven power savings and QoS violations          |
| fig13    | Throughput vs GPU/FPGA power split (1000 W cap)        |
| fig14    | Cost efficiency across the three settings              |
| faults   | Fault-rate sweep: availability/QoS vs MTBF (new)       |
"""

from . import (
    faults,
    fig01,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    harness,
    table2,
)

__all__ = [
    "harness",
    "faults",
    "fig01",
    "fig06",
    "table2",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
]
