"""Fig. 7 — tail latency vs load for all six benchmarks (Section VI-B).

Sweeps load from 10% to 100% of the common RPS anchor for every
(benchmark, system) pair on Setting-I and reports the p99 tail latency.
The shapes to reproduce: every curve is flat at low load and blows up
past its saturation knee; Heter-Poly's knee sits at the highest load;
Homo-FPGA beats Homo-GPU at low load on IR but saturates earlier.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..apps import APP_BUILDERS
from .harness import (
    DEFAULT_LOADS,
    SYSTEM_NAMES,
    get_app,
    load_sweep,
    render_table,
    systems,
)

__all__ = ["run", "render"]


def run(
    app_names: Sequence[str] = tuple(APP_BUILDERS),
    loads: Sequence[float] = DEFAULT_LOADS,
    duration_ms: float = 6000.0,
) -> Dict[str, Dict[str, List[Tuple[float, float]]]]:
    """Returns ``{app: {system: [(load, p99_ms), ...]}}``."""
    archs = systems("I")
    out: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for app_name in app_names:
        app = get_app(app_name)
        out[app_name] = {}
        for sys_name in SYSTEM_NAMES:
            sweep = load_sweep(app, archs[sys_name], loads, duration_ms=duration_ms)
            out[app_name][sys_name] = [(load, r.p99_ms) for load, r in sweep]
    return out


def render(data: Dict[str, Dict[str, List[Tuple[float, float]]]]) -> str:
    parts = []
    for app_name, curves in data.items():
        loads = [f"{load*100:.0f}%" for load, _ in next(iter(curves.values()))]
        rows = [
            (sys_name, *(f"{p99:.0f}" for _, p99 in curve))
            for sys_name, curve in curves.items()
        ]
        parts.append(
            render_table(
                ("system", *loads),
                rows,
                f"Fig. 7 ({app_name}): p99 tail latency (ms) vs load",
            )
        )
    return "\n\n".join(parts)
