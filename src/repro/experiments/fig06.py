"""Fig. 6 — the two-step scheduling of the ASR benchmark (Section V).

Reproduces the worked example: Step 1 places the four ASR kernels for
minimum latency over the heterogeneous devices; Step 2 then spends the
latency slack on implementation swaps (the paper's example moves K4 to
FPGA for −45% power at +12% latency, then downgrades K1's
implementation for a further 6% efficiency gain).
"""

from __future__ import annotations

from typing import Dict

from ..scheduler import DeviceSlot, PolyScheduler
from .harness import get_app, spaces_for, systems

__all__ = ["run", "render"]


def run() -> Dict:
    """Schedule ASR on an idle Heter-Poly node; returns both schedules
    and the accepted energy swaps."""
    app = get_app("ASR")
    system = systems("I")["Heter-Poly"]
    spaces = spaces_for(app, system)

    devices = [
        DeviceSlot(device_id, spec.name, spec.device_type)
        for device_id, spec in system.device_inventory()
    ]
    scheduler = PolyScheduler(spaces, app.qos_ms)
    step1 = scheduler.min_latency_schedule(app.graph, devices)
    final, steps = scheduler.schedule(app.graph, devices)

    return {
        "latency_bound_ms": app.qos_ms,
        "step1": step1,
        "final": final,
        "energy_steps": steps,
        "slack_after_step1_ms": app.qos_ms - step1.makespan_ms,
        "energy_saved_mj": step1.total_energy_mj - final.total_energy_mj,
        "paths": app.graph.paths(),
    }


def render(data: Dict) -> str:
    lines = [
        f"Fig. 6: ASR scheduling (latency bound {data['latency_bound_ms']:.0f} ms)",
        "",
        "Step 1 (latency optimization):",
        data["step1"].gantt(),
        f"  slack = {data['slack_after_step1_ms']:.1f} ms",
        "",
        "Step 2 (energy-efficiency optimization):",
    ]
    if data["energy_steps"]:
        for step in data["energy_steps"]:
            lines.append(f"  {step!r}")
    else:
        lines.append("  (no profitable swap within the latency bound)")
    lines += [
        "",
        "Final schedule:",
        data["final"].gantt(),
        f"  energy saved vs step 1: {data['energy_saved_mj']:.0f} mJ "
        f"({data['energy_saved_mj'] / max(data['step1'].total_energy_mj, 1e-9) * 100:.0f}%)",
    ]
    return "\n".join(lines)
