"""Fig. 10 — energy-proportionality comparison (Section VI-B).

EP (Eq. 1) of the three systems on every benchmark, from the measured
power-vs-load curves.  Headline numbers: Heter-Poly improves EP by 23%
over Homo-GPU and 17% over Homo-FPGA on average.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..apps import APP_BUILDERS
from ..runtime import energy_proportionality
from .harness import (
    DEFAULT_LOADS,
    SYSTEM_NAMES,
    get_app,
    load_sweep,
    render_table,
    systems,
)

__all__ = ["run", "render", "improvement_summary"]


def run(
    app_names: Sequence[str] = tuple(APP_BUILDERS),
    loads: Sequence[float] = DEFAULT_LOADS,
    duration_ms: float = 6000.0,
) -> Dict[str, Dict[str, float]]:
    """Returns ``{system: {app: EP, ..., 'avg': EP}}``."""
    archs = systems("I")
    out: Dict[str, Dict[str, float]] = {name: {} for name in SYSTEM_NAMES}
    for app_name in app_names:
        app = get_app(app_name)
        for sys_name in SYSTEM_NAMES:
            sweep = load_sweep(app, archs[sys_name], loads, duration_ms=duration_ms)
            out[sys_name][app_name] = energy_proportionality(
                [l for l, _ in sweep], [r.avg_power_w for _, r in sweep]
            )
    for sys_name in SYSTEM_NAMES:
        vals = list(out[sys_name].values())
        out[sys_name]["avg"] = sum(vals) / len(vals)
    return out


def improvement_summary(data: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Average EP improvement of Heter-Poly over each baseline (the
    paper's +23% / +17%)."""
    poly = data["Heter-Poly"]["avg"]
    return {
        "vs_homo_gpu": poly - data["Homo-GPU"]["avg"],
        "vs_homo_fpga": poly - data["Homo-FPGA"]["avg"],
    }


def render(data: Dict[str, Dict[str, float]]) -> str:
    apps = [k for k in next(iter(data.values())) if k != "avg"]
    rows = [
        (
            sys_name,
            *(f"{data[sys_name][a]:.2f}" for a in apps),
            f"{data[sys_name]['avg']:.2f}",
        )
        for sys_name in data
    ]
    imp = improvement_summary(data)
    return (
        render_table(
            ("system", *apps, "avg"), rows, "Fig. 10: energy proportionality (Eq. 1)"
        )
        + f"\nHeter-Poly EP gain: +{imp['vs_homo_gpu']:.2f} vs Homo-GPU, "
        + f"+{imp['vs_homo_fpga']:.2f} vs Homo-FPGA"
    )
