"""Fig. 1 — the motivation study (Section II-B).

Regenerates, for the ASR service on Setting-I:

(a) tail latency vs request throughput for the three systems;
(b) energy-proportionality curves and EP values (paper: 0.68 / 0.63 /
    0.92 for Homo-GPU / Homo-FPGA / Heter-Poly);
(c) the LSTM kernel's Pareto design space on GPU and FPGA;
(d) energy efficiency vs utilization (Poly adapts, baselines cannot);
(e,f) per-kernel energy and latency of the most energy-efficient
    designs (paper GPU: 102/57/52/78 ms; FPGA: 109/50/45/75 ms).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..runtime import energy_proportionality, max_throughput_under_qos
from .harness import (
    DEFAULT_LOADS,
    PEAK_RPS,
    get_app,
    load_sweep,
    render_table,
    spaces_for,
    systems,
)

__all__ = ["run", "render"]


def run(
    loads: Sequence[float] = DEFAULT_LOADS,
    duration_ms: float = 6000.0,
) -> Dict:
    """Run the motivation experiment; returns all five panels' data."""
    app = get_app("ASR")
    archs = systems("I")

    latency_curves: Dict[str, List[Tuple[float, float]]] = {}
    power_curves: Dict[str, List[Tuple[float, float]]] = {}
    ep: Dict[str, float] = {}
    max_rps: Dict[str, float] = {}

    for name, system in archs.items():
        sweep = load_sweep(app, system, loads, duration_ms=duration_ms)
        rps_axis = [load * PEAK_RPS for load, _ in sweep]
        p99 = [r.p99_ms for _, r in sweep]
        power = [r.avg_power_w for _, r in sweep]
        latency_curves[name] = list(zip(rps_axis, p99))
        power_curves[name] = list(zip([l for l, _ in sweep], power))
        ep[name] = energy_proportionality([l for l, _ in sweep], power)
        max_rps[name] = max_throughput_under_qos(rps_axis, p99, app.qos_ms)

    # Panel (c): LSTM design space on both platforms of Heter-Poly.
    heter = archs["Heter-Poly"]
    spaces = spaces_for(app, heter)
    lstm = app.graph.kernel("LSTM_acoustic")
    pareto = {
        spec.name: [
            (p.latency_ms, p.power_w, p.energy_efficiency)
            for p in spaces[(lstm.name, spec.name)].pareto()
        ]
        for spec in heter.platforms
    }

    # Panels (e, f): most energy-efficient design per kernel per family.
    per_kernel: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for kernel in app.kernels:
        row = {}
        for spec in heter.platforms:
            point = spaces[(kernel.name, spec.name)].max_efficiency()
            row[spec.device_type.value] = (point.latency_ms, point.energy_mj)
        per_kernel[kernel.name] = row

    return {
        "latency_vs_rps": latency_curves,
        "power_vs_load": power_curves,
        "energy_proportionality": ep,
        "max_rps": max_rps,
        "lstm_pareto": pareto,
        "per_kernel_max_eff": per_kernel,
    }


def render(data: Dict) -> str:
    """Text rendering of all panels."""
    parts = []
    rows = [
        (name, f"{data['max_rps'][name]:.0f}", f"{data['energy_proportionality'][name]:.2f}")
        for name in data["max_rps"]
    ]
    parts.append(
        render_table(
            ("system", "max RPS (200ms QoS)", "EP"),
            rows,
            "Fig. 1(a,b): ASR motivation summary",
        )
    )
    lat_rows = []
    for name, curve in data["latency_vs_rps"].items():
        for rps, p99 in curve:
            lat_rows.append((name, f"{rps:.0f}", f"{p99:.1f}"))
    parts.append(
        render_table(("system", "RPS", "p99 ms"), lat_rows, "Fig. 1(a): tail latency")
    )
    kern_rows = []
    for kernel, row in data["per_kernel_max_eff"].items():
        gpu = row.get("gpu", (float("nan"), float("nan")))
        fpga = row.get("fpga", (float("nan"), float("nan")))
        kern_rows.append(
            (kernel, f"{gpu[0]:.1f}", f"{gpu[1]:.0f}", f"{fpga[0]:.1f}", f"{fpga[1]:.0f}")
        )
    parts.append(
        render_table(
            ("kernel", "GPU ms", "GPU mJ", "FPGA ms", "FPGA mJ"),
            kern_rows,
            "Fig. 1(e,f): per-kernel latency/energy (max-efficiency designs)",
        )
    )
    return "\n\n".join(parts)
