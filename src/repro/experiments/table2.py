"""Table II — benchmark inventory: kernels, patterns, design-space sizes.

Regenerates the per-kernel rows (parallel-pattern composition and the
number of explored designs on each platform) by actually running the
offline DSE and comparing the realized space sizes with the paper's
``# Designs`` column.
"""

from __future__ import annotations

from typing import Dict, List

from ..apps import APP_BUILDERS
from ..hardware.specs import DeviceType
from .harness import get_app, render_table, spaces_for, systems

__all__ = ["run", "render"]


def run() -> List[Dict]:
    """Return one row per kernel across all six benchmarks."""
    system = systems("I")["Heter-Poly"]
    gpu_name = system.gpu_spec.name
    fpga_name = system.fpga_spec.name

    rows: List[Dict] = []
    for app_name in APP_BUILDERS:
        app = get_app(app_name)
        spaces = spaces_for(app, system)
        for kernel in app.kernels:
            targets = app.design_targets[kernel.name]
            rows.append(
                {
                    "benchmark": app_name,
                    "kernel": kernel.name,
                    "patterns": ", ".join(
                        k.value.capitalize() for k in kernel.pattern_kinds
                    ),
                    "gpu_designs": len(spaces[(kernel.name, gpu_name)]),
                    "fpga_designs": len(spaces[(kernel.name, fpga_name)]),
                    "gpu_target": targets.get(DeviceType.GPU, 0),
                    "fpga_target": targets.get(DeviceType.FPGA, 0),
                }
            )
    return rows


def render(rows: List[Dict]) -> str:
    table_rows = [
        (
            r["benchmark"],
            r["kernel"],
            r["patterns"],
            f"{r['gpu_designs']}/{r['gpu_target']}",
            f"{r['fpga_designs']}/{r['fpga_target']}",
        )
        for r in rows
    ]
    return render_table(
        ("benchmark", "kernel", "parallel patterns", "GPU (got/paper)", "FPGA (got/paper)"),
        table_rows,
        "Table II: QoS-sensitive benchmarks and design-space sizes",
    )
