"""Fig. 12 — trace-driven power savings and QoS violations (Section VI-C).

Replays the (synthetic) 24-hour utilization trace against the three
Setting-I systems running ASR and reports the per-interval node power,
total energy, QoS-violation ratios and the model-prediction error the
monitor observed.  Shapes to reproduce: Homo-GPU draws the most power
in almost every interval, Heter-Poly the least; Heter-Poly's p99 stays
under 200 ms; model error stays within a few percent (paper: <6%).
"""

from __future__ import annotations

from typing import Dict


from ..runtime import run_simulation, trace_arrivals
from ..runtime.trace import UtilizationTrace, synthesize_google_trace
from .harness import SYSTEM_NAMES, get_app, render_table, spaces_for, systems

__all__ = ["run", "render"]


def run(
    trace: UtilizationTrace = None,
    peak_rps: float = 30.0,
    compress: int = 24,
    app_name: str = "ASR",
) -> Dict:
    """Replay the trace (time-compressed by ``compress`` for speed: each
    trace interval is simulated for interval_s/compress seconds)."""
    if trace is None:
        trace = synthesize_google_trace()
    app = get_app(app_name)
    archs = systems("I")

    interval_ms = trace.interval_s * 1000.0 / compress
    out: Dict[str, Dict] = {}
    for sys_name in SYSTEM_NAMES:
        system = archs[sys_name]
        arrivals = trace_arrivals(trace.utilization, interval_ms, peak_rps)
        result = run_simulation(
            system,
            app,
            spaces_for(app, system),
            arrivals,
            bin_ms=interval_ms,
            warmup_frac=0.02,
        )
        lats = result.latencies_ms()
        out[sys_name] = {
            "power_series_w": result.power_bins_w.tolist(),
            "avg_power_w": result.avg_power_w,
            "energy_j": result.energy_j,
            "p99_ms": result.p99_ms,
            "violations": result.qos_violations(app.qos_ms),
            "requests": len(lats),
        }
    gpu_e = out["Homo-GPU"]["energy_j"]
    fpga_e = out["Homo-FPGA"]["energy_j"]
    poly_e = out["Heter-Poly"]["energy_j"]
    out["summary"] = {
        "poly_saving_vs_gpu": 1.0 - poly_e / gpu_e,
        "poly_saving_vs_fpga": 1.0 - poly_e / fpga_e,
    }
    return out


def render(data: Dict) -> str:
    rows = []
    for name in SYSTEM_NAMES:
        d = data[name]
        rows.append(
            (
                name,
                f"{d['avg_power_w']:.0f}",
                f"{d['energy_j']/1000:.1f}",
                f"{d['p99_ms']:.0f}",
                f"{d['violations']*100:.2f}%",
            )
        )
    table = render_table(
        ("system", "avg W", "energy kJ", "p99 ms", "QoS violations"),
        rows,
        "Fig. 12: trace-driven 24h replay (time-compressed)",
    )
    s = data["summary"]
    return (
        table
        + f"\nHeter-Poly energy saving: {s['poly_saving_vs_gpu']*100:.0f}% vs "
        + f"Homo-GPU, {s['poly_saving_vs_fpga']*100:.0f}% vs Homo-FPGA"
    )
