"""Fig. 14 — cost-efficiency analysis (Section VI-E).

Maximum throughput divided by monthly TCO (Patterson's datacenter TCO
model with Sirius-style parameters) for the three systems of all three
Table-III settings.  FQT is the default representative workload (the
paper aggregates all six; FQT exposes both baselines' weaknesses in
one sweep).  Shape to reproduce: Poly is consistently the most
cost-efficient — its energy savings dominate the operational cost, and
the higher infrastructure cost amortizes away.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..runtime import TCOModel
from .harness import (
    DEFAULT_LOADS,
    SYSTEM_NAMES,
    get_app,
    load_sweep,
    max_rps,
    render_table,
    systems,
)

__all__ = ["run", "render"]


def run(
    setting_numbers: Sequence[str] = ("I", "II", "III"),
    app_name: str = "FQT",
    loads: Sequence[float] = DEFAULT_LOADS,
    duration_ms: float = 5000.0,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Returns ``{setting: {system: {max_rps, tco_usd, cost_eff}}}``."""
    app = get_app(app_name)
    tco = TCOModel()
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for number in setting_numbers:
        archs = systems(number)
        out[number] = {}
        for sys_name in SYSTEM_NAMES:
            system = archs[sys_name]
            knee = max_rps(app, system, loads, duration_ms=duration_ms)
            # Average power at a representative 50% operating load.
            sweep = load_sweep(app, system, (0.5,), duration_ms=duration_ms)
            avg_power = sweep[0][1].avg_power_w
            monthly = tco.monthly_tco_usd(system, avg_power)
            out[number][sys_name] = {
                "max_rps": knee,
                "avg_power_w": avg_power,
                "tco_usd_month": monthly,
                "cost_efficiency": tco.cost_efficiency(system, knee, avg_power),
            }
    return out


def render(data: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    parts = []
    for number, per_system in data.items():
        rows = [
            (
                sys_name,
                f"{d['max_rps']:.0f}",
                f"{d['avg_power_w']:.0f}",
                f"{d['tco_usd_month']:.0f}",
                f"{d['cost_efficiency']*1000:.1f}",
            )
            for sys_name, d in per_system.items()
        ]
        parts.append(
            render_table(
                ("system", "max RPS", "avg W", "TCO $/mo", "RPS per k$"),
                rows,
                f"Fig. 14 (Setting-{number}): cost efficiency",
            )
        )
    return "\n\n".join(parts)
