"""Fault-rate sweep — QoS resilience under random device failures.

Not a paper figure: the HPCA'19 evaluation assumes healthy hardware.
This experiment drives the fault-injection subsystem across a grid of
mean-time-between-failures values on Heter-Poly and reports how
availability, tail latency, QoS violations and load shedding degrade
as faults become more frequent.  The shapes to expect: availability
stays ~1.0 and violations near the fault-free level at long MTBF,
both degrade monotonically (modulo sampling noise) as MTBF shrinks,
and recovery time stays near the heartbeat timeout regardless of rate
(detection dominates; replanning is immediate).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..faults import FaultInjector, FaultSchedule, RetryPolicy
from ..runtime import poisson_arrivals, run_simulation, setting
from .harness import get_app, render_table, spaces_for

__all__ = ["run", "render", "DEFAULT_MTBF_GRID_MS"]

#: Sweep grid: from "one failure every couple of runs" down to "devices
#: dropping like flies" (MTBF of the same order as the repair time).
DEFAULT_MTBF_GRID_MS = (60_000.0, 20_000.0, 8_000.0, 3_000.0)


def run(
    app_name: str = "ASR",
    mtbf_grid_ms: Sequence[float] = DEFAULT_MTBF_GRID_MS,
    mttr_ms: float = 1_000.0,
    rps: float = 30.0,
    duration_ms: float = 8_000.0,
    seed: int = 0,
) -> Dict[str, List[Dict[str, float]]]:
    """Returns ``{app: [{mtbf_ms, availability, p99_ms, ...}, ...]}``
    with a leading fault-free baseline row (``mtbf_ms = inf``)."""
    app = get_app(app_name)
    system = setting("I", "Heter-Poly")
    spaces = spaces_for(app, system)
    device_ids = [device_id for device_id, _ in system.device_inventory()]
    arrivals = poisson_arrivals(rps, duration_ms)

    rows: List[Dict[str, float]] = []
    baseline = run_simulation(system, app, spaces, arrivals, seed=seed)
    rows.append(
        {
            "mtbf_ms": float("inf"),
            "availability": baseline.availability,
            "p99_ms": baseline.p99_ms,
            "violations": baseline.qos_violations(app.qos_ms),
            "shed": 0.0,
            "failed": 0.0,
            "mean_recovery_ms": float("nan"),
        }
    )
    for mtbf_ms in mtbf_grid_ms:
        schedule = FaultSchedule.from_mtbf(
            device_ids,
            duration_ms=duration_ms,
            mtbf_ms=mtbf_ms,
            mttr_ms=mttr_ms,
            seed=seed,
        )
        result = run_simulation(
            system,
            app,
            spaces,
            arrivals,
            seed=seed,
            faults=FaultInjector(schedule, retry_policy=RetryPolicy()),
        )
        report = result.faults
        rows.append(
            {
                "mtbf_ms": mtbf_ms,
                "availability": result.availability,
                "p99_ms": result.p99_ms,
                "violations": result.qos_violations(app.qos_ms),
                "shed": float(report.shed),
                "failed": float(report.failed_requests),
                "mean_recovery_ms": report.mean_recovery_ms,
            }
        )
    return {app_name: rows}


def render(data: Dict[str, List[Dict[str, float]]]) -> str:
    parts = []
    for app_name, rows in data.items():
        table = [
            (
                "none" if row["mtbf_ms"] == float("inf")
                else f"{row['mtbf_ms']/1000.0:.0f}s",
                f"{row['availability']*100:.2f}%",
                f"{row['p99_ms']:.0f}",
                f"{row['violations']*100:.2f}%",
                f"{int(row['shed'])}",
                f"{int(row['failed'])}",
                "-" if row["mean_recovery_ms"] != row["mean_recovery_ms"]
                else f"{row['mean_recovery_ms']:.0f}",
            )
            for row in rows
        ]
        parts.append(
            render_table(
                ("MTBF", "avail", "p99 ms", "viol", "shed", "failed", "recov ms"),
                table,
                f"Fault sweep ({app_name} on Heter-Poly/I): "
                "resilience vs failure rate",
            )
        )
    return "\n\n".join(parts)
