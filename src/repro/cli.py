"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``figure NAME``
    Regenerate one paper table/figure (``fig01`` … ``fig14``,
    ``table2``) and print its text rendering.

``dse APP [--setting I] [--strategy exhaustive|guided] [--budget N]
        [--search-seed 0]``
    Run the offline DSE for one benchmark and print each kernel's
    design-space summary and Pareto extremes.  ``--strategy guided``
    runs the budgeted successive-halving + genetic explorer
    (``--budget`` model evaluations per kernel/device, seeded by
    ``--search-seed``) and reports explored/evaluated/skipped counts
    per space.

``schedule APP [--setting I]``
    Print the two-step runtime schedule (Fig.-6 style) for one request
    of a benchmark on an idle Heter-Poly node.

``simulate APP RPS [--setting I] [--system Heter-Poly] [--ms 10000]``
    Serve a Poisson stream and report tail latency / power.

``codegen APP KERNEL [--fpga] [--unroll N] ...``
    Emit the optimized OpenCL source of one kernel implementation.

``lint [--app NAME] [--json] [--dse] [--setting I]``
    Run the static diagnostics engine over the bundled benchmarks
    (all six by default).  ``--dse`` additionally validates the DSE
    product and the scheduler admission of each app.  Exits nonzero
    when any ERROR diagnostic fires.  Guided-search hygiene is covered
    by OPT004 (with a ``SearchConfig`` in context the budget applies
    to model evaluations, ``min(enumerated, max_evals)``) and OPT005
    (a guided search without a seed or without a
    ``min_hypervolume_ratio`` quality gate).

``faults APP [--rps 30] [--crash DEV@MS] [--recover DEV@MS]
        [--mtbf-ms N --mttr-ms N] [--seed 0] [--json]``
    Chaos experiment: serve a Poisson stream while injecting device
    faults (explicit ``--crash``/``--recover`` events, or a random
    MTBF/MTTR schedule) and report availability, tail latency, QoS
    violations and failover/recovery statistics.  The schedule and
    retry policy are linted (RT004/RT005) before the run.

``cluster [--app ASR] [--system NAME ...] [--hours 24] [--compress 200]
        [--min-nodes 1] [--max-nodes 8] [--timeline] [--json]``
    Fleet replay: simulate a cluster of leaf nodes behind the
    power-of-two-choices dispatcher and the elastic autoscaler over a
    synthesized diurnal utilization trace, and report fleet tail
    latency, QoS-interval fraction, the scaling timeline, scale-up/down
    lag, fleet power and monthly TCO / cost efficiency.  Repeat
    ``--system`` to rotate launches through heterogeneous node
    templates.  The autoscaler config is linted (RT007) before the run.

``bench [--app NAME] [--suite full|sched|sim|cluster|obs|dse]
        [--trials 3] [--n-jobs 1] [--label L] [--check BASELINE]
        [--max-ratio 2.0] [--min-sched-speedup X] [--min-sim-speedup X]
        [--min-obs-retention X] [--min-dse-speedup X]
        [--min-hypervolume-ratio X]``
    Deterministic performance benchmark: time per-app DSE (cold and
    cache-warm), the two-step scheduler, a fixed seeded simulation, the
    runtime ``sched`` suite (steady-state throughput with the
    schedule-plan cache on vs off, bit-identical results), the ``sim``
    suite (event-heap engine vs. the legacy per-request loop,
    float-identical results), the ``cluster`` fleet replay (mini
    diurnal profile: throughput, p99, scale lag), the ``obs``
    tracing-overhead suite (traced event engine vs. traced legacy
    loop, byte-identical streams) and the ``dse`` search suite
    (guided vs. exhaustive exploration on a >=10x-enlarged knob
    space: paired timing, evaluation counts, hypervolume ratio, and
    exact-front parity on the real space) over repeated trials; write
    ``BENCH_<label>.json``.  ``--suite sched``/``--suite sim``/
    ``--suite cluster``/``--suite obs``/``--suite dse`` run only that
    suite.  ``--check`` gates the run against a baseline document
    (CI's ``perf-smoke`` job) and exits nonzero on a >``--max-ratio``
    normalized regression; ``--min-sched-speedup`` /
    ``--min-sim-speedup`` / ``--min-obs-retention`` /
    ``--min-dse-speedup`` additionally fail when the warm plan-cached
    (resp. event-engine, traced-engine, guided-search) speedup drops
    below X, and ``--min-hypervolume-ratio`` fails when the guided
    front recovers less than X of the exhaustive hypervolume.

``obs APP [--rps 20] [--ms 4000] [--seed 0] [--out-dir obs_out]
        [--summary] [--crash DEV@MS] [--recover DEV@MS]``
    Traced simulation: serve a seeded Poisson stream with the span
    tracer and metrics registry attached, and write four artifacts to
    ``--out-dir``: ``trace.perfetto.json`` (open at ui.perfetto.dev —
    per-device timeline tracks), ``events.jsonl`` (the typed event
    stream), ``metrics.json`` and ``metrics.prom``.  Artifacts are
    byte-identical across runs of the same seed.  ``--summary`` prints
    a placement/occupancy digest; ``--crash``/``--recover`` injects
    faults so the trace shows detection, failover and replanning.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import apps as apps_mod
from . import experiments, runtime
from .codegen import generate_host_snippet, generate_kernel_source
from .hardware import ImplConfig
from .hardware.specs import DeviceType
from .lint import LintContext, LintReport, run_lint
from .scheduler import DeviceSlot, PolyScheduler

_FIGURES = {
    name: getattr(experiments, name)
    for name in (
        "fig01", "fig06", "table2", "fig07", "fig08", "fig09",
        "fig10", "fig11", "fig12", "fig13", "fig14", "faults",
    )
}


def _cmd_figure(args) -> int:
    module = _FIGURES.get(args.name)
    if module is None:
        print(f"unknown figure {args.name!r}; choose from {sorted(_FIGURES)}")
        return 2
    data = module.run()
    print(module.render(data))
    return 0


def _cmd_dse(args) -> int:
    app = apps_mod.build(args.app)
    system = runtime.setting(args.setting, "Heter-Poly")
    search = None
    if args.strategy == "guided":
        from .optim import SearchConfig

        search = SearchConfig(max_evals=args.budget, seed=args.search_seed)
    spaces = app.explore(
        system.platforms, n_jobs=args.n_jobs, strategy=args.strategy,
        search=search,
    )
    print(f"{app} on Setting-{args.setting} ({args.strategy})")
    for kernel in app.kernels:
        for spec in system.platforms:
            space = spaces[(kernel.name, spec.name)]
            s = space.summary()
            line = (
                f"  {kernel.name:22s} {spec.device_type.value.upper():4s} "
                f"{len(space):4d} pts ({int(s['pareto_points'])} Pareto)  "
                f"lat [{s['latency_min_ms']:8.1f}, {s['latency_max_ms']:9.1f}] ms  "
                f"power [{s['power_min_w']:5.1f}, {s['power_max_w']:6.1f}] W"
            )
            stats = space.search_stats
            if stats is not None:
                line += (
                    f"  [guided: {stats.evaluations}/{stats.explored} evals"
                    + (", exhaustive-equivalent" if stats.exhaustive_equivalent
                       else f", {stats.generations} gen(s)")
                    + "]"
                )
            print(line)
    return 0


def _cmd_schedule(args) -> int:
    app = apps_mod.build(args.app)
    system = runtime.setting(args.setting, "Heter-Poly")
    spaces = app.explore(system.platforms)
    devices = [
        DeviceSlot(device_id, spec.name, spec.device_type)
        for device_id, spec in system.device_inventory()
    ]
    scheduler = PolyScheduler(spaces, app.qos_ms)
    schedule, swaps = scheduler.schedule(app.graph, devices)
    print(schedule.gantt())
    for swap in swaps:
        print(f"  {swap!r}")
    return 0


def _cmd_simulate(args) -> int:
    app = apps_mod.build(args.app)
    system = runtime.setting(args.setting, args.system)
    spaces = app.explore(system.platforms)
    arrivals = runtime.poisson_arrivals(args.rps, args.ms)
    result = runtime.run_simulation(system, app, spaces, arrivals)
    print(result)
    print(f"  p99        : {result.p99_ms:.1f} ms (bound {app.qos_ms:.0f} ms)")
    print(f"  mean       : {result.mean_latency_ms:.1f} ms")
    print(f"  avg power  : {result.avg_power_w:.1f} W")
    print(f"  violations : {result.qos_violations(app.qos_ms)*100:.2f} %")
    return 0


def _cmd_codegen(args) -> int:
    app = apps_mod.build(args.app)
    if args.kernel not in app.graph:
        print(f"unknown kernel {args.kernel!r}; app has {app.kernel_names}")
        return 2
    kernel = app.graph.kernel(args.kernel)
    device_type = DeviceType.FPGA if args.fpga else DeviceType.GPU
    config = ImplConfig(
        work_group_size=args.wg,
        unroll=args.unroll,
        compute_units=args.cu,
        bram_ports=args.ports,
        use_scratchpad=args.scratchpad,
        memory_coalescing=args.coalesce,
        pipelined=args.pipeline,
        double_buffer=args.double_buffer,
        fused=args.fused,
    )
    print(generate_kernel_source(kernel, config, device_type))
    print()
    print(generate_host_snippet(kernel, config, device_type))
    return 0


def _lint_one_app(name: str, setting: str, dse: bool) -> LintReport:
    """Lint one bundled app; with ``dse`` also validate its design
    spaces and the scheduler admission on an idle node."""
    app = apps_mod.build(name)
    system = runtime.setting(setting, "Heter-Poly")
    report = run_lint(app, LintContext(specs=tuple(system.platforms)))
    if dse:
        spaces = app.explore(system.platforms, validate=True)
        devices = [
            DeviceSlot(device_id, spec.name, spec.device_type)
            for device_id, spec in system.device_inventory()
        ]
        scheduler = PolyScheduler(spaces, app.qos_ms)
        report.extend(scheduler.admission_check(app.graph, devices))
    return report


def _cmd_lint(args) -> int:
    names = [n.upper() for n in (args.app or sorted(apps_mod.APP_BUILDERS))]
    reports = {}
    for name in names:
        if name not in apps_mod.APP_BUILDERS:
            print(
                f"unknown app {name!r}; choose from {sorted(apps_mod.APP_BUILDERS)}",
                file=sys.stderr,
            )
            return 2
        reports[name] = _lint_one_app(name, args.setting, args.dse)
    if args.json:
        print(
            json.dumps(
                {
                    "ok": all(r.ok for r in reports.values()),
                    "apps": {
                        name: json.loads(r.to_json()) for name, r in reports.items()
                    },
                },
                indent=2,
            )
        )
    else:
        for name, report in reports.items():
            status = "OK" if report.ok else "FAIL"
            print(
                f"{name:4s} [{status}] {len(report.errors)} error(s), "
                f"{len(report.warnings)} warning(s), {len(report)} diagnostic(s)"
            )
            for diag in report:
                print(f"  {diag.render()}")
    return 0 if all(r.ok for r in reports.values()) else 1


def _parse_device_at(text: str):
    """Parse a ``DEVICE@MS`` event spec (e.g. ``fpga0@4000``)."""
    device, sep, at = text.partition("@")
    if not sep or not device:
        raise argparse.ArgumentTypeError(
            f"expected DEVICE@MS (e.g. fpga0@4000), got {text!r}"
        )
    try:
        return device, float(at)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad timestamp in {text!r}; expected DEVICE@MS"
        ) from None


def _build_fault_schedule(args):
    from .faults import FaultSchedule
    from .faults.events import FaultEvent, FaultKind

    events = [
        FaultEvent(at_ms, FaultKind.DEVICE_CRASH, device)
        for device, at_ms in (args.crash or [])
    ]
    events += [
        FaultEvent(at_ms, FaultKind.RECOVERY, device)
        for device, at_ms in (args.recover or [])
    ]
    if args.mtbf_ms is not None:
        if events:
            print(
                "--mtbf-ms cannot be combined with --crash/--recover",
                file=sys.stderr,
            )
            return None
        system = runtime.setting(args.setting, args.system)
        device_ids = [device_id for device_id, _ in system.device_inventory()]
        return FaultSchedule.from_mtbf(
            device_ids,
            duration_ms=args.ms,
            mtbf_ms=args.mtbf_ms,
            mttr_ms=args.mttr_ms,
            seed=args.seed,
        )
    if not events:
        print(
            "no faults given: use --crash/--recover or --mtbf-ms",
            file=sys.stderr,
        )
        return None
    return FaultSchedule(tuple(events))


def _cmd_faults(args) -> int:
    from .faults import FaultInjector, RetryPolicy

    schedule = _build_fault_schedule(args)
    if schedule is None:
        return 2
    system = runtime.setting(args.setting, args.system)
    policy = RetryPolicy()
    names = [n.upper() for n in (args.app or ["ASR"])]
    rows = {}
    for name in names:
        if name not in apps_mod.APP_BUILDERS:
            print(
                f"unknown app {name!r}; choose from {sorted(apps_mod.APP_BUILDERS)}",
                file=sys.stderr,
            )
            return 2
        app = apps_mod.build(name)
        spaces = app.explore(system.platforms)
        node = runtime.LeafNode(system, app, spaces)
        ctx = LintContext(
            design_spaces=spaces, devices=tuple(node.devices), qos_ms=app.qos_ms
        )
        injector = FaultInjector(schedule, retry_policy=policy)
        gate = run_lint(schedule, ctx)
        gate.extend(run_lint(policy, ctx))
        # OBS001 (warning): an untraced chaos run leaves no event trail.
        gate.extend(run_lint(injector, ctx))
        for diag in gate:
            print(f"  {diag.render()}", file=sys.stderr)
        if not gate.ok:
            return 1
        arrivals = runtime.poisson_arrivals(args.rps, args.ms)
        result = runtime.run_simulation(
            system, app, spaces, arrivals, faults=injector,
        )
        report = result.faults
        rows[name] = {
            "availability": result.availability,
            "p99_ms": result.p99_ms,
            "violations": result.qos_violations(app.qos_ms),
            "mean_recovery_ms": report.mean_recovery_ms,
            **{
                k: v
                for k, v in report.summary().items()
                if k != "mean_recovery_ms"
            },
        }
    if args.json:
        print(json.dumps({"setting": args.setting, "system": args.system,
                          "rps": args.rps, "apps": rows}, indent=2))
        return 0
    for name, row in rows.items():
        print(f"{name} on {args.system}/Setting-{args.setting} @ {args.rps:g} rps")
        print(f"  availability : {row['availability']*100:.2f} %")
        print(f"  p99          : {row['p99_ms']:.1f} ms")
        print(f"  violations   : {row['violations']*100:.2f} %")
        print(f"  recovery     : {row['mean_recovery_ms']:.1f} ms mean "
              f"({int(row['recoveries'])} episode(s))")
        print(f"  retries      : {int(row['retries'])} "
              f"({int(row['failovers'])} failovers)")
        print(f"  shed         : {int(row['shed'])}   "
              f"failed: {int(row['failed_requests'])}")
    return 0


def _cmd_obs(args) -> int:
    import pathlib

    import numpy as np

    from .obs import (
        MetricsRegistry,
        SamplingPolicy,
        SpanTracer,
        TimeSeriesStore,
        default_slos,
        evaluate_slos,
        feed_simulation_result,
        placement_digest,
        render_slo_json,
        sample_events,
        write_events_jsonl,
        write_metrics_json,
        write_metrics_prom,
        write_perfetto_json,
    )

    name = args.app.upper()
    if name not in apps_mod.APP_BUILDERS:
        print(
            f"unknown app {name!r}; choose from {sorted(apps_mod.APP_BUILDERS)}",
            file=sys.stderr,
        )
        return 2
    system = runtime.setting(args.setting, args.system)
    app = apps_mod.build(name)

    faults = None
    if args.crash or args.recover:
        from .faults import FaultInjector, RetryPolicy
        from .faults.events import FaultEvent, FaultKind, FaultSchedule

        events = [
            FaultEvent(at_ms, FaultKind.DEVICE_CRASH, device)
            for device, at_ms in (args.crash or [])
        ] + [
            FaultEvent(at_ms, FaultKind.RECOVERY, device)
            for device, at_ms in (args.recover or [])
        ]
        faults = FaultInjector(FaultSchedule(events), retry_policy=RetryPolicy())

    tracer = SpanTracer()
    registry = MetricsRegistry()
    from .hardware.model_cache import model_cache

    model_cache.bind_metrics(registry)
    # The DSE reports its own counters (dse_design_points_total,
    # dse_pruned_invalid_total) through the registry — identical for
    # serial, pooled and guided paths.
    spaces = app.explore(system.platforms, metrics=registry)
    model_cache.bind_metrics(None)
    arrivals = runtime.poisson_arrivals(
        args.rps, args.ms, rng=np.random.default_rng(args.seed)
    )
    result = runtime.run_simulation(
        system,
        app,
        spaces,
        arrivals,
        seed=args.seed,
        faults=faults,
        tracer=tracer,
        metrics=registry,
    )

    store = slos = alerts = None
    if args.report:
        store = TimeSeriesStore(window_ms=args.window_ms)
        feed_simulation_result(store, result, qos_ms=app.qos_ms)
        slos = default_slos(app.qos_ms, store.window_ms)
        # Fired alerts land in the trace (slo.alert events) and the
        # registry before the artifacts serialize below.
        alerts = evaluate_slos(store, slos, tracer=tracer, registry=registry)

    policy = None
    if args.sample_rate < 1.0 or args.sample_top_k:
        policy = SamplingPolicy(
            head_rate=args.sample_rate,
            seed=args.sample_seed,
            tail_qos_ms=app.qos_ms,
            tail_top_k=args.sample_top_k,
        )
    sampled = (
        sample_events(tracer.events, policy, registry=registry)
        if policy is not None
        else None
    )

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = [
        write_perfetto_json(tracer.events, out_dir / "trace.perfetto.json"),
        write_events_jsonl(tracer.events, out_dir / "events.jsonl"),
        write_metrics_json(registry, out_dir / "metrics.json"),
        write_metrics_prom(registry, out_dir / "metrics.prom"),
    ]
    if sampled is not None:
        paths.append(
            write_perfetto_json(
                sampled.events, out_dir / "trace.sampled.perfetto.json"
            )
        )
    if store is not None:
        report_path = out_dir / "report.json"
        report_path.write_text(render_slo_json(store, slos, alerts))
        paths.append(report_path)
    print(
        f"{name} on {args.system}/Setting-{args.setting} @ {args.rps:g} rps: "
        f"{len(tracer)} events, {len(registry)} metric series"
    )
    if sampled is not None:
        print(
            f"  sampled {len(sampled.events)} of {len(tracer)} events "
            f"({len(sampled.kept_requests)} request(s) kept, "
            f"{sampled.dropped_spans} span(s) dropped)"
        )
    for path in paths:
        print(f"  wrote {path}")
    if store is not None:
        print(_render_obs_report(store, slos, alerts))
    if args.summary:
        print(placement_digest(result, result.node))
    return 0


def _render_obs_report(store, slos, alerts) -> str:
    """The ``repro obs --report`` table: per-window rollups + alerts."""
    lines = [
        f"windowed rollups ({store.window_ms:g} ms windows)",
        "  window        n    p50 ms    p95 ms    p99 ms   qos-ok     W",
    ]
    latency = {w.start_ms: w for w in store.rollup("latency_ms")}
    qos = {w.start_ms: w for w in store.rollup("qos_attained")}
    power = {w.start_ms: w for w in store.rollup("power_w")}
    for start in sorted(latency):
        lw, qw, pw = latency[start], qos.get(start), power.get(start)
        qos_txt = f"{qw.mean * 100:6.1f}%" if qw else "    n/a"
        pow_txt = f"{pw.mean:6.0f}" if pw else "   n/a"
        lines.append(
            f"  {start / 1000.0:6.1f}s {lw.count:6d} "
            f"{lw.p50:9.1f} {lw.p95:9.1f} {lw.p99:9.1f} "
            f"{qos_txt} {pow_txt}"
        )
    for slo in slos:
        fired = [a for a in alerts if a.slo == slo.name]
        status = f"{len(fired)} alert(s)" if fired else "ok"
        lines.append(
            f"SLO {slo.name} (target {slo.objective * 100:g}% on "
            f"{slo.series}): {status}"
        )
        for a in fired:
            lines.append(
                f"  ALERT {a.t_ms / 1000.0:.1f}s..{a.end_ms / 1000.0:.1f}s "
                f"burn fast {a.burn_fast:.1f}x / slow {a.burn_slow:.1f}x "
                f"(budget {slo.budget * 100:g}%)"
            )
    return "\n".join(lines)


def _cmd_cluster(args) -> int:
    from .cluster import AutoscalerConfig, ClusterSimulation
    from .runtime.trace import synthesize_google_trace

    name = (args.app or "ASR").upper()
    if name not in apps_mod.APP_BUILDERS:
        print(
            f"unknown app {name!r}; choose from {sorted(apps_mod.APP_BUILDERS)}",
            file=sys.stderr,
        )
        return 2
    config = AutoscalerConfig(
        min_nodes=args.min_nodes,
        max_nodes=args.max_nodes,
        eval_interval_ms=args.eval_ms,
        scale_up_utilization=args.up_util,
        scale_down_utilization=args.down_util,
        target_utilization=args.target_util,
        warmup_ms=args.warmup_ms,
    )
    # RT007 admission gate: reject non-convergent configs before the
    # replay is paid for (same pattern as the faults command).
    gate = run_lint(config, LintContext())
    for diag in gate:
        print(f"  {diag.render()}", file=sys.stderr)
    if not gate.ok:
        return 1

    systems = args.system or ["Heter-Poly"]
    templates = [runtime.setting(args.setting, s) for s in systems]
    app = apps_mod.build(name)
    platforms = tuple(
        dict.fromkeys(p for t in templates for p in t.platforms)
    )
    spaces = app.explore(platforms)
    trace = synthesize_google_trace(
        hours=args.hours, interval_s=args.interval_s, seed=args.trace_seed
    )
    tracer = sampler = None
    if args.trace:
        from .obs import SamplingPolicy, SpanTracer

        tracer = SpanTracer()
        if args.sample_rate < 1.0:
            sampler = SamplingPolicy(
                head_rate=args.sample_rate,
                seed=args.sample_seed,
                tail_qos_ms=app.qos_ms,
            )
    sim = ClusterSimulation(
        templates, app, spaces, config=config, seed=args.seed,
        tracer=tracer, trace_nodes=args.trace_nodes, sampler=sampler,
    )
    # OBS002 admission gate (same pattern as OBS001 in `repro faults`):
    # a fleet-scale traced replay without a sampling policy warns
    # before the replay is paid for.
    obs_gate = run_lint(sim, LintContext())
    for diag in obs_gate:
        print(f"  {diag.render()}", file=sys.stderr)
    if not obs_gate.ok:
        return 1
    peak_rps = args.peak_rps
    if peak_rps is None:
        capacity = sum(sim._template_capacity(t) for t in templates) / len(
            templates
        )
        peak_rps = capacity * args.peak_factor
    result = sim.replay(trace, peak_rps=peak_rps, compress=args.compress)

    if tracer is not None:
        import pathlib

        from .obs import sample_events, write_events_jsonl, write_perfetto_json

        out_dir = pathlib.Path(args.trace_out)
        out_dir.mkdir(parents=True, exist_ok=True)
        trace_paths = [
            write_events_jsonl(tracer.events, out_dir / "events.jsonl")
        ]
        if sampler is not None:
            sampled = sample_events(tracer.events, sampler)
            trace_paths.append(
                write_perfetto_json(
                    sampled.events, out_dir / "trace.sampled.perfetto.json"
                )
            )
            print(
                f"  sampled {len(sampled.events)} of {len(tracer)} events",
                file=sys.stderr,
            )
        else:
            trace_paths.append(
                write_perfetto_json(
                    tracer.events, out_dir / "trace.perfetto.json"
                )
            )
        for path in trace_paths:
            print(f"  wrote {path}", file=sys.stderr)

    served = sum(1 for r in result.requests if r.served)
    sizes = [e.fleet_size for e in result.timeline]
    up, down = result.scale_up_lags_ms, result.scale_down_lags_ms
    if args.json:
        print(
            json.dumps(
                {
                    "app": name,
                    "setting": args.setting,
                    "systems": systems,
                    "hours": args.hours,
                    "compress": args.compress,
                    "peak_rps": round(peak_rps, 3),
                    "requests": len(result.requests),
                    "served": served,
                    "served_rps": round(result.served_rps, 3),
                    "p50_ms": round(result.p50_ms, 3),
                    "p99_ms": round(result.p99_ms, 3),
                    "qos_ms": result.qos_ms,
                    "qos_ok_frac": round(result.qos_ok_frac(), 4),
                    "violation_ratio": round(result.violation_ratio, 4),
                    "mean_fleet": round(result.mean_fleet_size, 4),
                    "launches": result.launches,
                    "terminations": result.terminations,
                    "scale_up_lag_ms": round(result.scale_up_lag_ms, 3)
                    if up
                    else None,
                    "scale_down_lag_ms": round(result.scale_down_lag_ms, 3)
                    if down
                    else None,
                    "fleet_avg_power_w": round(result.fleet_avg_power_w, 3),
                    "monthly_tco_usd": round(result.monthly_tco_usd(), 2),
                    "cost_efficiency": round(result.cost_efficiency(), 6),
                    "timeline": [
                        {
                            "t_ms": e.t_ms,
                            "action": e.action,
                            "node": e.node_id,
                            "reason": e.reason,
                            "fleet_size": e.fleet_size,
                        }
                        for e in result.timeline
                    ],
                },
                indent=2,
            )
        )
        return 0
    print(
        f"{name} fleet of {'+'.join(systems)} (Setting-{args.setting}), "
        f"{args.hours:g} h diurnal trace compressed {args.compress:g}x, "
        f"peak {peak_rps:.1f} rps"
    )
    print(
        f"  requests : {len(result.requests)} "
        f"({served / len(result.requests) * 100:.2f} % served, "
        f"{result.served_rps:.1f} rps)"
    )
    print(
        f"  latency  : p50 {result.p50_ms:.1f} ms  p99 {result.p99_ms:.1f} ms "
        f"(QoS {result.qos_ms:g} ms met in "
        f"{result.qos_ok_frac() * 100:.0f} % of intervals)"
    )
    print(
        f"  fleet    : {min(sizes)}..{max(sizes)} nodes "
        f"(mean {result.mean_fleet_size:.2f}), "
        f"{result.launches} launch(es), {result.terminations} termination(s)"
    )
    up_txt = f"{result.scale_up_lag_ms:.0f} ms" if up else "n/a"
    down_txt = f"{result.scale_down_lag_ms:.0f} ms" if down else "n/a"
    print(f"  lag      : scale-up {up_txt} / scale-down {down_txt}")
    print(
        f"  power    : {result.fleet_avg_power_w:.1f} W fleet average"
    )
    print(
        f"  cost     : {result.monthly_tco_usd():.2f} USD/month, "
        f"{result.cost_efficiency():.4f} rps/USD"
    )
    if args.timeline:
        print("  timeline :")
        for e in result.timeline:
            print(
                f"    t={e.t_ms / 1000.0:8.1f}s {e.action:9s} "
                f"{e.node_id:7s} {e.reason:15s} -> {e.fleet_size}"
            )
    return 0


def _cmd_bench(args) -> int:
    from .benchref import (
        compare_to_baseline,
        default_output_path,
        load_bench_json,
        render_bench,
        run_bench,
        write_bench_json,
    )

    try:
        doc = run_bench(
            app_names=args.app,
            setting=args.setting,
            system_name=args.system,
            trials=args.trials,
            n_jobs=args.n_jobs,
            rps=args.rps,
            duration_ms=args.ms,
            seed=args.seed,
            label=args.label,
            suite=args.suite,
        )
    except KeyError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    out = args.out or default_output_path(args.label)
    write_bench_json(doc, out)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(render_bench(doc))
        print(f"wrote {out}")
    failed = False
    if args.check:
        baseline = load_bench_json(args.check)
        comparison = compare_to_baseline(doc, baseline, max_ratio=args.max_ratio)
        print(comparison.render())
        failed = failed or not comparison.ok
    for section, gate in (
        ("sched", args.min_sched_speedup),
        ("sim", args.min_sim_speedup),
        ("obs", args.min_obs_retention),
        ("dse_search", args.min_dse_speedup),
    ):
        if gate is None:
            continue
        for app, row in sorted(doc["apps"].items()):
            sec = row.get(section)
            if sec is None:
                continue
            speedup = sec["speedup"]
            ok = speedup >= gate
            print(
                f"  {app:4s} {section} speedup {speedup:5.2f}x "
                f"(gate >= {gate:.1f}x) "
                f"[{'OK' if ok else 'REGRESSION'}]"
            )
            failed = failed or not ok
    if args.min_hypervolume_ratio is not None:
        for app, row in sorted(doc["apps"].items()):
            sec = row.get("dse_search")
            if sec is None:
                continue
            ratio = sec["hypervolume_ratio"]
            ok = ratio >= args.min_hypervolume_ratio and sec["front_identical"]
            print(
                f"  {app:4s} dse_search hypervolume {ratio:.4f} "
                f"(gate >= {args.min_hypervolume_ratio:.2f}, "
                f"front_identical={sec['front_identical']}) "
                f"[{'OK' if ok else 'REGRESSION'}]"
            )
            failed = failed or not ok
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Poly (HPCA 2019) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure", help="regenerate a paper table/figure")
    p.add_argument("name", help="fig01..fig14 or table2")
    p.set_defaults(fn=_cmd_figure)

    p = sub.add_parser("dse", help="offline design-space exploration")
    p.add_argument("app")
    p.add_argument("--setting", default="I", choices=("I", "II", "III"))
    p.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        help="DSE worker processes (-1 = all CPUs); any count is bit-identical",
    )
    p.add_argument(
        "--strategy",
        default="exhaustive",
        choices=("exhaustive", "guided"),
        help="'guided' = budgeted successive-halving + genetic search",
    )
    p.add_argument(
        "--budget",
        type=int,
        default=512,
        help="guided-search model-evaluation budget per kernel/device",
    )
    p.add_argument(
        "--search-seed",
        type=int,
        default=0,
        help="guided-search RNG seed (same seed -> identical product)",
    )
    p.set_defaults(fn=_cmd_dse)

    p = sub.add_parser("schedule", help="two-step schedule of one request")
    p.add_argument("app")
    p.add_argument("--setting", default="I", choices=("I", "II", "III"))
    p.set_defaults(fn=_cmd_schedule)

    p = sub.add_parser("simulate", help="serve a Poisson request stream")
    p.add_argument("app")
    p.add_argument("rps", type=float)
    p.add_argument("--setting", default="I", choices=("I", "II", "III"))
    p.add_argument(
        "--system",
        default="Heter-Poly",
        choices=("Homo-GPU", "Homo-FPGA", "Heter-Poly"),
    )
    p.add_argument("--ms", type=float, default=10_000.0)
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser("codegen", help="emit optimized OpenCL source")
    p.add_argument("app")
    p.add_argument("kernel")
    p.add_argument("--fpga", action="store_true")
    p.add_argument("--wg", type=int, default=64)
    p.add_argument("--unroll", type=int, default=1)
    p.add_argument("--cu", type=int, default=1)
    p.add_argument("--ports", type=int, default=1)
    p.add_argument("--scratchpad", action="store_true")
    p.add_argument("--coalesce", action="store_true")
    p.add_argument("--pipeline", action="store_true")
    p.add_argument("--double-buffer", action="store_true")
    p.add_argument("--fused", action="store_true")
    p.set_defaults(fn=_cmd_codegen)

    p = sub.add_parser("lint", help="static diagnostics over the bundled apps")
    p.add_argument(
        "--app",
        action="append",
        help="benchmark short name (repeatable); all six when omitted",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--dse",
        action="store_true",
        help="also validate the DSE product and scheduler admission",
    )
    p.add_argument("--setting", default="I", choices=("I", "II", "III"))
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser("faults", help="fault-injection chaos experiment")
    p.add_argument(
        "--app",
        action="append",
        help="benchmark short name (repeatable); ASR when omitted",
    )
    p.add_argument("--setting", default="I", choices=("I", "II", "III"))
    p.add_argument(
        "--system",
        default="Heter-Poly",
        choices=("Homo-GPU", "Homo-FPGA", "Heter-Poly"),
    )
    p.add_argument("--rps", type=float, default=30.0)
    p.add_argument("--ms", type=float, default=8_000.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--crash",
        action="append",
        type=_parse_device_at,
        metavar="DEVICE@MS",
        help="fail a device at a time (repeatable), e.g. fpga0@4000",
    )
    p.add_argument(
        "--recover",
        action="append",
        type=_parse_device_at,
        metavar="DEVICE@MS",
        help="repair a device at a time (repeatable)",
    )
    p.add_argument(
        "--mtbf-ms",
        type=float,
        help="draw a random fault schedule with this mean time between failures",
    )
    p.add_argument(
        "--mttr-ms",
        type=float,
        default=1_000.0,
        help="mean time to repair for --mtbf-ms schedules",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=_cmd_faults)

    p = sub.add_parser(
        "cluster", help="fleet replay: dispatcher + autoscaler over a trace"
    )
    p.add_argument("--app", help="benchmark short name (default ASR)")
    p.add_argument("--setting", default="I", choices=("I", "II", "III"))
    p.add_argument(
        "--system",
        action="append",
        choices=("Homo-GPU", "Homo-FPGA", "Heter-Poly"),
        help="node template (repeatable for a heterogeneous fleet); "
        "launches rotate through the given templates",
    )
    p.add_argument("--hours", type=float, default=24.0, help="trace length")
    p.add_argument(
        "--interval-s", type=float, default=300.0, help="trace interval"
    )
    p.add_argument(
        "--compress",
        type=float,
        default=200.0,
        help="time-compression factor for the replay "
        "(200 turns a 300 s trace interval into 1.5 s of simulated time)",
    )
    p.add_argument(
        "--peak-rps",
        type=float,
        default=None,
        help="offered load at 100%% trace utilization "
        "(default: --peak-factor x one node's capacity)",
    )
    p.add_argument(
        "--peak-factor",
        type=float,
        default=2.5,
        help="derive the peak load as this multiple of one node's capacity",
    )
    p.add_argument("--min-nodes", type=int, default=1)
    p.add_argument("--max-nodes", type=int, default=8)
    p.add_argument(
        "--eval-ms",
        type=float,
        default=1_000.0,
        help="autoscaler evaluation interval (simulated ms)",
    )
    p.add_argument(
        "--warmup-ms",
        type=float,
        default=2_000.0,
        help="launch-to-serving warm-up delay (simulated ms)",
    )
    p.add_argument("--up-util", type=float, default=0.85)
    p.add_argument("--down-util", type=float, default=0.30)
    p.add_argument("--target-util", type=float, default=0.60)
    p.add_argument("--seed", type=int, default=0, help="cluster root seed")
    p.add_argument(
        "--trace-seed", type=int, default=2011, help="trace-synthesis seed"
    )
    p.add_argument(
        "--timeline", action="store_true", help="print every scaling event"
    )
    p.add_argument(
        "--trace",
        action="store_true",
        help="record the fleet event stream (cluster.* + autoscaler) and "
        "export JSONL/Perfetto artifacts",
    )
    p.add_argument(
        "--trace-nodes",
        action="store_true",
        help="with --trace: propagate the tracer into every leaf node "
        "(full per-request span trees; pair with --sample-rate)",
    )
    p.add_argument(
        "--sample-rate",
        type=float,
        default=1.0,
        help="with --trace: head-sampling keep probability for the "
        "Perfetto artifact (QoS violators always kept)",
    )
    p.add_argument(
        "--sample-seed", type=int, default=0, help="sampling-key seed"
    )
    p.add_argument(
        "--trace-out",
        default="cluster_obs",
        help="artifact directory for --trace (created if missing)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=_cmd_cluster)

    p = sub.add_parser(
        "bench", help="deterministic DSE/scheduler/simulation benchmark"
    )
    p.add_argument(
        "--app",
        action="append",
        help="benchmark short name (repeatable); all six when omitted",
    )
    p.add_argument("--setting", default="I", choices=("I", "II", "III"))
    p.add_argument(
        "--system",
        default="Heter-Poly",
        choices=("Homo-GPU", "Homo-FPGA", "Heter-Poly"),
    )
    p.add_argument("--trials", type=int, default=3, help="timed trials per stage")
    p.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        help="DSE worker processes (-1 = all CPUs)",
    )
    p.add_argument("--rps", type=float, default=20.0, help="simulation load")
    p.add_argument(
        "--ms", type=float, default=2_000.0, help="simulated duration per trial"
    )
    p.add_argument("--seed", type=int, default=0, help="arrival-stream seed")
    p.add_argument(
        "--suite",
        default="full",
        choices=("full", "sched", "sim", "cluster", "obs", "dse"),
        help="'full' = DSE+scheduler+simulation+sched+sim+cluster+obs+dse, "
        "'sched' = runtime plan-cache benchmark only, "
        "'sim' = event-heap engine vs legacy loop benchmark only, "
        "'cluster' = fleet replay benchmark only, "
        "'obs' = tracing-overhead benchmark only, "
        "'dse' = guided-vs-exhaustive search benchmark only",
    )
    p.add_argument("--label", default="local", help="BENCH_<label>.json tag")
    p.add_argument(
        "--out", help="output path (default ./BENCH_<label>.json)"
    )
    p.add_argument(
        "--check",
        metavar="BASELINE",
        help="gate against a baseline BENCH json; exit 1 on regression",
    )
    p.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="fail when normalized DSE median exceeds baseline by this factor",
    )
    p.add_argument(
        "--min-sched-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail when any app's warm plan-cached speedup is below X",
    )
    p.add_argument(
        "--min-sim-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail when any app's event-engine speedup over the legacy "
        "loop is below X",
    )
    p.add_argument(
        "--min-obs-retention",
        type=float,
        default=None,
        metavar="X",
        help="fail when any app's traced event-engine speedup over the "
        "traced legacy loop is below X",
    )
    p.add_argument(
        "--min-dse-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail when any app's guided-search speedup over exhaustive "
        "enumeration (enlarged space) is below X",
    )
    p.add_argument(
        "--min-hypervolume-ratio",
        type=float,
        default=None,
        metavar="X",
        help="fail when any app's guided front recovers less than X of "
        "the exhaustive hypervolume, or the real-space fronts differ",
    )
    p.add_argument("--json", action="store_true", help="print the full document")
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser(
        "obs", help="traced simulation with Perfetto/metrics artifacts"
    )
    p.add_argument("app")
    p.add_argument("--setting", default="I", choices=("I", "II", "III"))
    p.add_argument(
        "--system",
        default="Heter-Poly",
        choices=("Homo-GPU", "Homo-FPGA", "Heter-Poly"),
    )
    p.add_argument("--rps", type=float, default=20.0)
    p.add_argument("--ms", type=float, default=4_000.0)
    p.add_argument("--seed", type=int, default=0, help="arrival-stream seed")
    p.add_argument(
        "--out-dir",
        default="obs_out",
        help="artifact directory (created if missing)",
    )
    p.add_argument(
        "--summary",
        action="store_true",
        help="print the placement/occupancy digest",
    )
    p.add_argument(
        "--report",
        action="store_true",
        help="windowed rollup table + SLO burn-rate alerts "
        "(also writes report.json)",
    )
    p.add_argument(
        "--window-ms",
        type=float,
        default=1_000.0,
        help="rollup window for --report (simulated ms)",
    )
    p.add_argument(
        "--sample-rate",
        type=float,
        default=1.0,
        help="head-sampling keep probability; < 1.0 adds a bounded "
        "trace.sampled.perfetto.json (QoS violators always kept)",
    )
    p.add_argument(
        "--sample-seed", type=int, default=0, help="sampling-key seed"
    )
    p.add_argument(
        "--sample-top-k",
        type=int,
        default=0,
        help="always keep the k highest-latency request spans",
    )
    p.add_argument(
        "--crash",
        action="append",
        type=_parse_device_at,
        metavar="DEVICE@MS",
        help="fail a device at a time (repeatable), e.g. fpga0@2000",
    )
    p.add_argument(
        "--recover",
        action="append",
        type=_parse_device_at,
        metavar="DEVICE@MS",
        help="repair a device at a time (repeatable)",
    )
    p.set_defaults(fn=_cmd_obs)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
