"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``figure NAME``
    Regenerate one paper table/figure (``fig01`` … ``fig14``,
    ``table2``) and print its text rendering.

``dse APP [--setting I]``
    Run the offline DSE for one benchmark and print each kernel's
    design-space summary and Pareto extremes.

``schedule APP [--setting I]``
    Print the two-step runtime schedule (Fig.-6 style) for one request
    of a benchmark on an idle Heter-Poly node.

``simulate APP RPS [--setting I] [--system Heter-Poly] [--ms 10000]``
    Serve a Poisson stream and report tail latency / power.

``codegen APP KERNEL [--fpga] [--unroll N] ...``
    Emit the optimized OpenCL source of one kernel implementation.

``lint [--app NAME] [--json] [--dse] [--setting I]``
    Run the static diagnostics engine over the bundled benchmarks
    (all six by default).  ``--dse`` additionally validates the DSE
    product and the scheduler admission of each app.  Exits nonzero
    when any ERROR diagnostic fires.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import apps as apps_mod
from . import experiments, runtime
from .codegen import generate_host_snippet, generate_kernel_source
from .hardware import ImplConfig
from .hardware.specs import DeviceType
from .lint import LintContext, LintReport, run_lint
from .scheduler import DeviceSlot, PolyScheduler

_FIGURES = {
    name: getattr(experiments, name)
    for name in (
        "fig01", "fig06", "table2", "fig07", "fig08", "fig09",
        "fig10", "fig11", "fig12", "fig13", "fig14",
    )
}


def _cmd_figure(args) -> int:
    module = _FIGURES.get(args.name)
    if module is None:
        print(f"unknown figure {args.name!r}; choose from {sorted(_FIGURES)}")
        return 2
    data = module.run()
    print(module.render(data))
    return 0


def _cmd_dse(args) -> int:
    app = apps_mod.build(args.app)
    system = runtime.setting(args.setting, "Heter-Poly")
    spaces = app.explore(system.platforms)
    print(f"{app} on Setting-{args.setting}")
    for kernel in app.kernels:
        for spec in system.platforms:
            space = spaces[(kernel.name, spec.name)]
            s = space.summary()
            print(
                f"  {kernel.name:22s} {spec.device_type.value.upper():4s} "
                f"{len(space):4d} pts ({int(s['pareto_points'])} Pareto)  "
                f"lat [{s['latency_min_ms']:8.1f}, {s['latency_max_ms']:9.1f}] ms  "
                f"power [{s['power_min_w']:5.1f}, {s['power_max_w']:6.1f}] W"
            )
    return 0


def _cmd_schedule(args) -> int:
    app = apps_mod.build(args.app)
    system = runtime.setting(args.setting, "Heter-Poly")
    spaces = app.explore(system.platforms)
    devices = [
        DeviceSlot(device_id, spec.name, spec.device_type)
        for device_id, spec in system.device_inventory()
    ]
    scheduler = PolyScheduler(spaces, app.qos_ms)
    schedule, swaps = scheduler.schedule(app.graph, devices)
    print(schedule.gantt())
    for swap in swaps:
        print(f"  {swap!r}")
    return 0


def _cmd_simulate(args) -> int:
    app = apps_mod.build(args.app)
    system = runtime.setting(args.setting, args.system)
    spaces = app.explore(system.platforms)
    arrivals = runtime.poisson_arrivals(args.rps, args.ms)
    result = runtime.run_simulation(system, app, spaces, arrivals)
    print(result)
    print(f"  p99        : {result.p99_ms:.1f} ms (bound {app.qos_ms:.0f} ms)")
    print(f"  mean       : {result.mean_latency_ms:.1f} ms")
    print(f"  avg power  : {result.avg_power_w:.1f} W")
    print(f"  violations : {result.qos_violations(app.qos_ms)*100:.2f} %")
    return 0


def _cmd_codegen(args) -> int:
    app = apps_mod.build(args.app)
    if args.kernel not in app.graph:
        print(f"unknown kernel {args.kernel!r}; app has {app.kernel_names}")
        return 2
    kernel = app.graph.kernel(args.kernel)
    device_type = DeviceType.FPGA if args.fpga else DeviceType.GPU
    config = ImplConfig(
        work_group_size=args.wg,
        unroll=args.unroll,
        compute_units=args.cu,
        bram_ports=args.ports,
        use_scratchpad=args.scratchpad,
        memory_coalescing=args.coalesce,
        pipelined=args.pipeline,
        double_buffer=args.double_buffer,
        fused=args.fused,
    )
    print(generate_kernel_source(kernel, config, device_type))
    print()
    print(generate_host_snippet(kernel, config, device_type))
    return 0


def _lint_one_app(name: str, setting: str, dse: bool) -> LintReport:
    """Lint one bundled app; with ``dse`` also validate its design
    spaces and the scheduler admission on an idle node."""
    app = apps_mod.build(name)
    system = runtime.setting(setting, "Heter-Poly")
    report = run_lint(app, LintContext(specs=tuple(system.platforms)))
    if dse:
        spaces = app.explore(system.platforms, validate=True)
        devices = [
            DeviceSlot(device_id, spec.name, spec.device_type)
            for device_id, spec in system.device_inventory()
        ]
        scheduler = PolyScheduler(spaces, app.qos_ms)
        report.extend(scheduler.admission_check(app.graph, devices))
    return report


def _cmd_lint(args) -> int:
    names = [n.upper() for n in (args.app or sorted(apps_mod.APP_BUILDERS))]
    reports = {}
    for name in names:
        if name not in apps_mod.APP_BUILDERS:
            print(
                f"unknown app {name!r}; choose from {sorted(apps_mod.APP_BUILDERS)}",
                file=sys.stderr,
            )
            return 2
        reports[name] = _lint_one_app(name, args.setting, args.dse)
    if args.json:
        print(
            json.dumps(
                {
                    "ok": all(r.ok for r in reports.values()),
                    "apps": {
                        name: json.loads(r.to_json()) for name, r in reports.items()
                    },
                },
                indent=2,
            )
        )
    else:
        for name, report in reports.items():
            status = "OK" if report.ok else "FAIL"
            print(
                f"{name:4s} [{status}] {len(report.errors)} error(s), "
                f"{len(report.warnings)} warning(s), {len(report)} diagnostic(s)"
            )
            for diag in report:
                print(f"  {diag.render()}")
    return 0 if all(r.ok for r in reports.values()) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Poly (HPCA 2019) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure", help="regenerate a paper table/figure")
    p.add_argument("name", help="fig01..fig14 or table2")
    p.set_defaults(fn=_cmd_figure)

    p = sub.add_parser("dse", help="offline design-space exploration")
    p.add_argument("app")
    p.add_argument("--setting", default="I", choices=("I", "II", "III"))
    p.set_defaults(fn=_cmd_dse)

    p = sub.add_parser("schedule", help="two-step schedule of one request")
    p.add_argument("app")
    p.add_argument("--setting", default="I", choices=("I", "II", "III"))
    p.set_defaults(fn=_cmd_schedule)

    p = sub.add_parser("simulate", help="serve a Poisson request stream")
    p.add_argument("app")
    p.add_argument("rps", type=float)
    p.add_argument("--setting", default="I", choices=("I", "II", "III"))
    p.add_argument(
        "--system",
        default="Heter-Poly",
        choices=("Homo-GPU", "Homo-FPGA", "Heter-Poly"),
    )
    p.add_argument("--ms", type=float, default=10_000.0)
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser("codegen", help="emit optimized OpenCL source")
    p.add_argument("app")
    p.add_argument("kernel")
    p.add_argument("--fpga", action="store_true")
    p.add_argument("--wg", type=int, default=64)
    p.add_argument("--unroll", type=int, default=1)
    p.add_argument("--cu", type=int, default=1)
    p.add_argument("--ports", type=int, default=1)
    p.add_argument("--scratchpad", action="store_true")
    p.add_argument("--coalesce", action="store_true")
    p.add_argument("--pipeline", action="store_true")
    p.add_argument("--double-buffer", action="store_true")
    p.add_argument("--fused", action="store_true")
    p.set_defaults(fn=_cmd_codegen)

    p = sub.add_parser("lint", help="static diagnostics over the bundled apps")
    p.add_argument(
        "--app",
        action="append",
        help="benchmark short name (repeatable); all six when omitted",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--dse",
        action="store_true",
        help="also validate the DSE product and scheduler admission",
    )
    p.add_argument("--setting", default="I", choices=("I", "II", "III"))
    p.set_defaults(fn=_cmd_lint)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
