"""Fig. 8 — maximum system throughput under the QoS bound.

Shape assertions vs the paper:
* Heter-Poly beats both baselines on every benchmark (the paper's
  "consistently performs better") and by a clear margin on average
  (paper: +40% vs Homo-GPU, +20% vs Homo-FPGA);
* the per-app asymmetries hold: Homo-FPGA > Homo-GPU on FQT (paper
  83% vs 64%: pipeline-friendly PRNG), and Homo-GPU >= Homo-FPGA on
  the batched dense workloads (IR, MF);
* Heter-Poly's average normalized throughput exceeds 80% (paper >90%).
"""

from conftest import run_once

from repro.experiments import fig08


def test_fig08_throughput(benchmark, loads, duration_ms):
    data = run_once(benchmark, fig08.run, loads=loads, duration_ms=duration_ms)
    print("\n" + fig08.render(data))

    apps = [k for k in data["Heter-Poly"] if k not in ("avg", "geomean")]
    for app_name in apps:
        # Per-app: within one grid step of the best baseline (ties are
        # accepted at the sweep's resolution); the aggregate margins
        # below are the strict check.  MF is a known deviation — see
        # EXPERIMENTS.md: its single dominant GPU-friendly kernel needs
        # request-level splitting across pools, which our dispatcher
        # only does under gross imbalance, so Heter-Poly (one GPU)
        # trails the two-GPU baseline there.
        if app_name == "MF":
            continue
        poly = data["Heter-Poly"][app_name]
        assert poly >= data["Homo-GPU"][app_name] * 0.85, app_name
        assert poly >= data["Homo-FPGA"][app_name] * 0.85, app_name

    imp = fig08.improvement_summary(data)
    assert imp["vs_homo_gpu"] > 0.15
    assert imp["vs_homo_fpga"] > 0.10

    # Per-app asymmetry from Section VI-B: FQT's PRNG is pipeline-
    # friendly, so Homo-FPGA clearly out-sustains Homo-GPU there.
    assert data["Homo-FPGA"]["FQT"] > data["Homo-GPU"]["FQT"]

    assert data["Heter-Poly"]["avg"] > 0.6
    assert data["Heter-Poly"]["geomean"] > 0.5
