"""Table II — benchmark inventory and per-kernel design-space sizes.

Shape assertions vs the paper:
* all six benchmarks with their full kernel inventory are present;
* every kernel's explored design space matches the paper's ``#Designs``
  count (the DSE thins to that target) within the feasibility-driven
  shortfall allowed for FPGA spaces;
* pattern compositions include the kinds Table II lists.
"""

from conftest import run_once

from repro.experiments import table2


def test_table2_design_spaces(benchmark):
    rows = run_once(benchmark, table2.run)
    print("\n" + table2.render(rows))

    benchmarks_seen = {r["benchmark"] for r in rows}
    assert benchmarks_seen == {"ASR", "FQT", "IR", "CS", "MF", "WT"}
    # Table II lists 16 kernel rows; ASR's LSTM/FC types appear twice in
    # the Fig. 6 kernel graph (K1..K4), giving 17 kernel instances.
    assert len(rows) == 17

    for r in rows:
        # The explored spaces hit the paper's target sizes exactly when
        # enough feasible points exist, and never exceed them.
        assert 0 < r["gpu_designs"] <= r["gpu_target"]
        assert 0 < r["fpga_designs"] <= r["fpga_target"]
        assert r["gpu_designs"] >= min(r["gpu_target"], 8)
        assert r["fpga_designs"] >= min(r["fpga_target"], 8)
        assert r["patterns"], "kernel with no patterns"

    by_kernel = {(r["benchmark"], r["kernel"]): r["patterns"] for r in rows}
    assert "Pipeline" in by_kernel[("ASR", "LSTM_acoustic")]
    assert "Reduce" in by_kernel[("FQT", "Reduce")]
    assert "Stencil" in by_kernel[("IR", "Convolution")]
    assert "Gather" in by_kernel[("CS", "RS_Encoder")]
    assert "Scatter" in by_kernel[("MF", "SGD_Update")]
    assert "Stencil" in by_kernel[("WT", "Arithmetic_Coding")]
