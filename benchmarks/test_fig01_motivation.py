"""Fig. 1 — motivation study (ASR on Setting-I).

Shape assertions vs the paper:
* tail latency is a hockey stick: each system's p99 at full load is
  several times its low-load p99;
* Heter-Poly sustains the highest RPS under the 200 ms bound
  (paper: 96 vs 74 vs 68);
* Heter-Poly has the best energy proportionality (paper: 0.92 vs
  0.68 / 0.63) and the lowest low-load power;
* each kernel's design space has a non-trivial Pareto frontier.
"""

from conftest import run_once

from repro.experiments import fig01


def test_fig01_motivation(benchmark, loads, duration_ms):
    data = run_once(benchmark, fig01.run, loads=loads, duration_ms=duration_ms)
    print("\n" + fig01.render(data))

    max_rps = data["max_rps"]
    assert max_rps["Heter-Poly"] >= max_rps["Homo-GPU"]
    assert max_rps["Heter-Poly"] >= max_rps["Homo-FPGA"]
    assert max_rps["Heter-Poly"] > 0

    ep = data["energy_proportionality"]
    assert ep["Heter-Poly"] > ep["Homo-GPU"]
    assert ep["Heter-Poly"] > ep["Homo-FPGA"]

    # Hockey stick: saturated latency far above low-load latency.
    for name, curve in data["latency_vs_rps"].items():
        low, high = curve[0][1], curve[-1][1]
        assert high > 2.0 * low, f"{name} shows no saturation knee"

    # Low-load power: Poly idles lowest (DVFS + low-power bitstreams).
    low_power = {
        name: curve[0][1] for name, curve in data["power_vs_load"].items()
    }
    assert low_power["Heter-Poly"] < low_power["Homo-GPU"]
    assert low_power["Heter-Poly"] < low_power["Homo-FPGA"]

    # Design-space panel: a real latency/power trade-off exists.
    for platform, frontier in data["lstm_pareto"].items():
        assert len(frontier) >= 2, f"degenerate Pareto frontier on {platform}"
        lats = [p[0] for p in frontier]
        pows = [p[1] for p in frontier]
        assert lats == sorted(lats)
        assert pows == sorted(pows, reverse=True)
