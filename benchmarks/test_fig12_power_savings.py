"""Fig. 12 — trace-driven power savings and QoS violations.

Shape assertions vs the paper:
* Homo-GPU consumes the most energy over the day; Heter-Poly the least
  ("Homo-GPU generally consumes the highest power for almost every
  time interval");
* Heter-Poly's p99 stays under the 200 ms target with a (near-)zero
  violation ratio;
* Heter-Poly's violation ratio is no worse than the baselines'.
"""

from conftest import run_once

from repro.experiments import fig12


def test_fig12_power_savings(benchmark):
    data = run_once(benchmark, fig12.run)
    print("\n" + fig12.render(data))

    gpu, fpga, poly = (
        data["Homo-GPU"],
        data["Homo-FPGA"],
        data["Heter-Poly"],
    )

    assert poly["energy_j"] < fpga["energy_j"] < gpu["energy_j"]
    assert data["summary"]["poly_saving_vs_gpu"] > 0.15
    assert data["summary"]["poly_saving_vs_fpga"] > 0.05

    # QoS under the diurnal trace: Poly holds the tail.
    assert poly["p99_ms"] <= 200.0
    assert poly["violations"] <= 0.01
    assert poly["violations"] <= gpu["violations"] + 1e-9
    assert poly["violations"] <= fpga["violations"] + 1e-9

    # Power tracks load: the per-interval series is not flat.
    import numpy as np

    series = np.asarray(poly["power_series_w"])
    assert series.std() > 2.0
