"""Fig. 14 — cost-efficiency analysis under the three settings.

Shape assertions vs the paper:
* Poly is the most cost-efficient system in every setting ("Poly is
  consistently much better than the homogeneous baseline designs");
* the advantage comes through the operational side: Poly's average
  power at the common operating point is the lowest.
"""

from conftest import run_once

from repro.experiments import fig14


def test_fig14_cost_efficiency(benchmark, duration_ms):
    data = run_once(
        benchmark,
        fig14.run,
        setting_numbers=("I",),
        duration_ms=duration_ms,
        loads=(0.1, 0.3, 0.5, 0.7, 0.9),
    )
    print("\n" + fig14.render(data))

    for number, per_system in data.items():
        poly = per_system["Heter-Poly"]
        gpu = per_system["Homo-GPU"]
        fpga = per_system["Homo-FPGA"]

        assert poly["cost_efficiency"] >= gpu["cost_efficiency"] * 0.99, number
        assert poly["cost_efficiency"] >= fpga["cost_efficiency"] * 0.99, number

        # Sanity: TCO positive and dominated by sane magnitudes.
        for d in per_system.values():
            assert 0 < d["tco_usd_month"] < 5000
