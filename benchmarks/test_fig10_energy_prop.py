"""Fig. 10 — energy-proportionality comparison across all benchmarks.

Shape assertions vs the paper:
* Heter-Poly has the best EP on every benchmark;
* its average EP gain is substantial (paper: +0.23 vs Homo-GPU and
  +0.17 vs Homo-FPGA on the [0,1] EP scale);
* Heter-Poly's average EP approaches the ideal (paper: 0.92).
"""

from conftest import run_once

from repro.experiments import fig10


def test_fig10_energy_proportionality(benchmark, loads, duration_ms):
    data = run_once(benchmark, fig10.run, loads=loads, duration_ms=duration_ms)
    print("\n" + fig10.render(data))

    apps = [k for k in data["Heter-Poly"] if k != "avg"]
    for app_name in apps:
        poly = data["Heter-Poly"][app_name]
        assert poly >= data["Homo-GPU"][app_name] - 0.02, app_name
        assert poly >= data["Homo-FPGA"][app_name] - 0.02, app_name
        assert poly <= 1.0 + 1e-9

    imp = fig10.improvement_summary(data)
    assert imp["vs_homo_gpu"] > 0.08
    assert imp["vs_homo_fpga"] > 0.05
    assert data["Heter-Poly"]["avg"] > 0.55
