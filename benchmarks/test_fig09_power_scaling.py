"""Fig. 9 — power-scaling trends vs load (ASR, FQT, IR).

Shape assertions vs the paper:
* every system's power grows with load;
* Heter-Poly's curve is closest to the ideal energy-proportional line
  (smallest mean gap) and has the lowest idle-end power;
* the baselines' low-load power is far above ideal (their idle floor).
"""

from conftest import run_once

from repro.experiments import fig09
from repro.experiments.fig09 import normalized_gap


def test_fig09_power_scaling(benchmark, loads, duration_ms):
    data = run_once(benchmark, fig09.run, loads=loads, duration_ms=duration_ms)
    print("\n" + fig09.render(data))

    for app_name, curves in data.items():
        gaps = {
            name: normalized_gap(curve)
            for name, curve in curves.items()
            if name != "ideal"
        }
        assert gaps["Heter-Poly"] <= gaps["Homo-GPU"], app_name
        assert gaps["Heter-Poly"] <= gaps["Homo-FPGA"], app_name

        for name, curve in curves.items():
            if name == "ideal":
                continue
            # Monotone-ish growth: full-load power above low-load power.
            assert curve[-1][1] > curve[0][1] * 1.02, (app_name, name)

        # Idle-end ordering: Poly lowest (DVFS + low-power bitstreams).
        low = {n: c[0][1] for n, c in curves.items() if n != "ideal"}
        assert low["Heter-Poly"] < low["Homo-GPU"], app_name
        assert low["Heter-Poly"] < low["Homo-FPGA"], app_name
