"""Shared benchmark configuration.

The benchmarks re-run every table/figure of the paper's evaluation.
To keep the full suite under a few minutes they default to a coarse
load grid and short simulation horizons; pass ``--full-repro`` for the
fine grid used in EXPERIMENTS.md.
"""

import pytest

COARSE_LOADS = (0.1, 0.4, 0.7, 1.0)
FULL_LOADS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
COARSE_DURATION_MS = 5000.0
FULL_DURATION_MS = 12000.0


def pytest_addoption(parser):
    parser.addoption(
        "--full-repro",
        action="store_true",
        default=False,
        help="use the paper's full 10-point load grid and longer horizons",
    )


@pytest.fixture(scope="session")
def loads(request):
    return FULL_LOADS if request.config.getoption("--full-repro") else COARSE_LOADS


@pytest.fixture(scope="session")
def duration_ms(request):
    if request.config.getoption("--full-repro"):
        return FULL_DURATION_MS
    return COARSE_DURATION_MS


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
