"""Fig. 11 — the 24-hour utilization trace.

Shape assertions vs the published Google-cluster characteristics:
* mean utilization in the under-provisioned band the paper leans on
  (datacenters run well below saturation);
* a visible diurnal swing (peak hours well above trough hours);
* bursts exist (p95 clearly above the mean) but the trace stays in
  [0, 1].
"""

from conftest import run_once

from repro.experiments import fig11


def test_fig11_trace(benchmark):
    data = run_once(benchmark, fig11.run)
    print("\n" + fig11.render(data))

    assert 0.2 <= data["mean"] <= 0.6
    assert 0.0 <= data["min"] and data["max"] <= 1.0
    assert data["p95"] > data["mean"] * 1.15

    # Diurnal swing: best hour vs worst hour differ substantially.
    series = data["series"]
    hours = {}
    for hour, util in series:
        hours.setdefault(int(hour), []).append(util)
    hourly = {h: sum(v) / len(v) for h, v in hours.items()}
    assert len(hourly) == 24
    assert max(hourly.values()) > 1.5 * min(hourly.values())

    # 24 h at 5-minute granularity.
    assert len(series) == 24 * 12
