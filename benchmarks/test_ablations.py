"""Ablation benchmarks — the design choices DESIGN.md calls out.

Each ablation disables one Poly mechanism and measures what it buys on
ASR/Setting-I, quantifying the contribution of:

* the **energy-optimization step** (Step 2) — schedule energy;
* **pattern fusion** in the DSE — best achievable latency;
* the **DVFS/low-power idle management** — low-load node power;
* **GPU batching** — sustained throughput under QoS.
"""

import pytest
from conftest import run_once

from repro import apps, runtime
from repro.hardware import ImplConfig, model_for
from repro.scheduler import DeviceSlot, PolyScheduler


@pytest.fixture(scope="module")
def asr():
    app = apps.build("ASR")
    system = runtime.setting("I", "Heter-Poly")
    spaces = app.explore(system.platforms)
    return app, system, spaces


def test_ablation_energy_step(benchmark, asr):
    """Step 2 ablation: scheduling with latency optimization only."""
    app, system, spaces = asr
    devices = [
        DeviceSlot(device_id, spec.name, spec.device_type)
        for device_id, spec in system.device_inventory()
    ]
    scheduler = PolyScheduler(spaces, app.qos_ms)

    def run():
        with_e, _ = scheduler.schedule(app.graph, list(devices))
        without_e, _ = scheduler.schedule(
            app.graph, list(devices), optimize_energy=False
        )
        return with_e, without_e

    with_e, without_e = run_once(benchmark, run)
    saving = 1.0 - with_e.total_energy_mj / without_e.total_energy_mj
    print(
        f"\nAblation (energy step): schedule energy "
        f"{without_e.total_energy_mj:.0f} -> {with_e.total_energy_mj:.0f} mJ "
        f"({saving*100:.0f}% saved), makespan "
        f"{without_e.makespan_ms:.1f} -> {with_e.makespan_ms:.1f} ms"
    )
    # Step 2 must save energy by spending (bounded) latency.
    assert with_e.total_energy_mj < without_e.total_energy_mj
    assert with_e.makespan_ms <= app.qos_ms


def test_ablation_fusion(benchmark, asr):
    """Fusion ablation: per-kernel latency with and without fusion,
    evaluated at an optimized operating point across all six apps (the
    paper's Map+Reduce fusion example saves the global-memory bounce)."""
    _, system, _ = asr
    gpu_cfg = ImplConfig(
        work_group_size=256, unroll=8, use_scratchpad=False, pipelined=True
    )
    fpga_cfg = ImplConfig(
        unroll=16, compute_units=4, pipelined=True, bram_ports=16,
        double_buffer=True,
    )

    def run():
        deltas = {}
        for app_name in ("ASR", "FQT", "IR", "CS", "MF", "WT"):
            app = apps.build(app_name)
            for spec in system.platforms:
                model = model_for(spec)
                cfg = gpu_cfg if spec.device_type.value == "gpu" else fpga_cfg
                for kernel in app.kernels:
                    if kernel.intermediate_bytes < (1 << 22):
                        continue  # fusion is about big intermediates
                    import dataclasses

                    plain = model.estimate(
                        kernel, dataclasses.replace(cfg, fused=False)
                    ).latency_ms
                    fused = model.estimate(
                        kernel, dataclasses.replace(cfg, fused=True)
                    ).latency_ms
                    deltas[(kernel.name, spec.device_type.value)] = (plain, fused)
        return deltas

    deltas = run_once(benchmark, run)
    print("\nAblation (fusion): unfused -> fused latency (ms)")
    for (kname, dev), (plain, fused) in deltas.items():
        print(f"  {kname:18s} {dev:4s} {plain:8.2f} -> {fused:8.2f}")
    assert deltas, "no kernel exercised fusion"
    # Fusion helps substantially somewhere; it may cost where the larger
    # on-chip buffers derate the FPGA clock (the DSE explores both
    # variants, so regressions never reach the Pareto frontier).
    assert any(fused < plain * 0.95 for plain, fused in deltas.values())
    assert all(fused <= plain * 1.5 for plain, fused in deltas.values())


def test_ablation_idle_management(benchmark, asr):
    """DVFS/low-power ablation: Poly node vs the same hardware with
    static full-clock idling (approximated by the static policy's idle
    accounting on identical inventory)."""
    app, system, spaces = asr
    import dataclasses

    static_system = dataclasses.replace(
        system,
        codename="Heter-Static-Idle",
        policy=runtime.SchedulingPolicy.STATIC,
    )

    def run():
        arr = runtime.poisson_arrivals(8.0, 6000.0)
        managed = runtime.run_simulation(system, app, spaces, arr)
        unmanaged = runtime.run_simulation(static_system, app, spaces, arr)
        return managed.avg_power_w, unmanaged.avg_power_w

    managed_w, unmanaged_w = run_once(benchmark, run)
    print(
        f"\nAblation (idle management): low-load node power "
        f"{unmanaged_w:.0f} W (static idle) -> {managed_w:.0f} W (Poly DVFS)"
    )
    assert managed_w < unmanaged_w * 0.95


def test_ablation_gpu_batching(benchmark, asr):
    """Batching ablation: per-request GPU cost at batch 1 vs batch 8
    for the batched kernels (the capacity GPU batching buys)."""
    app, system, spaces = asr
    gpu_spec = system.gpu_spec
    model = model_for(gpu_spec)

    def run():
        out = {}
        for kernel in app.kernels:
            point = spaces[(kernel.name, gpu_spec.name)].min_latency()
            l1 = model.estimate(kernel, point.config, 1).latency_ms
            l8 = model.estimate(kernel, point.config, 8).latency_ms
            out[kernel.name] = (l1, l8 / 8.0)
        return out

    costs = run_once(benchmark, run)
    print("\nAblation (GPU batching): per-request cost, batch1 -> batch8 (ms)")
    for name, (c1, c8) in costs.items():
        print(f"  {name:18s} {c1:8.2f} -> {c8:8.2f} ({c1/c8:.1f}x)")
    # The recurrent kernels amortize several-fold.
    lstm1, lstm8 = costs["LSTM_acoustic"]
    assert lstm1 / lstm8 > 2.0
