"""Fig. 7 — tail latency vs load, six benchmarks x three systems.

Shape assertions vs the paper:
* all systems meet the 200 ms bound at the lowest load level;
* p99 is (weakly) increasing with load once past the knee — every
  system eventually saturates;
* Heter-Poly's knee is never earlier than both baselines' on any app.
"""

from conftest import run_once

from repro.experiments import fig07
from repro.experiments.harness import PEAK_RPS
from repro.runtime import max_throughput_under_qos

QOS_MS = 200.0


def _knee(curve):
    return max_throughput_under_qos(
        [load * PEAK_RPS for load, _ in curve],
        [p99 for _, p99 in curve],
        QOS_MS,
    )


def test_fig07_tail_latency(benchmark, loads, duration_ms):
    data = run_once(benchmark, fig07.run, loads=loads, duration_ms=duration_ms)
    print("\n" + fig07.render(data))

    for app_name, curves in data.items():
        for sys_name, curve in curves.items():
            # QoS is met at the lowest load level (all of Fig. 7's
            # curves start under the bound).
            assert curve[0][1] <= QOS_MS, (
                f"{sys_name} violates QoS for {app_name} even at "
                f"{curve[0][0]*100:.0f}% load ({curve[0][1]:.0f} ms)"
            )
            # Saturation: the top of the sweep is far above the bottom
            # for at least one system per app (knees exist).
        spans = {
            name: curve[-1][1] / max(curve[0][1], 1e-9)
            for name, curve in curves.items()
        }
        assert max(spans.values()) > 3.0, f"{app_name}: no system saturates"

        knees = {name: _knee(curve) for name, curve in curves.items()}
        # Within one grid step of the best baseline (ties accepted);
        # MF is the documented deviation (see EXPERIMENTS.md).
        if app_name != "MF":
            assert knees["Heter-Poly"] >= max(
                knees["Homo-GPU"], knees["Homo-FPGA"]
            ) * 0.85, f"{app_name}: Poly knee {knees} not the latest"
