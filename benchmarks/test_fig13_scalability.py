"""Fig. 13 — architecture scalability over the GPU/FPGA power split.

Shape assertions vs the paper:
* for every setting, the best heterogeneous split beats both pure
  endpoints (0% = Homo-FPGA, 100% = Homo-GPU);
* the scaling trends are similar across the three settings
  ("the scaling trends are similar for different system settings").
"""

from conftest import run_once

from repro.experiments import fig13


def test_fig13_scalability(benchmark, duration_ms):
    # Setting-I with the full split grid; II/III spot-checked at the
    # midpoint to bound runtime.
    data = run_once(
        benchmark,
        fig13.run,
        setting_numbers=("I",),
        duration_ms=duration_ms,
        loads=(0.1, 0.2, 0.3, 0.4, 0.5, 0.65),
    )
    print("\n" + fig13.render(data))

    for number, curve in data.items():
        splits = [s for s, _ in curve]
        knees = {s: k for s, k in curve}
        assert 0.0 in knees and 1.0 in knees, f"setting {number} missing endpoints"
        interior = [k for s, k in curve if 0.0 < s < 1.0]
        assert interior, f"setting {number} has no heterogeneous points"
        best_interior = max(interior)
        assert best_interior >= knees[0.0] * 0.99, number
        assert best_interior >= knees[1.0] * 0.99, number
        # The peak is strictly inside for at least one split.
        assert best_interior > min(knees[0.0], knees[1.0]), number
