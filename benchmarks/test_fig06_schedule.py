"""Fig. 6 — the two-step runtime schedule of ASR.

Shape assertions vs the paper's worked example:
* Step 1 meets the 200 ms bound with room to spare (latency slack);
* Step 2 accepts at least one implementation swap, saves energy, and
  never violates the bound;
* the final schedule respects the DAG's two execution paths merging at
  the output kernel.
"""

from conftest import run_once

from repro.experiments import fig06


def test_fig06_schedule(benchmark):
    data = run_once(benchmark, fig06.run)
    print("\n" + fig06.render(data))

    step1, final = data["step1"], data["final"]
    bound = data["latency_bound_ms"]

    assert step1.makespan_ms <= bound
    assert data["slack_after_step1_ms"] > 0

    # Step 2 trades slack for energy without violating the bound.
    assert final.makespan_ms <= bound
    assert final.total_energy_mj <= step1.total_energy_mj
    assert data["energy_steps"], "no energy swap was profitable"
    assert data["energy_saved_mj"] > 0

    # Every accepted swap kept the bound (recorded makespans).
    for step in data["energy_steps"]:
        assert step.makespan_ms <= bound
        assert step.energy_saved_mj > 0

    # The ASR DAG has the two paths of Fig. 6 (K1=>K4, K2=>K3=>K4).
    paths = data["paths"]
    assert len(paths) == 2
    assert sorted(len(p) for p in paths) == [2, 3]

    # Precedence is respected in the final timetable.
    a = final.assignments
    assert a["FC_output"].start_ms >= a["LSTM_acoustic"].end_ms - 1e-6
    assert a["FC_output"].start_ms >= a["LSTM_language"].end_ms - 1e-6
    assert a["LSTM_language"].start_ms >= a["FC_embed"].end_ms - 1e-6
