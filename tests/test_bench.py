"""Bench harness: schema stability, determinism, and the baseline gate."""

import copy
import json
from pathlib import Path

import pytest

from repro.benchref import (
    SCHEMA_VERSION,
    calibrate,
    compare_to_baseline,
    default_output_path,
    load_bench_json,
    render_bench,
    run_bench,
    write_bench_json,
)
from repro.cli import main as cli_main

#: The stable BENCH layout; CI tooling and the trend record key off it.
TOP_KEYS = {
    "schema_version", "label", "setting", "system", "trials", "n_jobs",
    "suite", "calibration_s", "apps",
}
DSE_KEYS = {
    "trial_s", "median_s", "cold_s", "warm_median_s", "spaces", "points",
    "pareto_points", "pruned_invalid", "cache",
}
CACHE_KEYS = {"hits", "misses", "merges", "hit_rate"}
#: Additive fields (obs wiring) absent from pre-obs baseline documents;
#: the schema_version stayed 1 because consumers key off required keys.
ADDITIVE_KEYS = {"pruned_invalid", "merges"}
SCHED_KEYS = {"trial_s", "median_s", "swaps"}
SIM_KEYS = {"trial_s", "median_s", "requests", "p99_ms"}
RT_SCHED_KEYS = {"trial_s", "median_s", "cold_s", "speedup", "loads"}
RT_LOAD_KEYS = {
    "rps", "duration_ms", "requests", "uncached_trial_s",
    "uncached_median_s", "uncached_req_per_s", "cached_cold_s",
    "cached_warm_trial_s", "cached_warm_median_s", "cached_warm_req_per_s",
    "pair_speedups", "speedup", "p99_ms", "identical", "plan_cache",
}
PLAN_CACHE_KEYS = {"hits", "misses", "evictions", "hit_rate"}
RT_SIM_KEYS = {"trial_s", "median_s", "cold_s", "speedup", "loads"}
RT_SIM_LOAD_KEYS = {
    "rps", "duration_ms", "requests", "legacy_trial_s", "legacy_median_s",
    "legacy_req_per_s", "event_cold_s", "event_warm_trial_s",
    "event_warm_median_s", "event_req_per_s", "pair_speedups", "speedup",
    "p99_ms", "identical",
}
CLUSTER_KEYS = {
    "trial_s", "median_s", "cold_s", "requests", "peak_rps", "served_rps",
    "p99_ms", "qos_ok_frac", "mean_fleet", "launches", "terminations",
    "scale_up_lag_ms", "scale_down_lag_ms", "cost_efficiency",
}
OBS_KEYS = {"trial_s", "median_s", "cold_s", "speedup", "overhead", "loads"}
OBS_LOAD_KEYS = {
    "rps", "duration_ms", "requests", "events", "legacy_trial_s",
    "legacy_median_s", "event_cold_s", "event_trial_s", "event_median_s",
    "untraced_trial_s", "untraced_median_s", "pair_speedups", "speedup",
    "overhead", "identical", "sampling",
}
OBS_SAMPLING_KEYS = {
    "head_rate", "kept_events", "total_events", "kept_requests",
    "dropped_spans",
}
DSE_SEARCH_KEYS = {
    "trial_s", "median_s", "cold_s", "exhaustive_trial_s",
    "exhaustive_median_s", "pair_speedups", "speedup", "explored",
    "exhaustive_evaluations", "guided_evaluations", "eval_ratio",
    "hypervolume_ratio", "hypervolume_ratio_mean", "front_identical",
    "max_evals", "seed",
}


@pytest.fixture(scope="module")
def mf_doc():
    """One real harness run on the cheapest app, shared by the module."""
    return run_bench(app_names=["MF"], trials=2, label="test")


class TestSchema:
    def test_top_level_keys(self, mf_doc):
        assert set(mf_doc) == TOP_KEYS
        assert mf_doc["schema_version"] == SCHEMA_VERSION
        assert mf_doc["calibration_s"] > 0

    def test_app_sections(self, mf_doc):
        row = mf_doc["apps"]["MF"]
        assert set(row) == {
            "dse", "scheduler", "simulation", "sched", "sim", "cluster",
            "obs", "dse_search",
        }
        assert set(row["dse"]) == DSE_KEYS
        assert set(row["dse"]["cache"]) == CACHE_KEYS
        assert set(row["scheduler"]) == SCHED_KEYS
        assert set(row["simulation"]) == SIM_KEYS
        assert set(row["sched"]) == RT_SCHED_KEYS
        for load in row["sched"]["loads"].values():
            assert set(load) == RT_LOAD_KEYS
            assert set(load["plan_cache"]) == PLAN_CACHE_KEYS
        assert set(row["sim"]) == RT_SIM_KEYS
        for load in row["sim"]["loads"].values():
            assert set(load) == RT_SIM_LOAD_KEYS
        assert set(row["cluster"]) == CLUSTER_KEYS
        assert set(row["obs"]) == OBS_KEYS
        for load in row["obs"]["loads"].values():
            assert set(load) == OBS_LOAD_KEYS
            assert set(load["sampling"]) == OBS_SAMPLING_KEYS
            assert load["identical"] is True
        assert set(row["dse_search"]) == DSE_SEARCH_KEYS

    def test_trial_counts_and_medians(self, mf_doc):
        row = mf_doc["apps"]["MF"]
        for section in ("dse", "scheduler", "simulation"):
            assert len(row[section]["trial_s"]) == 2
            assert row[section]["median_s"] > 0

    def test_warm_trials_hit_cache(self, mf_doc):
        dse = mf_doc["apps"]["MF"]["dse"]
        assert dse["cache"]["hit_rate"] > 0.4
        assert dse["warm_median_s"] < dse["cold_s"]

    def test_json_round_trip(self, mf_doc, tmp_path):
        path = write_bench_json(mf_doc, tmp_path / "BENCH_test.json")
        assert load_bench_json(path) == mf_doc

    def test_render_mentions_every_app(self, mf_doc):
        text = render_bench(mf_doc)
        assert "MF" in text and "cache" in text

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError, match="unknown app"):
            run_bench(app_names=["NOPE"], trials=1)

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError, match="trials"):
            run_bench(app_names=["MF"], trials=0)

    def test_default_output_path(self):
        assert default_output_path("ci").name == "BENCH_ci.json"


class TestLoadValidation:
    def test_rejects_wrong_schema_version(self, mf_doc, tmp_path):
        doc = copy.deepcopy(mf_doc)
        doc["schema_version"] = 99
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="schema_version"):
            load_bench_json(path)

    def test_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": SCHEMA_VERSION}))
        with pytest.raises(ValueError, match="missing"):
            load_bench_json(path)

    def test_rejects_bad_calibration(self, mf_doc, tmp_path):
        doc = copy.deepcopy(mf_doc)
        doc["calibration_s"] = 0.0
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="calibration"):
            load_bench_json(path)


class TestGate:
    def test_identical_docs_pass(self, mf_doc):
        comparison = compare_to_baseline(mf_doc, mf_doc, max_ratio=2.0)
        assert comparison.ok
        assert all(r == pytest.approx(1.0) for r in comparison.ratios.values())

    def test_regression_detected(self, mf_doc):
        slow = copy.deepcopy(mf_doc)
        dse = slow["apps"]["MF"]["dse"]
        dse["median_s"] *= 3.0
        dse["cold_s"] *= 3.0
        comparison = compare_to_baseline(slow, mf_doc, max_ratio=2.0)
        assert not comparison.ok
        assert any("MF/dse" in r for r in comparison.regressions)
        assert "REGRESSION" in comparison.render()

    def test_calibration_normalizes_machine_speed(self, mf_doc):
        """A uniformly 3x-slower machine (3x calibration, 3x medians)
        must NOT trip the gate."""
        slow_machine = copy.deepcopy(mf_doc)
        slow_machine["calibration_s"] *= 3.0
        dse = slow_machine["apps"]["MF"]["dse"]
        dse["median_s"] *= 3.0
        dse["cold_s"] *= 3.0
        comparison = compare_to_baseline(slow_machine, mf_doc, max_ratio=2.0)
        assert comparison.ok

    def test_disjoint_apps_skipped_not_failed(self, mf_doc):
        other = copy.deepcopy(mf_doc)
        other["apps"] = {"ASR": other["apps"].pop("MF")}
        comparison = compare_to_baseline(other, mf_doc, max_ratio=2.0)
        assert comparison.ok
        assert set(comparison.skipped) == {"ASR", "MF"}

    def test_bad_max_ratio_rejected(self, mf_doc):
        with pytest.raises(ValueError, match="max_ratio"):
            compare_to_baseline(mf_doc, mf_doc, max_ratio=0.0)


BASELINE_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "baseline.json"


class TestCheckedInBaseline:
    def test_baseline_is_valid_bench_doc(self):
        doc = load_bench_json(BASELINE_PATH)
        assert doc["label"] == "baseline"
        for app, row in doc["apps"].items():
            assert DSE_KEYS - ADDITIVE_KEYS <= set(row["dse"]), app
            assert set(row["dse"]) <= DSE_KEYS, app

    def test_baseline_covers_ci_apps(self):
        """perf-smoke benches ASR and WT; both must be gateable."""
        doc = load_bench_json(BASELINE_PATH)
        assert {"ASR", "WT"} <= set(doc["apps"])

    def test_baseline_gates_sched_sections(self):
        """The cached-runtime sections must carry the gated metrics."""
        doc = load_bench_json(BASELINE_PATH)
        for app, row in doc["apps"].items():
            assert {"median_s", "cold_s"} <= set(row["sched"]), app

    def test_baseline_gates_sim_sections(self):
        """The event-engine sections must carry the gated metrics."""
        doc = load_bench_json(BASELINE_PATH)
        for app, row in doc["apps"].items():
            assert {"median_s", "cold_s", "speedup"} <= set(row["sim"]), app

    def test_baseline_gates_cluster_sections(self):
        """The fleet-replay sections must carry the gated metrics."""
        doc = load_bench_json(BASELINE_PATH)
        for app, row in doc["apps"].items():
            assert {"median_s", "cold_s"} <= set(row["cluster"]), app

    def test_baseline_gates_obs_sections(self):
        """The tracing-overhead sections must carry the gated metrics."""
        doc = load_bench_json(BASELINE_PATH)
        for app, row in doc["apps"].items():
            assert {"median_s", "cold_s", "speedup"} <= set(row["obs"]), app

    def test_baseline_gates_dse_search_sections(self):
        """The guided-search sections must carry the gated timing plus
        the recorded quality bar: exact front parity and >=0.99
        hypervolume ratio on every app."""
        doc = load_bench_json(BASELINE_PATH)
        for app, row in doc["apps"].items():
            sec = row["dse_search"]
            assert {"median_s", "cold_s", "speedup"} <= set(sec), app
            assert sec["front_identical"] is True, app
            assert sec["hypervolume_ratio"] >= 0.99, app
            assert sec["eval_ratio"] >= 5.0, app


class TestSchedSuite:
    def test_sched_suite_runs_only_sched(self):
        doc = run_bench(app_names=["MF"], trials=1, label="s", suite="sched")
        assert doc["suite"] == "sched"
        row = doc["apps"]["MF"]
        assert set(row) == {"sched"}
        assert set(row["sched"]) == RT_SCHED_KEYS

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="suite"):
            run_bench(app_names=["MF"], trials=1, suite="nope")

    def test_cached_runs_bit_identical_with_hits(self, mf_doc):
        s = mf_doc["apps"]["MF"]["sched"]
        for load in s["loads"].values():
            assert load["identical"] is True
            pc = load["plan_cache"]
            assert pc["hits"] > 0
            assert 0 < pc["hit_rate"] <= 1
            assert len(load["pair_speedups"]) == 2
        # trials=2 -> one cold fill plus two warm trials.
        assert len(s["trial_s"]) == 3
        assert s["speedup"] > 0

    def test_render_includes_runtime_line(self, mf_doc):
        assert "sched-rt" in render_bench(mf_doc)

    def test_gate_covers_sched_section(self, mf_doc):
        slow = copy.deepcopy(mf_doc)
        sec = slow["apps"]["MF"]["sched"]
        sec["median_s"] *= 5.0
        sec["cold_s"] *= 5.0
        comparison = compare_to_baseline(slow, mf_doc, max_ratio=2.0)
        assert not comparison.ok
        assert any("MF/sched" in r for r in comparison.regressions)

    def test_cli_min_sched_speedup_gate(self, tmp_path):
        out = tmp_path / "BENCH_s.json"
        args = [
            "bench", "--app", "mf", "--suite", "sched", "--trials", "1",
            "--label", "s", "--out", str(out),
        ]
        assert cli_main(args + ["--min-sched-speedup", "1e9"]) == 1
        assert cli_main(args + ["--min-sched-speedup", "0.0"]) == 0
        assert load_bench_json(out)["suite"] == "sched"


class TestSimSuite:
    def test_sim_suite_runs_only_sim(self):
        doc = run_bench(app_names=["MF"], trials=1, label="e", suite="sim")
        assert doc["suite"] == "sim"
        row = doc["apps"]["MF"]
        assert set(row) == {"sim"}
        assert set(row["sim"]) == RT_SIM_KEYS

    def test_engines_float_identical_with_speedup_pairs(self, mf_doc):
        s = mf_doc["apps"]["MF"]["sim"]
        for load in s["loads"].values():
            assert load["identical"] is True
            assert len(load["pair_speedups"]) == 2
            assert load["legacy_req_per_s"] > 0
            assert load["event_req_per_s"] > 0
        # trials=2 -> one cold event fill plus two warm event trials.
        assert len(s["trial_s"]) == 3
        assert s["speedup"] > 0

    def test_render_includes_sim_line(self, mf_doc):
        assert "event warm" in render_bench(mf_doc)

    def test_gate_covers_sim_section(self, mf_doc):
        slow = copy.deepcopy(mf_doc)
        sec = slow["apps"]["MF"]["sim"]
        sec["median_s"] *= 5.0
        sec["cold_s"] *= 5.0
        comparison = compare_to_baseline(slow, mf_doc, max_ratio=2.0)
        assert not comparison.ok
        assert any("MF/sim" in r for r in comparison.regressions)

    def test_cli_min_sim_speedup_gate(self, tmp_path):
        out = tmp_path / "BENCH_e.json"
        args = [
            "bench", "--app", "mf", "--suite", "sim", "--trials", "1",
            "--label", "e", "--out", str(out),
        ]
        assert cli_main(args + ["--min-sim-speedup", "1e9"]) == 1
        assert cli_main(args + ["--min-sim-speedup", "0.0"]) == 0
        assert load_bench_json(out)["suite"] == "sim"


class TestObsSuite:
    def test_obs_suite_runs_only_obs(self):
        doc = run_bench(app_names=["MF"], trials=1, label="o", suite="obs")
        assert doc["suite"] == "obs"
        row = doc["apps"]["MF"]
        assert set(row) == {"obs"}
        assert set(row["obs"]) == OBS_KEYS
        high = row["obs"]["loads"]["high"]
        assert high["identical"] is True
        assert high["overhead"] >= 1.0
        assert 0 < high["sampling"]["kept_events"] <= high["events"]

    def test_cli_min_obs_retention_gate(self, tmp_path):
        out = tmp_path / "BENCH_o.json"
        args = [
            "bench", "--app", "mf", "--suite", "obs", "--trials", "1",
            "--label", "o", "--out", str(out),
        ]
        assert cli_main(args + ["--min-obs-retention", "1e9"]) == 1
        assert cli_main(args + ["--min-obs-retention", "0.0"]) == 0
        assert load_bench_json(out)["suite"] == "obs"


class TestDseSuite:
    def test_dse_suite_runs_only_dse_search(self):
        doc = run_bench(app_names=["MF"], trials=1, label="d", suite="dse")
        assert doc["suite"] == "dse"
        row = doc["apps"]["MF"]
        assert set(row) == {"dse_search"}
        sec = row["dse_search"]
        assert set(sec) == DSE_SEARCH_KEYS
        # The quality bar the CI job gates: exact parity on the real
        # space, >=0.99 hypervolume on the enlarged one, a real budget.
        assert sec["front_identical"] is True
        assert sec["hypervolume_ratio"] >= 0.99
        assert sec["guided_evaluations"] < sec["exhaustive_evaluations"]
        assert sec["eval_ratio"] >= 5.0
        assert len(sec["pair_speedups"]) == 1

    def test_dse_search_section_in_full_suite(self, mf_doc):
        sec = mf_doc["apps"]["MF"]["dse_search"]
        assert len(sec["pair_speedups"]) == 2
        assert sec["speedup"] > 0
        assert sec["max_evals"] > 0

    def test_render_includes_dse_search_line(self, mf_doc):
        assert "dse-srch" in render_bench(mf_doc)

    def test_gate_covers_dse_search_section(self, mf_doc):
        slow = copy.deepcopy(mf_doc)
        sec = slow["apps"]["MF"]["dse_search"]
        sec["median_s"] *= 5.0
        sec["cold_s"] *= 5.0
        comparison = compare_to_baseline(slow, mf_doc, max_ratio=2.0)
        assert not comparison.ok
        assert any("MF/dse_search" in r for r in comparison.regressions)

    def test_cli_min_dse_speedup_gate(self, tmp_path):
        out = tmp_path / "BENCH_d.json"
        args = [
            "bench", "--app", "mf", "--suite", "dse", "--trials", "1",
            "--label", "d", "--out", str(out),
        ]
        assert cli_main(args + ["--min-dse-speedup", "1e9"]) == 1
        assert cli_main(args + ["--min-dse-speedup", "0.0"]) == 0
        assert load_bench_json(out)["suite"] == "dse"

    def test_cli_min_hypervolume_ratio_gate(self, tmp_path):
        out = tmp_path / "BENCH_d.json"
        args = [
            "bench", "--app", "mf", "--suite", "dse", "--trials", "1",
            "--label", "d", "--out", str(out),
        ]
        # The ratio is capped at 1.0 by construction, so a >1 gate must
        # fail and the recorded 0.99 bar must pass (deterministic).
        assert cli_main(args + ["--min-hypervolume-ratio", "1.01"]) == 1
        assert cli_main(args + ["--min-hypervolume-ratio", "0.99"]) == 0


class TestClusterSuite:
    def test_cluster_suite_runs_only_cluster(self):
        doc = run_bench(app_names=["MF"], trials=1, label="c", suite="cluster")
        assert doc["suite"] == "cluster"
        row = doc["apps"]["MF"]
        assert set(row) == {"cluster"}
        assert set(row["cluster"]) == CLUSTER_KEYS

    def test_cluster_section_quality_metrics(self, mf_doc):
        c = mf_doc["apps"]["MF"]["cluster"]
        assert c["requests"] > 0
        assert c["served_rps"] > 0
        assert c["p99_ms"] > 0
        assert 0.0 <= c["qos_ok_frac"] <= 1.0
        assert c["mean_fleet"] >= 1.0
        # The mini diurnal profile peaks above one node's capacity, so
        # the replay must contain a scale-up episode with the 2000 ms
        # warm-up reflected in the measured lag.
        assert c["launches"] >= 1
        assert c["scale_up_lag_ms"] is not None
        assert c["scale_up_lag_ms"] >= 2000.0
        assert c["cost_efficiency"] > 0

    def test_render_includes_cluster_line(self, mf_doc):
        assert "cluster" in render_bench(mf_doc)

    def test_gate_covers_cluster_section(self, mf_doc):
        slow = copy.deepcopy(mf_doc)
        sec = slow["apps"]["MF"]["cluster"]
        sec["median_s"] *= 5.0
        sec["cold_s"] *= 5.0
        comparison = compare_to_baseline(slow, mf_doc, max_ratio=2.0)
        assert not comparison.ok
        assert any("MF/cluster" in r for r in comparison.regressions)


class TestCLI:
    def test_bench_command_writes_and_gates(self, tmp_path, mf_doc):
        baseline = tmp_path / "base.json"
        write_bench_json(mf_doc, baseline)
        out = tmp_path / "BENCH_cli.json"
        # Same trial count as the baseline doc: a 1-trial median is a
        # cold time and would not be comparable to a 2-trial median.
        rc = cli_main([
            "bench", "--app", "mf", "--trials", "2", "--label", "cli",
            "--out", str(out), "--check", str(baseline),
        ])
        assert rc == 0
        doc = load_bench_json(out)
        assert doc["label"] == "cli" and "MF" in doc["apps"]

    def test_bench_command_fails_on_regression(self, tmp_path, mf_doc):
        fast = copy.deepcopy(mf_doc)
        dse = fast["apps"]["MF"]["dse"]
        dse["median_s"] /= 100.0
        dse["cold_s"] /= 100.0
        baseline = tmp_path / "base.json"
        write_bench_json(fast, baseline)
        rc = cli_main([
            "bench", "--app", "mf", "--trials", "1", "--label", "cli",
            "--out", str(tmp_path / "BENCH_cli.json"), "--check", str(baseline),
        ])
        assert rc == 1

    def test_bench_command_unknown_app(self, tmp_path):
        rc = cli_main([
            "bench", "--app", "nope", "--trials", "1",
            "--out", str(tmp_path / "b.json"),
        ])
        assert rc == 2


def test_calibration_is_positive_and_stable():
    a, b = calibrate(), calibrate()
    assert a > 0 and b > 0
    # Same machine, same workload: within an order of magnitude.
    assert 0.1 < a / b < 10.0
