"""Unit tests for the runtime kernel scheduler (Section V)."""

import pytest

from conftest import chain_graph, small_kernel, synthetic_space
from repro.hardware import AMD_W9100, PCIeLink, XILINX_7V3
from repro.hardware.specs import DeviceType
from repro.scheduler import (
    DeviceSlot,
    EnergyOptimizer,
    KernelGraph,
    LatencyOptimizer,
    PolyScheduler,
    Schedule,
    StaticScheduler,
    latency_priorities,
    min_latency_ms,
    priority_order,
)

GPU, FPGA = AMD_W9100.name, XILINX_7V3.name


def _spaces(latencies):
    """Synthetic design spaces {kernel: {platform: [(lat, power)...]}}."""
    spaces = {}
    for kname, per_platform in latencies.items():
        for platform, points in per_platform.items():
            dt = DeviceType.GPU if platform == GPU else DeviceType.FPGA
            spaces[(kname, platform)] = synthetic_space(kname, platform, dt, points)
    return spaces


def _diamond_graph():
    """The ASR shape: K1=>K4, K2=>K3=>K4."""
    graph = KernelGraph("diamond")
    for i in range(1, 5):
        graph.add_kernel(small_kernel(f"K{i}", elements=256))
    graph.connect("K1", "K4", nbytes=1024)
    graph.connect("K2", "K3", nbytes=1024)
    graph.connect("K3", "K4", nbytes=1024)
    return graph


def _diamond_spaces():
    return _spaces(
        {
            "K1": {GPU: [(100, 150), (140, 90)], FPGA: [(110, 30), (160, 18)]},
            "K2": {GPU: [(50, 140), (80, 85)], FPGA: [(45, 28), (70, 16)]},
            "K3": {GPU: [(45, 130)], FPGA: [(40, 25), (60, 15)]},
            "K4": {GPU: [(70, 150), (95, 95)], FPGA: [(75, 30), (85, 14)]},
        }
    )


def _devices():
    return [
        DeviceSlot("gpu0", GPU, DeviceType.GPU),
        DeviceSlot("fpga0", FPGA, DeviceType.FPGA),
    ]


class TestKernelGraph:
    def test_duplicate_names_rejected(self):
        g = KernelGraph("g")
        g.add_kernel(small_kernel("K"))
        with pytest.raises(ValueError, match="duplicate"):
            g.add_kernel(small_kernel("K"))

    def test_cycle_rejected(self):
        g = chain_graph(2)
        with pytest.raises(ValueError, match="cycle"):
            g.connect("K1", "K0")

    def test_unknown_edge_endpoint(self):
        g = chain_graph(2)
        with pytest.raises(KeyError):
            g.connect("K0", "nope")

    def test_paths_of_diamond(self):
        g = _diamond_graph()
        paths = sorted(g.paths(), key=len)
        assert paths == [["K1", "K4"], ["K2", "K3", "K4"]]

    def test_default_edge_bytes_from_producer(self):
        g = KernelGraph("g")
        a = g.add_kernel(small_kernel("A", elements=512))
        g.add_kernel(small_kernel("B", elements=512))
        g.connect("A", "B")
        assert g.edge_bytes("A", "B") == sum(
            p.output.nbytes for p in a.ppg.sinks()
        )

    def test_topological_kernel_order(self):
        g = _diamond_graph()
        order = g.kernel_names
        assert order.index("K1") < order.index("K4")
        assert order.index("K2") < order.index("K3") < order.index("K4")


class TestPriorities:
    def test_min_latency_across_platforms(self):
        spaces = _diamond_spaces()
        assert min_latency_ms("K1", spaces, [GPU, FPGA]) == 100
        assert min_latency_ms("K3", spaces, [GPU, FPGA]) == 40

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            min_latency_ms("nope", _diamond_spaces(), [GPU])

    def test_w_l_accumulates_down_the_path(self):
        g = _diamond_graph()
        spaces = _diamond_spaces()
        w = latency_priorities(g, spaces, [GPU, FPGA], PCIeLink())
        # Eq. 2: sink first, predecessors strictly larger.
        assert w["K4"] < w["K3"] < w["K2"]
        assert w["K1"] > w["K4"]

    def test_priority_order_is_topological(self):
        g = _diamond_graph()
        order = priority_order(g, _diamond_spaces(), [GPU, FPGA], PCIeLink())
        assert order.index("K2") < order.index("K3") < order.index("K4")
        assert order.index("K1") < order.index("K4")


class TestLatencyOptimizer:
    def test_schedule_respects_precedence_and_exclusivity(self):
        g = _diamond_graph()
        sched = LatencyOptimizer(_diamond_spaces()).schedule(g, _devices())
        a = sched.assignments
        assert a["K4"].start_ms >= a["K1"].end_ms - 1e-9
        assert a["K4"].start_ms >= a["K3"].end_ms - 1e-9
        assert a["K3"].start_ms >= a["K2"].end_ms - 1e-9
        # No overlap on any single device.
        by_dev = {}
        for asg in sched:
            by_dev.setdefault(asg.device_id, []).append(asg)
        for asgs in by_dev.values():
            asgs.sort(key=lambda x: x.start_ms)
            for prev, nxt in zip(asgs, asgs[1:]):
                assert nxt.start_ms >= prev.end_ms - 1e-9

    def test_parallel_paths_use_both_devices(self):
        g = _diamond_graph()
        sched = LatencyOptimizer(_diamond_spaces()).schedule(g, _devices())
        assert len(sched.devices_used()) == 2

    def test_uses_min_latency_points(self):
        g = _diamond_graph()
        sched = LatencyOptimizer(_diamond_spaces()).schedule(g, _devices())
        for asg in sched:
            # Step 1 always picks each platform's fastest implementation.
            assert asg.point.index == 0 or asg.point.latency_ms == min(
                p.latency_ms
                for p in _diamond_spaces()[(asg.kernel_name, asg.point.platform)]
            )

    def test_respects_device_backlog(self):
        g = chain_graph(1)
        spaces = _spaces({"K0": {GPU: [(10, 100)]}})
        busy = [DeviceSlot("gpu0", GPU, DeviceType.GPU, available_at_ms=500.0)]
        sched = LatencyOptimizer(spaces).schedule(g, busy)
        assert sched.assignments["K0"].start_ms >= 500.0

    def test_no_devices_rejected(self):
        with pytest.raises(ValueError):
            LatencyOptimizer({}).schedule(chain_graph(1), [])

    def test_retime_keeps_choices(self):
        g = _diamond_graph()
        spaces = _diamond_spaces()
        opt = LatencyOptimizer(spaces)
        sched = opt.schedule(g, _devices())
        choices = {a.kernel_name: (a.point, a.device_id) for a in sched}
        retimed = opt.retime(g, _devices(), choices)
        assert retimed.makespan_ms == pytest.approx(sched.makespan_ms)


class TestEnergyOptimizer:
    def test_swaps_reduce_energy_within_bound(self):
        g = _diamond_graph()
        spaces = _diamond_spaces()
        opt = LatencyOptimizer(spaces)
        step1 = opt.schedule(g, _devices())
        energy = EnergyOptimizer(spaces, opt)
        bound = step1.makespan_ms * 2.0
        final, steps = energy.optimize(g, _devices(), step1, bound)
        assert final.makespan_ms <= bound
        assert final.total_energy_mj <= step1.total_energy_mj
        if steps:
            for s in steps:
                assert s.energy_saved_mj > 0
                assert s.makespan_ms <= bound

    def test_tight_bound_blocks_swaps(self):
        g = _diamond_graph()
        spaces = _diamond_spaces()
        opt = LatencyOptimizer(spaces)
        step1 = opt.schedule(g, _devices())
        energy = EnergyOptimizer(spaces, opt)
        final, steps = energy.optimize(
            g, _devices(), step1, step1.makespan_ms * 1.0001
        )
        # Any accepted swap must still meet the (near-zero-slack) bound.
        assert final.makespan_ms <= step1.makespan_ms * 1.0001

    def test_invalid_bound_rejected(self):
        g = _diamond_graph()
        spaces = _diamond_spaces()
        opt = LatencyOptimizer(spaces)
        step1 = opt.schedule(g, _devices())
        with pytest.raises(ValueError):
            EnergyOptimizer(spaces, opt).optimize(g, _devices(), step1, 0.0)

    def test_terminates(self):
        g = _diamond_graph()
        spaces = _diamond_spaces()
        opt = LatencyOptimizer(spaces)
        step1 = opt.schedule(g, _devices())
        # A generous bound: must still terminate (energy monotone).
        final, steps = EnergyOptimizer(spaces, opt).optimize(
            g, _devices(), step1, 1e9
        )
        assert len(steps) <= EnergyOptimizer.MAX_ITERS


class TestSchedulers:
    def test_poly_combines_both_steps(self):
        g = _diamond_graph()
        sched, steps = PolyScheduler(_diamond_spaces(), 1000.0).schedule(
            g, _devices()
        )
        assert sched.makespan_ms <= 1000.0

    def test_static_scheduler_fixed_implementation(self):
        g = _diamond_graph()
        spaces = _diamond_spaces()
        static = StaticScheduler(spaces, 200.0)
        gpu_only = [DeviceSlot("gpu0", GPU, DeviceType.GPU)]
        s1 = static.schedule(g, gpu_only)
        s2 = static.schedule(g, gpu_only)
        # Same frozen choice across calls.
        for k in s1.assignments:
            assert s1[k].point.index == s2[k].point.index

    def test_schedule_record_helpers(self):
        g = _diamond_graph()
        sched = LatencyOptimizer(_diamond_spaces()).schedule(g, _devices())
        assert len(sched) == 4
        assert sched.makespan_ms >= max(a.latency_ms for a in sched)
        assert sched.total_energy_mj > 0
        assert "makespan" in sched.gantt()

    def test_schedule_rejects_duplicates(self):
        g = _diamond_graph()
        sched = LatencyOptimizer(_diamond_spaces()).schedule(g, _devices())
        a = next(iter(sched))
        with pytest.raises(ValueError, match="twice"):
            Schedule("x", [a, a])
