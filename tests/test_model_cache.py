"""Model-evaluation cache: keying, hits, invalidation, DSE wiring."""

import math

import pytest

from conftest import small_kernel
from repro.hardware import (
    AMD_W9100,
    XILINX_7V3,
    FPGAModel,
    GPUModel,
    ImplConfig,
    ModelEvalCache,
    clear_model_cache,
    kernel_signature,
    model_cache,
)
from repro.hardware.specs import DeviceType
from repro.optim import explore_kernel


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Each test starts and ends with an empty shared cache."""
    clear_model_cache()
    yield
    clear_model_cache()


class TestKeying:
    def test_rebuilt_kernel_same_signature(self):
        """Structurally identical kernels share cache entries."""
        assert kernel_signature(small_kernel("K")) == kernel_signature(
            small_kernel("K")
        )

    def test_workload_change_changes_signature(self):
        assert kernel_signature(
            small_kernel("K", elements=1024)
        ) != kernel_signature(small_kernel("K", elements=2048))

    def test_name_change_changes_signature(self):
        assert kernel_signature(small_kernel("A")) != kernel_signature(
            small_kernel("B")
        )

    def test_bias_mutation_invalidates(self):
        """In-place calibration-bias edits must miss the old entries."""
        kernel = small_kernel("K")
        cache = ModelEvalCache()
        config = ImplConfig()
        first = cache.evaluate(kernel, AMD_W9100, config)
        kernel.platform_bias[DeviceType.GPU] = 2.0
        second = cache.evaluate(kernel, AMD_W9100, config)
        assert cache.misses == 2 and cache.hits == 0
        assert second.latency_ms > first.latency_ms


class TestHitsAndMisses:
    def test_hit_returns_identical_estimate(self):
        kernel = small_kernel("K")
        cache = ModelEvalCache()
        config = ImplConfig(unroll=2)
        miss = cache.evaluate(kernel, AMD_W9100, config)
        hit = cache.evaluate(kernel, AMD_W9100, config)
        assert miss == hit
        assert cache.hits == 1 and cache.misses == 1
        assert cache.stats()["hit_rate"] == pytest.approx(0.5)

    def test_matches_direct_model(self):
        kernel = small_kernel("K")
        cache = ModelEvalCache()
        config = ImplConfig(unroll=4, pipelined=True)
        cached = cache.evaluate(kernel, AMD_W9100, config)
        direct = GPUModel(AMD_W9100).estimate(kernel, config)
        assert cached.feasible
        assert cached.latency_ms == direct.latency_ms
        assert cached.active_power_w == direct.active_power_w

    def test_infeasible_fpga_points_cached(self):
        kernel = small_kernel("K", elements=1 << 16, ops=64.0)
        cache = ModelEvalCache()
        config = next(
            ImplConfig(unroll=u, compute_units=c)
            for u in (256, 64, 32)
            for c in (64, 16, 8)
            if not FPGAModel(XILINX_7V3).feasible(
                kernel, ImplConfig(unroll=u, compute_units=c)
            )
        )
        first = cache.evaluate(kernel, XILINX_7V3, config)
        second = cache.evaluate(kernel, XILINX_7V3, config)
        assert not first.feasible and math.isnan(first.latency_ms)
        assert cache.hits == 1
        assert second == first

    def test_spec_disambiguates(self):
        kernel = small_kernel("K")
        cache = ModelEvalCache()
        config = ImplConfig()
        cache.evaluate(kernel, AMD_W9100, config)
        cache.evaluate(kernel, XILINX_7V3, config)
        assert cache.misses == 2 and len(cache) == 2

    def test_clear_resets_everything(self):
        kernel = small_kernel("K")
        cache = ModelEvalCache()
        cache.evaluate(kernel, AMD_W9100, ImplConfig())
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {
            "hits": 0.0, "misses": 0.0, "merges": 0.0, "size": 0.0,
            "hit_rate": 0.0,
        }


class TestDSEWiring:
    def test_re_exploration_hits_cache(self):
        """A second exploration of the same kernel is pure lookups."""
        kernel = small_kernel("K", elements=1 << 13, ops=8.0)
        explore_kernel(kernel, AMD_W9100)
        misses_after_cold = model_cache.misses
        explore_kernel(kernel, AMD_W9100)
        assert model_cache.misses == misses_after_cold
        assert model_cache.hits == misses_after_cold

    def test_cached_exploration_identical(self):
        kernel = small_kernel("K", elements=1 << 13, ops=8.0)
        cold = explore_kernel(kernel, AMD_W9100)
        warm = explore_kernel(kernel, AMD_W9100)
        assert [
            (p.config, p.latency_ms, p.power_w) for p in cold
        ] == [(p.config, p.latency_ms, p.power_w) for p in warm]
