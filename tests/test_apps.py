"""Tests for the six Table-II benchmark definitions."""

import pytest

from repro.apps import APP_BUILDERS, build, build_all
from repro.hardware.specs import DeviceType
from repro.patterns import PatternKind


class TestInventory:
    def test_six_benchmarks(self):
        apps = build_all()
        assert [a.name for a in apps] == ["ASR", "FQT", "IR", "CS", "MF", "WT"]

    def test_build_by_name_case_insensitive(self):
        assert build("asr").name == "ASR"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build("DNN")

    @pytest.mark.parametrize("name", list(APP_BUILDERS))
    def test_graphs_validate(self, name):
        app = build(name)
        app.graph.validate()
        assert len(app.kernels) >= 2

    @pytest.mark.parametrize("name", list(APP_BUILDERS))
    def test_design_targets_cover_all_kernels(self, name):
        app = build(name)
        for k in app.kernels:
            targets = app.design_targets[k.name]
            assert targets[DeviceType.GPU] > 0
            assert targets[DeviceType.FPGA] > 0

    @pytest.mark.parametrize("name", list(APP_BUILDERS))
    def test_qos_default_200ms(self, name):
        assert build(name).qos_ms == 200.0


class TestASR:
    def test_fig6_dag_shape(self):
        app = build("ASR")
        paths = sorted(app.graph.paths(), key=len)
        assert [len(p) for p in paths] == [2, 3]
        assert paths[0] == ["LSTM_acoustic", "FC_output"]
        assert paths[1] == ["FC_embed", "LSTM_language", "FC_output"]

    def test_lstm_patterns_match_table2(self):
        app = build("ASR")
        kinds = set(app.graph.kernel("LSTM_acoustic").pattern_kinds)
        assert {
            PatternKind.MAP,
            PatternKind.REDUCE,
            PatternKind.PIPELINE,
            PatternKind.TILING,
        } <= kinds

    def test_lstm_is_recurrent(self):
        app = build("ASR")
        wl = app.graph.kernel("LSTM_acoustic").workload_summary()
        assert wl.sequential_steps > 8

    def test_lstm_weights_resident_stationary(self):
        app = build("ASR")
        k = app.graph.kernel("LSTM_acoustic")
        assert k.resident_stationary_bytes > 0
        assert k.resident_streamed_bytes == 0

    def test_fc_weights_streamed(self):
        app = build("ASR")
        k = app.graph.kernel("FC_embed")
        assert k.resident_streamed_bytes > 0


class TestAffinities:
    """The per-app device affinities the evaluation relies on."""

    def test_fqt_prng_is_sequential(self):
        app = build("FQT")
        assert app.graph.kernel("PRNG").workload_summary().sequential_steps > 8

    def test_cs_uses_byte_arithmetic(self):
        app = build("CS")
        assert app.graph.kernel("RS_Encoder").workload_summary().op_kind == "uint8"

    def test_wt_arithmetic_coding_sequential(self):
        app = build("WT")
        wl = app.graph.kernel("Arithmetic_Coding").workload_summary()
        assert wl.sequential_steps > 64

    def test_mf_sgd_is_irregular(self):
        app = build("MF")
        wl = app.graph.kernel("SGD_Update").workload_summary()
        assert wl.access_regularity < 0.5

    def test_ir_conv_patterns(self):
        app = build("IR")
        kinds = set(app.graph.kernel("Convolution").pattern_kinds)
        assert {
            PatternKind.GATHER,
            PatternKind.STENCIL,
            PatternKind.TILING,
            PatternKind.SCATTER,
        } <= kinds

    def test_calibration_biases_present(self):
        # Every benchmark carries fitted per-kernel calibration constants.
        for app in build_all():
            assert any(k.platform_bias for k in app.kernels), app.name


class TestTable2Rows:
    def test_row_shape(self):
        rows = build("FQT").table2_row()
        assert len(rows) == 3
        name, patterns, gpu_n, fpga_n = rows[0]
        assert name == "PRNG"
        assert "Map" in patterns and "Pipeline" in patterns
        assert (gpu_n, fpga_n) == (64, 128)
