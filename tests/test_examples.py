"""Smoke coverage for the runnable examples.

Examples are documentation that executes; the cheapest way to keep them
from rotting is to run them (tiny configurations, captured stdout) in
the test suite.  Each example's ``main()`` takes parameters precisely
so a smoke test can shrink the workload.
"""

import sys
from pathlib import Path

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
sys.path.insert(0, str(EXAMPLES_DIR))


class TestClusterDiurnalExample:
    def test_smoke(self, capsys):
        import cluster_diurnal

        # One simulated hour, heavily compressed: a few hundred requests.
        cluster_diurnal.main(
            hours=1.0, interval_s=300.0, compress=600.0, max_nodes=4
        )
        out = capsys.readouterr().out
        assert "scaling timeline" in out
        assert "node0" in out
        assert "cost:" in out
        assert "rps/USD" in out

    def test_prints_qos_and_latency(self, capsys):
        import cluster_diurnal

        cluster_diurnal.main(
            hours=0.5, interval_s=300.0, compress=600.0, max_nodes=2
        )
        out = capsys.readouterr().out
        assert "p99" in out
        assert "QoS" in out
