"""Unit tests for the system monitor (the Fig. 2 feedback loop)."""

import numpy as np
import pytest

from repro.runtime import trace_arrivals
from repro.scheduler import SystemMonitor


class TestMonitorWindows:
    def test_tail_latency_none_until_data(self):
        assert SystemMonitor().tail_latency_ms() is None

    def test_tail_latency_nearest_rank(self):
        m = SystemMonitor(window=512)
        for v in range(1, 101):
            m.record_completion(float(v))
        assert m.tail_latency_ms(99.0) == 99.0
        assert m.tail_latency_ms(50.0) == 50.0

    def test_window_evicts_old_samples(self):
        m = SystemMonitor(window=4)
        for v in (1000.0, 1000.0, 1.0, 1.0, 1.0, 1.0):
            m.record_completion(v)
        assert m.tail_latency_ms() == 1.0

    def test_mean_latency(self):
        m = SystemMonitor()
        for v in (10.0, 20.0, 30.0):
            m.record_completion(v)
        assert m.mean_latency_ms() == pytest.approx(20.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            SystemMonitor().record_completion(-1.0)

    def test_invalid_percentile(self):
        m = SystemMonitor()
        m.record_completion(1.0)
        with pytest.raises(ValueError):
            m.tail_latency_ms(0.0)


class TestQueueSignal:
    def test_queue_depth_tracks_inflight(self):
        m = SystemMonitor()
        m.record_arrival(0.0)
        m.record_arrival(1.0)
        assert m.queue_depth == 2
        m.record_completion(5.0)
        assert m.queue_depth == 1

    def test_queue_depth_never_negative(self):
        m = SystemMonitor()
        m.record_completion(1.0)
        assert m.queue_depth == 0

    def test_arrival_rate_over_horizon(self):
        m = SystemMonitor(window=512)
        for t in range(100):
            m.record_arrival(float(t * 10))  # 100 arrivals over 1 s
        assert m.arrival_rate_rps(now_ms=1000.0, horizon_ms=1000.0) == pytest.approx(
            100.0, rel=0.05
        )

    def test_load_estimate_reacts_to_queue(self):
        m = SystemMonitor()
        base = m.load_estimate(capacity_rps=100.0, now_ms=0.0)
        for t in range(10):
            m.record_arrival(float(t))
        loaded = m.load_estimate(capacity_rps=100.0, now_ms=10.0)
        assert loaded > base


class TestSelfCorrection:
    def test_correction_starts_at_unity(self):
        assert SystemMonitor().correction_factor == 1.0

    def test_correction_tracks_overruns(self):
        m = SystemMonitor(ewma_alpha=0.5)
        for _ in range(20):
            m.record_completion(120.0, predicted_ms=100.0)
        assert m.correction_factor == pytest.approx(1.2, rel=0.05)
        assert m.corrected(100.0) == pytest.approx(120.0, rel=0.05)

    def test_correction_bounded(self):
        m = SystemMonitor(ewma_alpha=1.0, correction_bounds=(0.5, 2.0))
        m.record_completion(1000.0, predicted_ms=1.0)
        assert m.correction_factor <= 2.0
        m.record_completion(0.001, predicted_ms=1000.0)
        assert m.correction_factor >= 0.5 * 0.5  # EWMA of clamped ratios

    def test_reset_clears_everything(self):
        m = SystemMonitor()
        m.record_arrival(0.0)
        m.record_completion(50.0, predicted_ms=10.0)
        m.record_power(100.0)
        m.reset()
        assert m.queue_depth == 0
        assert m.correction_factor == 1.0
        assert m.tail_latency_ms() is None
        assert m.mean_power_w() is None

    def test_power_window(self):
        m = SystemMonitor()
        m.record_power(100.0)
        m.record_power(200.0)
        assert m.mean_power_w() == pytest.approx(150.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SystemMonitor(window=0)
        with pytest.raises(ValueError):
            SystemMonitor(ewma_alpha=0.0)


class TestCorrectionClamping:
    def test_ratio_clamped_exactly_at_bounds(self):
        # alpha=1.0 makes the correction the clamped ratio itself, so
        # the bound values must be reachable exactly, never exceeded.
        m = SystemMonitor(ewma_alpha=1.0, correction_bounds=(0.5, 2.0))
        m.record_completion(300.0, predicted_ms=100.0)  # ratio 3.0 -> 2.0
        assert m.correction_factor == pytest.approx(2.0)
        m.record_completion(10.0, predicted_ms=100.0)  # ratio 0.1 -> 0.5
        assert m.correction_factor == pytest.approx(0.5)

    def test_ratio_at_bound_is_not_clamped(self):
        m = SystemMonitor(ewma_alpha=1.0, correction_bounds=(0.5, 2.0))
        m.record_completion(200.0, predicted_ms=100.0)  # ratio exactly 2.0
        assert m.correction_factor == pytest.approx(2.0)
        m.record_completion(50.0, predicted_ms=100.0)  # ratio exactly 0.5
        assert m.correction_factor == pytest.approx(0.5)

    def test_correction_stays_within_bounds_under_any_feed(self):
        m = SystemMonitor(ewma_alpha=0.7, correction_bounds=(0.8, 1.25))
        for latency, predicted in ((1e6, 1.0), (1e-6, 1e6), (500.0, 1.0)):
            m.record_completion(latency, predicted_ms=predicted)
            assert 0.8 * 0.8 <= m.correction_factor <= 1.25


class TestQueueDepthOutOfOrder:
    def test_out_of_order_completions_balance_arrivals(self):
        # Completions do not name a request: three arrivals finishing
        # in any order must leave the queue empty, never negative.
        m = SystemMonitor()
        for t in (0.0, 1.0, 2.0):
            m.record_arrival(t)
        for latency in (50.0, 5.0, 20.0):  # 2nd request finished first
            m.record_completion(latency)
        assert m.queue_depth == 0

    def test_spurious_completion_then_arrival(self):
        m = SystemMonitor()
        m.record_completion(10.0)  # no matching arrival: clamps at 0
        m.record_arrival(0.0)
        assert m.queue_depth == 1

    def test_drop_leaves_latency_window_untouched(self):
        m = SystemMonitor()
        m.record_arrival(0.0)
        m.record_drop()
        assert m.queue_depth == 0
        assert m.tail_latency_ms() is None
        m.record_drop()  # spurious drop also clamps at zero
        assert m.queue_depth == 0


class TestBurstDecay:
    """Load-estimate behaviour under bursty loadgen traces: the arrival
    rate must surge during a burst and decay back once it passes, and
    the feedback correction must stay clamped however noisy the
    burst-era latencies get."""

    @staticmethod
    def _bursty_arrivals():
        # 1 s quiet / 1 s burst / 2 s quiet at a 100 rps peak.
        return trace_arrivals(
            [0.05, 1.0, 0.05, 0.05],
            interval_ms=1000.0,
            peak_rps=100.0,
            rng=np.random.default_rng(7),
        )

    @staticmethod
    def _rate_at(arrivals, now_ms):
        # Replay the trace as a live monitor would see it: only
        # arrivals that have already happened by ``now_ms``.
        m = SystemMonitor(window=512)
        for t in arrivals:
            if t <= now_ms:
                m.record_arrival(t)
        return m

    def test_arrival_rate_surges_then_decays(self):
        arrivals = self._bursty_arrivals()
        quiet = self._rate_at(arrivals, 1000.0).arrival_rate_rps(1000.0)
        burst = self._rate_at(arrivals, 2000.0).arrival_rate_rps(2000.0)
        after = self._rate_at(arrivals, 4500.0).arrival_rate_rps(4500.0)
        assert burst > 5 * max(quiet, 1.0)
        # The trailing-horizon window forgets the burst within a second.
        assert after < 0.25 * burst

    def test_load_estimate_decays_with_drained_queue(self):
        arrivals = self._bursty_arrivals()
        in_burst = self._rate_at(arrivals, 2000.0).load_estimate(
            capacity_rps=100.0, now_ms=2000.0
        )
        m = self._rate_at(arrivals, 4500.0)
        # Drain the queue: completions clear the queue-pressure nudge.
        while m.queue_depth:
            m.record_completion(10.0)
        after = m.load_estimate(capacity_rps=100.0, now_ms=4500.0)
        assert in_burst > 0.5
        assert after < 0.25 * in_burst

    def test_queue_nudge_dominates_when_backlogged(self):
        # An un-drained queue keeps the load estimate elevated even
        # after the arrival-rate window has gone quiet.
        m = SystemMonitor(window=512)
        for t in self._bursty_arrivals():
            m.record_arrival(t)
        assert m.queue_depth > 4
        stale = m.load_estimate(capacity_rps=100.0, now_ms=10_000.0)
        assert stale >= 0.5

    def test_correction_clamped_through_bursty_latencies(self):
        # Burst-era latencies overrun predictions wildly; the EWMA must
        # ride at the clamp, never beyond it, and come back down once
        # post-burst latencies match predictions again.
        m = SystemMonitor(ewma_alpha=0.3, correction_bounds=(0.5, 2.0))
        for _ in range(50):
            m.record_completion(900.0, predicted_ms=30.0)
        assert m.correction_factor <= 2.0
        assert m.correction_factor == pytest.approx(2.0, rel=0.01)
        for _ in range(50):
            m.record_completion(30.0, predicted_ms=30.0)
        assert m.correction_factor == pytest.approx(1.0, rel=0.05)

    def test_snapshot_reports_loop_inputs(self):
        m = SystemMonitor()
        snap = SystemMonitor().snapshot(0.0)
        assert snap == {
            "queue_depth": 0,
            "correction_factor": 1.0,
            "tail_ms": 0.0,
            "arrival_rate_rps": 0.0,
        }
        m.record_arrival(100.0)
        m.record_arrival(110.0)
        m.record_completion(42.0, predicted_ms=40.0)
        snap = m.snapshot(500.0)
        assert snap["queue_depth"] == 1
        assert snap["tail_ms"] == pytest.approx(42.0)
        assert snap["arrival_rate_rps"] == pytest.approx(2.0)
        assert snap["correction_factor"] > 1.0


class TestHeartbeats:
    def test_missed_heartbeats_after_timeout(self):
        m = SystemMonitor()
        m.record_heartbeat("gpu0", 100.0)
        m.record_heartbeat("fpga0", 100.0)
        assert m.missed_heartbeats(120.0, timeout_ms=50.0) == []
        m.record_heartbeat("gpu0", 160.0)
        assert m.missed_heartbeats(160.0, timeout_ms=50.0) == ["fpga0"]

    def test_heartbeats_are_monotone(self):
        m = SystemMonitor()
        m.record_heartbeat("gpu0", 100.0)
        m.record_heartbeat("gpu0", 40.0)  # stale beat ignored
        assert m.last_heartbeat_ms("gpu0") == 100.0

    def test_unknown_device_has_no_beat(self):
        assert SystemMonitor().last_heartbeat_ms("nope") is None

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError):
            SystemMonitor().missed_heartbeats(0.0, timeout_ms=0.0)

    def test_reset_clears_heartbeats(self):
        m = SystemMonitor()
        m.record_heartbeat("gpu0", 0.0)
        m.reset()
        assert m.last_heartbeat_ms("gpu0") is None
