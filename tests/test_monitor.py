"""Unit tests for the system monitor (the Fig. 2 feedback loop)."""

import pytest

from repro.scheduler import SystemMonitor


class TestMonitorWindows:
    def test_tail_latency_none_until_data(self):
        assert SystemMonitor().tail_latency_ms() is None

    def test_tail_latency_nearest_rank(self):
        m = SystemMonitor(window=512)
        for v in range(1, 101):
            m.record_completion(float(v))
        assert m.tail_latency_ms(99.0) == 99.0
        assert m.tail_latency_ms(50.0) == 50.0

    def test_window_evicts_old_samples(self):
        m = SystemMonitor(window=4)
        for v in (1000.0, 1000.0, 1.0, 1.0, 1.0, 1.0):
            m.record_completion(v)
        assert m.tail_latency_ms() == 1.0

    def test_mean_latency(self):
        m = SystemMonitor()
        for v in (10.0, 20.0, 30.0):
            m.record_completion(v)
        assert m.mean_latency_ms() == pytest.approx(20.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            SystemMonitor().record_completion(-1.0)

    def test_invalid_percentile(self):
        m = SystemMonitor()
        m.record_completion(1.0)
        with pytest.raises(ValueError):
            m.tail_latency_ms(0.0)


class TestQueueSignal:
    def test_queue_depth_tracks_inflight(self):
        m = SystemMonitor()
        m.record_arrival(0.0)
        m.record_arrival(1.0)
        assert m.queue_depth == 2
        m.record_completion(5.0)
        assert m.queue_depth == 1

    def test_queue_depth_never_negative(self):
        m = SystemMonitor()
        m.record_completion(1.0)
        assert m.queue_depth == 0

    def test_arrival_rate_over_horizon(self):
        m = SystemMonitor(window=512)
        for t in range(100):
            m.record_arrival(float(t * 10))  # 100 arrivals over 1 s
        assert m.arrival_rate_rps(now_ms=1000.0, horizon_ms=1000.0) == pytest.approx(
            100.0, rel=0.05
        )

    def test_load_estimate_reacts_to_queue(self):
        m = SystemMonitor()
        base = m.load_estimate(capacity_rps=100.0, now_ms=0.0)
        for t in range(10):
            m.record_arrival(float(t))
        loaded = m.load_estimate(capacity_rps=100.0, now_ms=10.0)
        assert loaded > base


class TestSelfCorrection:
    def test_correction_starts_at_unity(self):
        assert SystemMonitor().correction_factor == 1.0

    def test_correction_tracks_overruns(self):
        m = SystemMonitor(ewma_alpha=0.5)
        for _ in range(20):
            m.record_completion(120.0, predicted_ms=100.0)
        assert m.correction_factor == pytest.approx(1.2, rel=0.05)
        assert m.corrected(100.0) == pytest.approx(120.0, rel=0.05)

    def test_correction_bounded(self):
        m = SystemMonitor(ewma_alpha=1.0, correction_bounds=(0.5, 2.0))
        m.record_completion(1000.0, predicted_ms=1.0)
        assert m.correction_factor <= 2.0
        m.record_completion(0.001, predicted_ms=1000.0)
        assert m.correction_factor >= 0.5 * 0.5  # EWMA of clamped ratios

    def test_reset_clears_everything(self):
        m = SystemMonitor()
        m.record_arrival(0.0)
        m.record_completion(50.0, predicted_ms=10.0)
        m.record_power(100.0)
        m.reset()
        assert m.queue_depth == 0
        assert m.correction_factor == 1.0
        assert m.tail_latency_ms() is None
        assert m.mean_power_w() is None

    def test_power_window(self):
        m = SystemMonitor()
        m.record_power(100.0)
        m.record_power(200.0)
        assert m.mean_power_w() == pytest.approx(150.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SystemMonitor(window=0)
        with pytest.raises(ValueError):
            SystemMonitor(ewma_alpha=0.0)


class TestCorrectionClamping:
    def test_ratio_clamped_exactly_at_bounds(self):
        # alpha=1.0 makes the correction the clamped ratio itself, so
        # the bound values must be reachable exactly, never exceeded.
        m = SystemMonitor(ewma_alpha=1.0, correction_bounds=(0.5, 2.0))
        m.record_completion(300.0, predicted_ms=100.0)  # ratio 3.0 -> 2.0
        assert m.correction_factor == pytest.approx(2.0)
        m.record_completion(10.0, predicted_ms=100.0)  # ratio 0.1 -> 0.5
        assert m.correction_factor == pytest.approx(0.5)

    def test_ratio_at_bound_is_not_clamped(self):
        m = SystemMonitor(ewma_alpha=1.0, correction_bounds=(0.5, 2.0))
        m.record_completion(200.0, predicted_ms=100.0)  # ratio exactly 2.0
        assert m.correction_factor == pytest.approx(2.0)
        m.record_completion(50.0, predicted_ms=100.0)  # ratio exactly 0.5
        assert m.correction_factor == pytest.approx(0.5)

    def test_correction_stays_within_bounds_under_any_feed(self):
        m = SystemMonitor(ewma_alpha=0.7, correction_bounds=(0.8, 1.25))
        for latency, predicted in ((1e6, 1.0), (1e-6, 1e6), (500.0, 1.0)):
            m.record_completion(latency, predicted_ms=predicted)
            assert 0.8 * 0.8 <= m.correction_factor <= 1.25


class TestQueueDepthOutOfOrder:
    def test_out_of_order_completions_balance_arrivals(self):
        # Completions do not name a request: three arrivals finishing
        # in any order must leave the queue empty, never negative.
        m = SystemMonitor()
        for t in (0.0, 1.0, 2.0):
            m.record_arrival(t)
        for latency in (50.0, 5.0, 20.0):  # 2nd request finished first
            m.record_completion(latency)
        assert m.queue_depth == 0

    def test_spurious_completion_then_arrival(self):
        m = SystemMonitor()
        m.record_completion(10.0)  # no matching arrival: clamps at 0
        m.record_arrival(0.0)
        assert m.queue_depth == 1

    def test_drop_leaves_latency_window_untouched(self):
        m = SystemMonitor()
        m.record_arrival(0.0)
        m.record_drop()
        assert m.queue_depth == 0
        assert m.tail_latency_ms() is None
        m.record_drop()  # spurious drop also clamps at zero
        assert m.queue_depth == 0


class TestHeartbeats:
    def test_missed_heartbeats_after_timeout(self):
        m = SystemMonitor()
        m.record_heartbeat("gpu0", 100.0)
        m.record_heartbeat("fpga0", 100.0)
        assert m.missed_heartbeats(120.0, timeout_ms=50.0) == []
        m.record_heartbeat("gpu0", 160.0)
        assert m.missed_heartbeats(160.0, timeout_ms=50.0) == ["fpga0"]

    def test_heartbeats_are_monotone(self):
        m = SystemMonitor()
        m.record_heartbeat("gpu0", 100.0)
        m.record_heartbeat("gpu0", 40.0)  # stale beat ignored
        assert m.last_heartbeat_ms("gpu0") == 100.0

    def test_unknown_device_has_no_beat(self):
        assert SystemMonitor().last_heartbeat_ms("nope") is None

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError):
            SystemMonitor().missed_heartbeats(0.0, timeout_ms=0.0)

    def test_reset_clears_heartbeats(self):
        m = SystemMonitor()
        m.record_heartbeat("gpu0", 0.0)
        m.reset()
        assert m.last_heartbeat_ms("gpu0") is None
