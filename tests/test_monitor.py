"""Unit tests for the system monitor (the Fig. 2 feedback loop)."""

import pytest

from repro.scheduler import SystemMonitor


class TestMonitorWindows:
    def test_tail_latency_none_until_data(self):
        assert SystemMonitor().tail_latency_ms() is None

    def test_tail_latency_nearest_rank(self):
        m = SystemMonitor(window=512)
        for v in range(1, 101):
            m.record_completion(float(v))
        assert m.tail_latency_ms(99.0) == 99.0
        assert m.tail_latency_ms(50.0) == 50.0

    def test_window_evicts_old_samples(self):
        m = SystemMonitor(window=4)
        for v in (1000.0, 1000.0, 1.0, 1.0, 1.0, 1.0):
            m.record_completion(v)
        assert m.tail_latency_ms() == 1.0

    def test_mean_latency(self):
        m = SystemMonitor()
        for v in (10.0, 20.0, 30.0):
            m.record_completion(v)
        assert m.mean_latency_ms() == pytest.approx(20.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            SystemMonitor().record_completion(-1.0)

    def test_invalid_percentile(self):
        m = SystemMonitor()
        m.record_completion(1.0)
        with pytest.raises(ValueError):
            m.tail_latency_ms(0.0)


class TestQueueSignal:
    def test_queue_depth_tracks_inflight(self):
        m = SystemMonitor()
        m.record_arrival(0.0)
        m.record_arrival(1.0)
        assert m.queue_depth == 2
        m.record_completion(5.0)
        assert m.queue_depth == 1

    def test_queue_depth_never_negative(self):
        m = SystemMonitor()
        m.record_completion(1.0)
        assert m.queue_depth == 0

    def test_arrival_rate_over_horizon(self):
        m = SystemMonitor(window=512)
        for t in range(100):
            m.record_arrival(float(t * 10))  # 100 arrivals over 1 s
        assert m.arrival_rate_rps(now_ms=1000.0, horizon_ms=1000.0) == pytest.approx(
            100.0, rel=0.05
        )

    def test_load_estimate_reacts_to_queue(self):
        m = SystemMonitor()
        base = m.load_estimate(capacity_rps=100.0, now_ms=0.0)
        for t in range(10):
            m.record_arrival(float(t))
        loaded = m.load_estimate(capacity_rps=100.0, now_ms=10.0)
        assert loaded > base


class TestSelfCorrection:
    def test_correction_starts_at_unity(self):
        assert SystemMonitor().correction_factor == 1.0

    def test_correction_tracks_overruns(self):
        m = SystemMonitor(ewma_alpha=0.5)
        for _ in range(20):
            m.record_completion(120.0, predicted_ms=100.0)
        assert m.correction_factor == pytest.approx(1.2, rel=0.05)
        assert m.corrected(100.0) == pytest.approx(120.0, rel=0.05)

    def test_correction_bounded(self):
        m = SystemMonitor(ewma_alpha=1.0, correction_bounds=(0.5, 2.0))
        m.record_completion(1000.0, predicted_ms=1.0)
        assert m.correction_factor <= 2.0
        m.record_completion(0.001, predicted_ms=1000.0)
        assert m.correction_factor >= 0.5 * 0.5  # EWMA of clamped ratios

    def test_reset_clears_everything(self):
        m = SystemMonitor()
        m.record_arrival(0.0)
        m.record_completion(50.0, predicted_ms=10.0)
        m.record_power(100.0)
        m.reset()
        assert m.queue_depth == 0
        assert m.correction_factor == 1.0
        assert m.tail_latency_ms() is None
        assert m.mean_power_w() is None

    def test_power_window(self):
        m = SystemMonitor()
        m.record_power(100.0)
        m.record_power(200.0)
        assert m.mean_power_w() == pytest.approx(150.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SystemMonitor(window=0)
        with pytest.raises(ValueError):
            SystemMonitor(ewma_alpha=0.0)
