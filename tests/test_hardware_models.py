"""Unit tests for the GPU/FPGA analytical models, PCIe and DVFS."""

import pytest

from conftest import small_kernel
from repro.hardware import (
    AMD_W9100,
    DVFSPolicy,
    FPGAModel,
    GPUModel,
    ImplConfig,
    NVIDIA_K20,
    PCIeLink,
    XILINX_7V3,
    XILINX_ZCU102,
)
from repro.hardware.fpga_model import ResourceUsage
from repro.hardware.specs import DeviceType, spec_by_name
from repro.patterns import Kernel, Map, PPG, Tensor


class TestSpecs:
    def test_gpu_peak_flops(self):
        # 2816 cores x 2 flops x 0.93 GHz
        assert AMD_W9100.peak_gflops == pytest.approx(2816 * 2 * 0.93, rel=1e-6)

    def test_fpga_peak_flops_derated(self):
        assert XILINX_7V3.peak_gflops < XILINX_7V3.dsp_slices * 2 * 0.47

    def test_spec_lookup(self):
        assert spec_by_name(NVIDIA_K20.name) is NVIDIA_K20
        with pytest.raises(KeyError):
            spec_by_name("TPUv4")

    def test_device_types(self):
        assert AMD_W9100.device_type == DeviceType.GPU
        assert XILINX_7V3.device_type == DeviceType.FPGA


class TestImplConfig:
    def test_defaults_valid(self):
        ImplConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"work_group_size": 0},
            {"work_group_size": 2048},
            {"unroll": 0},
            {"compute_units": 0},
            {"bram_ports": 0},
            {"freq_scale": 0.05},
            {"freq_scale": 1.5},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ImplConfig(**kwargs)

    def test_parallel_lanes(self):
        assert ImplConfig(unroll=8, compute_units=4).parallel_lanes == 32

    def test_scaled_preserves_other_knobs(self):
        c = ImplConfig(unroll=4).scaled(0.5)
        assert c.unroll == 4 and c.freq_scale == 0.5


class TestGPUModel:
    def setup_method(self):
        self.model = GPUModel(AMD_W9100)
        self.kernel = small_kernel("g", elements=1 << 16, ops=32.0)

    def test_latency_positive_and_finite(self):
        est = self.model.estimate(self.kernel, ImplConfig())
        assert 0 < est.latency_ms < 1e5

    def test_power_between_idle_and_peak(self):
        est = self.model.estimate(self.kernel, ImplConfig())
        assert AMD_W9100.idle_power_w <= est.active_power_w <= AMD_W9100.peak_power_w

    def test_batching_is_sublinear(self):
        cfg = ImplConfig(work_group_size=256)
        l1 = self.model.estimate(self.kernel, cfg, 1).latency_ms
        l8 = self.model.estimate(self.kernel, cfg, 8).latency_ms
        assert l1 < l8 < 8 * l1

    def test_dvfs_slows_and_saves_power(self):
        fast = self.model.estimate(self.kernel, ImplConfig(freq_scale=1.0))
        slow = self.model.estimate(self.kernel, ImplConfig(freq_scale=0.45))
        assert slow.latency_ms > fast.latency_ms
        assert slow.active_power_w < fast.active_power_w

    def test_sequential_steps_add_floor(self):
        recurrent = small_kernel("r", elements=1 << 16, ops=32.0, steps=128)
        flat = self.model.estimate(self.kernel, ImplConfig()).latency_ms
        seq = self.model.estimate(recurrent, ImplConfig()).latency_ms
        assert seq > flat

    def test_coalescing_helps_irregular_kernels(self):
        from repro.patterns import Gather

        x = Tensor("x", (1 << 20,))
        ppg = PPG("irr")
        ppg.add_pattern(Gather((x,), index_space=1 << 20))
        k = Kernel("irr", ppg)
        plain = self.model.estimate(k, ImplConfig()).latency_ms
        coal = self.model.estimate(k, ImplConfig(memory_coalescing=True)).latency_ms
        assert coal < plain

    def test_fusion_cuts_intermediate_traffic(self):
        x = Tensor("x", (1 << 20,))
        ppg = PPG("f")
        a = ppg.add_pattern(Map((x,), ops_per_element=0.5))
        b = ppg.add_pattern(Map((x,), ops_per_element=0.5))
        ppg.connect(a, b)
        k = Kernel("f", ppg)
        unfused = self.model.estimate(k, ImplConfig()).latency_ms
        fused = self.model.estimate(k, ImplConfig(fused=True)).latency_ms
        assert fused < unfused

    def test_batch_zero_rejected(self):
        with pytest.raises(ValueError):
            self.model.estimate(self.kernel, ImplConfig(), 0)

    def test_floor_bias_preserves_marginal(self):
        from repro.hardware.specs import DeviceType

        k_plain = small_kernel("b0", elements=1 << 16, ops=32.0, steps=64)
        k_bias = small_kernel("b1", elements=1 << 16, ops=32.0, steps=64)
        k_bias.platform_bias = {DeviceType.GPU: 3.0}
        cfg = ImplConfig()
        m_plain = (
            self.model.estimate(k_plain, cfg, 8).latency_ms
            - self.model.estimate(k_plain, cfg, 1).latency_ms
        )
        m_bias = (
            self.model.estimate(k_bias, cfg, 8).latency_ms
            - self.model.estimate(k_bias, cfg, 1).latency_ms
        )
        assert m_bias == pytest.approx(m_plain, rel=1e-6)
        assert self.model.estimate(k_bias, cfg, 1).latency_ms == pytest.approx(
            3.0 * self.model.estimate(k_plain, cfg, 1).latency_ms, rel=1e-6
        )


class TestFPGAModel:
    def setup_method(self):
        self.model = FPGAModel(XILINX_7V3)
        self.kernel = small_kernel("f", elements=1 << 16, ops=32.0)

    def test_more_lanes_is_faster(self):
        slow = self.model.estimate(self.kernel, ImplConfig(unroll=1))
        fast = self.model.estimate(self.kernel, ImplConfig(unroll=16, bram_ports=16))
        assert fast.latency_ms < slow.latency_ms

    def test_pipelining_beats_unpipelined(self):
        plain = self.model.estimate(self.kernel, ImplConfig(pipelined=False))
        piped = self.model.estimate(self.kernel, ImplConfig(pipelined=True))
        assert piped.latency_ms < plain.latency_ms
        assert piped.initiation_interval <= plain.initiation_interval

    def test_resources_grow_with_lanes(self):
        small = self.model.resources(self.kernel, ImplConfig(unroll=1))
        big = self.model.resources(self.kernel, ImplConfig(unroll=32, compute_units=4))
        assert big.dsp > small.dsp
        assert big.logic_cells_k > small.logic_cells_k

    def test_feasibility_limit(self):
        huge = ImplConfig(unroll=128, compute_units=16)
        usage = self.model.resources(self.kernel, huge)
        assert usage.fits(XILINX_7V3) == self.model.feasible(self.kernel, huge)

    def test_int8_packs_more_lanes_per_dsp(self):
        x8 = Tensor("x", (1 << 16,), "int8")
        xf = Tensor("x", (1 << 16,), "fp32")
        ppg8, ppgf = PPG("a"), PPG("b")
        ppg8.add_pattern(Map((x8,), ops_per_element=4.0))
        ppgf.add_pattern(Map((xf,), ops_per_element=4.0))
        cfg = ImplConfig(unroll=32, compute_units=4)
        r8 = self.model.resources(Kernel("a", ppg8), cfg)
        rf = self.model.resources(Kernel("b", ppgf), cfg)
        assert r8.dsp < rf.dsp

    def test_batching_is_linear_no_amortization(self):
        cfg = ImplConfig(unroll=16, pipelined=True, bram_ports=16)
        l1 = self.model.estimate(self.kernel, cfg, 1).latency_ms
        l4 = self.model.estimate(self.kernel, cfg, 4).latency_ms
        assert l4 > 2.5 * l1  # no GPU-style batch amortization

    def test_power_between_idle_and_peak(self):
        est = self.model.estimate(self.kernel, ImplConfig(unroll=16))
        assert XILINX_7V3.idle_power_w <= est.active_power_w <= XILINX_7V3.peak_power_w

    def test_frequency_derates_when_full(self):
        assert self.model.achieved_frequency_mhz(0.95, ImplConfig()) < (
            self.model.achieved_frequency_mhz(0.3, ImplConfig())
        )

    def test_resource_usage_utilization(self):
        usage = ResourceUsage(dsp=1800, bram_bytes=0, logic_cells_k=10.0)
        assert usage.utilization(XILINX_7V3) == pytest.approx(0.5)


class TestPCIe:
    def test_bandwidth_positive(self):
        assert PCIeLink().bandwidth_gbps > 0

    def test_transfer_time_scales_with_bytes(self):
        link = PCIeLink()
        assert link.transfer_ms(2 << 20) > link.transfer_ms(1 << 20)

    def test_zero_bytes_free(self):
        assert PCIeLink().transfer_ms(0) == 0.0

    def test_device_to_device_costs_more(self):
        link = PCIeLink()
        n = 8 << 20
        assert link.device_to_device_ms(n) > link.transfer_ms(n)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            PCIeLink(gen=7)
        with pytest.raises(ValueError):
            PCIeLink(lanes=3)
        with pytest.raises(ValueError):
            PCIeLink(efficiency=0.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            PCIeLink().transfer_ms(-1)


class TestDVFS:
    def test_gpu_idle_power_tracks_clocks(self):
        policy = DVFSPolicy(AMD_W9100)
        assert policy.idle_power_w(0.45) < policy.idle_power_w(1.0)

    def test_fpga_idle_power_mostly_static(self):
        policy = DVFSPolicy(XILINX_7V3)
        hi, lo = policy.idle_power_w(1.0), policy.idle_power_w(0.5)
        assert (hi - lo) / hi < 0.10

    def test_low_power_state_below_idle(self):
        for spec in (AMD_W9100, XILINX_ZCU102):
            policy = DVFSPolicy(spec)
            assert policy.low_power_state_w() < policy.idle_power_w(1.0)

    def test_pick_level_monotone_in_load(self):
        policy = DVFSPolicy(AMD_W9100)
        levels = [policy.pick_level(load) for load in (0.0, 0.3, 0.6, 0.95)]
        assert levels == sorted(levels)
        assert policy.pick_level(0.95) == 1.0

    def test_operating_point_snaps_to_ladder(self):
        policy = DVFSPolicy(AMD_W9100)
        op = policy.operating_point(0.7)
        assert op.freq_scale in policy.levels
