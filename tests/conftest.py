"""Shared test fixtures: small kernels, design spaces, devices."""

import pytest

from repro.hardware import AMD_W9100, XILINX_7V3, ImplConfig
from repro.hardware.specs import DeviceType
from repro.optim import DesignPoint, KernelDesignSpace, explore_kernel
from repro.patterns import Kernel, Map, Pipeline, PPG, Tensor
from repro.scheduler import DeviceSlot, KernelGraph


def small_kernel(name="K", elements=4096, ops=8.0, steps=1):
    """A small Map(+Pipeline) kernel for unit tests."""
    x = Tensor(f"{name}_x", (elements,), "fp32")
    ppg = PPG(name)
    m = ppg.add_pattern(Map((x,), func="mac", ops_per_element=ops))
    if steps > 1:
        p = ppg.add_pattern(
            Pipeline((x,), stages=("a", "b"), ops_per_stage=1.0, iterations=steps)
        )
        ppg.connect(m, p)
    return Kernel(name, ppg)


def chain_graph(n=3, elements=4096):
    """A linear n-kernel application graph."""
    graph = KernelGraph("chain")
    names = []
    for i in range(n):
        k = small_kernel(f"K{i}", elements=elements, ops=4.0 * (i + 1))
        graph.add_kernel(k)
        names.append(k.name)
    for a, b in zip(names, names[1:]):
        graph.connect(a, b)
    return graph


def synthetic_point(kernel_name, platform, device_type, latency, power, index=0):
    """Hand-built design point (no model evaluation needed)."""
    return DesignPoint(
        kernel_name=kernel_name,
        platform=platform,
        device_type=device_type,
        config=ImplConfig(),
        latency_ms=latency,
        power_w=power,
        index=index,
    )


def synthetic_space(kernel_name, platform, device_type, points):
    """Design space from (latency, power) tuples."""
    return KernelDesignSpace(
        kernel_name,
        platform,
        device_type,
        [
            synthetic_point(kernel_name, platform, device_type, lat, pw)
            for lat, pw in points
        ],
    )


@pytest.fixture
def lstm_like_kernel():
    return small_kernel("LSTM", elements=65536, ops=64.0, steps=100)


@pytest.fixture
def gpu_spec():
    return AMD_W9100


@pytest.fixture
def fpga_spec():
    return XILINX_7V3


@pytest.fixture
def two_device_slots():
    return [
        DeviceSlot("gpu0", AMD_W9100.name, DeviceType.GPU),
        DeviceSlot("fpga0", XILINX_7V3.name, DeviceType.FPGA),
    ]


@pytest.fixture(scope="session")
def explored_small_spaces():
    """Real DSE output for a small kernel on both platforms (shared —
    exploration is the slow part)."""
    k = small_kernel("S", elements=16384, ops=16.0, steps=4)
    return k, {
        (k.name, AMD_W9100.name): explore_kernel(k, AMD_W9100, target_points=32),
        (k.name, XILINX_7V3.name): explore_kernel(k, XILINX_7V3, target_points=32),
    }
