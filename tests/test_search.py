"""Guided DSE: golden A/B parity, determinism, hypervolume, batch eval.

The contracts pinned down here are the ones the dse-perf CI job gates:

* full-budget guided exploration recovers the exhaustive Pareto front
  *exactly* on every bundled app (exhaustive-equivalence);
* on a >=10x-enlarged synthetic knob space, the budgeted search reaches
  >=0.99 of the exhaustive hypervolume with >=5x fewer model
  evaluations;
* the same seed yields an identical product — fronts, evaluation
  counts, reported stats — at any ``n_jobs`` and any cache warmth;
* the vectorized batch model path is float-identical to the scalar
  path, and the model cache's bulk counters match a scalar loop.
"""

import dataclasses
import random

import numpy as np
import pytest

from conftest import small_kernel
from repro import apps, runtime
from repro.hardware import AMD_W9100, XILINX_7V3, clear_model_cache
from repro.hardware.fpga_model import FPGAModel
from repro.hardware.gpu_model import GPUModel
from repro.hardware.model_cache import CachedEstimate, ModelEvalCache
from repro.lint import LintContext, run_lint
from repro.obs import MetricsRegistry, SpanTracer
from repro.optim import (
    IncrementalHypervolume,
    ParetoFrontier,
    SearchConfig,
    explore_kernel_guided,
    hypervolume_2d,
    space_hypervolume,
)
from repro.optim.dse import enumerate_configs, explore_application

PLATFORMS = runtime.setting("I", "Heter-Poly").platforms

#: The bench harness's synthetic enlargement (>=10x per device family),
#: duplicated here so the quality tests pin the same space CI gates.
ENLARGE = {
    "freq_scale": tuple(round(float(v), 4) for v in np.linspace(0.3, 1.0, 20)),
    "work_group_size": (32, 64, 96, 128, 192, 256, 384, 512),
}


def _front_key(space):
    return [(p.config, p.latency_ms, p.power_w) for p in space.pareto()]


def _space_key(space):
    return [(p.config, p.latency_ms, p.power_w, p.index) for p in space]


# ---------------------------------------------------------------------------
# Hypervolume
# ---------------------------------------------------------------------------


class TestHypervolume:
    def _random_items(self, seed, n=300):
        rng = random.Random(seed)
        return [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(n)]

    @pytest.mark.parametrize("seed", range(5))
    def test_frontier_sweep_matches_brute_force(self, seed):
        """The frontier's O(n) sweep must equal hypervolume_2d on random
        fronts (same reference, same items)."""
        items = self._random_items(seed)
        reference = (11.0, 11.0)
        frontier = ParetoFrontier()
        for it in items:
            frontier.insert(it, it[0], it[1])
        assert frontier.hypervolume(reference) == pytest.approx(
            hypervolume_2d(items, lambda t: t, reference), rel=1e-12
        )

    def test_points_beyond_reference_excluded(self):
        frontier = ParetoFrontier()
        frontier.insert("in", 1.0, 1.0)
        frontier.insert("out", 0.5, 99.0)  # beyond ref in f2
        assert frontier.hypervolume((2.0, 2.0)) == pytest.approx(1.0)

    def test_empty_frontier_zero(self):
        assert ParetoFrontier().hypervolume((1.0, 1.0)) == 0.0

    @pytest.mark.parametrize("seed", range(3))
    def test_incremental_gains_sum_to_area(self, seed):
        """insert() gains must telescope to the final area, which must
        equal a from-scratch sweep of the same point set."""
        items = self._random_items(seed, n=200)
        reference = (11.0, 11.0)
        inc = IncrementalHypervolume(reference)
        total = 0.0
        for it in items:
            gain = inc.insert(it, it[0], it[1])
            assert gain >= 0.0
            total += gain
        assert total == pytest.approx(inc.area, rel=1e-9)
        assert inc.area == pytest.approx(
            hypervolume_2d(items, lambda t: t, reference), rel=1e-9
        )

    def test_incremental_dominated_offer_is_free(self):
        inc = IncrementalHypervolume((10.0, 10.0))
        assert inc.insert("a", 2.0, 2.0) > 0.0
        area = inc.area
        assert inc.insert("b", 3.0, 3.0) == 0.0  # dominated: no re-sweep
        assert inc.area == area and len(inc) == 1


# ---------------------------------------------------------------------------
# SearchConfig validation + lint hygiene
# ---------------------------------------------------------------------------


class TestSearchConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_evals": 0},
            {"rungs": 0},
            {"population": 1},
            {"generations": -1},
            {"tournament": 0},
            {"crossover_rate": 1.5},
            {"mutation_rate": -0.1},
            {"stall_generations": 0},
            {"min_hypervolume_ratio": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SearchConfig(**kwargs)

    def test_opt005_missing_seed_fires(self):
        report = run_lint(SearchConfig(seed=None), LintContext())
        assert len(report.by_rule("OPT005")) == 1
        assert "seed" in report.by_rule("OPT005")[0].message

    def test_opt005_missing_quality_gate_fires(self):
        report = run_lint(
            SearchConfig(min_hypervolume_ratio=None), LintContext()
        )
        assert len(report.by_rule("OPT005")) == 1
        assert "hypervolume" in report.by_rule("OPT005")[0].message

    def test_opt005_both_missing_fires_twice(self):
        report = run_lint(
            SearchConfig(seed=None, min_hypervolume_ratio=None), LintContext()
        )
        assert len(report.by_rule("OPT005")) == 2

    def test_opt005_defaults_clean(self):
        assert not run_lint(SearchConfig(), LintContext()).by_rule("OPT005")

    def test_opt004_guided_budgets_model_evaluations(self):
        """With a SearchConfig in context OPT004 budgets
        min(enumerated, max_evals), not the raw enumeration."""
        kernel = small_kernel("budget", elements=1 << 14)
        ctx = LintContext(spec=AMD_W9100, config_budget=4)
        exhaustive = run_lint(kernel, ctx, expand=False).by_rule("OPT004")
        assert len(exhaustive) == 1
        assert "enumerates" in exhaustive[0].message

        guided_ctx = LintContext(
            spec=AMD_W9100,
            config_budget=4,
            search=SearchConfig(max_evals=100),
        )
        guided = run_lint(kernel, guided_ctx, expand=False).by_rule("OPT004")
        assert len(guided) == 1
        assert "guided search spends up to" in guided[0].message

        # A budget the guided spend fits under: clean, even though the
        # enumeration alone would fire.
        roomy = LintContext(
            spec=AMD_W9100,
            config_budget=100,
            search=SearchConfig(max_evals=16),
        )
        assert not run_lint(kernel, roomy, expand=False).by_rule("OPT004")


# ---------------------------------------------------------------------------
# Golden A/B: guided == exhaustive at full budget
# ---------------------------------------------------------------------------


class TestGoldenParity:
    @pytest.mark.parametrize("name", sorted(apps.APP_BUILDERS))
    def test_full_budget_recovers_exhaustive_front_exactly(self, name):
        """On every bundled app the un-enlarged spaces fit an unbounded
        budget, so guided must be exhaustive-equivalent with fronts
        equal point-for-point."""
        app = apps.build(name)
        exhaustive = explore_application(app.kernels, PLATFORMS)
        guided = explore_application(
            app.kernels,
            PLATFORMS,
            strategy="guided",
            search=SearchConfig(max_evals=10**9, seed=0),
        )
        assert set(exhaustive) == set(guided)
        for key in exhaustive:
            assert _front_key(exhaustive[key]) == _front_key(guided[key]), key
            stats = guided[key].search_stats
            assert stats.exhaustive_equivalent
            assert stats.evaluations == stats.explored

    def test_exhaustive_spaces_carry_no_search_stats(self):
        app = apps.build("MF")
        spaces = explore_application(app.kernels, PLATFORMS)
        assert all(s.search_stats is None for s in spaces.values())


# ---------------------------------------------------------------------------
# Budgeted search on the enlarged space
# ---------------------------------------------------------------------------


class TestBudgetedQuality:
    def _explore_pair(self, budget=512, seed=0, n_jobs=1):
        app = apps.build("MF")
        exhaustive = explore_application(
            app.kernels, PLATFORMS, candidate_overrides=ENLARGE
        )
        guided = explore_application(
            app.kernels,
            PLATFORMS,
            strategy="guided",
            search=SearchConfig(max_evals=budget, seed=seed),
            candidate_overrides=ENLARGE,
            n_jobs=n_jobs,
        )
        return exhaustive, guided

    def test_recovers_hypervolume_with_far_fewer_evals(self):
        """The CI quality gate in miniature: >=0.99 hypervolume ratio per
        space at >=5x fewer model evaluations than enumeration."""
        exhaustive, guided = self._explore_pair()
        explored = evals = 0
        budgeted = 0
        for key, ex_space in exhaustive.items():
            g_space = guided[key]
            stats = g_space.search_stats
            budgeted += not stats.exhaustive_equivalent
            explored += stats.explored
            evals += stats.evaluations
            assert stats.evaluations <= 512
            reference = (
                1.05 * max(p.latency_ms for p in ex_space),
                1.05 * max(p.power_w for p in ex_space),
            )
            ratio = space_hypervolume(g_space, reference) / space_hypervolume(
                ex_space, reference
            )
            assert ratio >= 0.99, (key, ratio)
        # The enlarged GPU spaces genuinely exceed the budget (tiny
        # kernels whose space still fits it stay exhaustive-equivalent).
        assert budgeted > 0
        assert explored >= 5 * evals

    def test_enlargement_is_at_least_10x(self):
        """The synthetic override must actually enlarge every per-device
        space >=10x, or the quality test above proves nothing."""
        app = apps.build("MF")
        for kernel in app.kernels:
            for spec in PLATFORMS:
                plain = len(enumerate_configs(kernel, spec))
                enlarged = len(
                    enumerate_configs(kernel, spec, overrides=ENLARGE)
                )
                assert enlarged >= 10 * plain, (kernel.name, spec.name)

    def test_same_seed_identical_across_n_jobs(self):
        """Seeded determinism: the pooled product (including per-space
        stats) must be bit-identical to the serial one."""
        _, serial = self._explore_pair(budget=256)
        _, pooled = self._explore_pair(budget=256, n_jobs=2)
        for key in serial:
            assert _space_key(serial[key]) == _space_key(pooled[key])
            s, p = serial[key].search_stats, pooled[key].search_stats
            assert dataclasses.asdict(s) == dataclasses.asdict(p)

    def test_same_seed_identical_across_cache_warmth(self):
        """The budget counts *requested* evaluations, so a warm cache
        must not change fronts or any reported count."""
        clear_model_cache()
        try:
            _, cold = self._explore_pair(budget=256)
            _, warm = self._explore_pair(budget=256)
            for key in cold:
                assert _space_key(cold[key]) == _space_key(warm[key])
                assert (
                    dataclasses.asdict(cold[key].search_stats)
                    == dataclasses.asdict(warm[key].search_stats)
                )
        finally:
            clear_model_cache()

    def test_unknown_strategy_rejected(self):
        app = apps.build("MF")
        with pytest.raises(ValueError, match="strategy"):
            explore_application(app.kernels, PLATFORMS, strategy="random")

    def test_guided_single_kernel_entry_point(self):
        """explore_kernel_guided is usable directly and attaches stats."""
        kernel = apps.build("MF").kernels[0]
        space, stats = explore_kernel_guided(
            kernel,
            AMD_W9100,
            search=SearchConfig(max_evals=64, seed=0),
            candidate_overrides=ENLARGE,
        )
        assert space.search_stats is stats
        assert 0 < stats.evaluations <= 64
        assert stats.rungs and stats.generation_log
        assert stats.hypervolume > 0.0


# ---------------------------------------------------------------------------
# Reporting: metrics counters, trace events, pruned_invalid consistency
# ---------------------------------------------------------------------------


class TestReporting:
    def test_metrics_counters_match_stats(self):
        app = apps.build("MF")
        registry = MetricsRegistry()
        spaces = explore_application(
            app.kernels,
            PLATFORMS,
            strategy="guided",
            search=SearchConfig(max_evals=256, seed=0),
            candidate_overrides=ENLARGE,
            metrics=registry,
        )
        stats = [s.search_stats for s in spaces.values()]
        assert registry.value("dse_design_points_total") == sum(
            len(s) for s in spaces.values()
        )
        assert registry.value("dse_search_evaluations_total") == sum(
            s.evaluations for s in stats
        )
        assert registry.value("dse_search_explored_total") == sum(
            s.explored for s in stats
        )
        assert registry.value("dse_search_skipped_total") == sum(
            s.skipped for s in stats
        )
        assert registry.value("dse_search_screened_total") == sum(
            s.screened_infeasible for s in stats
        )
        assert registry.value("dse_search_generations_total") == sum(
            s.generations for s in stats
        )

    def test_trace_events_emitted_and_n_jobs_invariant(self):
        def traced(n_jobs):
            tracer = SpanTracer()
            explore_application(
                apps.build("MF").kernels,
                PLATFORMS,
                strategy="guided",
                search=SearchConfig(max_evals=256, seed=0),
                candidate_overrides=ENLARGE,
                tracer=tracer,
                n_jobs=n_jobs,
            )
            return [e.to_dict() for e in tracer.events]

        serial = traced(1)
        kinds = {e["kind"] for e in serial}
        assert kinds == {
            "dse.search.rung", "dse.search.generation", "dse.search.done"
        }
        done = [e for e in serial if e["kind"] == "dse.search.done"]
        assert {(e["args"]["kernel"], e["args"]["platform"]) for e in done} == {
            (k.name, s.name)
            for k in apps.build("MF").kernels
            for s in PLATFORMS
        }
        assert serial == traced(2)

    def test_pruned_invalid_consistent_across_paths(self):
        """Serial exhaustive, pooled exhaustive and guided must agree on
        pruned_invalid per space (and in the metrics rollup).

        The unroll=1024 override over-subscribes the Virtex-7 DSP budget
        on the LSTM kernel, so OPT002 genuinely prunes the FPGA space.
        """
        kernels = apps.build("ASR").kernels[:1]
        overrides = {"unroll": (1, 16, 256, 1024), "compute_units": (1, 4, 8)}
        kwargs = {"validate": True, "candidate_overrides": overrides}
        serial = explore_application(kernels, PLATFORMS, **kwargs)
        pooled = explore_application(kernels, PLATFORMS, n_jobs=2, **kwargs)
        registry = MetricsRegistry()
        guided = explore_application(
            kernels,
            PLATFORMS,
            strategy="guided",
            search=SearchConfig(max_evals=10**9, seed=0),
            metrics=registry,
            **kwargs,
        )
        total = 0
        for key in serial:
            pruned = serial[key].pruned_invalid
            assert pooled[key].pruned_invalid == pruned
            assert guided[key].pruned_invalid == pruned
            assert guided[key].search_stats.pruned_invalid == pruned
            total += pruned
        assert total > 0  # OPT002 really fires on the enlarged space
        assert registry.value("dse_pruned_invalid_total") == total


# ---------------------------------------------------------------------------
# Vectorized batch models: float-identical to the scalar path
# ---------------------------------------------------------------------------


class TestBatchFloatIdentity:
    @pytest.mark.parametrize("name", sorted(apps.APP_BUILDERS))
    def test_every_app_kernel_batch_matches_scalar(self, name):
        """estimate_batch must be bit-for-bit equal to per-config
        estimate()/feasible() on every enumerated config of every app
        (ASR et al. carry platform_bias != 1, covering the bias paths)."""
        app = apps.build(name)
        for kernel in app.kernels:
            for spec in PLATFORMS:
                configs = enumerate_configs(kernel, spec)
                if spec.device_type.value == "fpga":
                    model = FPGAModel(spec)
                    feasible, lat, power = model.estimate_batch(kernel, configs)
                    for i, config in enumerate(configs):
                        ok = model.feasible(kernel, config)
                        assert bool(feasible[i]) == ok, (kernel.name, i)
                        if ok:
                            est = model.estimate(kernel, config)
                            assert float(lat[i]) == est.latency_ms
                            assert float(power[i]) == est.active_power_w
                        else:
                            assert np.isnan(lat[i]) and np.isnan(power[i])
                else:
                    gpu = GPUModel(spec)
                    lat, power = gpu.estimate_batch(kernel, configs)
                    for i, config in enumerate(configs):
                        est = gpu.estimate(kernel, config)
                        assert float(lat[i]) == est.latency_ms, (kernel.name, i)
                        assert float(power[i]) == est.active_power_w

    @pytest.mark.parametrize("batch", [3, 8])
    def test_batched_invocations_match_scalar(self, batch):
        """The batch>1 (request batching) dimension, including the GPU
        bias-floor recursion on recurrent kernels."""
        app = apps.build("ASR")  # recurrent kernels + bias != 1
        kernel = app.kernels[0]
        for spec in PLATFORMS:
            configs = enumerate_configs(kernel, spec)[:32]
            if spec.device_type.value == "fpga":
                model = FPGAModel(spec)
                feasible, lat, power = model.estimate_batch(
                    kernel, configs, batch
                )
                for i, config in enumerate(configs):
                    if model.feasible(kernel, config):
                        est = model.estimate(kernel, config, batch)
                        assert float(lat[i]) == est.latency_ms
                        assert float(power[i]) == est.active_power_w
            else:
                gpu = GPUModel(spec)
                lat, power = gpu.estimate_batch(kernel, configs, batch)
                for i, config in enumerate(configs):
                    est = gpu.estimate(kernel, config, batch)
                    assert float(lat[i]) == est.latency_ms
                    assert float(power[i]) == est.active_power_w

    def test_empty_and_bad_batch(self):
        kernel = small_kernel("edge")
        lat, power = GPUModel(AMD_W9100).estimate_batch(kernel, [])
        assert len(lat) == 0 and len(power) == 0
        assert len(FPGAModel(XILINX_7V3).feasible_batch(kernel, [])) == 0
        with pytest.raises(ValueError):
            GPUModel(AMD_W9100).estimate_batch(kernel, [], batch=0)


# ---------------------------------------------------------------------------
# Model-cache bulk access: exact counters
# ---------------------------------------------------------------------------


class TestCacheBulkCounters:
    def _configs(self, kernel, spec, with_dups=True):
        configs = enumerate_configs(kernel, spec)[:8]
        if with_dups:
            configs = configs + configs[:3]  # in-batch duplicates
        return configs

    def test_bulk_counters_equal_scalar_loop(self):
        """evaluate_many on a fresh cache must produce exactly the
        entries, results and hit/miss counters of a scalar loop —
        in-batch duplicates of a miss count as hits."""
        kernel = small_kernel("bulk", elements=1 << 13)
        spec = AMD_W9100
        configs = self._configs(kernel, spec)

        scalar = ModelEvalCache()
        scalar_results = [scalar.evaluate(kernel, spec, c) for c in configs]

        bulk = ModelEvalCache()
        bulk_results = bulk.evaluate_many(kernel, spec, configs)

        assert bulk_results == scalar_results
        assert (bulk.hits, bulk.misses) == (scalar.hits, scalar.misses)
        assert bulk.hits == 3 and bulk.misses == 8
        assert len(bulk) == len(scalar) == 8

    def test_get_many_reports_misses_once(self):
        kernel = small_kernel("lookup", elements=1 << 13)
        cache = ModelEvalCache()
        configs = self._configs(kernel, AMD_W9100)
        results, miss_index = cache.get_many(kernel, AMD_W9100, configs)
        assert results == [None] * len(configs)
        assert miss_index == list(range(8))  # dups excluded
        assert (cache.hits, cache.misses) == (3, 8)

    def test_second_bulk_pass_all_hits(self):
        kernel = small_kernel("warm", elements=1 << 13)
        cache = ModelEvalCache()
        configs = self._configs(kernel, XILINX_7V3, with_dups=False)
        first = cache.evaluate_many(kernel, XILINX_7V3, configs)
        misses = cache.misses
        second = cache.evaluate_many(kernel, XILINX_7V3, configs)
        assert second == first
        assert cache.misses == misses
        assert cache.hits == len(configs)

    def test_bulk_matches_scalar_estimates_on_fpga(self):
        """The cached bulk path must store the exact scalar-path floats,
        including infeasible NaN rows."""
        kernel = small_kernel("fpga", elements=1 << 15)
        configs = enumerate_configs(kernel, XILINX_7V3)
        scalar = ModelEvalCache()
        bulk = ModelEvalCache()
        expected = [scalar.evaluate(kernel, XILINX_7V3, c) for c in configs]
        got = bulk.evaluate_many(kernel, XILINX_7V3, configs)
        assert got == expected

    def test_put_many_length_mismatch_rejected(self):
        kernel = small_kernel("bad")
        cache = ModelEvalCache()
        with pytest.raises(ValueError, match="equal length"):
            cache.put_many(
                kernel,
                AMD_W9100,
                [enumerate_configs(kernel, AMD_W9100)[0]],
                [],
            )

    def test_metrics_binding_tracks_bulk_counters_exactly(self):
        kernel = small_kernel("metrics", elements=1 << 13)
        cache = ModelEvalCache()
        registry = MetricsRegistry()
        cache.bind_metrics(registry)
        try:
            configs = self._configs(kernel, AMD_W9100)
            cache.evaluate_many(kernel, AMD_W9100, configs)
            cache.evaluate_many(kernel, AMD_W9100, configs)
        finally:
            cache.bind_metrics(None)
        assert registry.value("model_cache_hits_total") == cache.hits
        assert registry.value("model_cache_misses_total") == cache.misses
        assert cache.misses == 8  # second pass added none

    def test_merge_counts_and_metrics(self):
        kernel = small_kernel("merge", elements=1 << 13)
        worker = ModelEvalCache()
        configs = self._configs(kernel, AMD_W9100, with_dups=False)
        worker.evaluate_many(kernel, AMD_W9100, configs)
        parent = ModelEvalCache()
        registry = MetricsRegistry()
        parent.bind_metrics(registry)
        try:
            parent.merge(worker.delta(set()), worker.hits, worker.misses)
        finally:
            parent.bind_metrics(None)
        assert parent.merges == 1
        assert (parent.hits, parent.misses) == (worker.hits, worker.misses)
        assert registry.value("model_cache_merges_total") == 1
        assert len(parent) == len(worker)

    def test_cached_estimate_is_hashable_value_type(self):
        a = CachedEstimate(True, 1.0, 2.0)
        assert a == CachedEstimate(True, 1.0, 2.0)
        assert hash(a) == hash(CachedEstimate(True, 1.0, 2.0))
