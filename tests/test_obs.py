"""Observability subsystem: tracer, metrics registry, exporters, CLI.

The two contracts under test here back every acceptance criterion of
the obs work:

* **Zero overhead when disabled** — with the default ``NULL_TRACER``
  a simulation is bit-identical to an uninstrumented run.
* **Determinism when enabled** — a seeded traced run produces a
  byte-identical event stream, metrics snapshot and Perfetto JSON
  every time.
"""

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro import runtime
from repro.cli import main as cli_main
from repro.experiments import harness
from repro.faults import FaultInjector, FaultSchedule
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    EVENT_SCHEMA,
    Histogram,
    MetricsRegistry,
    NULL_TRACER,
    SpanTracer,
    chrome_trace,
    log_buckets,
    placement_digest,
    write_events_jsonl,
    write_metrics_json,
    write_perfetto_json,
)

GOLDEN_SCHEMA = Path(__file__).resolve().parent / "golden" / "obs_event_schema.json"


@pytest.fixture(scope="module")
def heter_setup():
    app = harness.get_app("ASR")
    system = runtime.setting("I", "Heter-Poly")
    spaces = harness.spaces_for(app, system)
    return app, system, spaces


def _arrivals(rps=20.0, duration_ms=3_000.0, seed=11):
    return runtime.poisson_arrivals(
        rps, duration_ms, rng=np.random.default_rng(seed)
    )


def _traced_run(heter_setup, seed=11, faults=None):
    app, system, spaces = heter_setup
    tracer = SpanTracer()
    registry = MetricsRegistry()
    result = runtime.run_simulation(
        system, app, spaces, _arrivals(seed=seed),
        faults=faults, tracer=tracer, metrics=registry,
    )
    return result, tracer, registry


class TestTracer:
    def test_null_tracer_is_inert(self):
        NULL_TRACER.emit("request.admit", req=0, priority=1.0)
        NULL_TRACER.emit("not.a.kind")  # not even validated
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.events == []
        assert not NULL_TRACER.enabled

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trace event kind"):
            SpanTracer().emit("request.teleport", req=0)

    def test_missing_required_fields_rejected(self):
        with pytest.raises(ValueError, match="missing fields.*priority"):
            SpanTracer().emit("request.admit", req=0)

    def test_seq_is_emission_order(self):
        tr = SpanTracer()
        tr.emit("request.admit", t_ms=5.0, req=0, priority=1.0)
        tr.emit("request.shed", t_ms=1.0, req=1)  # earlier ts, later seq
        assert [e.seq for e in tr.events] == [0, 1]
        assert [e.kind for e in tr.events] == ["request.admit", "request.shed"]

    def test_t_ms_defaults_to_sim_clock(self):
        tr = SpanTracer()
        tr.now_ms = 42.5
        tr.emit("request.shed", req=0)
        tr.emit("request.shed", t_ms=7.0, req=1)
        assert tr.events[0].ts_ms == 42.5
        assert tr.events[1].ts_ms == 7.0

    def test_extra_fields_allowed_and_kept(self):
        tr = SpanTracer()
        tr.emit("request.shed", req=0, reason="overload")
        assert tr.events[0].args["reason"] == "overload"

    def test_by_kind_and_clear(self):
        tr = SpanTracer()
        tr.emit("request.admit", req=0, priority=1.0)
        tr.emit("request.shed", req=1)
        assert len(tr.by_kind("request.shed")) == 1
        tr.clear()
        assert len(tr) == 0 and tr.now_ms == 0.0


class TestMetrics:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total")
        c.inc()
        c.inc(2)
        assert reg.value("x_total") == 3.0
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_labels_identify_series(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", device="gpu0").inc(5)
        reg.counter("hits_total", device="fpga0").inc(7)
        assert reg.value("hits_total", device="gpu0") == 5.0
        assert reg.value("hits_total", device="fpga0") == 7.0
        assert len(reg) == 2

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.counter("bad name")
        with pytest.raises(ValueError, match="invalid label name"):
            reg.counter("ok", **{"bad-label": "v"})

    def test_log_buckets_shape(self):
        b = log_buckets(1.0, 8.0)
        assert b == (1.0, 2.0, 4.0, 8.0)
        assert DEFAULT_LATENCY_BUCKETS[0] == 0.25
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 16_000.0
        with pytest.raises(ValueError):
            log_buckets(0.0, 8.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 8.0, factor=1.0)

    def test_histogram_buckets_and_quantile(self):
        h = Histogram((1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 5 and h.sum == pytest.approx(560.5)
        assert h.counts == [1, 2, 1, 1]  # last is +Inf
        # Upper-bound quantile: rank 3 of 5 lands in the <=10 bucket.
        assert h.quantile(0.5) == 10.0
        assert h.quantile(1.0) == math.inf  # one obs beyond the last bound
        with pytest.raises(ValueError):
            h.observe(math.inf)
        assert math.isnan(Histogram((1.0,)).quantile(0.99))

    def test_snapshot_and_json_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b_total", device="g").inc(2)
            reg.counter("a_total").inc()
            reg.histogram("lat_ms", bounds=(1.0, 10.0)).observe(3.0)
            return reg

        assert build().to_json() == build().to_json()
        snap = build().snapshot()
        assert snap["a_total"]["type"] == "counter"
        assert snap["b_total"]["series"]['device="g"'] == 2.0
        assert snap["lat_ms"]["series"][""]["count"] == 1

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", outcome="served").inc(3)
        reg.gauge("occupancy", device="gpu0").set(0.5)
        reg.histogram("lat_ms", bounds=(1.0, 10.0)).observe(3.0)
        text = reg.render_prometheus()
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{outcome="served"} 3' in text
        assert 'occupancy{device="gpu0"} 0.5' in text
        assert 'lat_ms_bucket{le="1"} 0' in text
        assert 'lat_ms_bucket{le="10"} 1' in text
        assert 'lat_ms_bucket{le="+Inf"} 1' in text
        assert "lat_ms_sum 3" in text and "lat_ms_count 1" in text
        assert text.endswith("\n")


class TestChromeTrace:
    def _events(self):
        tr = SpanTracer()
        tr.emit("request.admit", t_ms=0.0, req=0, priority=1.0)
        tr.emit(
            "kernel.dispatch", t_ms=1.0, req=0, kernel="K", device="gpu0",
            point=0, start_ms=1.0, end_ms=2.0,
        )
        tr.emit(
            "kernel.exec", name="K", t_ms=1.0, dur_ms=1.5, kernel="K",
            device="gpu0", point=0, power_w=10.0, batch=1,
        )
        return tr.events

    def test_track_layout(self):
        doc = chrome_trace(self._events())
        assert doc["displayTimeUnit"] == "ms"
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"]: e["tid"] for e in meta if e["name"] == "thread_name"}
        # Five control tracks plus the one device seen in the events.
        assert names["requests"] == 1 and names["monitor"] == 5
        assert names["device gpu0"] == 10

    def test_exec_becomes_complete_slice_in_us(self):
        doc = chrome_trace(self._events())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 1
        x = slices[0]
        assert x["name"] == "K" and x["cat"] == "kernel.exec"
        assert x["ts"] == pytest.approx(1000.0)  # 1 ms -> 1000 us
        assert x["dur"] == pytest.approx(1500.0)
        assert x["tid"] == 10

    def test_dispatch_lands_on_device_track(self):
        doc = chrome_trace(self._events())
        instants = {e["cat"]: e for e in doc["traceEvents"] if e["ph"] == "i"}
        assert instants["kernel.dispatch"]["tid"] == 10
        assert instants["request.admit"]["tid"] == 1
        assert all(e["s"] == "t" for e in instants.values())


class TestDisabledParity:
    """Acceptance: tracing disabled -> bit-identical to an untraced run."""

    def test_traced_equals_untraced(self, heter_setup):
        app, system, spaces = heter_setup
        plain = runtime.run_simulation(system, app, spaces, _arrivals())
        traced, tracer, _ = _traced_run(heter_setup)
        assert len(tracer) > 0
        assert plain.latencies_ms() == traced.latencies_ms()
        assert np.array_equal(plain.power_bins_w, traced.power_bins_w)
        assert plain.p99_ms == traced.p99_ms


class TestTracedDeterminism:
    """Acceptance: same-seed traced runs -> byte-identical artifacts."""

    def test_artifacts_byte_identical(self, heter_setup, tmp_path):
        files = {}
        for tag in ("a", "b"):
            _, tracer, registry = _traced_run(heter_setup)
            d = tmp_path / tag
            d.mkdir()
            write_events_jsonl(tracer.events, d / "events.jsonl")
            write_perfetto_json(tracer.events, d / "trace.json")
            write_metrics_json(registry, d / "metrics.json")
            files[tag] = d
        for name in ("events.jsonl", "trace.json", "metrics.json"):
            a = (files["a"] / name).read_bytes()
            b = (files["b"] / name).read_bytes()
            assert a == b, f"{name} differs between same-seed runs"


class TestEventCoverage:
    def test_fault_free_lifecycle_kinds(self, heter_setup):
        _, tracer, _ = _traced_run(heter_setup)
        kinds = {e.kind for e in tracer.events}
        assert {
            "request.admit", "request.complete", "sched.place",
            "plan.computed", "kernel.dispatch", "kernel.exec",
            "monitor.snapshot",
        } <= kinds
        assert not any(k.startswith("fault.") for k in kinds)

    def test_device_tracks_cover_every_scheduled_kernel(self, heter_setup):
        """Acceptance: the Perfetto doc has a track per active device and
        a slice for every realized execution."""
        result, tracer, _ = _traced_run(heter_setup)
        node = result.node
        doc = chrome_trace(tracer.events)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        records = node.all_records()
        assert len(slices) == len(records) > 0
        by_device_trace = {}
        for s in slices:
            by_device_trace.setdefault(s["args"]["device"], set()).add(s["name"])
        for dev in node.devices:
            kernels = {r.kernel_name for r in dev.records}
            if kernels:
                assert by_device_trace[dev.device_id] == kernels

    def test_fault_kinds_traced(self, heter_setup):
        schedule = FaultSchedule.single_crash(
            "fpga0", at_ms=1_000.0, recover_at_ms=2_500.0
        )
        injector = FaultInjector(schedule)
        result, tracer, _ = _traced_run(heter_setup, faults=injector)
        kinds = {e.kind for e in tracer.events}
        assert {"fault.inject", "fault.heartbeat_miss", "fault.failover",
                "fault.recover"} <= kinds
        injections = tracer.by_kind("fault.inject")
        assert {e.name for e in injections} == {"device_crash", "recovery"}
        failover = tracer.by_kind("fault.failover")[0]
        assert failover.args["device"] == "fpga0"
        assert failover.args["detected_ms"] >= failover.args["failed_ms"]

    def test_injector_tracer_adopted_by_simulation(self, heter_setup):
        """run_simulation(tracer=None) picks up an injector's tracer."""
        app, system, spaces = heter_setup
        injector = FaultInjector(
            FaultSchedule.single_crash("fpga0", at_ms=1_000.0),
            tracer=SpanTracer(),
        )
        runtime.run_simulation(
            system, app, spaces, _arrivals(), faults=injector
        )
        kinds = {e.kind for e in injector.tracer.events}
        assert "fault.inject" in kinds and "kernel.exec" in kinds


class TestSimulationMetrics:
    def test_registry_families(self, heter_setup):
        result, _, registry = _traced_run(heter_setup)
        served = registry.value("requests_total", outcome="served")
        shed = registry.value("requests_total", outcome="shed")
        failed = registry.value("requests_total", outcome="failed")
        assert served + shed + failed == len(result.requests)
        hist = registry.value("request_latency_ms")
        assert hist["count"] == len(result.latencies_ms())
        assert registry.value("qos_bound_ms") == result.node.app.qos_ms
        # Occupancy in [0, 1] for every pooled device.
        for dev in result.node.devices:
            occ = registry.value("device_occupancy", device=dev.device_id)
            assert 0.0 <= occ <= 1.0
        assert registry.value("request_retries_total") == 0.0

    def test_placement_digest_mentions_devices(self, heter_setup):
        result, _, _ = _traced_run(heter_setup)
        digest = placement_digest(result, result.node)
        assert "ASR" in digest and "p99" in digest
        for dev in result.node.devices:
            assert dev.device_id in digest


class TestGoldenEventSchema:
    """CI golden test: the JSONL schema is a published artifact —
    widening it is an additive change, narrowing or renaming breaks
    downstream consumers and must show up in this diff."""

    def test_schema_matches_golden(self):
        golden = json.loads(GOLDEN_SCHEMA.read_text())
        live = {k: list(v) for k, v in EVENT_SCHEMA.items()}
        assert live == golden, (
            "EVENT_SCHEMA changed; update tests/golden/obs_event_schema.json "
            "and the DESIGN.md event-taxonomy table together"
        )

    def test_jsonl_lines_validate_against_golden(self, heter_setup, tmp_path):
        golden = json.loads(GOLDEN_SCHEMA.read_text())
        injector = FaultInjector(
            FaultSchedule.single_crash("fpga0", at_ms=1_000.0, recover_at_ms=2_500.0)
        )
        _, tracer, _ = _traced_run(heter_setup, faults=injector)
        path = write_events_jsonl(tracer.events, tmp_path / "events.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(tracer.events)
        for i, line in enumerate(lines):
            rec = json.loads(line)
            assert rec["seq"] == i
            assert set(rec) <= {"seq", "ts_ms", "kind", "name", "args", "dur_ms"}
            required = golden[rec["kind"]]
            missing = [f for f in required if f not in rec["args"]]
            assert not missing, f"line {i}: {rec['kind']} missing {missing}"


class TestCLI:
    def test_obs_command_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "obs"
        rc = cli_main([
            "obs", "ASR", "--rps", "10", "--ms", "2000",
            "--out-dir", str(out), "--summary",
        ])
        assert rc == 0
        for name in (
            "trace.perfetto.json", "events.jsonl", "metrics.json",
            "metrics.prom",
        ):
            assert (out / name).exists(), name
        doc = json.loads((out / "trace.perfetto.json").read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        stdout = capsys.readouterr().out
        assert "events" in stdout and "p99" in stdout

    def test_obs_command_unknown_app(self, tmp_path):
        rc = cli_main(["obs", "NOPE", "--out-dir", str(tmp_path)])
        assert rc == 2

    def test_obs_command_with_faults(self, tmp_path):
        out = tmp_path / "obs"
        rc = cli_main([
            "obs", "ASR", "--rps", "10", "--ms", "2000",
            "--out-dir", str(out),
            "--crash", "fpga0@500", "--recover", "fpga0@1500",
        ])
        assert rc == 0
        kinds = {
            json.loads(line)["kind"]
            for line in (out / "events.jsonl").read_text().splitlines()
        }
        assert "fault.inject" in kinds
