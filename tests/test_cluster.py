"""Fleet layer: dispatcher, autoscaler, cluster simulation, loadgen and
fleet TCO.

The expensive fixtures (one real DSE product, shared mini-diurnal fleet
replays) are module-scoped; policy- and router-level tests run against
hand-built stub nodes so they stay micro-fast.
"""

import numpy as np
import pytest

from repro import apps, runtime
from repro.cluster import (
    Autoscaler,
    AutoscalerConfig,
    ClusterDispatcher,
    ClusterSimulation,
    LaunchRequest,
    NodeState,
    SchedulingRequest,
    TerminationReason,
)
from repro.obs.tracer import SpanTracer
from repro.runtime.loadgen import flash_crowd_arrivals, pareto_poisson_arrivals
from repro.runtime.tco import TCOModel
from repro.runtime.trace import UtilizationTrace

# ---------------------------------------------------------------------------
# shared real-app fixtures
# ---------------------------------------------------------------------------

#: One compressed diurnal swing: rise, peak above single-node capacity,
#: fall back to idle — forces a full scale-up + scale-down episode.
MINI_PROFILE = (0.15, 0.3, 0.6, 0.9, 0.95, 0.7, 0.4, 0.15, 0.1, 0.1)


@pytest.fixture(scope="module")
def fleet_env():
    app = apps.build("MF")
    system = runtime.setting("I", "Heter-Poly")
    spaces = app.explore(system.platforms)
    return app, system, spaces


def run_fleet(fleet_env, seed=7, tracer=None, metrics=None, config=None,
              peak_factor=2.5):
    app, system, spaces = fleet_env
    config = config or AutoscalerConfig(min_nodes=1, max_nodes=6)
    sim = ClusterSimulation(
        system, app, spaces, config=config, seed=seed, tracer=tracer,
        metrics=metrics,
    )
    trace = UtilizationTrace(MINI_PROFILE, interval_s=3.0, name="mini")
    peak = sim._template_capacity(system) * peak_factor
    return sim.replay(trace, peak_rps=peak)


@pytest.fixture(scope="module")
def fleet_result(fleet_env):
    tracer = SpanTracer()
    result = run_fleet(fleet_env, tracer=tracer)
    return result, tracer


# ---------------------------------------------------------------------------
# stub nodes for router/policy unit tests
# ---------------------------------------------------------------------------


class StubNode:
    def __init__(self, node_id, queue_ms=0.0, signatures=(), healthy=1.0):
        self.node_id = node_id
        self._queue_ms = queue_ms
        self.planned_signatures = set(signatures)
        self.schedulable_fraction = healthy

    def queue_ms(self, now_ms):
        return self._queue_ms


class TestAutoscalerConfig:
    def test_defaults_have_hysteresis(self):
        assert AutoscalerConfig().hysteresis_ok

    def test_inverted_band_not_ok_but_constructible(self):
        cfg = AutoscalerConfig(
            scale_up_utilization=0.3, scale_down_utilization=0.8
        )
        assert not cfg.hysteresis_ok  # RT007's job, not the constructor's

    def test_target_outside_band_not_ok(self):
        cfg = AutoscalerConfig(target_utilization=0.95)
        assert not cfg.hysteresis_ok

    def test_min_above_max_constructible(self):
        assert AutoscalerConfig(min_nodes=9, max_nodes=2).min_nodes == 9

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_nodes": -1},
            {"warmup_ms": -1.0},
            {"idle_intervals": 0},
            {"max_launch_per_eval": 0},
        ],
    )
    def test_fatal_shapes_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AutoscalerConfig(**kwargs)


def make_request(demand, capacity, n_serving, n_warming=0, idle=(),
                 node_capacity=10.0, now_ms=1000.0):
    return SchedulingRequest(
        now_ms=now_ms,
        demand_rps=demand,
        capacity_rps=capacity,
        n_serving=n_serving,
        n_warming=n_warming,
        node_capacity_rps=node_capacity,
        idle_nodes=tuple(idle),
    )


class TestAutoscaler:
    def test_holds_inside_band(self):
        scaler = Autoscaler(AutoscalerConfig())
        reply = scaler.evaluate(make_request(6.0, 10.0, 1))
        assert reply.idle
        assert reply.utilization == pytest.approx(0.6)

    def test_scales_up_above_band(self):
        cfg = AutoscalerConfig(warmup_ms=1500.0)
        reply = Autoscaler(cfg).evaluate(make_request(19.0, 10.0, 1))
        assert len(reply.to_launch) >= 1
        for launch in reply.to_launch:
            assert launch.at_ms == 1000.0
            assert launch.ready_ms == 2500.0  # deterministic warm-up

    def test_launch_count_targets_operating_point(self):
        # demand 30 rps, 10 rps/node, target 0.6 -> want ceil(30/6) = 5.
        cfg = AutoscalerConfig(max_nodes=8, max_launch_per_eval=8)
        reply = Autoscaler(cfg).evaluate(make_request(30.0, 10.0, 1))
        assert len(reply.to_launch) == 4  # 5 desired - 1 live

    def test_launches_capped_per_eval(self):
        cfg = AutoscalerConfig(max_nodes=8, max_launch_per_eval=2)
        reply = Autoscaler(cfg).evaluate(make_request(100.0, 10.0, 1))
        assert len(reply.to_launch) == 2

    def test_never_exceeds_max_nodes(self):
        cfg = AutoscalerConfig(max_nodes=3)
        reply = Autoscaler(cfg).evaluate(make_request(100.0, 30.0, 3))
        assert reply.to_launch == ()

    def test_warming_capacity_counts_toward_utilization(self):
        # 1 serving + 1 warming at 10 rps each; demand 12 -> util 0.6,
        # inside the band: no double-launch while capacity is in flight.
        reply = Autoscaler(AutoscalerConfig()).evaluate(
            make_request(12.0, 20.0, 1, n_warming=1)
        )
        assert reply.idle

    def test_scales_down_idle_nodes(self):
        cfg = AutoscalerConfig(min_nodes=1)
        reply = Autoscaler(cfg).evaluate(
            make_request(2.0, 30.0, 3, idle=("node2", "node1"))
        )
        assert reply.to_launch == ()
        assert [t.node_id for t in reply.to_terminate] == ["node2", "node1"]
        assert all(
            t.reason is TerminationReason.IDLE_TERMINATE
            for t in reply.to_terminate
        )

    def test_never_drops_below_min_nodes(self):
        cfg = AutoscalerConfig(min_nodes=2)
        reply = Autoscaler(cfg).evaluate(
            make_request(0.5, 30.0, 3, idle=("node2", "node1", "node0"))
        )
        assert len(reply.to_terminate) <= 1

    def test_only_idle_nodes_terminated(self):
        reply = Autoscaler(AutoscalerConfig()).evaluate(
            make_request(2.0, 30.0, 3, idle=())
        )
        assert reply.to_terminate == ()

    def test_over_max_sheds_with_typed_reason(self):
        cfg = AutoscalerConfig(max_nodes=2)
        reply = Autoscaler(cfg).evaluate(
            make_request(5.0, 40.0, 4, idle=("node3", "node2"))
        )
        assert [t.reason for t in reply.to_terminate] == [
            TerminationReason.MAX_NODES,
            TerminationReason.MAX_NODES,
        ]

    def test_zero_capacity_with_demand_is_infinite_utilization(self):
        request = make_request(5.0, 0.0, 0)
        assert request.utilization == float("inf")

    def test_reason_enum_values_stable(self):
        # Serialized into scaling timelines and obs events; renumbering
        # would silently corrupt cross-version comparisons.
        assert TerminationReason.IDLE_TERMINATE.value == 1
        assert TerminationReason.MAX_NODES.value == 2


class TestDispatcher:
    def make(self, seed=0, **kwargs):
        return ClusterDispatcher(np.random.default_rng(seed), **kwargs)

    def test_single_node_fleet_routes_to_it(self):
        node = StubNode("node0")
        assert self.make().route(0.0, "sig", [node]) is node

    def test_prefers_less_loaded_candidate(self):
        # With two nodes, power-of-two-choices always samples both.
        nodes = [StubNode("node0", queue_ms=50.0), StubNode("node1", queue_ms=0.0)]
        dispatcher = self.make()
        for _ in range(20):
            assert dispatcher.route(0.0, "sig", nodes).node_id == "node1"

    def test_locality_breaks_queue_ties(self):
        nodes = [
            StubNode("node0", queue_ms=0.0),
            StubNode("node1", queue_ms=0.0, signatures=("sig",)),
        ]
        dispatcher = self.make(locality_penalty_ms=5.0)
        for _ in range(20):
            assert dispatcher.route(0.0, "sig", nodes).node_id == "node1"

    def test_queue_gap_beats_locality(self):
        # A 100 ms backlog on the warm node dwarfs the 5 ms cold penalty.
        nodes = [
            StubNode("node0", queue_ms=0.0),
            StubNode("node1", queue_ms=100.0, signatures=("sig",)),
        ]
        dispatcher = self.make()
        for _ in range(20):
            assert dispatcher.route(0.0, "sig", nodes).node_id == "node0"

    def test_unhealthy_node_avoided(self):
        nodes = [StubNode("node0", healthy=0.0), StubNode("node1")]
        dispatcher = self.make(health_penalty_ms=50.0)
        for _ in range(20):
            assert dispatcher.route(0.0, "sig", nodes).node_id == "node1"

    def test_degraded_node_penalized_proportionally(self):
        score_full = self.make().score(StubNode("a"), 0.0, "s")
        score_half = self.make().score(StubNode("a", healthy=0.5), 0.0, "s")
        assert score_half == pytest.approx(score_full + 25.0)

    def test_two_rng_draws_per_request(self):
        # The d=2 sample must consume exactly two draws however large
        # the fleet is, so scaling events cannot desync the stream.
        nodes = [StubNode(f"node{i}") for i in range(7)]
        rng = np.random.default_rng(3)
        dispatcher = ClusterDispatcher(rng)
        for _ in range(5):
            dispatcher.route(0.0, "sig", nodes)
        rng2 = np.random.default_rng(3)
        for _ in range(5):
            rng2.integers(7)
            rng2.integers(6)
        assert rng.integers(1 << 30) == rng2.integers(1 << 30)

    def test_route_emits_schema_valid_event(self):
        tracer = SpanTracer()
        dispatcher = ClusterDispatcher(np.random.default_rng(0), tracer=tracer)
        nodes = [StubNode("node0"), StubNode("node1", signatures=("sig",))]
        dispatcher.route(4.5, "sig", nodes, req=9)
        [event] = tracer.events
        assert event.kind == "cluster.route"
        assert event.ts_ms == 4.5
        assert event.args["req"] == 9
        assert sorted(event.args["candidates"]) == ["node0", "node1"]

    def test_empty_fleet_rejected(self):
        with pytest.raises(RuntimeError, match="no serving nodes"):
            self.make().route(0.0, "sig", [])

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            self.make(locality_penalty_ms=-1.0)


# ---------------------------------------------------------------------------
# loadgen satellites
# ---------------------------------------------------------------------------


class TestParetoPoisson:
    def test_deterministic_under_seed(self):
        a = pareto_poisson_arrivals(50.0, 5_000.0, np.random.default_rng(1))
        b = pareto_poisson_arrivals(50.0, 5_000.0, np.random.default_rng(1))
        assert a == b

    def test_seed_sensitive(self):
        a = pareto_poisson_arrivals(50.0, 5_000.0, np.random.default_rng(1))
        b = pareto_poisson_arrivals(50.0, 5_000.0, np.random.default_rng(2))
        assert a != b

    def test_sorted_and_in_range(self):
        times = pareto_poisson_arrivals(
            80.0, 4_000.0, np.random.default_rng(5), start_ms=100.0
        )
        assert times == sorted(times)
        assert all(100.0 <= t < 4_100.0 for t in times)

    def test_mean_rate_approximately_preserved(self):
        times = pareto_poisson_arrivals(
            100.0, 60_000.0, np.random.default_rng(0)
        )
        assert len(times) == pytest.approx(6_000, rel=0.25)

    def test_burstier_than_poisson(self):
        # Per-window counts must have a higher coefficient of variation
        # than the matched-rate Poisson stream (the point of the model).
        rng = np.random.default_rng(11)
        heavy = pareto_poisson_arrivals(100.0, 60_000.0, rng, alpha=1.5)
        poisson = runtime.poisson_arrivals(
            100.0, 60_000.0, np.random.default_rng(11)
        )

        def cv(times):
            counts = np.bincount(
                (np.asarray(times) // 1000.0).astype(int), minlength=60
            )
            return counts.std() / counts.mean()

        assert cv(heavy) > cv(poisson)

    def test_zero_rate_is_empty(self):
        assert pareto_poisson_arrivals(0.0, 1_000.0) == []

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration_ms": 0.0},
            {"window_ms": 0.0},
            {"alpha": 1.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        base = {"rps": 10.0, "duration_ms": 1_000.0}
        base.update(kwargs)
        with pytest.raises(ValueError):
            pareto_poisson_arrivals(**base)


class TestFlashCrowd:
    def test_deterministic_under_seed(self):
        a = flash_crowd_arrivals(
            20.0, 10_000.0, 4_000.0, 2_000.0, rng=np.random.default_rng(3)
        )
        b = flash_crowd_arrivals(
            20.0, 10_000.0, 4_000.0, 2_000.0, rng=np.random.default_rng(3)
        )
        assert a == b

    def test_sorted(self):
        times = flash_crowd_arrivals(
            20.0, 10_000.0, 4_000.0, 2_000.0, rng=np.random.default_rng(3)
        )
        assert times == sorted(times)

    def test_surge_window_concentrates_arrivals(self):
        times = flash_crowd_arrivals(
            20.0,
            10_000.0,
            4_000.0,
            2_000.0,
            surge_multiplier=8.0,
            rng=np.random.default_rng(0),
        )
        in_surge = sum(1 for t in times if 4_000.0 <= t < 6_000.0)
        before = sum(1 for t in times if 2_000.0 <= t < 4_000.0)
        assert in_surge > 3 * before

    def test_baseline_stream_unchanged_by_surge(self):
        base = runtime.poisson_arrivals(
            20.0, 10_000.0, np.random.default_rng(9)
        )
        with_surge = flash_crowd_arrivals(
            20.0, 10_000.0, 4_000.0, 1_000.0, rng=np.random.default_rng(9)
        )
        assert set(base) <= set(with_surge)

    def test_unit_multiplier_is_pure_baseline(self):
        times = flash_crowd_arrivals(
            20.0,
            10_000.0,
            4_000.0,
            1_000.0,
            surge_multiplier=1.0,
            rng=np.random.default_rng(4),
        )
        base = runtime.poisson_arrivals(
            20.0, 10_000.0, np.random.default_rng(4)
        )
        assert times == base

    def test_shrinking_multiplier_rejected(self):
        with pytest.raises(ValueError):
            flash_crowd_arrivals(20.0, 1_000.0, 0.0, 500.0, surge_multiplier=0.5)


# ---------------------------------------------------------------------------
# fleet TCO satellite
# ---------------------------------------------------------------------------


class TestFleetTCO:
    def setup_method(self):
        self.system = runtime.setting("I", "Heter-Poly")
        self.model = TCOModel()

    def test_single_node_path_pinned(self):
        """Regression pin: the fleet extension must not move the
        single-node numbers (literal values recorded pre-extension)."""
        assert self.model.monthly_capex_usd(self.system) == 652.75
        assert self.model.monthly_infrastructure_usd(self.system) == 37.8125
        assert self.model.monthly_energy_usd(250.0) == 13.450250000000002
        assert self.model.monthly_tco_usd(self.system, 250.0) == 801.92525
        assert self.model.cost_efficiency(self.system, 100.0, 250.0) == (
            0.12469990189235218
        )

    def test_one_node_fleet_matches_single_node(self):
        fleet = self.model.for_fleet(self.system, 1.0)
        energy = self.model.monthly_energy_usd(250.0)
        assert fleet.monthly_tco_usd(energy) == pytest.approx(
            self.model.monthly_tco_usd(self.system, 250.0)
        )

    def test_fixed_costs_scale_linearly(self):
        one = self.model.for_fleet(self.system, 1.0)
        five = self.model.for_fleet(self.system, 5.0)
        assert five.monthly_fixed_usd() == pytest.approx(
            5.0 * one.monthly_fixed_usd()
        )

    def test_fractional_node_months(self):
        half = self.model.for_fleet(self.system, 0.5)
        one = self.model.for_fleet(self.system, 1.0)
        assert half.monthly_capex_usd == pytest.approx(
            one.monthly_capex_usd / 2.0
        )

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            self.model.for_fleet(self.system, -1.0)
        with pytest.raises(ValueError):
            self.model.for_fleet(self.system, 1.0).monthly_tco_usd(-5.0)

    def test_maintenance_component_exposed(self):
        # monthly_tco_usd = capex + infra + energy + maintenance exactly.
        total = self.model.monthly_tco_usd(self.system, 250.0)
        parts = (
            self.model.monthly_capex_usd(self.system)
            + self.model.monthly_infrastructure_usd(self.system)
            + self.model.monthly_energy_usd(250.0)
            + self.model.monthly_maintenance_usd(self.system)
        )
        assert total == parts


# ---------------------------------------------------------------------------
# end-to-end fleet simulation
# ---------------------------------------------------------------------------


class TestClusterSimulation:
    def test_deterministic_under_seed(self, fleet_env, fleet_result):
        result, tracer = fleet_result
        tracer2 = SpanTracer()
        result2 = run_fleet(fleet_env, tracer=tracer2)
        assert [r.latency_ms for r in result.requests] == [
            r.latency_ms for r in result2.requests
        ]
        assert result.node_ids == result2.node_ids
        assert result.timeline == result2.timeline
        assert [e.to_dict() for e in tracer.events] == [
            e.to_dict() for e in tracer2.events
        ]
        assert result.p99_ms == result2.p99_ms

    def test_seed_changes_outcome(self, fleet_env, fleet_result):
        result, _ = fleet_result
        other = run_fleet(fleet_env, seed=8)
        assert [r.latency_ms for r in result.requests] != [
            r.latency_ms for r in other.requests
        ]

    def test_autoscaler_tracks_diurnal_load(self, fleet_result):
        result, _ = fleet_result
        sizes = [e.fleet_size for e in result.timeline]
        assert max(sizes) >= 2  # scaled up at the peak
        assert result.timeline[-1].fleet_size < max(sizes)  # and back down
        assert result.launches >= 2
        assert result.terminations >= 1

    def test_qos_met_at_calibrated_load(self, fleet_result):
        result, _ = fleet_result
        assert result.qos_ok_frac() >= 0.9

    def test_fleet_bounds_respected(self, fleet_result):
        result, _ = fleet_result
        sizes = [e.fleet_size for e in result.timeline]
        assert all(1 <= s <= 6 for s in sizes)

    def test_warmup_delays_serving(self, fleet_result):
        result, _ = fleet_result
        by_id = {n.node_id: n for n in result.nodes}
        for node_id, record in zip(result.node_ids, result.requests):
            node = by_id[node_id]
            assert record.arrival_ms >= node.ready_ms

    def test_scale_up_lag_includes_warmup(self, fleet_result):
        result, _ = fleet_result
        assert result.scale_up_lags_ms
        assert all(lag >= 2000.0 for lag in result.scale_up_lags_ms)

    def test_all_arrivals_routed(self, fleet_result):
        result, tracer = fleet_result
        assert len(result.requests) == len(result.node_ids)
        assert len(tracer.by_kind("cluster.route")) == len(result.requests)

    def test_obs_stream_covers_scaling_decisions(self, fleet_result):
        result, tracer = fleet_result
        assert len(tracer.by_kind("cluster.launch")) == result.launches
        assert len(tracer.by_kind("cluster.terminate")) == result.terminations
        assert len(tracer.by_kind("cluster.scale")) == len(result.intervals)

    def test_interval_stats_aggregate(self, fleet_result):
        result, _ = fleet_result
        assert sum(iv.arrivals for iv in result.intervals) == len(
            result.requests
        )
        busy = [iv for iv in result.intervals if iv.arrivals > 0]
        assert all(iv.p99_ms >= iv.p50_ms for iv in busy)

    def test_power_and_cost_positive(self, fleet_result):
        result, _ = fleet_result
        assert result.fleet_avg_power_w > 0
        assert result.monthly_tco_usd() > 0
        assert result.cost_efficiency() > 0
        assert result.mean_fleet_size >= 1.0

    def test_metrics_registry_populated(self, fleet_env):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        result = run_fleet(fleet_env, metrics=registry)
        assert registry.value(
            "cluster_requests_total", outcome="served"
        ) == sum(1 for r in result.requests if r.served)
        assert registry.value("cluster_launches_total") == result.launches

    def test_single_instance_runs_once(self, fleet_env):
        app, system, spaces = fleet_env
        sim = ClusterSimulation(system, app, spaces)
        sim.run([10.0, 20.0, 30.0])
        with pytest.raises(RuntimeError, match="one run"):
            sim.run([10.0])

    def test_empty_arrivals_rejected(self, fleet_env):
        app, system, spaces = fleet_env
        with pytest.raises(ValueError, match="empty"):
            ClusterSimulation(system, app, spaces).run([])

    def test_fatal_configs_rejected(self, fleet_env):
        app, system, spaces = fleet_env
        with pytest.raises(ValueError, match="eval_interval"):
            ClusterSimulation(
                system, app, spaces,
                config=AutoscalerConfig(eval_interval_ms=0.0),
            )
        with pytest.raises(ValueError, match="min_nodes"):
            ClusterSimulation(
                system, app, spaces,
                config=AutoscalerConfig(min_nodes=5, max_nodes=2),
            )
        with pytest.raises(ValueError, match="min_nodes"):
            ClusterSimulation(
                system, app, spaces, config=AutoscalerConfig(min_nodes=0)
            )

    def test_bad_compress_rejected(self, fleet_env):
        app, system, spaces = fleet_env
        trace = UtilizationTrace((0.5,), interval_s=1.0)
        with pytest.raises(ValueError, match="compress"):
            ClusterSimulation(system, app, spaces).replay(
                trace, peak_rps=10.0, compress=0.0
            )

    def test_heterogeneous_rotation(self, fleet_env):
        app, _, _ = fleet_env
        t1 = runtime.setting("I", "Heter-Poly")
        t2 = runtime.setting("I", "Homo-GPU")
        platforms = tuple(dict.fromkeys(t1.platforms + t2.platforms))
        spaces = app.explore(platforms)
        sim = ClusterSimulation(
            [t1, t2], app, spaces,
            config=AutoscalerConfig(min_nodes=2, max_nodes=4),
        )
        result = sim.run(
            runtime.poisson_arrivals(
                20.0, 4_000.0, np.random.default_rng(0)
            )
        )
        codenames = {n.template.codename for n in result.nodes}
        assert len(codenames) == 2  # launches rotate through templates

    def test_terminated_nodes_stop_serving(self, fleet_result):
        result, _ = fleet_result
        ends = {}
        for node in result.nodes:
            if node.state is NodeState.TERMINATED:
                ends[node.node_id] = node.terminated_ms
        assert ends  # the mini profile terminates at least one node
        for node_id, record in zip(result.node_ids, result.requests):
            if node_id in ends:
                assert record.arrival_ms <= ends[node_id]

    def test_launch_request_reason_recorded(self, fleet_result):
        result, _ = fleet_result
        reasons = {e.reason for e in result.timeline if e.action == "launch"}
        assert "initial" in reasons
        assert "scale_up" in reasons
        term_reasons = {
            e.reason for e in result.timeline if e.action == "terminate"
        }
        assert term_reasons <= {r.name for r in TerminationReason}


class TestDiurnalAcceptance:
    """The headline acceptance run: ASR on the synthesized Google-style
    diurnal trace must meet its QoS target in >= 90% of intervals while
    the fleet visibly tracks the load curve."""

    @pytest.fixture(scope="class")
    def asr_result(self):
        from repro.runtime.trace import synthesize_google_trace

        app = apps.build("ASR")
        system = runtime.setting("I", "Heter-Poly")
        spaces = app.explore(system.platforms)
        sim = ClusterSimulation(
            system, app, spaces,
            config=AutoscalerConfig(min_nodes=1, max_nodes=8),
        )
        trace = synthesize_google_trace(hours=6.0, interval_s=300.0)
        peak = sim._template_capacity(system) * 2.5
        return sim.replay(trace, peak_rps=peak, compress=200.0)

    def test_qos_target_met_in_90pct_of_intervals(self, asr_result):
        assert asr_result.qos_ok_frac() >= 0.9

    def test_fleet_tracks_diurnal_curve(self, asr_result):
        sizes = [e.fleet_size for e in asr_result.timeline]
        assert max(sizes) >= 3  # peak demand exceeds two nodes
        assert asr_result.timeline[-1].fleet_size <= 2  # trough again
        assert asr_result.launches >= 3
        assert asr_result.terminations >= 2

    def test_all_requests_served(self, asr_result):
        assert all(r.served for r in asr_result.requests)


class TestLaunchRequestTypes:
    def test_launch_request_fields(self):
        launch = LaunchRequest(at_ms=10.0, ready_ms=15.0)
        assert launch.reason == "scale_up"
        assert launch.ready_ms > launch.at_ms
